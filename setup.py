from setuptools import setup

# Offline-friendly shim: `python setup.py develop` works without network
# (PEP 517 editable installs need wheel, which minimal environments lack).
setup(entry_points={"console_scripts": ["repro-gis=repro.cli:main"]})
