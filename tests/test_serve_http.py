"""The query daemon over real HTTP: status mapping, overload, faults.

Drives a live :class:`QueryDaemon` on an ephemeral port.  The overload
and drain tests use the fault harness's ``stall_at`` to park requests on
the ``serve.request.admitted`` crash point — deterministic in-flight
load without timing games — and the client-fault tests use
``faults.raw_post`` to behave the way well-written clients don't.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import PointCloudDB
from repro.core.imprints import ImprintsManager
from repro.core.imprints import segments as segments_mod
from repro.obs.context import ObsContext
from repro.serve import wire
from repro.serve.http import QueryDaemon
from repro.serve.quotas import TenantBudget
from repro.serve.service import QueryService, ServiceConfig
from repro.serve.snapshot import SnapshotManager
from tests import faults

N_POINTS = 60_000
BBOX = [10.0, 10.0, 60.0, 60.0]


def make_db(context, n=N_POINTS):
    db = PointCloudDB(obs=context, threads=1)
    db.manager = ImprintsManager(threads=1, segment_rows=2048)
    db.create_pointcloud("pts")
    rng = np.random.default_rng(29)
    db.load_points(
        "pts",
        {
            "x": rng.uniform(0, 100, n),
            "y": rng.uniform(0, 100, n),
            "z": rng.uniform(0, 10, n),
        },
    )
    return db


def post(url, payload, headers=None, timeout=30):
    """POST JSON; returns (status, headers, body bytes) without raising."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def get(url, timeout=10):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture(scope="module")
def daemon():
    context = ObsContext.fresh(enabled=False)
    db = make_db(context)
    manager = SnapshotManager(loader=lambda: db, obs=context)
    config = ServiceConfig(
        max_concurrency=4,
        quotas={"broke": TenantBudget(cpu_seconds=0.0)},
    )
    service = QueryService(manager, config=config, obs=context)
    server = QueryDaemon(service, port=0).start()
    yield server, context
    server.stop()


def small_daemon(context, **config_kwargs):
    """A function-scoped daemon over a small store (overload/drain tests)."""
    db = make_db(context, n=2000)
    manager = SnapshotManager(loader=lambda: db, obs=context)
    service = QueryService(
        manager, config=ServiceConfig(**config_kwargs), obs=context
    )
    return QueryDaemon(service, port=0).start()


class TestHappyPaths:
    def test_spatial_query_json(self, daemon):
        server, _ = daemon
        status, headers, body = post(
            server.url + "/v1/query", {"table": "pts", "bbox": BBOX}
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["meta"]["n_results"] > 0
        assert payload["columns"] == ["x", "y", "z"]
        assert "traceparent" not in headers or headers["traceparent"]

    def test_spatial_query_columnar(self, daemon):
        server, _ = daemon
        status, headers, body = post(
            server.url + "/v1/query",
            {"table": "pts", "bbox": BBOX, "format": "columnar"},
        )
        assert status == 200
        assert headers["Content-Type"] == wire.CONTENT_TYPE
        meta = json.loads(headers["X-Repro-Meta"])
        columns = wire.decode_columns(body)
        assert columns["x"].shape[0] == meta["n_returned"]

    def test_sql_json(self, daemon):
        server, _ = daemon
        status, _, body = post(
            server.url + "/v1/sql", {"sql": "SELECT COUNT(*) FROM pts"}
        )
        assert status == 200
        assert json.loads(body)["rows"][0][0] == N_POINTS

    def test_traceparent_propagates(self, daemon):
        server, _ = daemon
        inbound = "00-000102030405060708090a0b0c0d0e0f-0001020304050607-01"
        status, headers, _ = post(
            server.url + "/v1/query",
            {"table": "pts", "bbox": BBOX, "limit": 1},
            headers={"traceparent": inbound},
        )
        assert status == 200
        assert headers["traceparent"].split("-")[1] == inbound.split("-")[1]

    def test_debug_serve_endpoint(self, daemon):
        server, _ = daemon
        status, body = get(server.url + "/debug/serve")
        assert status == 200
        state = json.loads(body)
        assert state["admission"]["max_concurrency"] == 4
        assert "default" in state["tenants"] or state["tenants"] == {}
        assert state["generation"] == 0

    def test_healthz_reports_service_state(self, daemon):
        server, _ = daemon
        status, body = get(server.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["tables"] == {"pts": N_POINTS}
        assert "admission" in payload


class TestStatusMapping:
    def test_unknown_route_404(self, daemon):
        server, _ = daemon
        status, _, body = post(server.url + "/v1/nope", {})
        assert status == 404
        assert b"/v1/query" in body

    def test_invalid_json_400(self, daemon):
        server, _ = daemon
        response = faults.raw_post(
            server.host, server.port, "/v1/query", b"{not json"
        )
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"bad_request" in response

    def test_non_object_body_400(self, daemon):
        server, _ = daemon
        status, _, body = post(server.url + "/v1/query", [1, 2, 3])
        assert status == 400

    def test_unknown_table_404(self, daemon):
        server, _ = daemon
        status, _, body = post(
            server.url + "/v1/query", {"table": "missing", "bbox": BBOX}
        )
        assert status == 404
        payload = json.loads(body)
        assert payload["error"] == "not_found"
        assert "missing" in payload["message"]

    def test_sql_error_400(self, daemon):
        server, _ = daemon
        status, _, body = post(
            server.url + "/v1/sql", {"sql": "SELECT x FROM missing"}
        )
        assert status == 400
        assert json.loads(body)["error"] == "sql_error"

    def test_quota_exhausted_403_with_report(self, daemon):
        server, _ = daemon
        status, _, body = post(
            server.url + "/v1/query",
            {"table": "pts", "bbox": BBOX},
            headers={"X-Tenant": "broke"},
        )
        assert status == 403
        payload = json.loads(body)
        assert payload["error"] == "quota_exceeded"
        assert payload["report"]["budget"]["cpu_seconds"]["exhausted"]

    def test_body_too_large_413(self, daemon):
        server, _ = daemon
        response = faults.raw_post(
            server.host,
            server.port,
            "/v1/query",
            b"{}",
            headers={"Content-Length": str(64 * 1024 * 1024)},
        )
        assert b"413" in response.split(b"\r\n", 1)[0]

    def test_cancelled_query_408_contract(self, daemon):
        """Satellite: over HTTP a timed-out request answers 408 with
        query_id/elapsed_s, the registry record retires as cancelled,
        and query.cancelled increments exactly once."""
        server, context = daemon
        before = context.registry.counter("query.cancelled").value
        segments_mod.probe_hook = lambda _seg: time.sleep(0.02)
        try:
            status, _, body = post(
                server.url + "/v1/query",
                {"table": "pts", "bbox": BBOX, "timeout_s": 0.01},
            )
        finally:
            segments_mod.probe_hook = None
        assert status == 408
        payload = json.loads(body)
        assert payload["error"] == "cancelled"
        assert payload["query_id"]
        assert payload["elapsed_s"] >= 0.01
        assert payload["timeout_s"] == 0.01
        assert (
            context.registry.counter("query.cancelled").value == before + 1
        )
        records = [
            r
            for r in context.queries.recent()
            if r["query_id"] == payload["query_id"]
        ]
        assert len(records) == 1
        assert records[0]["status"] == "cancelled"

    def test_handler_bug_500_daemon_survives(self, daemon, monkeypatch):
        server, _ = daemon
        monkeypatch.setattr(
            server.service,
            "handle",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("bug")),
        )
        status, _, body = post(
            server.url + "/v1/query", {"table": "pts", "bbox": BBOX}
        )
        assert status == 500
        assert json.loads(body)["error"] == "internal"
        monkeypatch.undo()
        status, _, _ = post(
            server.url + "/v1/query",
            {"table": "pts", "bbox": BBOX, "limit": 1},
        )
        assert status == 200


class TestOverload:
    """2x overload: accepted requests complete, the rest shed fast."""

    def test_saturated_sheds_429_with_retry_after(self):
        context = ObsContext.fresh(enabled=False)
        server = small_daemon(
            context, max_concurrency=1, queue_depth=0, retry_after_s=2.0
        )
        release = threading.Event()
        results = []
        try:
            with faults.stall_at("serve.request.admitted", release) as state:
                thread = threading.Thread(
                    target=lambda: results.append(
                        post(
                            server.url + "/v1/query",
                            {"table": "pts", "bbox": BBOX},
                        )
                    ),
                    daemon=True,
                )
                thread.start()
                for _ in range(400):
                    if state["stalled"]:
                        break
                    time.sleep(0.005)
                assert state["stalled"] == 1
                # The slot is held: everything else sheds, fast.
                latencies = []
                for _ in range(5):
                    t0 = time.monotonic()
                    status, headers, body = post(
                        server.url + "/v1/query",
                        {"table": "pts", "bbox": BBOX},
                    )
                    latencies.append(time.monotonic() - t0)
                    assert status == 429
                    assert headers["Retry-After"] == "2"
                    assert json.loads(body)["reason"] == "saturated"
                # Constant-time shed: the median must be well under the
                # 100ms acceptance bound even on a loaded CI box.
                assert sorted(latencies)[2] < 0.1
                release.set()
                thread.join(timeout=10)
            # The accepted request completed despite the overload.
            status, _, body = results[0]
            assert status == 200
            assert json.loads(body)["meta"]["n_results"] > 0
            assert context.registry.counter("serve.shed").value == 5
        finally:
            release.set()
            server.stop()

    def test_drain_rejects_503_then_serves_nothing(self):
        context = ObsContext.fresh(enabled=False)
        server = small_daemon(context, max_concurrency=2)
        try:
            status, _, _ = post(
                server.url + "/v1/query",
                {"table": "pts", "bbox": BBOX, "limit": 1},
            )
            assert status == 200
            server.service.admission.begin_drain()
            status, headers, body = post(
                server.url + "/v1/query", {"table": "pts", "bbox": BBOX}
            )
            assert status == 503
            assert "Retry-After" in headers
            assert json.loads(body)["reason"] == "draining"
        finally:
            server.stop()

    def test_drain_and_stop_closes_listener(self):
        context = ObsContext.fresh(enabled=False)
        server = small_daemon(context)
        url = server.url
        assert server.drain_and_stop(timeout_s=5) is True
        with pytest.raises(Exception):
            get(url + "/healthz", timeout=2)


class TestClientFaults:
    def test_slow_client_still_served(self, daemon):
        server, _ = daemon
        body = json.dumps(
            {"table": "pts", "bbox": BBOX, "limit": 10}
        ).encode()
        response = faults.raw_post(
            server.host,
            server.port,
            "/v1/query",
            body,
            send_chunk=8,
            send_delay_s=0.01,
        )
        head, _, payload = response.partition(b"\r\n\r\n")
        assert b"200" in head.split(b"\r\n", 1)[0]
        assert json.loads(payload)["meta"]["n_returned"] == 10

    def test_mid_response_disconnect_counted_daemon_survives(self, daemon):
        server, context = daemon
        before = context.registry.counter("serve.client_disconnects").value
        # A multi-megabyte response the client walks away from.
        faults.raw_post(
            server.host,
            server.port,
            "/v1/sql",
            json.dumps({"sql": "SELECT x, y, z FROM pts"}).encode(),
            read_limit=100,
            reset=True,
        )
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            counted = (
                context.registry.counter("serve.client_disconnects").value
                - before
            )
            if counted:
                break
            time.sleep(0.05)
        assert counted == 1
        status, _, _ = post(
            server.url + "/v1/query",
            {"table": "pts", "bbox": BBOX, "limit": 1},
        )
        assert status == 200

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_injected_crash_kills_thread_not_daemon(self, daemon):
        """Crash transparency: InjectedCrash is NOT swallowed into a 500
        — the handler thread dies without answering — and the daemon
        keeps serving."""
        server, _ = daemon
        with faults.crash_at("serve.request.received"):
            with pytest.raises(Exception):
                request = urllib.request.Request(
                    server.url + "/v1/query",
                    data=json.dumps({"table": "pts", "bbox": BBOX}).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                urllib.request.urlopen(request, timeout=10)
        status, _, _ = post(
            server.url + "/v1/query",
            {"table": "pts", "bbox": BBOX, "limit": 1},
        )
        assert status == 200


class TestProcessLifecycle:
    """The daemon as a real process: signals and store recoverability."""

    @pytest.fixture
    def store(self, tmp_path):
        context = ObsContext.fresh(enabled=False)
        make_db(context, n=20_000).save(tmp_path / "store")
        return tmp_path / "store"

    def _spawn(self, store, tmp_path, extra=()):
        proc = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro.cli",
                "serve",
                str(store),
                "--port",
                "0",
                "--threads",
                "1",
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": "src",
                "REPRO_FLIGHT_DIR": str(tmp_path / "flight"),
            },
            cwd="/root/repo",
        )
        banner = proc.stdout.readline()
        assert "serving queries on" in banner, (banner, proc.stderr.read())
        url = banner.split("serving queries on ")[1].split(" ")[0]
        return proc, url

    def test_sigterm_drains_and_flight_records(self, store, tmp_path):
        (tmp_path / "flight").mkdir()
        proc, url = self._spawn(store, tmp_path)
        try:
            status, _, _ = post(
                url + "/v1/query",
                {"table": "pts", "bbox": BBOX, "limit": 1},
            )
            assert status == 200
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == -signal.SIGTERM
            # The flight recorder's SIGTERM hook ran after the drain.
            dumps = list((tmp_path / "flight").glob("flight-*.json"))
            assert len(dumps) == 1
            # The listener is gone.
            with pytest.raises(Exception):
                get(url + "/healthz", timeout=2)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_sigkill_mid_query_store_recoverable(self, store, tmp_path):
        """The acceptance criterion: SIGKILL during request handling
        leaves the (read-only) store verifiable and loadable."""
        proc, url = self._spawn(store, tmp_path)
        try:
            threads = [
                threading.Thread(
                    target=post,
                    args=(url + "/v1/sql", {"sql": "SELECT AVG(x) FROM pts"}),
                    kwargs={"timeout": 5},
                    daemon=True,
                )
                for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.01)  # let the queries reach the scan
            proc.kill()
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        report = PointCloudDB.load(store, threads=1).verify()
        assert report["ok"] is True
        recovered = PointCloudDB.recover(store, threads=1)
        assert len(recovered.table("pts")) == 20_000
