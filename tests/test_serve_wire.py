"""The binary columnar wire format: round trips and hostile frames."""

import json
import struct

import numpy as np
import pytest

from repro.serve import wire
from repro.serve.wire import (
    WireFormatError,
    decode_columns,
    encode_columns,
    encodable,
)


class TestRoundTrip:
    def test_float_and_int_columns(self):
        columns = {
            "x": np.arange(100, dtype=np.float64) * 0.5,
            "y": np.arange(100, dtype=np.float32),
            "cls": np.arange(100, dtype=np.int32) % 7,
            "flag": np.arange(100) % 2 == 0,
        }
        back = decode_columns(encode_columns(columns))
        assert list(back) == ["x", "y", "cls", "flag"]
        for name, array in columns.items():
            assert back[name].dtype == array.dtype
            np.testing.assert_array_equal(back[name], array)

    def test_empty_columns(self):
        columns = {"x": np.array([], dtype=np.float64)}
        back = decode_columns(encode_columns(columns))
        assert back["x"].shape == (0,)
        assert back["x"].dtype == np.float64

    def test_no_columns(self):
        assert decode_columns(encode_columns({})) == {}

    def test_order_preserved(self):
        columns = {
            name: np.full(3, i, dtype=np.int64)
            for i, name in enumerate("zebra apple mango".split())
        }
        assert list(decode_columns(encode_columns(columns))) == [
            "zebra",
            "apple",
            "mango",
        ]

    def test_big_endian_input_normalised(self):
        big = np.arange(10, dtype=">f8")
        back = decode_columns(encode_columns({"x": big}))
        np.testing.assert_array_equal(back["x"], big.astype("<f8"))
        assert back["x"].dtype.str == "<f8"

    def test_non_contiguous_input(self):
        strided = np.arange(20, dtype=np.float64)[::2]
        back = decode_columns(encode_columns({"x": strided}))
        np.testing.assert_array_equal(back["x"], strided)


class TestEncodeErrors:
    def test_object_dtype_rejected(self):
        with pytest.raises(WireFormatError, match="dtype"):
            encode_columns({"name": np.array(["a", "b"], dtype=object)})

    def test_unicode_dtype_rejected(self):
        assert not encodable(np.array(["a", "b"]))
        with pytest.raises(WireFormatError):
            encode_columns({"name": np.array(["a", "b"])})


class TestDecodeErrors:
    def _frame(self):
        return encode_columns({"x": np.arange(8, dtype=np.float64)})

    def test_truncated_prelude(self):
        with pytest.raises(WireFormatError, match="truncated"):
            decode_columns(b"RS")

    def test_bad_magic(self):
        frame = bytearray(self._frame())
        frame[:4] = b"NOPE"
        with pytest.raises(WireFormatError, match="magic"):
            decode_columns(bytes(frame))

    def test_bad_version(self):
        frame = bytearray(self._frame())
        struct.pack_into("<H", frame, 4, 99)
        with pytest.raises(WireFormatError, match="version"):
            decode_columns(bytes(frame))

    def test_implausible_header_length(self):
        frame = bytearray(self._frame())
        struct.pack_into("<I", frame, 6, 2**31)
        with pytest.raises(WireFormatError, match="implausible"):
            decode_columns(bytes(frame))

    def test_header_cut_short(self):
        frame = self._frame()
        with pytest.raises(WireFormatError, match="header"):
            decode_columns(frame[: wire._PRELUDE.size + 3])

    def test_corrupt_header_json(self):
        header = b"{not json"
        frame = wire._PRELUDE.pack(wire.MAGIC, wire.VERSION, len(header))
        with pytest.raises(WireFormatError, match="corrupt frame header"):
            decode_columns(frame + header)

    def test_truncated_payload(self):
        frame = self._frame()
        with pytest.raises(WireFormatError, match="truncated"):
            decode_columns(frame[:-8])

    def test_trailing_bytes(self):
        with pytest.raises(WireFormatError, match="trailing"):
            decode_columns(self._frame() + b"junk")

    def test_negative_count(self):
        header = json.dumps(
            {"columns": [{"name": "x", "dtype": "<f8", "count": -1}]}
        ).encode()
        frame = wire._PRELUDE.pack(wire.MAGIC, wire.VERSION, len(header))
        with pytest.raises(WireFormatError, match="negative"):
            decode_columns(frame + header)

    def test_corrupt_column_entry(self):
        header = json.dumps({"columns": [{"name": "x"}]}).encode()
        frame = wire._PRELUDE.pack(wire.MAGIC, wire.VERSION, len(header))
        with pytest.raises(WireFormatError, match="corrupt column"):
            decode_columns(frame + header)
