"""QueryService: the transport-independent request path."""

import threading

import numpy as np
import pytest

from repro.api import PointCloudDB
from repro.core.imprints import ImprintsManager
from repro.engine.catalog import CatalogError
from repro.engine.table import SchemaError
from repro.obs.context import ObsContext
from repro.obs.queries import QueryCancelled
from repro.serve import wire
from repro.serve.admission import AdmissionRejected
from repro.serve.quotas import QuotaExceeded, TenantBudget
from repro.serve.service import BadRequest, QueryService, ServiceConfig
from repro.serve.snapshot import SnapshotManager
from repro.sql.executor import SqlExecutionError
from tests import faults

N_POINTS = 5000
BBOX = [10.0, 10.0, 60.0, 60.0]


def make_db(context, seed=11):
    db = PointCloudDB(obs=context, threads=1)
    db.manager = ImprintsManager(threads=1, segment_rows=512)
    db.create_pointcloud("pts")
    rng = np.random.default_rng(seed)
    db.load_points(
        "pts",
        {
            "x": rng.uniform(0, 100, N_POINTS),
            "y": rng.uniform(0, 100, N_POINTS),
            "z": rng.uniform(0, 10, N_POINTS),
            "intensity": rng.integers(0, 255, N_POINTS).astype(np.int32),
        },
    )
    return db


@pytest.fixture
def context():
    return ObsContext.fresh(enabled=False)


@pytest.fixture
def cloud(context):
    db = make_db(context)
    return db, db.table("pts")


def service_for(context, db, config=None):
    manager = SnapshotManager(loader=lambda: db, obs=context)
    return QueryService(manager, config=config, obs=context)


class TestSpatialEndpoint:
    def test_results_match_direct_query(self, context, cloud):
        db, table = cloud
        service = service_for(context, db)
        response = service.handle("query", {"table": "pts", "bbox": BBOX})
        x = table.column("x").values
        y = table.column("y").values
        want = int(
            (
                (x >= BBOX[0])
                & (x <= BBOX[2])
                & (y >= BBOX[1])
                & (y <= BBOX[3])
            ).sum()
        )
        meta = response.payload["meta"]
        assert meta["n_results"] == want
        assert meta["n_returned"] == want
        assert meta["truncated"] is False
        assert meta["query_id"]
        assert response.payload["columns"] == ["x", "y", "z"]
        assert len(response.payload["rows"]) == want

    def test_column_selection(self, context, cloud):
        db, _ = cloud
        service = service_for(context, db)
        response = service.handle(
            "query",
            {"table": "pts", "bbox": BBOX, "columns": ["intensity"]},
        )
        assert response.payload["columns"] == ["intensity"]
        assert all(
            isinstance(row[0], int) for row in response.payload["rows"]
        )

    def test_limit_truncates(self, context, cloud):
        db, _ = cloud
        service = service_for(context, db)
        response = service.handle(
            "query", {"table": "pts", "bbox": BBOX, "limit": 5}
        )
        meta = response.payload["meta"]
        assert meta["n_returned"] == 5
        assert meta["truncated"] is True
        assert len(response.payload["rows"]) == 5

    def test_columnar_format_round_trips(self, context, cloud):
        db, table = cloud
        service = service_for(context, db)
        response = service.handle(
            "query",
            {
                "table": "pts",
                "bbox": BBOX,
                "format": "columnar",
                "columns": ["x", "intensity"],
            },
        )
        assert response.content_type == wire.CONTENT_TYPE
        assert "X-Repro-Meta" in response.headers
        columns = wire.decode_columns(response.encode())
        assert list(columns) == ["x", "intensity"]
        assert columns["x"].dtype == np.float64
        assert columns["intensity"].dtype.kind in "iu"
        assert (columns["x"] >= BBOX[0]).all()
        assert (columns["x"] <= BBOX[2]).all()

    def test_unknown_table_raises_catalog_error(self, context, cloud):
        db, _ = cloud
        with pytest.raises(CatalogError):
            service_for(context, db).handle(
                "query", {"table": "nope", "bbox": BBOX}
            )

    def test_unknown_column_raises_schema_error(self, context, cloud):
        db, _ = cloud
        with pytest.raises(SchemaError):
            service_for(context, db).handle(
                "query",
                {"table": "pts", "bbox": BBOX, "columns": ["nope"]},
            )

    @pytest.mark.parametrize(
        "payload,match",
        [
            ({"bbox": BBOX}, "table"),
            ({"table": "pts"}, "bbox"),
            ({"table": "pts", "bbox": [1, 2, 3]}, "bbox"),
            ({"table": "pts", "bbox": ["a", 0, 1, 1]}, "bad bbox"),
            ({"table": "pts", "bbox": BBOX, "z_range": [1]}, "z_range"),
            ({"table": "pts", "bbox": BBOX, "limit": "ten"}, "limit"),
            ({"table": "pts", "bbox": BBOX, "limit": -1}, "limit"),
            ({"table": "pts", "bbox": BBOX, "timeout_s": 0}, "timeout"),
            ({"table": "pts", "bbox": BBOX, "timeout_s": "x"}, "timeout"),
            ({"table": "pts", "bbox": BBOX, "columns": "x"}, "columns"),
        ],
    )
    def test_bad_requests(self, context, cloud, payload, match):
        db, _ = cloud
        with pytest.raises(BadRequest, match=match):
            service_for(context, db).handle("query", payload)

    def test_unknown_endpoint(self, context, cloud):
        db, _ = cloud
        with pytest.raises(BadRequest, match="endpoint"):
            service_for(context, db).handle("nope", {})


class TestSqlEndpoint:
    def test_rows_and_meta(self, context, cloud):
        db, _ = cloud
        service = service_for(context, db)
        response = service.handle(
            "sql", {"sql": "SELECT COUNT(*) FROM pts"}
        )
        payload = response.payload
        assert payload["rows"][0][0] == N_POINTS
        assert payload["meta"]["query_id"]
        assert payload["meta"]["profile"]

    def test_limit_truncates(self, context, cloud):
        db, _ = cloud
        service = service_for(context, db)
        response = service.handle(
            "sql", {"sql": "SELECT x FROM pts", "limit": 3}
        )
        assert len(response.payload["rows"]) == 3
        assert response.payload["meta"]["truncated"] is True

    def test_columnar_format(self, context, cloud):
        db, _ = cloud
        service = service_for(context, db)
        response = service.handle(
            "sql",
            {"sql": "SELECT x, y FROM pts", "format": "columnar"},
        )
        columns = wire.decode_columns(response.encode())
        assert list(columns) == ["x", "y"]
        assert columns["x"].shape == (N_POINTS,)

    def test_execution_error_propagates_typed(self, context, cloud):
        db, _ = cloud
        with pytest.raises(SqlExecutionError):
            service_for(context, db).handle(
                "sql", {"sql": "SELECT x FROM missing"}
            )

    def test_missing_sql_is_bad_request(self, context, cloud):
        db, _ = cloud
        with pytest.raises(BadRequest, match="sql"):
            service_for(context, db).handle("sql", {"sql": "   "})


class TestDeadlines:
    def test_timeout_ceiling_applies_without_request_timeout(self, context):
        db = make_db(context)
        service = service_for(
            context, db, ServiceConfig(max_timeout_s=2.0)
        )
        assert service._resolve_timeout({}) == 2.0
        assert service._resolve_timeout({"timeout_s": 10}) == 2.0
        assert service._resolve_timeout({"timeout_s": 0.5}) == 0.5

    def test_cancellation_contract(self, context, cloud):
        """Satellite: a timed-out request raises QueryCancelled carrying
        query_id/elapsed_s, the registry retires the record as
        ``cancelled``, and ``query.cancelled`` increments exactly once."""
        from repro.core.imprints import segments as segments_mod

        db, _ = cloud
        service = service_for(context, db)
        before = context.registry.counter("query.cancelled").value

        def slow_probe(_segment):
            import time

            time.sleep(0.02)

        segments_mod.probe_hook = slow_probe
        try:
            with pytest.raises(QueryCancelled) as info:
                service.handle(
                    "query",
                    {"table": "pts", "bbox": BBOX, "timeout_s": 0.01},
                )
        finally:
            segments_mod.probe_hook = None
        exc = info.value
        assert exc.query_id
        assert exc.elapsed_s >= 0.01
        assert exc.timeout_s == 0.01
        assert (
            context.registry.counter("query.cancelled").value == before + 1
        )
        records = [
            r
            for r in context.queries.recent()
            if r["query_id"] == exc.query_id
        ]
        assert len(records) == 1
        assert records[0]["status"] == "cancelled"


class TestQuotas:
    def test_request_crossing_budget_completes_next_is_refused(
        self, context, cloud
    ):
        db, _ = cloud
        config = ServiceConfig(
            quotas={"alice": TenantBudget(rows_touched=1)}
        )
        service = service_for(context, db, config)
        # First request completes (the crossing request always does).
        service.handle(
            "query", {"table": "pts", "bbox": BBOX}, tenant="alice"
        )
        with pytest.raises(QuotaExceeded) as info:
            service.handle(
                "query", {"table": "pts", "bbox": BBOX}, tenant="alice"
            )
        assert info.value.report["budget"]["rows_touched"]["exhausted"]
        # Other tenants are unaffected.
        service.handle(
            "query", {"table": "pts", "bbox": BBOX}, tenant="bob"
        )

    def test_failed_requests_are_charged(self, context, cloud):
        db, _ = cloud
        service = service_for(context, db)
        with pytest.raises(CatalogError):
            service.handle(
                "query", {"table": "nope", "bbox": BBOX}, tenant="t"
            )
        # The failed request still consumed CPU; the ledger saw it.
        report = service.quotas.report("t")
        assert report["budget"]["cpu_seconds"]["used"] > 0

    def test_exhausted_tenant_never_takes_a_slot(self, context, cloud):
        db, _ = cloud
        config = ServiceConfig(
            quotas={"t": TenantBudget(cpu_seconds=0.0)}
        )
        service = service_for(context, db, config)
        with faults.record_crash_points([]) as events:
            with pytest.raises(QuotaExceeded):
                service.handle(
                    "query", {"table": "pts", "bbox": BBOX}, tenant="t"
                )
        # Refused before admission: the admitted crash point never fired.
        assert "serve.request.admitted" not in events


class TestObservability:
    def test_traceparent_adopted_and_echoed(self, context, cloud):
        db, _ = cloud
        service = service_for(context, db)
        inbound = "00-000102030405060708090a0b0c0d0e0f-0001020304050607-01"
        response = service.handle(
            "query",
            {"table": "pts", "bbox": BBOX},
            traceparent=inbound,
        )
        echoed = response.headers["traceparent"]
        assert echoed.split("-")[1] == inbound.split("-")[1]

    def test_request_metrics(self, context, cloud):
        db, _ = cloud
        service = service_for(context, db)
        service.handle("query", {"table": "pts", "bbox": BBOX})
        assert context.registry.counter("serve.requests").value == 1
        assert context.registry.counter("serve.admitted").value == 1
        assert (
            context.registry.histogram("serve.request_seconds").count == 1
        )

    def test_health_report_shape(self, context, cloud):
        db, _ = cloud
        service = service_for(context, db)
        report = service.health_report()
        assert report["tables"] == {"pts": N_POINTS}
        assert report["admission"]["inflight"] == 0
        assert report["pinned_readers"] == 0

    def test_health_report_raises_when_store_unhealthy(self, context):
        db = make_db(context)
        db.health["pts"] = {"ok": False, "error": "checksum mismatch"}
        service = service_for(context, db)
        with pytest.raises(RuntimeError, match="unhealthy"):
            service.health_report()


class TestDrain:
    def test_drain_rejects_new_requests(self, context, cloud):
        db, _ = cloud
        service = service_for(context, db)
        assert service.drain() is True
        with pytest.raises(AdmissionRejected) as info:
            service.handle("query", {"table": "pts", "bbox": BBOX})
        assert info.value.reason == "draining"

    def test_drain_waits_for_inflight(self, context, cloud):
        db, _ = cloud
        service = service_for(context, db)
        release = threading.Event()
        done = []
        with faults.stall_at("serve.request.executed", release) as state:
            thread = threading.Thread(
                target=lambda: done.append(
                    service.handle(
                        "query", {"table": "pts", "bbox": BBOX}
                    )
                ),
                daemon=True,
            )
            thread.start()
            for _ in range(400):
                if state["stalled"]:
                    break
                thread.join(timeout=0.005)
            assert state["stalled"] == 1
            # In-flight request: a bounded drain times out...
            assert service.drain(timeout_s=0.05) is False
            release.set()
            thread.join(timeout=10)
        # ...and succeeds once the request finishes.
        assert service.admission.wait_drained(timeout_s=5) is True
        assert done and done[0].payload["meta"]["n_results"] > 0
