"""Unit and property tests for the segmented imprints index.

Covers the three claims the segmentation makes: exact queries (identical
to a scan, parallel or not), zone-map skip semantics, and incremental
appends (only new segments get built — no more O(n) rebuilds).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.imprints import ImprintsManager, SegmentedImprints
from repro.core.imprints.persist import save_segmented, load_segmented
from repro.engine.column import Column
from repro.engine.select import range_select
from repro.engine.table import Table


def make_column(values, dtype=np.float64):
    return Column("v", np.dtype(dtype), data=np.asarray(values, dtype=dtype))


class TestBuild:
    def test_empty_column_raises(self):
        with pytest.raises(ValueError):
            SegmentedImprints(Column("v", "float64"))

    def test_segment_count(self):
        imp = SegmentedImprints(make_column(np.arange(10_000)), segment_rows=4096)
        assert imp.n_segments == 3  # 4096 + 4096 + 1808
        assert imp.segments[-1].stop == 10_000

    def test_segments_aligned_to_cachelines(self):
        # segment_rows is rounded up to a whole number of cache lines.
        imp = SegmentedImprints(make_column(np.arange(1000)), segment_rows=100)
        assert imp.segment_rows % imp.vpc == 0
        for seg in imp.segments[:-1]:
            assert (seg.stop - seg.start) == imp.segment_rows

    def test_zone_maps(self):
        imp = SegmentedImprints(make_column(np.arange(8192)), segment_rows=4096)
        assert imp.segments[0].zmin == 0 and imp.segments[0].zmax == 4095
        assert imp.segments[1].zmin == 4096 and imp.segments[1].zmax == 8191

    def test_parallel_build_equals_serial(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(size=50_000)
        serial = SegmentedImprints(
            make_column(vals), segment_rows=4096, threads=1
        )
        fanned = SegmentedImprints(
            make_column(vals), segment_rows=4096, threads=8
        )
        assert serial.n_segments == fanned.n_segments
        for a, b in zip(serial.segments, fanned.segments):
            np.testing.assert_array_equal(a.scheme.borders, b.scheme.borders)
            np.testing.assert_array_equal(a.cdict.vectors, b.cdict.vectors)

    def test_stats_aggregate(self):
        imp = SegmentedImprints(make_column(np.arange(10_000)), segment_rows=4096)
        s = imp.stats()
        assert s.n_rows == 10_000
        assert s.column_bytes == 80_000
        assert s.index_bytes == imp.nbytes
        assert s.n_lines == sum(seg.n_lines for seg in imp.segments)


class TestQuery:
    @pytest.mark.parametrize("threads", [1, 2, 8])
    def test_matches_scan_on_shuffled(self, threads):
        rng = np.random.default_rng(9)
        vals = np.arange(20_000, dtype=np.float64)
        rng.shuffle(vals)
        col = make_column(vals)
        imp = SegmentedImprints(col, segment_rows=2048)
        np.testing.assert_array_equal(
            imp.query(1000, 2000, threads=threads),
            range_select(col, 1000, 2000),
        )

    def test_exclusive_bounds(self):
        imp = SegmentedImprints(make_column(np.arange(100)))
        np.testing.assert_array_equal(
            imp.query(10, 12, lo_inclusive=False, hi_inclusive=False), [11]
        )

    def test_half_open(self):
        imp = SegmentedImprints(make_column(np.arange(10_000)), segment_rows=2048)
        np.testing.assert_array_equal(imp.query(None, 3), [0, 1, 2, 3])
        np.testing.assert_array_equal(
            imp.query(9996, None), [9996, 9997, 9998, 9999]
        )

    def test_nan_values_probe_not_skip(self):
        vals = np.arange(200, dtype=np.float64)
        vals[17] = np.nan
        col = make_column(vals)
        imp = SegmentedImprints(col, segment_rows=64)
        np.testing.assert_array_equal(
            imp.query(10, 20), range_select(col, 10, 20)
        )

    def test_candidates_superset_of_exact(self):
        rng = np.random.default_rng(4)
        col = make_column(rng.normal(size=9000))
        imp = SegmentedImprints(col, segment_rows=1024)
        exact = imp.query(-0.5, 0.5)
        cands = imp.candidate_rows(-0.5, 0.5)
        assert np.isin(exact, cands).all()


class TestZoneMapSkips:
    def test_disjoint_segments_skipped(self):
        # Sorted data: a narrow range hits exactly one segment.
        imp = SegmentedImprints(make_column(np.arange(40_960)), segment_rows=4096)

        class Counters:
            n_segments_skipped = 0
            n_segments_probed = 0

        c = Counters()
        imp.query(10_000, 10_100, stats=c)
        assert c.n_segments_probed == 1
        assert c.n_segments_skipped == imp.n_segments - 1

    def test_covering_range_skips_all_probes(self):
        imp = SegmentedImprints(make_column(np.arange(40_960)), segment_rows=4096)

        class Counters:
            n_segments_skipped = 0
            n_segments_probed = 0

        c = Counters()
        out = imp.query(None, None, stats=c)
        assert c.n_segments_probed == 0
        assert c.n_segments_skipped == imp.n_segments
        assert out.shape[0] == 40_960

    def test_scanned_fraction_counts_probes_only(self):
        imp = SegmentedImprints(make_column(np.arange(40_960)), segment_rows=4096)
        assert imp.scanned_fraction(0, 40_960) == 0.0  # all wholesale accepts
        assert 0.0 < imp.scanned_fraction(10_000, 10_100) < 0.05


class TestIncrementalAppend:
    def test_append_builds_only_new_segments(self):
        t = Table("pts", [("x", "float64")])
        rng = np.random.default_rng(0)
        t.append_columns({"x": rng.uniform(0, 100, 100_000)})
        mgr = ImprintsManager(segment_rows=8192)
        mgr.range_select(t, "x", 10, 20)
        assert mgr.builds == 1
        first_builds = mgr.segment_builds
        assert first_builds == mgr.get(t, "x").n_segments

        t.append_columns({"x": rng.uniform(0, 100, 9000)})
        out = mgr.range_select(t, "x", 10, 20)
        assert mgr.builds == 2  # one column-level refresh event...
        # ... but only the trailing partial + new segments were built:
        # 100_000 = 12 full x 8192 + partial 1696; +9000 rows -> rebuild the
        # partial and add one new segment = 2 segment builds, not 14.
        assert mgr.segment_builds - first_builds == 2
        np.testing.assert_array_equal(out, range_select(t.column("x"), 10, 20))

    def test_append_on_segment_boundary_keeps_old_segments(self):
        t = Table("pts", [("x", "float64")])
        t.append_columns({"x": np.arange(8192, dtype=np.float64)})
        mgr = ImprintsManager(segment_rows=8192)
        mgr.range_select(t, "x", 0, 10)
        before = [id(seg) for seg in mgr.get(t, "x").segments]
        t.append_columns({"x": np.arange(100, dtype=np.float64)})
        mgr.range_select(t, "x", 0, 10)
        after = [id(seg) for seg in mgr.get(t, "x").segments]
        assert after[: len(before)] == before  # immutable prefix untouched
        assert len(after) == len(before) + 1

    def test_extend_noop_when_fresh(self):
        col = make_column(np.arange(1000))
        imp = SegmentedImprints(col)
        assert imp.extend() == 0


class TestSegmentedPersistence:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(7)
        col = make_column(rng.uniform(0, 1000, 30_000))
        imp = SegmentedImprints(col, segment_rows=4096)
        path = tmp_path / "x.imprint"
        save_segmented(imp, "tbl", "x", path)
        back = load_segmented(col, path)
        assert back.n_segments == imp.n_segments
        for lo, hi in [(0, 10), (500, 600), (990, 1000), (-5, 2000)]:
            np.testing.assert_array_equal(
                back.query(lo, hi), imp.query(lo, hi)
            )

    def test_manager_restores_dotted_table_names(self, tmp_path):
        # The regression the header-key fix exists for: a table name with
        # dots cannot be recovered from "<table>.<column>.imprint".
        t = Table("ahn2.tile.042", [("x", "float64")])
        rng = np.random.default_rng(8)
        t.append_columns({"x": rng.uniform(0, 100, 5000)})
        mgr = ImprintsManager()
        want = mgr.range_select(t, "x", 10, 20)
        mgr.save(tmp_path / "imp")

        mgr2 = ImprintsManager()
        assert mgr2.load({t.name: t}, tmp_path / "imp") == 1
        np.testing.assert_array_equal(mgr2.range_select(t, "x", 10, 20), want)
        assert mgr2.builds == 0


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.floats(
            min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
        ),
        min_size=1,
        max_size=600,
    ),
    lo=st.floats(-1e9, 1e9),
    span=st.floats(0, 1e9),
    segment_rows=st.sampled_from([8, 64, 1024]),
    threads=st.sampled_from([1, 4]),
)
def test_segmented_query_equals_scan(values, lo, span, segment_rows, threads):
    """THE correctness invariant, segmented edition: segmented imprint
    select == full-scan select for arbitrary data, segment sizes and
    thread counts."""
    col = make_column(values)
    imp = SegmentedImprints(col, segment_rows=segment_rows)
    hi = lo + span
    np.testing.assert_array_equal(
        imp.query(lo, hi, threads=threads), range_select(col, lo, hi)
    )
