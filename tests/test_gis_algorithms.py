"""Unit and property tests for repro.gis.algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gis.algorithms import (
    dist_points_to_geometry,
    dist_points_to_linestring,
    dist_points_to_polygon,
    dist_points_to_segment,
    linestrings_intersect,
    points_in_polygon,
    points_in_ring,
    ring_intersects_segment,
    segments_intersect,
)
from repro.gis.geometry import LineString, MultiLineString, MultiPolygon, Point, Polygon


SQUARE = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
DONUT = Polygon(
    [(0, 0), (10, 0), (10, 10), (0, 10)],
    holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
)


class TestPointsInRing:
    def test_inside_outside(self):
        xs = np.array([5.0, 15.0, -1.0])
        ys = np.array([5.0, 5.0, 5.0])
        np.testing.assert_array_equal(
            points_in_ring(xs, ys, SQUARE.shell), [True, False, False]
        )

    def test_boundary_counts_inside(self):
        xs = np.array([0.0, 10.0, 5.0, 0.0])
        ys = np.array([5.0, 10.0, 0.0, 0.0])
        assert points_in_ring(xs, ys, SQUARE.shell).all()

    def test_vertex_ray_degeneracy(self):
        # Ray through a polygon vertex must not double-count crossings.
        tri = Polygon([(0, 0), (4, 2), (0, 4)])
        xs = np.array([1.0, 5.0, -1.0])
        ys = np.array([2.0, 2.0, 2.0])
        got = points_in_ring(xs, ys, tri.shell)
        np.testing.assert_array_equal(got, [True, False, False])

    def test_concave_polygon(self):
        # A "U" shape: the notch is outside.
        u_shape = Polygon(
            [(0, 0), (10, 0), (10, 10), (7, 10), (7, 3), (3, 3), (3, 10), (0, 10)]
        )
        xs = np.array([5.0, 1.5, 8.5])
        ys = np.array([8.0, 8.0, 8.0])
        np.testing.assert_array_equal(
            points_in_ring(xs, ys, u_shape.shell), [False, True, True]
        )


class TestPointsInPolygon:
    def test_hole_excluded(self):
        xs = np.array([5.0, 2.0])
        ys = np.array([5.0, 2.0])
        np.testing.assert_array_equal(
            points_in_polygon(xs, ys, DONUT), [False, True]
        )

    def test_hole_boundary_is_inside(self):
        # OGC: the polygon is a closed set; hole edges belong to it.
        assert points_in_polygon(np.array([4.0]), np.array([5.0]), DONUT)[0]

    def test_multipolygon_union(self):
        mp = MultiPolygon(
            [
                Polygon([(0, 0), (1, 0), (1, 1), (0, 1)]),
                Polygon([(5, 5), (6, 5), (6, 6), (5, 6)]),
            ]
        )
        from repro.gis.algorithms import points_in_multipolygon

        xs = np.array([0.5, 5.5, 3.0])
        ys = np.array([0.5, 5.5, 3.0])
        np.testing.assert_array_equal(
            points_in_multipolygon(xs, ys, mp), [True, True, False]
        )


class TestDistances:
    def test_point_to_segment(self):
        d = dist_points_to_segment(
            np.array([0.0, 5.0, 10.0]), np.array([3.0, 3.0, 4.0]), 0, 0, 10, 0
        )
        np.testing.assert_allclose(d, [3.0, 3.0, 4.0])

    def test_point_to_degenerate_segment(self):
        d = dist_points_to_segment(np.array([3.0]), np.array([4.0]), 0, 0, 0, 0)
        np.testing.assert_allclose(d, [5.0])

    def test_point_to_linestring(self):
        line = LineString([(0, 0), (10, 0), (10, 10)])
        d = dist_points_to_linestring(np.array([5.0, 12.0]), np.array([2.0, 5.0]), line)
        np.testing.assert_allclose(d, [2.0, 2.0])

    def test_point_to_polygon_interior_zero(self):
        d = dist_points_to_polygon(np.array([5.0, 12.0]), np.array([5.0, 5.0]), SQUARE)
        np.testing.assert_allclose(d, [0.0, 2.0])

    def test_point_in_hole_positive_distance(self):
        d = dist_points_to_polygon(np.array([5.0]), np.array([5.0]), DONUT)
        np.testing.assert_allclose(d, [1.0])

    def test_dispatch_point(self):
        d = dist_points_to_geometry(np.array([3.0]), np.array([4.0]), Point(0, 0))
        np.testing.assert_allclose(d, [5.0])

    def test_dispatch_multilinestring(self):
        ml = MultiLineString([[(0, 0), (10, 0)], [(0, 10), (10, 10)]])
        d = dist_points_to_geometry(np.array([5.0]), np.array([4.0]), ml)
        np.testing.assert_allclose(d, [4.0])

    def test_dispatch_unsupported(self):
        with pytest.raises(TypeError):
            dist_points_to_geometry(np.array([0.0]), np.array([0.0]), object())


class TestSegmentIntersection:
    def test_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_touching_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_parallel(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_ring_intersects_segment(self):
        assert ring_intersects_segment(SQUARE.shell, (-1, 5), (11, 5))
        assert not ring_intersects_segment(SQUARE.shell, (2, 2), (3, 3))

    def test_linestrings_intersect(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        c = LineString([(20, 20), (30, 30)])
        assert linestrings_intersect(a, b)
        assert not linestrings_intersect(a, c)


@st.composite
def convex_polygon(draw):
    """Random convex polygon: evenly spaced angles with a random phase
    (guarantees >= 3 distinct vertices for any draw)."""
    n = draw(st.integers(3, 10))
    cx = draw(st.floats(-50, 50))
    cy = draw(st.floats(-50, 50))
    radius = draw(st.floats(1, 30))
    phase = draw(st.floats(0, 2 * np.pi))
    angles = (np.linspace(0, 2 * np.pi, n, endpoint=False) + phase) % (
        2 * np.pi
    )
    angles.sort()
    xs = cx + radius * np.cos(angles)
    ys = cy + radius * np.sin(angles)
    return Polygon(np.column_stack([xs, ys]))


@settings(max_examples=60, deadline=None)
@given(
    poly=convex_polygon(),
    px=st.floats(-100, 100),
    py=st.floats(-100, 100),
)
def test_point_in_convex_polygon_matches_halfplane_test(poly, px, py):
    """Ray casting must agree with the half-plane test on convex polygons."""
    got = points_in_polygon(np.array([px]), np.array([py]), poly)[0]
    ring = poly.shell
    signs = []
    for i in range(ring.shape[0] - 1):
        ax, ay = ring[i]
        bx, by = ring[i + 1]
        signs.append((bx - ax) * (py - ay) - (by - ay) * (px - ax))
    signs = np.array(signs)
    tol = 1e-9 * max(1.0, np.abs(ring).max()) ** 2
    expected = (signs >= -tol).all() or (signs <= tol).all()
    if np.abs(signs).min() > tol:  # skip near-boundary numerical knife edges
        assert got == expected


@settings(max_examples=60, deadline=None)
@given(
    px=st.floats(-20, 20),
    py=st.floats(-20, 20),
    ax=st.floats(-20, 20),
    ay=st.floats(-20, 20),
    bx=st.floats(-20, 20),
    by=st.floats(-20, 20),
)
def test_segment_distance_bounds(px, py, ax, ay, bx, by):
    """Distance to a segment is between distance-to-nearer-endpoint and 0,
    and never exceeds either endpoint distance."""
    d = dist_points_to_segment(np.array([px]), np.array([py]), ax, ay, bx, by)[0]
    d_a = np.hypot(px - ax, py - ay)
    d_b = np.hypot(px - bx, py - by)
    assert d <= min(d_a, d_b) + 1e-9
    assert d >= 0
