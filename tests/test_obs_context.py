"""Scoped observability contexts and cross-process trace propagation."""

import numpy as np
import pytest

from repro import Box, PointCloudDB
from repro.obs.context import (
    ObsContext,
    current_context,
    default_context,
    format_traceparent,
    parse_traceparent,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.queries import QueryRegistry, get_queries
from repro.obs.resources import ResourceUsage
from repro.obs.trace import Tracer, get_tracer


class TestTraceparent:
    def test_format_round_trips(self):
        token = format_traceparent(0xABCDEF, 0x1234)
        remote = parse_traceparent(token)
        assert remote.trace_id == 0xABCDEF
        assert remote.span_id == 0x1234

    def test_format_shape(self):
        token = format_traceparent(1, 2)
        version, trace_hex, span_hex, flags = token.split("-")
        assert version == "00"
        assert len(trace_hex) == 32
        assert len(span_hex) == 16
        assert flags == "01"

    @pytest.mark.parametrize(
        "token",
        [
            "not-a-token",
            "00-abc-def",  # too few parts
            "01-" + "a" * 32 + "-" + "b" * 16 + "-01",  # unknown version
            "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace id
            "00-" + "a" * 32 + "-" + "b" * 15 + "-01",  # short span id
            "00-" + "g" * 32 + "-" + "b" * 16 + "-01",  # non-hex
            "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # zero trace id
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # zero span id
        ],
    )
    def test_malformed_tokens_rejected(self, token):
        with pytest.raises(ValueError):
            parse_traceparent(token)


class TestResolution:
    def test_without_activation_getters_return_singletons(self):
        assert get_registry() is default_context().registry
        assert get_tracer() is default_context().tracer
        assert get_queries() is default_context().queries

    def test_activate_redirects_getters(self):
        context = ObsContext.fresh(enabled=False)
        with context.activate():
            assert get_registry() is context.registry
            assert get_tracer() is context.tracer
            assert get_queries() is context.queries
            assert current_context() is context
        assert get_registry() is not context.registry
        assert current_context() is default_context()

    def test_activations_nest_and_unwind(self):
        outer = ObsContext.fresh(enabled=False)
        inner = ObsContext.fresh(enabled=False)
        with outer.activate():
            with inner.activate():
                assert current_context() is inner
            assert current_context() is outer

    def test_contexts_do_not_share_metrics(self):
        a = ObsContext.fresh(enabled=False)
        b = ObsContext.fresh(enabled=False)
        with a.activate():
            get_registry().counter("sql.queries").inc(3)
        with b.activate():
            assert get_registry().counter("sql.queries").value == 0
        assert a.registry.counter("sql.queries").value == 3

    def test_default_context_is_stable(self):
        assert default_context() is default_context()


class TestAdoption:
    def test_fresh_with_traceparent_joins_the_trace(self):
        token = format_traceparent(0xFEED, 0xBEEF)
        context = ObsContext.fresh(traceparent=token, enabled=True)
        with context.tracer.span("child.root") as span:
            assert span.trace_id == 0xFEED
            assert span.parent_id == 0xBEEF

    def test_child_spans_stay_in_the_adopted_trace(self):
        context = ObsContext.fresh(
            traceparent=format_traceparent(7, 9), enabled=True
        )
        with context.tracer.span("root"):
            with context.tracer.span("leaf") as leaf:
                assert leaf.trace_id == 7

    def test_traceparent_prefers_the_open_span(self):
        context = ObsContext.fresh(enabled=True)
        with context.tracer.span("q") as span:
            token = context.traceparent()
        assert token is not None
        remote = parse_traceparent(token)
        assert remote.trace_id == span.trace_id
        assert remote.span_id == span.span_id

    def test_traceparent_repropagates_adopted_token(self):
        token = format_traceparent(11, 13)
        context = ObsContext.fresh(traceparent=token, enabled=False)
        assert context.traceparent() == token

    def test_traceparent_none_without_any_trace(self):
        assert ObsContext.fresh(enabled=False).traceparent() is None

    def test_round_trip_across_contexts(self):
        """Parent context → token → child context: one stitched trace."""
        parent = ObsContext.fresh(enabled=True)
        with parent.tracer.span("scatter") as root:
            token = parent.traceparent()
        child = ObsContext.fresh(traceparent=token, enabled=True)
        with child.tracer.span("gather") as remote_span:
            pass
        assert remote_span.trace_id == root.trace_id
        assert remote_span.parent_id == root.span_id


class TestUsageAccumulation:
    def test_absorb_usage_sums_fields(self):
        context = ObsContext.fresh(enabled=False)
        context.absorb_usage(
            ResourceUsage(
                cpu_seconds=0.5,
                rows_touched=10,
                bytes_touched=80,
                encoded_bytes=8,
                materialized_bytes=64,
            )
        )
        context.absorb_usage(ResourceUsage(cpu_seconds=0.25, rows_touched=5))
        assert context.resources.cpu_seconds == pytest.approx(0.75)
        assert context.resources.rows_touched == 15
        assert context.resources.encoded_bytes == 8
        assert context.resources.materialized_bytes == 64

    def test_peak_alloc_takes_the_max(self):
        context = ObsContext.fresh(enabled=False)
        context.absorb_usage(ResourceUsage(peak_alloc_bytes=100))
        context.absorb_usage(ResourceUsage(peak_alloc_bytes=50))
        context.absorb_usage(ResourceUsage())  # None leaves the max alone
        assert context.resources.peak_alloc_bytes == 100

    def test_queries_fold_usage_into_the_context(self):
        context = ObsContext.fresh(enabled=False)
        db = PointCloudDB(obs=context)
        db.create_pointcloud("pts")
        rng = np.random.default_rng(5)
        db.load_points(
            "pts",
            {
                "x": rng.uniform(0, 100, 5000),
                "y": rng.uniform(0, 100, 5000),
                "z": rng.uniform(0, 10, 5000),
            },
        )
        db.spatial_select("pts", Box(10, 10, 80, 80))
        assert context.resources.cpu_seconds > 0.0
        assert context.resources.rows_touched > 0


class TestFlight:
    def test_custom_context_gets_its_own_recorder(self):
        context = ObsContext.fresh(enabled=False)
        recorder = context.flight()
        assert isinstance(recorder, FlightRecorder)
        assert recorder.registry is context.registry
        assert recorder.queries is context.queries
        assert context.flight() is recorder  # cached

    def test_default_context_hands_back_the_global_recorder(self):
        from repro.obs.flight import get_flight_recorder

        assert default_context().flight() is get_flight_recorder()


class TestDatabaseIsolation:
    def _make_db(self, context):
        db = PointCloudDB(obs=context)
        db.create_pointcloud("pts")
        rng = np.random.default_rng(3)
        db.load_points(
            "pts",
            {
                "x": rng.uniform(0, 100, 4000),
                "y": rng.uniform(0, 100, 4000),
                "z": rng.uniform(0, 10, 4000),
            },
        )
        return db

    def test_two_databases_observe_independently(self):
        ctx_a = ObsContext.fresh(enabled=False)
        ctx_b = ObsContext.fresh(enabled=False)
        db_a = self._make_db(ctx_a)
        self._make_db(ctx_b)
        db_a.spatial_select("pts", Box(10, 10, 60, 60))
        hist_a = ctx_a.registry.histogram("query.total_seconds")
        hist_b = ctx_b.registry.histogram("query.total_seconds")
        assert hist_a.snapshot()["count"] == 1
        assert hist_b.snapshot()["count"] == 0

    def test_db_traces_stay_in_their_context(self):
        context = ObsContext.fresh(enabled=True)
        db = self._make_db(context)
        global_tracer = default_context().tracer
        before = len(global_tracer.spans())
        db.spatial_select("pts", Box(10, 10, 60, 60))
        assert any(span.name == "query.spatial" for span in db.trace_spans())
        # Nothing leaked into the process-wide tracer.
        assert len(global_tracer.spans()) == before

    def test_active_queries_view(self):
        context = ObsContext.fresh(enabled=False)
        db = self._make_db(context)
        db.spatial_select("pts", Box(10, 10, 60, 60))
        snapshot = db.active_queries()
        assert snapshot["active"] == []
        assert snapshot["recent"][0]["kind"] == "spatial"
        assert snapshot["recent"][0]["status"] == "finished"
