"""Tests for the RD New <-> WGS84 coordinate transform chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gis.crs import (
    BESSEL_1841,
    WGS84,
    bessel_to_rd,
    rd_to_bessel,
    rd_to_wgs84,
    wgs84_to_rd,
)


class TestProjection:
    def test_false_origin(self):
        """The projection centre maps exactly to the false origin."""
        lat0 = 52.0 + 9.0 / 60 + 22.178 / 3600
        lon0 = 5.0 + 23.0 / 60 + 15.500 / 3600
        x, y = bessel_to_rd(lat0, lon0)
        assert x == pytest.approx(155000.0, abs=1e-6)
        assert y == pytest.approx(463000.0, abs=1e-6)

    def test_projection_round_trip_exact(self):
        """Stereographic forward/inverse is numerically exact."""
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 290000, 500)
        y = rng.uniform(290000, 630000, 500)
        lat, lon = rd_to_bessel(x, y)
        x2, y2 = bessel_to_rd(lat, lon)
        np.testing.assert_allclose(x2, x, atol=1e-6)
        np.testing.assert_allclose(y2, y, atol=1e-6)

    def test_north_is_up(self):
        lat_south, _ = rd_to_bessel(155000.0, 300000.0)
        lat_north, _ = rd_to_bessel(155000.0, 600000.0)
        assert lat_north > lat_south

    def test_east_is_right(self):
        _, lon_west = rd_to_bessel(20000.0, 463000.0)
        _, lon_east = rd_to_bessel(280000.0, 463000.0)
        assert lon_east > lon_west

    def test_scale_near_unity_at_centre(self):
        """1 km east of the centre must be ~1000 m in RD (k0 = 0.9999079)."""
        lat, lon = rd_to_bessel(155000.0, 463000.0)
        lat2, lon2 = rd_to_bessel(156000.0, 463000.0)
        # Geodesic distance on the conformal sphere approximates 1 km/k0.
        mean_lat = np.deg2rad(lat)
        dlon = np.deg2rad(lon2 - lon)
        approx_m = (
            BESSEL_1841.a * np.cos(mean_lat) * dlon
        )
        assert approx_m == pytest.approx(1000.0, rel=2e-3)


class TestDatumChain:
    def test_full_round_trip_sub_metre(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(10000, 280000, 800)
        y = rng.uniform(300000, 620000, 800)
        lat, lon = rd_to_wgs84(x, y)
        x2, y2 = wgs84_to_rd(lat, lon)
        # The h=0 asymmetry across datums costs ~0.15 m worst case.
        assert np.abs(x2 - x).max() < 0.5
        assert np.abs(y2 - y).max() < 0.5

    def test_datum_shift_magnitude(self):
        """RD-datum and WGS84 coordinates differ by roughly 50-120 m in
        the Netherlands — the famous 'why is my GPS track in the canal'
        offset."""
        lat_b, lon_b = rd_to_bessel(155000.0, 463000.0)
        lat_w, lon_w = rd_to_wgs84(155000.0, 463000.0)
        dlat_m = abs(lat_w - lat_b) * 111_000
        dlon_m = abs(lon_w - lon_b) * 68_000
        shift = np.hypot(dlat_m, dlon_m)
        assert 30 < shift < 150

    def test_amsterdam_landmark(self):
        """Dam square (RD ~121400, 487200) lands in central Amsterdam."""
        lat, lon = rd_to_wgs84(121400.0, 487200.0)
        assert lat == pytest.approx(52.372, abs=0.005)
        assert lon == pytest.approx(4.894, abs=0.005)

    def test_netherlands_bounds(self):
        """The RD domain maps into the Dutch WGS84 bounding box."""
        rng = np.random.default_rng(3)
        x = rng.uniform(10000, 280000, 200)
        y = rng.uniform(300000, 620000, 200)
        lat, lon = rd_to_wgs84(x, y)
        assert (lat > 50.0).all() and (lat < 54.0).all()
        assert (lon > 2.5).all() and (lon < 8.0).all()

    def test_scalar_inputs(self):
        lat, lon = rd_to_wgs84(155000.0, 463000.0)
        assert np.isscalar(float(lat)) and 52 < lat < 53


@settings(max_examples=50, deadline=None)
@given(
    x=st.floats(10000, 280000),
    y=st.floats(300000, 620000),
)
def test_round_trip_property(x, y):
    lat, lon = rd_to_wgs84(x, y)
    x2, y2 = wgs84_to_rd(lat, lon)
    assert abs(float(x2) - x) < 0.5
    assert abs(float(y2) - y) < 0.5
