"""Tests for the 3-D (z-range) extension of SpatialSelect."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import SpatialSelect
from repro.engine.table import Table
from repro.gis.envelope import Box
from repro.gis.geometry import Polygon


def make_cloud(n=10_000, seed=0):
    rng = np.random.default_rng(seed)
    table = Table("pts", [("x", "float64"), ("y", "float64"), ("z", "float64")])
    table.append_columns(
        {
            "x": rng.uniform(0, 100, n),
            "y": rng.uniform(0, 100, n),
            "z": rng.uniform(-10, 50, n),
        }
    )
    return table


@pytest.fixture(scope="module")
def cloud():
    return make_cloud()


@pytest.fixture(scope="module")
def select(cloud):
    return SpatialSelect(cloud)


def reference(cloud, box, zmin, zmax):
    xs = cloud.column("x").values
    ys = cloud.column("y").values
    zs = cloud.column("z").values
    return np.flatnonzero(
        (xs >= box.xmin)
        & (xs <= box.xmax)
        & (ys >= box.ymin)
        & (ys <= box.ymax)
        & (zs >= zmin)
        & (zs <= zmax)
    )


class TestZRange:
    def test_3d_box_matches_reference(self, cloud, select):
        box = Box(20, 20, 60, 70)
        got = select.query(box, z_range=(0.0, 10.0))
        np.testing.assert_array_equal(got.oids, reference(cloud, box, 0, 10))

    def test_zrange_with_polygon(self, cloud, select):
        poly = Polygon([(10, 10), (80, 20), (50, 90)])
        got = select.query(poly, z_range=(5.0, 25.0))
        scan = select.query_scan(poly)
        zs = cloud.column("z").values
        want = scan[(zs[scan] >= 5.0) & (zs[scan] <= 25.0)]
        np.testing.assert_array_equal(np.sort(got.oids), np.sort(want))

    def test_zrange_without_imprints_matches(self, cloud, select):
        box = Box(0, 0, 50, 50)
        a = select.query(box, z_range=(0, 20), use_imprints=True)
        b = select.query(box, z_range=(0, 20), use_imprints=False)
        np.testing.assert_array_equal(np.sort(a.oids), np.sort(b.oids))

    def test_zrange_builds_z_imprint(self, cloud):
        sel = SpatialSelect(cloud)
        sel.query(Box(0, 0, 100, 100), z_range=(0, 10))
        assert sel.manager.get(cloud, "z") is not None

    def test_empty_slab(self, select):
        got = select.query(Box(0, 0, 100, 100), z_range=(1000, 2000))
        assert len(got) == 0

    def test_custom_z_column(self):
        rng = np.random.default_rng(3)
        table = Table(
            "pc", [("x", "float64"), ("y", "float64"), ("height", "float64")]
        )
        table.append_columns(
            {
                "x": rng.uniform(0, 10, 500),
                "y": rng.uniform(0, 10, 500),
                "height": rng.uniform(0, 5, 500),
            }
        )
        sel = SpatialSelect(table)
        got = sel.query(
            Box(0, 0, 10, 10), z_column="height", z_range=(1.0, 2.0)
        )
        heights = table.column("height").take(got.oids)
        assert ((heights >= 1.0) & (heights <= 2.0)).all()
        assert len(got) > 0


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    zmin=st.floats(-20, 60),
    span=st.floats(0, 40),
)
def test_3d_query_equals_reference(seed, zmin, span):
    cloud = make_cloud(n=1500, seed=seed)
    sel = SpatialSelect(cloud)
    box = Box(25, 25, 75, 75)
    got = sel.query(box, z_range=(zmin, zmin + span))
    np.testing.assert_array_equal(
        np.sort(got.oids), reference(cloud, box, zmin, zmin + span)
    )
