"""Tests for thematic range-predicate push-down through column imprints."""

import numpy as np
import pytest

from repro.core.imprints import ImprintsManager
from repro.engine.table import Table
from repro.sql.executor import Session


@pytest.fixture()
def session():
    rng = np.random.default_rng(17)
    n = 8000
    t = Table(
        "pts",
        [
            ("x", "float64"),
            ("y", "float64"),
            ("z", "float64"),
            ("intensity", "uint16"),
        ],
    )
    t.append_columns(
        {
            "x": rng.uniform(0, 100, n),
            "y": rng.uniform(0, 100, n),
            "z": rng.normal(10, 5, n),
            "intensity": rng.integers(0, 4000, n).astype(np.uint16),
        }
    )
    session = Session(manager=ImprintsManager())
    session.register_table(t)
    session._raw = t
    return session


class TestRangePushdown:
    def test_between_builds_imprint(self, session):
        assert session.manager.builds == 0
        got = session.execute(
            "SELECT count(*) FROM pts WHERE z BETWEEN 5 AND 15"
        ).scalar()
        # The range predicate went through a lazily built z imprint.
        assert session.manager.builds == 1
        assert session.manager.get(session._raw, "z") is not None
        zs = session._raw.column("z").values
        assert got == int(((zs >= 5) & (zs <= 15)).sum())

    @pytest.mark.parametrize(
        "predicate,reference",
        [
            ("z > 12", lambda z: z > 12),
            ("z >= 12", lambda z: z >= 12),
            ("z < 3", lambda z: z < 3),
            ("z <= 3", lambda z: z <= 3),
            ("12 < z", lambda z: z > 12),
            ("3 >= z", lambda z: z <= 3),
        ],
    )
    def test_comparison_directions(self, session, predicate, reference):
        got = session.execute(
            f"SELECT count(*) FROM pts WHERE {predicate}"
        ).scalar()
        zs = session._raw.column("z").values
        assert got == int(reference(zs).sum())
        assert session.manager.builds == 1

    def test_equality_pushdown(self, session):
        ints = session._raw.column("intensity").values
        value = int(ints[0])
        got = session.execute(
            f"SELECT count(*) FROM pts WHERE intensity = {value}"
        ).scalar()
        assert got == int((ints == value).sum())
        assert session.manager.get(session._raw, "intensity") is not None

    def test_range_plus_residual(self, session):
        got = session.execute(
            "SELECT count(*) FROM pts WHERE z > 10 AND intensity < 1000"
        ).scalar()
        zs = session._raw.column("z").values
        ints = session._raw.column("intensity").values
        assert got == int(((zs > 10) & (ints < 1000)).sum())
        # Only ONE imprint is used; the second conjunct runs as residual.
        assert session.manager.builds == 1

    def test_spatial_beats_range(self, session):
        """With a spatial conjunct present, the range predicate stays
        residual (candidates already narrowed)."""
        got = session.execute(
            "SELECT count(*) FROM pts WHERE z > 10 AND "
            "ST_Contains(ST_MakeEnvelope(10, 10, 40, 40), ST_Point(x, y))"
        ).scalar()
        t = session._raw
        xs, ys, zs = (
            t.column("x").values,
            t.column("y").values,
            t.column("z").values,
        )
        want = int(
            (
                (xs >= 10) & (xs <= 40) & (ys >= 10) & (ys <= 40) & (zs > 10)
            ).sum()
        )
        assert got == want
        # Spatial imprint built (x or y), z left alone.
        assert session.manager.get(t, "z") is None

    def test_not_between_stays_residual(self, session):
        got = session.execute(
            "SELECT count(*) FROM pts WHERE z NOT BETWEEN 5 AND 15"
        ).scalar()
        zs = session._raw.column("z").values
        assert got == int((~((zs >= 5) & (zs <= 15))).sum())

    def test_string_columns_not_pushed(self):
        session = Session()
        session.register_columns(
            "tags", {"k": [1, 2, 3], "name": ["a", "b", "a"]}
        )
        got = session.execute("SELECT count(*) FROM tags WHERE name = 'a'")
        assert got.scalar() == 2

    def test_column_to_column_not_pushed(self, session):
        got = session.execute("SELECT count(*) FROM pts WHERE z > x").scalar()
        t = session._raw
        want = int((t.column("z").values > t.column("x").values).sum())
        assert got == want
        # No constant side -> no imprint involvement.
        assert session.manager.builds == 0


@pytest.fixture()
def packed_session():
    """A session over LAS-style integer coordinates with compressed
    execution mirrors built (and no imprints yet)."""
    rng = np.random.default_rng(29)
    n = 40_000
    t = Table("pts", [("x", "int64"), ("z", "int64"), ("cls", "uint8")])
    t.append_columns(
        {
            "x": np.sort(rng.integers(0, 200_000, n)),
            "z": rng.integers(-500, 4000, n),
            "cls": rng.integers(0, 3, n).astype(np.uint8),
        }
    )
    t.compress(segment_rows=4096)
    session = Session(manager=ImprintsManager())
    session.register_table(t)
    session._raw = t
    return session


class TestPackedPushdown:
    def test_packed_serves_range_without_imprint(self, packed_session):
        got = packed_session.execute(
            "SELECT count(*) FROM pts WHERE x BETWEEN 50000 AND 60000"
        ).scalar()
        xs = packed_session._raw.column("x").values
        assert got == int(((xs >= 50_000) & (xs <= 60_000)).sum())
        # The packed mirror absorbed the predicate: no imprint was built.
        assert packed_session.manager.builds == 0

    def test_built_imprint_beats_packed(self, packed_session):
        t = packed_session._raw
        packed_session.manager.ensure(t, "x")
        assert packed_session.manager.builds == 1
        got = packed_session.execute(
            "SELECT count(*) FROM pts WHERE x BETWEEN 50000 AND 60000"
        ).scalar()
        xs = t.column("x").values
        assert got == int(((xs >= 50_000) & (xs <= 60_000)).sum())
        plan = packed_session.explain(
            "SELECT count(*) FROM pts WHERE x BETWEEN 50000 AND 60000"
        )
        assert "via imprint on 'x'" in plan

    def test_no_manager_still_pushes_packed(self, packed_session):
        session = Session(manager=None)
        session.register_table(packed_session._raw)
        got = session.execute(
            "SELECT count(*) FROM pts WHERE z >= 1000"
        ).scalar()
        zs = packed_session._raw.column("z").values
        assert got == int((zs >= 1000).sum())

    def test_explain_names_packed_access(self, packed_session):
        plan = packed_session.explain(
            "SELECT count(*) FROM pts WHERE x BETWEEN 50000 AND 60000"
        )
        assert "range filter via packed segments on 'x'" in plan

    def test_explain_analyze_reports_encoded_bytes(self, packed_session):
        text = packed_session.explain_analyze(
            "SELECT count(*) FROM pts WHERE x BETWEEN 50000 AND 60000"
        )
        lines = text.splitlines()
        range_line = next(l for l in lines if "filter.range" in l)
        assert "access=packed" in range_line
        # The nested select operator reports the bytes split: encoded
        # payloads scanned vs rows decoded (late materialization).
        select_line = next(l for l in lines if "select.range" in l)
        assert "encoded_bytes=" in select_line
        assert "materialized_bytes=" in select_line
        assert "segments_skipped=" in select_line

    def test_packed_parity_across_plain_rerun(self, packed_session):
        sql = "SELECT count(*) FROM pts WHERE z > 2000 AND cls = 1"
        packed_count = packed_session.execute(sql).scalar()
        for name in ("x", "z", "cls"):
            packed_session._raw.column(name).drop_packed()
        assert packed_session.execute(sql).scalar() == packed_count
