"""Unit tests for repro.gis.envelope and repro.gis.geometry."""

import numpy as np
import pytest

from repro.gis.envelope import Box, box_from_points
from repro.gis.geometry import (
    GeometryError,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class TestBox:
    def test_measures(self):
        b = Box(0, 0, 4, 2)
        assert b.width == 4 and b.height == 2
        assert b.area == 8
        assert b.center == (2, 1)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Box(1, 0, 0, 1)

    def test_point_box_allowed(self):
        b = Box(1, 1, 1, 1)
        assert b.area == 0
        assert b.contains_point(1, 1)

    def test_contains_point_boundary(self):
        b = Box(0, 0, 1, 1)
        assert b.contains_point(0, 0)
        assert b.contains_point(1, 1)
        assert not b.contains_point(1.0001, 0.5)

    def test_contains_box(self):
        assert Box(0, 0, 10, 10).contains_box(Box(1, 1, 2, 2))
        assert not Box(0, 0, 10, 10).contains_box(Box(5, 5, 11, 6))

    def test_intersects(self):
        assert Box(0, 0, 2, 2).intersects(Box(1, 1, 3, 3))
        assert Box(0, 0, 2, 2).intersects(Box(2, 2, 3, 3))  # touching counts
        assert not Box(0, 0, 2, 2).intersects(Box(3, 3, 4, 4))

    def test_intersection_and_union(self):
        a, b = Box(0, 0, 2, 2), Box(1, 1, 3, 3)
        assert a.intersection(b) == Box(1, 1, 2, 2)
        assert a.union(b) == Box(0, 0, 3, 3)
        with pytest.raises(ValueError):
            a.intersection(Box(5, 5, 6, 6))

    def test_expand(self):
        assert Box(1, 1, 2, 2).expand(1) == Box(0, 0, 3, 3)

    def test_min_distance_to_point(self):
        b = Box(0, 0, 2, 2)
        assert b.min_distance_to_point(1, 1) == 0
        assert b.min_distance_to_point(5, 1) == 3
        assert b.min_distance_to_point(5, 6) == 5  # 3-4-5 triangle

    def test_max_distance_to_point(self):
        b = Box(0, 0, 3, 4)
        assert b.max_distance_to_point(0, 0) == 5

    def test_box_from_points(self):
        assert box_from_points([1, 5, 3], [2, 0, 4]) == Box(1, 0, 5, 4)
        with pytest.raises(ValueError):
            box_from_points([], [])


class TestPoint:
    def test_envelope(self):
        assert Point(1, 2).envelope == Box(1, 2, 1, 2)

    def test_wkt(self):
        assert Point(1, 2).wkt() == "POINT (1.0 2.0)"

    def test_nonfinite_raises(self):
        with pytest.raises(GeometryError):
            Point(float("nan"), 0)

    def test_equality_hash(self):
        assert Point(1, 2) == Point(1, 2)
        assert len({Point(1, 2), Point(1, 2)}) == 1


class TestLineString:
    def test_length(self):
        line = LineString([(0, 0), (3, 4), (3, 8)])
        assert line.length == 9.0

    def test_envelope(self):
        assert LineString([(0, 5), (2, 1)]).envelope == Box(0, 1, 2, 5)

    def test_too_few_points(self):
        with pytest.raises(GeometryError):
            LineString([(0, 0)])

    def test_multilinestring(self):
        ml = MultiLineString([[(0, 0), (1, 0)], [(0, 1), (1, 1)]])
        assert len(ml) == 2
        assert ml.length == 2.0
        assert ml.envelope == Box(0, 0, 1, 1)

    def test_empty_multilinestring_raises(self):
        with pytest.raises(GeometryError):
            MultiLineString([])


class TestPolygon:
    def test_auto_close(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert poly.shell.shape == (5, 2)
        np.testing.assert_array_equal(poly.shell[0], poly.shell[-1])

    def test_area_square(self):
        assert Polygon([(0, 0), (4, 0), (4, 4), (0, 4)]).area == 16.0

    def test_area_with_hole(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],
        )
        assert poly.area == 96.0

    def test_area_orientation_independent(self):
        ccw = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        cw = Polygon([(0, 4), (4, 4), (4, 0), (0, 0)])
        assert ccw.area == cw.area == 16.0

    def test_from_box(self):
        poly = Polygon.from_box(Box(0, 0, 2, 3))
        assert poly.area == 6.0
        assert poly.envelope == Box(0, 0, 2, 3)

    def test_degenerate_shell_raises(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1)])

    def test_multipolygon(self):
        mp = MultiPolygon(
            [
                Polygon([(0, 0), (1, 0), (1, 1), (0, 1)]),
                Polygon([(5, 5), (7, 5), (7, 7), (5, 7)]),
            ]
        )
        assert len(mp) == 2
        assert mp.area == 5.0
        assert mp.envelope == Box(0, 0, 7, 7)


class TestMultiPoint:
    def test_basics(self):
        mp = MultiPoint([(0, 0), (2, 3)])
        assert len(mp) == 2
        assert mp.envelope == Box(0, 0, 2, 3)
