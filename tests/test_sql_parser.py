"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.sql import ast
from repro.sql.lexer import SqlSyntaxError, tokenize
from repro.sql.parser import parse


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT x FROM t WHERE y >= 1.5")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "keyword", "ident", "keyword", "ident", "keyword",
            "ident", "op", "number", "eof",
        ]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select X fRoM t")
        assert tokens[0].value == "select"
        assert tokens[2].value == "from"
        assert tokens[1].value == "X"  # idents keep their case

    def test_unlexable(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT #")

    def test_non_string_input(self):
        with pytest.raises(SqlSyntaxError):
            tokenize(42)


class TestParserBasics:
    def test_simple_select(self):
        select = parse("SELECT x, y FROM pts")
        assert [i.expr for i in select.items] == [
            ast.ColumnRef("x"),
            ast.ColumnRef("y"),
        ]
        assert select.tables == (ast.TableRef("pts"),)

    def test_star(self):
        select = parse("SELECT * FROM pts")
        assert isinstance(select.items[0].expr, ast.Star)

    def test_aliases(self):
        select = parse("SELECT x AS ex, y why FROM pts p")
        assert select.items[0].alias == "ex"
        assert select.items[1].alias == "why"
        assert select.tables[0].alias == "p"
        assert select.tables[0].binding == "p"

    def test_qualified_columns(self):
        select = parse("SELECT p.x FROM pts p")
        assert select.items[0].expr == ast.ColumnRef("x", table="p")

    def test_where_precedence(self):
        select = parse("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR.
        assert isinstance(select.where, ast.BinOp)
        assert select.where.op == "or"
        assert select.where.right.op == "and"

    def test_arithmetic_precedence(self):
        select = parse("SELECT 1 + 2 * 3 FROM t")
        expr = select.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        select = parse("SELECT (1 + 2) * 3 FROM t")
        assert select.items[0].expr.op == "*"

    def test_unary_minus_and_not(self):
        select = parse("SELECT -x FROM t WHERE NOT a = 1")
        assert select.items[0].expr == ast.UnaryOp("-", ast.ColumnRef("x"))
        assert isinstance(select.where, ast.UnaryOp)

    def test_between(self):
        select = parse("SELECT x FROM t WHERE x BETWEEN 1 AND 5")
        assert select.where == ast.Between(
            ast.ColumnRef("x"), ast.Literal(1), ast.Literal(5)
        )

    def test_not_between(self):
        select = parse("SELECT x FROM t WHERE x NOT BETWEEN 1 AND 5")
        assert select.where.negated

    def test_in_list(self):
        select = parse("SELECT x FROM t WHERE c IN (2, 6)")
        assert select.where == ast.InList(
            ast.ColumnRef("c"), (ast.Literal(2), ast.Literal(6))
        )

    def test_function_calls(self):
        select = parse("SELECT ST_X(geom) FROM t")
        assert select.items[0].expr == ast.FuncCall(
            "st_x", (ast.ColumnRef("geom"),)
        )

    def test_count_star(self):
        select = parse("SELECT count(*) FROM t")
        assert select.items[0].expr == ast.FuncCall("count", (ast.Star(),))

    def test_nested_functions(self):
        select = parse(
            "SELECT x FROM t WHERE ST_Contains(ST_GeomFromText('POINT (1 2)'),"
            " ST_Point(x, y))"
        )
        outer = select.where
        assert outer.name == "st_contains"
        assert outer.args[0].name == "st_geomfromtext"
        assert outer.args[1].name == "st_point"


class TestParserClauses:
    def test_group_by(self):
        select = parse("SELECT c, count(*) FROM t GROUP BY c")
        assert select.group_by == (ast.ColumnRef("c"),)

    def test_order_by(self):
        select = parse("SELECT x FROM t ORDER BY x DESC, y")
        assert select.order_by[0].descending
        assert not select.order_by[1].descending

    def test_limit(self):
        assert parse("SELECT x FROM t LIMIT 10").limit == 10

    def test_joins(self):
        select = parse("SELECT a.x FROM a JOIN b ON a.k = b.k")
        assert len(select.joins) == 1
        table, condition = select.joins[0]
        assert table.name == "b"
        assert condition.op == "="

    def test_inner_join(self):
        select = parse("SELECT a.x FROM a INNER JOIN b ON a.k = b.k")
        assert len(select.joins) == 1

    def test_comma_join(self):
        select = parse("SELECT 1 FROM a, b WHERE a.k = b.k")
        assert len(select.tables) == 2


class TestParserErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT x",
            "SELECT x FROM",
            "SELECT x FROM t WHERE",
            "SELECT x FROM t LIMIT 1.5",
            "SELECT x FROM t GROUP",
            "SELECT x FROM t trailing garbage (",
            "FROM t SELECT x",
            "SELECT x FROM t WHERE x NOT 5",
        ],
    )
    def test_malformed(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse(sql)
