"""Unit tests for repro.engine.storage and repro.engine.catalog."""

import numpy as np
import pytest

from repro.engine.catalog import CatalogError, Database
from repro.engine.column import Column
from repro.engine.storage import (
    StorageError,
    copy_binary,
    dump_array,
    load_array,
    load_column,
    load_table,
    save_column,
    save_table,
)
from repro.engine.table import Table


class TestArrayDump:
    @pytest.mark.parametrize(
        "dtype", ["int8", "uint16", "int32", "int64", "float32", "float64"]
    )
    def test_round_trip_dtypes(self, tmp_path, dtype):
        arr = (np.arange(100) % 7).astype(dtype)
        path = tmp_path / "a.col"
        dump_array(arr, path)
        back = load_array(path)
        assert back.dtype == arr.dtype
        np.testing.assert_array_equal(back, arr)

    def test_empty_array(self, tmp_path):
        path = tmp_path / "e.col"
        dump_array(np.empty(0, dtype=np.float64), path)
        assert load_array(path).shape == (0,)

    def test_reject_2d(self, tmp_path):
        with pytest.raises(StorageError):
            dump_array(np.zeros((2, 2)), tmp_path / "x.col")

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="not found"):
            load_array(tmp_path / "nope.col")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.col"
        path.write_bytes(b"XXXX" + b"\x00" * 20)
        with pytest.raises(StorageError, match="magic"):
            load_array(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "t.col"
        dump_array(np.arange(10, dtype=np.int64), path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(StorageError, match="payload"):
            load_array(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "h.col"
        path.write_bytes(b"RC")
        with pytest.raises(StorageError, match="header"):
            load_array(path)


class TestColumnAndTablePersistence:
    def test_column_round_trip(self, tmp_path):
        col = Column("z", "float32", data=np.linspace(0, 1, 50, dtype=np.float32))
        save_column(col, tmp_path / "z.col")
        back = load_column("z", tmp_path / "z.col")
        assert back.name == "z"
        np.testing.assert_array_equal(back.values, col.values)

    def _make_table(self):
        t = Table("pts", [("x", "float64"), ("cls", "uint8")])
        t.append_columns(
            {"x": [1.0, 2.0, 3.0], "cls": np.array([2, 6, 2], dtype=np.uint8)}
        )
        return t

    def test_table_round_trip(self, tmp_path):
        t = self._make_table()
        save_table(t, tmp_path / "pts")
        back = load_table(tmp_path / "pts")
        assert back.name == "pts"
        assert back.schema == t.schema
        np.testing.assert_array_equal(back.column("x").values, [1.0, 2.0, 3.0])

    def test_load_missing_table(self, tmp_path):
        with pytest.raises(StorageError):
            load_table(tmp_path / "absent")

    def test_row_count_mismatch_detected(self, tmp_path):
        t = self._make_table()
        save_table(t, tmp_path / "pts")
        # Corrupt one column file by replacing it with a shorter dump.
        dump_array(np.array([1.0]), tmp_path / "pts" / "x.col")
        with pytest.raises(Exception):
            load_table(tmp_path / "pts")

    def test_copy_binary_appends(self, tmp_path):
        t = self._make_table()
        dump_array(np.array([9.0, 10.0]), tmp_path / "x.col")
        dump_array(np.array([1, 1], dtype=np.uint8), tmp_path / "cls.col")
        first = copy_binary(
            t, {"x": tmp_path / "x.col", "cls": tmp_path / "cls.col"}
        )
        assert first == 3
        assert len(t) == 5
        assert t.column("x").values[4] == 10.0


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        t = db.create_table("a", [("v", "int64")])
        assert db.table("a") is t
        assert "a" in db
        assert db.table_names == ["a"]

    def test_duplicate_table_raises(self):
        db = Database()
        db.create_table("a", [("v", "int64")])
        with pytest.raises(CatalogError):
            db.create_table("a", [("v", "int64")])

    def test_drop(self):
        db = Database()
        db.create_table("a", [("v", "int64")])
        db.drop_table("a")
        assert "a" not in db
        with pytest.raises(CatalogError):
            db.drop_table("a")

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Database().table("ghost")

    def test_save_load_round_trip(self, tmp_path):
        db = Database(directory=tmp_path / "farm")
        t = db.create_table("pts", [("x", "float64")])
        t.append_columns({"x": [1.0, 2.0]})
        db.create_table("empty", [("y", "int32")])
        db.save()
        back = Database.load(tmp_path / "farm")
        assert back.table_names == ["empty", "pts"]
        np.testing.assert_array_equal(back.table("pts").column("x").values, [1.0, 2.0])
        assert len(back.table("empty")) == 0

    def test_save_without_directory_raises(self):
        with pytest.raises(ValueError):
            Database().save()

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(StorageError):
            Database.load(tmp_path / "absent")


class TestCompressedSidecar:
    """The v3 ``.colz`` sidecar lifecycle: write, attach, corrupt,
    quarantine, re-encode, verify."""

    @staticmethod
    def _table(n=50_000):
        rng = np.random.default_rng(5)
        table = Table("pts", [("x", "int64"), ("cls", "uint8")])
        table.append_columns(
            {
                "x": np.sort(rng.integers(0, 10**6, n)),
                "cls": (rng.integers(0, 3, n)).astype(np.uint8),
            }
        )
        table.compress(segment_rows=8192)
        return table

    def test_save_writes_sidecars(self, tmp_path):
        table = self._table()
        save_table(table, tmp_path / "pts")
        assert (tmp_path / "pts" / "x.colz").exists()
        assert (tmp_path / "pts" / "cls.colz").exists()

    def test_load_attaches_mirrors(self, tmp_path):
        table = self._table()
        save_table(table, tmp_path / "pts")
        back = load_table(tmp_path / "pts")
        packed = back.column("x").packed
        assert packed is not None
        np.testing.assert_array_equal(
            packed.decode_all(), table.column("x").values
        )

    def test_sidecar_standalone_round_trip(self, tmp_path):
        from repro.engine.storage import dump_compressed, load_compressed

        table = self._table(10_000)
        packed = table.column("x").packed
        path = tmp_path / "x.colz"
        dump_compressed(packed, path)
        back = load_compressed(path)
        np.testing.assert_array_equal(back.decode_all(), packed.decode_all())
        # A .colz also loads through the generic array reader (v3 is a
        # .col generation, not a private format).
        np.testing.assert_array_equal(
            load_array(path), table.column("x").values
        )

    def test_corrupt_sidecar_quarantined_on_load(self, tmp_path):
        table = self._table()
        save_table(table, tmp_path / "pts")
        side = tmp_path / "pts" / "x.colz"
        raw = bytearray(side.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        side.write_bytes(bytes(raw))

        issues = []
        with pytest.warns(RuntimeWarning, match="quarantined"):
            back = load_table(tmp_path / "pts", sidecar_issues=issues)
        assert issues and "x.colz" in issues[0]
        assert (tmp_path / "pts" / "x.colz.quarantined").exists()
        # The mirror was re-encoded from the plain column: still usable.
        assert back.column("x").packed is not None
        np.testing.assert_array_equal(
            back.column("x").packed.decode_all(), table.column("x").values
        )

    def test_verify_reports_corrupt_sidecar(self, tmp_path):
        from repro.engine.storage import verify_table

        table = self._table()
        save_table(table, tmp_path / "pts")
        assert verify_table(tmp_path / "pts") == []
        side = tmp_path / "pts" / "x.colz"
        raw = bytearray(side.read_bytes())
        raw[-3] ^= 0x01
        side.write_bytes(bytes(raw))
        issues = verify_table(tmp_path / "pts")
        assert any("x.colz" in issue for issue in issues)

    def test_recover_table_surfaces_corrupt_sidecar(self, tmp_path):
        from repro.engine.storage import recover_table

        table = self._table()
        save_table(table, tmp_path / "pts")
        side = tmp_path / "pts" / "x.colz"
        side.write_bytes(side.read_bytes()[:40])

        with pytest.warns(RuntimeWarning):
            recovered, issues = recover_table(tmp_path / "pts")
        assert any("x.colz" in issue for issue in issues)
        # Re-encoded from the plain column, ready for the re-save that
        # Database.recover performs.
        assert recovered.column("x").packed is not None

    def test_database_recover_rewrites_sidecar(self, tmp_path):
        from repro.engine.storage import verify_table

        table = self._table()
        db = Database(directory=tmp_path / "db")
        db.register(table)
        db.save()
        side = tmp_path / "db" / "pts" / "x.colz"
        side.write_bytes(side.read_bytes()[:40])

        with pytest.warns(RuntimeWarning):
            Database.recover(tmp_path / "db")
        # Full repair loop: quarantine, re-encode, re-save.
        assert side.exists()
        assert (tmp_path / "db" / "pts" / "x.colz.quarantined").exists()
        assert verify_table(tmp_path / "db" / "pts") == []

    def test_stale_sidecar_ignored(self, tmp_path):
        from repro.engine.storage import dump_compressed, sidecar_path
        from repro.engine.compressed import CompressedColumn

        table = self._table()
        save_table(table, tmp_path / "pts")
        # Replace the sidecar with one encoding different data (stale
        # mirror after an append the sidecar never saw).
        other = CompressedColumn.from_values(
            "x", np.arange(100, dtype=np.int64), 8192
        )
        dump_compressed(other, sidecar_path(tmp_path / "pts", "x"))
        issues = []
        back = load_table(tmp_path / "pts", sidecar_issues=issues)
        # Stale is not corruption: no quarantine, mirror simply absent.
        assert issues == []
        assert back.column("x").packed is None

    def test_database_health_carries_sidecar_issues(self, tmp_path):
        table = self._table()
        db = Database(directory=tmp_path / "db")
        db.register(table)
        db.save()
        side = tmp_path / "db" / "pts" / "x.colz"
        raw = bytearray(side.read_bytes())
        raw[60] ^= 0xFF
        side.write_bytes(bytes(raw))
        with pytest.warns(RuntimeWarning):
            loaded = Database.load(tmp_path / "db")
        health = loaded.health["pts"]
        assert health["ok"] is True
        assert any("x.colz" in issue for issue in health["issues"])
