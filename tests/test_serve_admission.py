"""Admission control: bounded slots, bounded queue, immediate shed."""

import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionController, AdmissionRejected


def fill_slots(controller, n):
    """Occupy ``n`` slots from worker threads; returns (release, joiner).

    Each worker acquires a slot, signals readiness, then parks on the
    release event — deterministic in-flight load without real queries.
    """
    release = threading.Event()
    ready = threading.Barrier(n + 1)
    threads = []

    def hold():
        controller.acquire()
        try:
            ready.wait(timeout=10)
            release.wait(timeout=10)
        finally:
            controller.release()

    for _ in range(n):
        thread = threading.Thread(target=hold, daemon=True)
        thread.start()
        threads.append(thread)
    ready.wait(timeout=10)

    def join():
        release.set()
        for thread in threads:
            thread.join(timeout=10)

    return release, join


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestBasics:
    def test_admit_and_release(self, registry):
        ctl = AdmissionController(max_concurrency=2, registry=registry)
        with ctl.admit():
            assert ctl.inflight == 1
        assert ctl.inflight == 0
        assert registry.counter("serve.admitted").value == 1

    def test_slot_released_on_error(self, registry):
        ctl = AdmissionController(max_concurrency=1, registry=registry)
        with pytest.raises(RuntimeError, match="boom"):
            with ctl.admit():
                raise RuntimeError("boom")
        assert ctl.inflight == 0

    def test_parameter_validation(self, registry):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0, registry=registry)
        with pytest.raises(ValueError):
            AdmissionController(queue_depth=-1, registry=registry)

    def test_snapshot_shape(self, registry):
        ctl = AdmissionController(
            max_concurrency=3, queue_depth=5, registry=registry
        )
        snap = ctl.snapshot()
        assert snap == {
            "inflight": 0,
            "queued": 0,
            "max_concurrency": 3,
            "queue_depth": 5,
            "draining": False,
        }


class TestShedding:
    def test_saturated_beyond_queue_sheds(self, registry):
        ctl = AdmissionController(
            max_concurrency=1, queue_depth=0, registry=registry
        )
        _, join = fill_slots(ctl, 1)
        try:
            with pytest.raises(AdmissionRejected) as info:
                ctl.acquire()
            assert info.value.reason == "saturated"
            assert info.value.inflight == 1
            assert registry.counter("serve.shed").value == 1
        finally:
            join()

    def test_shed_is_immediate(self, registry):
        """The 429 decision is constant-time — the acceptance criterion
        "shed within 100ms" is enforced strictly at this layer."""
        ctl = AdmissionController(
            max_concurrency=1, queue_depth=0, registry=registry
        )
        _, join = fill_slots(ctl, 1)
        try:
            t0 = time.monotonic()
            for _ in range(50):
                with pytest.raises(AdmissionRejected):
                    ctl.acquire()
            assert time.monotonic() - t0 < 0.1
        finally:
            join()

    def test_retry_after_hint(self, registry):
        ctl = AdmissionController(
            max_concurrency=1,
            queue_depth=0,
            retry_after_s=2.5,
            registry=registry,
        )
        _, join = fill_slots(ctl, 1)
        try:
            with pytest.raises(AdmissionRejected) as info:
                ctl.acquire()
            assert info.value.retry_after_s == 2.5
        finally:
            join()

    def test_queue_timeout(self, registry):
        ctl = AdmissionController(
            max_concurrency=1,
            queue_depth=1,
            queue_wait_s=0.05,
            registry=registry,
        )
        _, join = fill_slots(ctl, 1)
        try:
            with pytest.raises(AdmissionRejected) as info:
                ctl.acquire()
            assert info.value.reason == "queue_timeout"
            assert ctl.queued == 0
        finally:
            join()


class TestQueueing:
    def test_queued_request_proceeds_after_release(self, registry):
        ctl = AdmissionController(
            max_concurrency=1, queue_depth=1, registry=registry
        )
        release, join = fill_slots(ctl, 1)
        admitted = threading.Event()

        def waiter():
            with ctl.admit():
                admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        for _ in range(200):
            if ctl.queued == 1:
                break
            time.sleep(0.005)
        assert ctl.queued == 1
        assert not admitted.is_set()
        join()  # free the slot
        assert admitted.wait(timeout=5)
        thread.join(timeout=5)
        assert registry.counter("serve.admitted").value == 2
        assert registry.histogram("serve.queue_wait_seconds").count == 1

    def test_gauges_track_state(self, registry):
        ctl = AdmissionController(max_concurrency=2, registry=registry)
        _, join = fill_slots(ctl, 2)
        try:
            assert registry.gauge("serve.inflight").value == 2.0
        finally:
            join()
        assert registry.gauge("serve.inflight").value == 0.0


class TestDraining:
    def test_new_arrivals_rejected(self, registry):
        ctl = AdmissionController(registry=registry)
        ctl.begin_drain()
        with pytest.raises(AdmissionRejected) as info:
            ctl.acquire()
        assert info.value.reason == "draining"
        assert registry.gauge("serve.draining").value == 1.0

    def test_queued_waiters_fail_out(self, registry):
        ctl = AdmissionController(
            max_concurrency=1, queue_depth=2, registry=registry
        )
        _, join = fill_slots(ctl, 1)
        errors = []

        def waiter():
            try:
                ctl.acquire()
                ctl.release()
            except AdmissionRejected as exc:
                errors.append(exc.reason)

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        for _ in range(200):
            if ctl.queued == 1:
                break
            time.sleep(0.005)
        ctl.begin_drain()
        thread.join(timeout=5)
        assert errors == ["draining"]
        join()

    def test_wait_drained(self, registry):
        ctl = AdmissionController(max_concurrency=2, registry=registry)
        release, join = fill_slots(ctl, 2)
        ctl.begin_drain()
        assert ctl.wait_drained(timeout_s=0.05) is False  # still in flight
        join()
        assert ctl.wait_drained(timeout_s=5) is True

    def test_wait_drained_when_idle(self, registry):
        ctl = AdmissionController(registry=registry)
        ctl.begin_drain()
        assert ctl.wait_drained(timeout_s=0.1) is True
