"""OpenMetrics exposition: naming, escaping, histograms, round-trip."""

import math
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import (
    CONTENT_TYPE,
    escape_label_value,
    format_value,
    metric_name,
    render,
)


def parse_exposition(text):
    """Minimal OpenMetrics text parser for round-trip assertions.

    Returns ``(types, samples)``: ``{metric: type}`` from ``# TYPE``
    lines and ``{sample_name_with_labels: float}`` for every sample.
    """
    types, samples = {}, {}
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    for line in lines[:-1]:
        assert line, "no blank lines inside the exposition"
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.split(" ", 1)
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unexpected comment: {line}"
        series, _, value = line.rpartition(" ")
        samples[series] = float(value)
    return types, samples


class TestNames:
    def test_dotted_names_collapse_to_underscores(self):
        assert metric_name("query.total_seconds") == "query_total_seconds"
        assert metric_name("trace.spans_dropped") == "trace_spans_dropped"

    def test_distinct_inputs_stay_distinct_for_declared_names(self):
        from repro.obs.names import COUNTERS, GAUGES, HISTOGRAMS

        declared = sorted(COUNTERS | GAUGES | HISTOGRAMS)
        mapped = [metric_name(name) for name in declared]
        assert len(set(mapped)) == len(declared)

    def test_leading_digit_gets_prefix(self):
        name = metric_name("4xx.responses")
        assert name == "_4xx_responses"


class TestEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_plain_text_unchanged(self):
        assert escape_label_value("CPython 3.11") == "CPython 3.11"


class TestValues:
    def test_integers_render_without_dot(self):
        assert format_value(3.0) == "3"

    def test_floats_round_trip(self):
        assert float(format_value(0.125)) == 0.125

    def test_infinities_and_nan(self):
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"


class TestRender:
    def test_counter_exposes_total(self):
        registry = MetricsRegistry()
        registry.counter("sql.queries").inc(5)
        types, samples = parse_exposition(render(registry))
        assert types["sql_queries"] == "counter"
        assert samples["sql_queries_total"] == 5

    def test_gauge_exposes_bare_sample(self):
        registry = MetricsRegistry()
        registry.gauge("obs.server_up").set(1.0)
        types, samples = parse_exposition(render(registry))
        assert types["obs_server_up"] == "gauge"
        assert samples["obs_server_up"] == 1.0

    def test_empty_histogram_exposes_zeroed_series(self):
        registry = MetricsRegistry()
        registry.histogram("query.seconds", bounds=[0.1, 1.0])
        _types, samples = parse_exposition(render(registry))
        assert samples['query_seconds_bucket{le="+Inf"}'] == 0
        assert samples["query_seconds_sum"] == 0
        assert samples["query_seconds_count"] == 0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("query.seconds", bounds=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        _types, samples = parse_exposition(render(registry))
        assert samples['query_seconds_bucket{le="0.1"}'] == 1
        assert samples['query_seconds_bucket{le="1"}'] == 3
        assert samples['query_seconds_bucket{le="10"}'] == 4
        assert samples['query_seconds_bucket{le="+Inf"}'] == 5
        assert samples["query_seconds_count"] == 5
        assert samples["query_seconds_sum"] == pytest.approx(56.05)

    def test_info_metric_carries_version_label(self):
        from repro import __version__

        text = render(MetricsRegistry())
        types, _samples = parse_exposition(text)
        assert types["repro"] == "info"
        assert f'version="{__version__}"' in text

    def test_ends_with_eof_newline(self):
        assert render(MetricsRegistry()).endswith("# EOF\n")

    def test_two_scrapes_are_byte_identical(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.gauge("c.d").set(2)
        assert render(registry) == render(registry)

    def test_content_type_is_openmetrics(self):
        assert CONTENT_TYPE.startswith("application/openmetrics-text")
        assert "version=1.0.0" in CONTENT_TYPE
        assert "charset=utf-8" in CONTENT_TYPE

    def test_gauge_set_from_many_threads_renders_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("load.fraction")
        values = [0.0, 0.25, 0.5, 0.75, 1.0]

        def spin(value):
            for _ in range(200):
                gauge.set(value)

        threads = [threading.Thread(target=spin, args=(v,)) for v in values]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        _types, samples = parse_exposition(render(registry))
        assert samples["load_fraction"] in values

    def test_full_registry_round_trips_through_parser(self):
        registry = MetricsRegistry()
        registry.counter("sql.queries").inc(7)
        registry.gauge("obs.server_up").set(1)
        registry.histogram("q.s", bounds=[1.0]).observe(0.5)
        types, samples = parse_exposition(render(registry))
        assert set(types) == {"sql_queries", "obs_server_up", "q_s", "repro"}
        # Every TYPEd family contributed at least one sample.
        for family in ("sql_queries_total", "obs_server_up", "q_s_count"):
            assert family in samples
