"""The metrics registry: counters, gauges, histograms, snapshots."""

import math

import pytest

from repro.engine import parallel
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_reset(self):
        c = Counter("hits")
        c.inc(3)
        c.reset()
        assert c.value == 0

    def test_thread_safe_increments_under_pool(self):
        c = Counter("hits")
        per_task = 200
        parallel.run_tasks(
            lambda _i: [c.inc() for _ in range(per_task)],
            list(range(8)),
            threads=4,
        )
        assert c.value == 8 * per_task


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("depth")
        g.set(2.5)
        g.inc()
        g.inc(-0.5)
        assert g.value == 3.0


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 9.0):
            h.observe(value)
        buckets = h.snapshot()["buckets"]
        assert [b["count"] for b in buckets] == [2, 2, 1, 1]
        assert [b["le"] for b in buckets] == [1.0, 2.0, 4.0, None]

    def test_count_sum_min_max(self):
        h = Histogram("lat", bounds=(1.0,))
        h.observe(0.25)
        h.observe(0.75)
        snap = h.snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(1.0)
        assert snap["min"] == 0.25
        assert snap["max"] == 0.75

    def test_percentile_returns_bucket_edge(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for _ in range(90):
            h.observe(0.5)  # le=1.0 bucket
        for _ in range(10):
            h.observe(3.0)  # le=4.0 bucket
        assert h.percentile(0.5) == 1.0
        assert h.percentile(0.99) == 4.0

    def test_percentile_overflow_returns_observed_max(self):
        h = Histogram("lat", bounds=(1.0,))
        h.observe(17.0)
        assert h.percentile(0.99) == 17.0

    def test_percentile_empty_is_nan(self):
        h = Histogram("lat", bounds=(1.0,))
        assert math.isnan(h.percentile(0.5))

    def test_percentile_bounds_validated(self):
        h = Histogram("lat", bounds=(1.0,))
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_snapshot_includes_percentiles_when_nonempty(self):
        h = Histogram("lat")
        h.observe(0.003)
        snap = h.snapshot()
        assert snap["p50"] in LATENCY_BUCKETS_S
        assert {"p90", "p99"} <= set(snap)

    def test_default_bounds_are_sorted(self):
        assert list(LATENCY_BUCKETS_S) == sorted(LATENCY_BUCKETS_S)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=())

    def test_reset(self):
        h = Histogram("lat", bounds=(1.0,))
        h.observe(0.5)
        h.reset()
        assert h.count == 0
        assert math.isnan(h.percentile(0.5))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError):
            r.gauge("x")

    def test_snapshot_groups_by_kind(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(1.5)
        r.histogram("h").observe(0.01)
        snap = r.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_names_and_reset(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.histogram("h").observe(1.0)
        assert set(r.names()) == {"c", "h"}
        r.reset()
        assert r.counter("c").value == 0
        assert r.histogram("h").count == 0

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestEngineIntegration:
    def test_spatial_query_populates_registry(self):
        import numpy as np

        from repro import PointCloudDB
        from repro.gis.envelope import Box

        registry = get_registry()
        registry.reset()
        db = PointCloudDB()
        db.create_pointcloud("pts")
        rng = np.random.default_rng(11)
        n = 4000
        db.load_points(
            "pts",
            {
                "x": rng.uniform(0, 100, n),
                "y": rng.uniform(0, 100, n),
                "z": rng.uniform(0, 10, n),
            },
        )
        db.spatial_select("pts", Box(10, 10, 60, 60))
        snap = db.metrics()
        assert snap["counters"]["query.count"] == 1
        assert "query.total_seconds" in snap["histograms"]
        assert snap["counters"]["load.points"] == n
