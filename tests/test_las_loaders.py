"""Tests for the binary bulk loader and the CSV slow path."""

import numpy as np
import pytest

from repro.engine.catalog import Database
from repro.las.binloader import (
    create_flat_table,
    dump_to_binary,
    flat_batch,
    load_arrays,
    load_file,
    load_files,
)
from repro.las.csvloader import las_to_csv, load_csv, load_via_csv
from repro.las.laz import write_laz
from repro.las.spec import FLAT_SCHEMA
from repro.las.writer import write_las

from .test_las_format import sample_points


@pytest.fixture
def flat_table():
    return create_flat_table(Database(), "points")


class TestFlatBatch:
    def test_fills_missing_columns(self):
        batch = flat_batch({"x": np.zeros(3), "y": np.zeros(3), "z": np.zeros(3)}, 3)
        assert set(batch) == {name for name, _ in FLAT_SCHEMA}
        assert batch["red"].shape == (3,)
        assert (batch["red"] == 0).all()

    def test_preserves_present_columns(self):
        intensity = np.array([1, 2, 3], dtype=np.uint16)
        batch = flat_batch(
            {
                "x": np.zeros(3),
                "y": np.zeros(3),
                "z": np.zeros(3),
                "intensity": intensity,
            },
            3,
        )
        np.testing.assert_array_equal(batch["intensity"], intensity)


class TestBinaryLoader:
    def test_load_las_file_direct(self, tmp_path, flat_table):
        pts = sample_points()
        path = tmp_path / "tile.las"
        write_las(path, pts)
        stats = load_file(flat_table, path)
        assert stats.n_points == 500
        assert len(flat_table) == 500
        np.testing.assert_allclose(
            flat_table.column("x").values, pts["x"], atol=0.006
        )

    def test_load_laz_file(self, tmp_path, flat_table):
        pts = sample_points(seed=1)
        path = tmp_path / "tile.laz"
        write_laz(path, pts)
        stats = load_file(flat_table, path)
        assert stats.n_points == 500
        np.testing.assert_array_equal(
            flat_table.column("intensity").values, pts["intensity"]
        )

    def test_load_with_spool_dir(self, tmp_path, flat_table):
        """The paper's literal pipeline: dumps on disk + COPY BINARY."""
        pts = sample_points(seed=2)
        path = tmp_path / "tile.las"
        write_las(path, pts)
        spool = tmp_path / "spool"
        stats = load_file(flat_table, path, spool_dir=spool)
        assert stats.n_points == 500
        assert len(flat_table) == 500
        # One .col dump per flat column was produced.
        assert len(list(spool.glob("*.col"))) == len(FLAT_SCHEMA)

    def test_dump_to_binary_writes_all_columns(self, tmp_path):
        pts = sample_points(seed=3)
        files = dump_to_binary(pts, tmp_path / "dumps")
        assert set(files) == {name for name, _ in FLAT_SCHEMA}

    def test_load_multiple_files(self, tmp_path, flat_table):
        for i in range(3):
            write_las(tmp_path / f"t{i}.las", sample_points(n=100, seed=i))
        stats = load_files(
            flat_table, sorted(tmp_path.glob("*.las"))
        )
        assert stats.n_files == 3
        assert stats.n_points == 300
        assert len(flat_table) == 300
        assert stats.points_per_second > 0

    def test_load_file_chunked_matches_direct(self, tmp_path):
        from repro.las.binloader import load_file_chunked

        pts = sample_points(n=1000, seed=12)
        path = tmp_path / "big.las"
        write_las(path, pts)
        db = Database()
        direct = create_flat_table(db, "direct")
        chunked = create_flat_table(db, "chunked")
        load_file(direct, path)
        stats = load_file_chunked(chunked, path, chunk_size=128)
        assert stats.n_points == 1000
        np.testing.assert_array_equal(
            chunked.column("x").values, direct.column("x").values
        )
        np.testing.assert_array_equal(
            chunked.column("intensity").values,
            direct.column("intensity").values,
        )

    def test_load_file_chunked_rejects_laz(self, tmp_path, flat_table):
        from repro.las.binloader import load_file_chunked
        from repro.las.header import LasFormatError

        write_laz(tmp_path / "t.laz", sample_points(n=50, seed=13))
        with pytest.raises(LasFormatError, match="uncompressed"):
            load_file_chunked(flat_table, tmp_path / "t.laz")

    def test_load_arrays(self, flat_table):
        pts = sample_points(n=50, seed=5)
        stats = load_arrays(flat_table, pts)
        assert stats.n_points == 50
        assert len(flat_table) == 50

    def test_projection(self):
        from repro.las.binloader import LoadStats

        stats = LoadStats(n_points=1000, seconds=2.0)
        assert stats.projected_seconds(10_000) == 20.0
        assert LoadStats().projected_seconds(1) == float("inf")


class TestCsvLoader:
    def test_csv_round_trip(self, tmp_path, flat_table):
        pts = sample_points(n=80, seed=7)
        las_path = tmp_path / "t.las"
        write_las(las_path, pts)
        csv_path = tmp_path / "t.csv"
        n = las_to_csv(las_path, csv_path)
        assert n == 80
        stats = load_csv(flat_table, csv_path)
        assert stats.n_points == 80
        np.testing.assert_allclose(
            flat_table.column("x").values, pts["x"], atol=0.006
        )
        np.testing.assert_array_equal(
            flat_table.column("intensity").values, pts["intensity"]
        )

    def test_load_via_csv(self, tmp_path, flat_table):
        write_las(tmp_path / "t.las", sample_points(n=60, seed=8))
        stats = load_via_csv(flat_table, tmp_path / "t.las", tmp_path / "scratch")
        assert stats.n_points == 60
        assert len(flat_table) == 60

    def test_header_mismatch_rejected(self, tmp_path, flat_table):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_csv(flat_table, bad)

    def test_binary_loader_faster_than_csv(self, tmp_path):
        """The E1 claim at unit-test scale: binary beats CSV clearly."""
        pts = sample_points(n=4000, seed=9)
        las_path = tmp_path / "t.las"
        write_las(las_path, pts)

        db = Database()
        t_bin = create_flat_table(db, "bin")
        t_csv = create_flat_table(db, "csv")
        bin_stats = load_file(t_bin, las_path)
        csv_stats = load_via_csv(t_csv, las_path, tmp_path / "scratch")
        assert len(t_bin) == len(t_csv) == 4000
        assert bin_stats.seconds < csv_stats.seconds
