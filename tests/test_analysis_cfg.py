"""The intraprocedural CFG builder and the acquire/release dataflow.

Golden-graph tests pin the structural facts the flow-aware rules rely
on (exceptional edges, finally routing, loop else/break/continue,
catch-all semantics); the hypothesis test generates random well-formed
function bodies and asserts the global shape invariants: every built
node is reachable from entry, every node reaches an exit, and bounded
path enumeration terminates inside its budget.
"""

from __future__ import annotations

import ast
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import CFG, build_cfg, function_cfgs, stmt_can_raise
from repro.analysis.dataflow import find_leaks


def cfg_of(source: str) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def node(cfg: CFG, label_part: str):
    """The unique node whose label contains ``label_part``."""
    matches = [n for n in cfg.nodes if label_part in n.label]
    assert len(matches) == 1, (label_part, [n.label for n in cfg.nodes])
    return matches[0]


def succ_labels(cfg: CFG, n) -> set:
    return {(dst.label, edge) for dst, edge in cfg.successors(n)}


def reaches(cfg: CFG, a, b) -> bool:
    return b.index in cfg.reach(a)


# -- straight-line and branching ----------------------------------------------


class TestBasics:
    def test_straight_line(self):
        cfg = cfg_of(
            """
            def f():
                x = 1
                y = work()
                return y
            """
        )
        assert reaches(cfg, cfg.entry, cfg.exit)
        # `x = 1` is constant: no exceptional edge; `work()` can raise.
        assert not any(e == "exc" for _, e in succ_labels(cfg, node(cfg, "x = 1")))
        assert ("raise", "exc") in succ_labels(cfg, node(cfg, "y = work()"))

    def test_if_else_branches_rejoin(self):
        cfg = cfg_of(
            """
            def f(a):
                if a:
                    x = hot()
                else:
                    x = cold()
                return x
            """
        )
        test = node(cfg, "if a")
        assert reaches(cfg, test, node(cfg, "x = hot()"))
        assert reaches(cfg, test, node(cfg, "x = cold()"))
        assert reaches(cfg, node(cfg, "x = hot()"), node(cfg, "return x"))
        assert reaches(cfg, node(cfg, "x = cold()"), node(cfg, "return x"))

    def test_dead_code_after_return_gets_no_node(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                unreachable()
            """
        )
        tree = ast.parse("def f():\n    return 1\n    unreachable()\n")
        dead = tree.body[0].body[1]
        assert cfg.node_for(dead) is None or True  # different tree: see below
        assert not any("unreachable" in n.label for n in cfg.nodes)

    def test_raise_goes_to_raise_exit_only(self):
        cfg = cfg_of(
            """
            def f():
                raise ValueError("boom")
            """
        )
        assert not reaches(cfg, cfg.entry, cfg.exit)
        assert reaches(cfg, cfg.entry, cfg.raise_exit)


# -- loops ---------------------------------------------------------------------


class TestLoops:
    def test_for_else_break_continue(self):
        cfg = cfg_of(
            """
            def f(items):
                for i in items:
                    if skip(i):
                        continue
                    if found(i):
                        break
                    probe(i)
                else:
                    none_found()
                done()
            """
        )
        head = node(cfg, "for items")
        after = node(cfg, "after-for")
        # continue returns to the head; break skips the else.
        assert reaches(cfg, node(cfg, "continue"), head)
        assert (after.label, "break") in succ_labels(cfg, node(cfg, "break"))
        # the else body runs only via exhaustion, and break bypasses it.
        assert reaches(cfg, head, node(cfg, "none_found()"))
        assert not reaches(cfg, node(cfg, "break"), node(cfg, "none_found()"))
        assert reaches(cfg, node(cfg, "break"), node(cfg, "done()"))

    def test_while_back_edge(self):
        cfg = cfg_of(
            """
            def f():
                while more():
                    step()
                return 0
            """
        )
        head = node(cfg, "while more()")
        assert reaches(cfg, node(cfg, "step()"), head)
        assert reaches(cfg, head, node(cfg, "return 0"))

    def test_break_routes_through_finally(self):
        cfg = cfg_of(
            """
            def f(items):
                for i in items:
                    try:
                        work(i)
                        break
                    finally:
                        cleanup()
                done()
            """
        )
        fin = node(cfg, "finally")
        brk = node(cfg, "break")
        # break cannot jump straight to after-for: it unwinds through
        # the finally, whose unwind edge then reaches done().
        assert (fin.label, "break") in succ_labels(cfg, brk)
        assert reaches(cfg, brk, node(cfg, "done()"))


# -- try/except/finally --------------------------------------------------------


class TestTryExceptFinally:
    SRC = """
        def f():
            try:
                work()
            except ValueError:
                handle()
            finally:
                cleanup()
            after()
        """

    def test_exception_edge_to_dispatch(self):
        cfg = cfg_of(self.SRC)
        dispatch = node(cfg, "except-dispatch")
        assert (dispatch.label, "exc") in succ_labels(cfg, node(cfg, "work()"))

    def test_handler_and_fallthrough_rejoin_via_finally(self):
        cfg = cfg_of(self.SRC)
        after = node(cfg, "after()")
        assert reaches(cfg, node(cfg, "handle()"), after)
        assert reaches(cfg, node(cfg, "work()"), after)
        # both routes pass through the finally body.
        fin_body = node(cfg, "cleanup()")
        assert reaches(cfg, node(cfg, "handle()"), fin_body)
        assert reaches(cfg, node(cfg, "work()"), fin_body)

    def test_uncaught_exception_unwinds_through_finally(self):
        cfg = cfg_of(self.SRC)
        dispatch = node(cfg, "except-dispatch")
        fin = node(cfg, "finally")
        assert (fin.label, "uncaught") in succ_labels(cfg, dispatch)
        assert reaches(cfg, dispatch, cfg.raise_exit)

    def test_except_exception_is_not_catch_all(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    work()
                except Exception:
                    handle()
                done()
            """
        )
        # InjectedCrash/KeyboardInterrupt escape `except Exception`.
        assert reaches(cfg, node(cfg, "work()"), cfg.raise_exit)

    def test_bare_except_and_baseexception_are_catch_all(self):
        for clause in ("", " BaseException"):
            cfg = cfg_of(
                f"""
                def f():
                    try:
                        work()
                    except{clause}:
                        pass
                    done()
                """
            )
            dispatch = node(cfg, "except-dispatch")
            assert not any(
                edge == "uncaught" for _, edge in succ_labels(cfg, dispatch)
            )

    def test_return_in_try_runs_finally(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    return work()
                finally:
                    cleanup()
            """
        )
        ret = node(cfg, "return work()")
        fin = node(cfg, "finally")
        assert (fin.label, "return") in succ_labels(cfg, ret)
        assert reaches(cfg, node(cfg, "cleanup()"), cfg.exit)


# -- with ----------------------------------------------------------------------


class TestWith:
    def test_body_exception_runs_exit(self):
        cfg = cfg_of(
            """
            def f():
                with mgr() as m:
                    work(m)
                done()
            """
        )
        leave = node(cfg, "with-exit")
        assert (leave.label, "exc") in succ_labels(cfg, node(cfg, "work(m)"))
        assert reaches(cfg, leave, node(cfg, "done()"))
        assert reaches(cfg, leave, cfg.raise_exit)  # re-raise approximation

    def test_enter_failure_skips_exit(self):
        cfg = cfg_of(
            """
            def f():
                with mgr():
                    pass
            """
        )
        enter = node(cfg, "with mgr()")
        # __enter__ raising propagates without running __exit__.
        assert ("raise", "exc") in succ_labels(cfg, enter)

    def test_return_routes_through_with_exit(self):
        cfg = cfg_of(
            """
            def f():
                with mgr():
                    return work()
            """
        )
        ret = node(cfg, "return work()")
        leave = node(cfg, "with-exit")
        assert (leave.label, "return") in succ_labels(cfg, ret)
        assert reaches(cfg, leave, cfg.exit)


# -- nested functions ----------------------------------------------------------


class TestNestedFunctions:
    SRC = """
        def outer(items):
            def inner(x):
                if x:
                    return probe(x)
                return None
            total = 0
            for i in items:
                total += inner(i)
            return total
        """

    def test_nested_def_is_opaque_statement(self):
        tree = ast.parse(textwrap.dedent(self.SRC))
        outer = tree.body[0]
        cfg = build_cfg(outer)
        inner = outer.body[0]
        assert isinstance(inner, ast.FunctionDef)
        # one stmt node for the def itself, none for its body statements
        assert cfg.node_for(inner) is not None
        assert cfg.node_for(inner.body[0]) is None

    def test_function_cfgs_builds_both(self):
        tree = ast.parse(textwrap.dedent(self.SRC))
        cfgs = function_cfgs(tree)
        names = sorted(c.name for c in cfgs.values())
        assert names == ["inner", "outer"]

    def test_method_qualnames(self):
        tree = ast.parse(
            "class C:\n    def m(self):\n        return 1\n"
        )
        cfgs = function_cfgs(tree)
        assert [c.name for c in cfgs.values()] == ["C.m"]


# -- path enumeration ----------------------------------------------------------


class TestExitPaths:
    def test_paths_cover_both_branches(self):
        cfg = cfg_of(
            """
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        paths = list(cfg.iter_exit_paths())
        assert paths
        rendered = {" -> ".join(n.label for n in p) for p in paths}
        assert any("x = 1" in r for r in rendered)
        assert any("x = 2" in r for r in rendered)
        for path in paths:
            assert path[0] is cfg.entry
            assert path[-1] in (cfg.exit, cfg.raise_exit)

    def test_budget_bounds_enumeration(self):
        # 12 sequential calls => 2^12 exceptional path prefixes; the
        # budget must cut enumeration off, not hang.
        body = "\n".join(f"    step{i}()" for i in range(12))
        cfg = cfg_of(f"def f():\n{body}\n")
        paths = list(cfg.iter_exit_paths(budget=50))
        assert 0 < len(paths) <= 50

    def test_find_path_avoids_nodes(self):
        cfg = cfg_of(
            """
            def f(a):
                if a:
                    release()
                done()
            """
        )
        rel = node(cfg, "release()")
        path = cfg.find_path(cfg.entry, [cfg.exit], avoid=frozenset({rel.index}))
        assert path is not None
        assert rel not in path


# -- the generic dataflow pass -------------------------------------------------


class TestDataflow:
    def leaks_of(self, source, acquire="acquire", release="release"):
        cfg = cfg_of(source)
        acq = [
            n
            for n in cfg.nodes
            if n.kind == "stmt" and f".{acquire}(" in n.label
        ]
        rel = [
            n
            for n in cfg.nodes
            if n.kind == "stmt" and f".{release}(" in n.label
        ]
        assert acq, "fixture must contain an acquire"
        return find_leaks(cfg, acq, rel)

    def test_try_finally_is_clean(self):
        leaks = self.leaks_of(
            """
            def f(slot):
                slot.acquire()
                try:
                    work()
                finally:
                    slot.release()
            """
        )
        assert leaks == []

    def test_exception_window_is_a_leak(self):
        leaks = self.leaks_of(
            """
            def f(slot):
                slot.acquire()
                work()
                slot.release()
            """
        )
        assert len(leaks) == 1
        assert leaks[0].exceptional
        escape = leaks[0].escape_node()
        assert escape is not None and "work()" in escape.label

    def test_early_return_is_a_leak(self):
        leaks = self.leaks_of(
            """
            def f(slot, bad):
                slot.acquire()
                if bad:
                    return None
                slot.release()
                return True
            """
        )
        assert len(leaks) == 1

    def test_acquire_failure_is_not_a_leak(self):
        # If acquire() itself raises, nothing was acquired: the only
        # path must be the post-acquire one, which releases.
        leaks = self.leaks_of(
            """
            def f(slot):
                slot.acquire()
                try:
                    pass
                finally:
                    slot.release()
            """
        )
        assert leaks == []


# -- property-based shape invariants -------------------------------------------


_SIMPLE = st.sampled_from(
    [
        "x = 1",
        "x = work()",
        "work()",
        "return x",
        "raise ValueError('b')",
    ]
)
_LOOP_SIMPLE = st.sampled_from(["break", "continue"])


def _render(stmts, indent):
    pad = "    " * indent
    return "\n".join(
        "\n".join([pad + line for line in stmt]) if isinstance(stmt, list)
        else pad + stmt
        for stmt in stmts
    )


@st.composite
def _block(draw, depth, in_loop):
    n = draw(st.integers(min_value=1, max_value=3))
    lines = []
    for _ in range(n):
        choices = ["simple"]
        if in_loop:
            choices.append("loop_simple")
        if depth > 0:
            choices += ["if", "while", "for", "try", "with", "tryfin"]
        kind = draw(st.sampled_from(choices))
        if kind == "simple":
            lines.append(draw(_SIMPLE))
        elif kind == "loop_simple":
            lines.append(draw(_LOOP_SIMPLE))
        elif kind == "if":
            body = draw(_block(depth=depth - 1, in_loop=in_loop))
            lines.append("if cond():")
            lines.extend("    " + b for b in body.splitlines())
            if draw(st.booleans()):
                orelse = draw(_block(depth=depth - 1, in_loop=in_loop))
                lines.append("else:")
                lines.extend("    " + b for b in orelse.splitlines())
        elif kind in ("while", "for"):
            head = "while cond():" if kind == "while" else "for i in items():"
            body = draw(_block(depth=depth - 1, in_loop=True))
            lines.append(head)
            lines.extend("    " + b for b in body.splitlines())
            if draw(st.booleans()):
                orelse = draw(_block(depth=depth - 1, in_loop=in_loop))
                lines.append("else:")
                lines.extend("    " + b for b in orelse.splitlines())
        elif kind == "with":
            body = draw(_block(depth=depth - 1, in_loop=in_loop))
            lines.append("with mgr():")
            lines.extend("    " + b for b in body.splitlines())
        elif kind == "try":
            body = draw(_block(depth=depth - 1, in_loop=in_loop))
            handler = draw(_block(depth=depth - 1, in_loop=in_loop))
            lines.append("try:")
            lines.extend("    " + b for b in body.splitlines())
            clause = draw(
                st.sampled_from(
                    ["except ValueError:", "except Exception:", "except:"]
                )
            )
            lines.append(clause)
            lines.extend("    " + b for b in handler.splitlines())
            if draw(st.booleans()):
                fin = draw(_block(depth=depth - 1, in_loop=in_loop))
                lines.append("finally:")
                lines.extend("    " + b for b in fin.splitlines())
        elif kind == "tryfin":
            body = draw(_block(depth=depth - 1, in_loop=in_loop))
            fin = draw(_block(depth=depth - 1, in_loop=in_loop))
            lines.append("try:")
            lines.extend("    " + b for b in body.splitlines())
            lines.append("finally:")
            lines.extend("    " + b for b in fin.splitlines())
    return "\n".join(lines)


@st.composite
def function_sources(draw):
    body = draw(_block(depth=2, in_loop=False))
    indented = "\n".join("    " + line for line in body.splitlines())
    return f"def f(x):\n{indented}\n"


class TestCfgProperties:
    @settings(max_examples=120, deadline=None)
    @given(source=function_sources())
    def test_connected_and_exits_reachable(self, source):
        tree = ast.parse(source)
        cfg = build_cfg(tree.body[0])
        exits = {cfg.exit.index, cfg.raise_exit.index}

        # 1. every non-exit node is reachable from entry (dead code is
        #    skipped at build time, so nothing dangles).
        reachable = cfg.reach(cfg.entry)
        for n in cfg.nodes:
            if n.index in exits:
                continue
            assert n.index in reachable, (source, n)

        # 2. every reachable node reaches some exit.
        for n in cfg.nodes:
            if n.index in exits or n.index not in reachable:
                continue
            assert cfg.reach(n) & exits, (source, n)

        # 3. at least one exit is live, and bounded enumeration yields
        #    entry-to-exit paths inside its budget.
        assert reachable & exits, source
        paths = list(cfg.iter_exit_paths(budget=64))
        assert 0 < len(paths) <= 64
        for path in paths:
            assert path[0] is cfg.entry
            assert path[-1].index in exits

    @settings(max_examples=60, deadline=None)
    @given(source=function_sources())
    def test_can_raise_classification_stable(self, source):
        # stmt_can_raise is pure classification: it must never throw on
        # anything the generator produces.
        tree = ast.parse(source)
        for node_ in ast.walk(tree):
            if isinstance(node_, ast.stmt):
                stmt_can_raise(node_)
