"""Unit and property tests for the regular grid and the refinement step."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import RegularGrid
from repro.core.refine import refine, refine_exhaustive
from repro.gis.envelope import Box
from repro.gis.geometry import LineString, Polygon
from repro.gis.predicates import points_satisfy


class TestRegularGrid:
    def test_cell_counts_near_target(self):
        grid = RegularGrid(Box(0, 0, 100, 100), target_cells=1024)
        assert 900 <= grid.n_cells <= 1200
        assert grid.nx == grid.ny  # square extent -> square grid

    def test_aspect_ratio_respected(self):
        grid = RegularGrid(Box(0, 0, 400, 100), target_cells=1024)
        assert grid.nx > grid.ny

    def test_degenerate_extent(self):
        grid = RegularGrid(Box(5, 5, 5, 5), target_cells=16)
        assert grid.n_cells >= 1
        assert grid.cell_ids(np.array([5.0]), np.array([5.0]))[0] >= 0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            RegularGrid(Box(0, 0, 1, 1), target_cells=0)

    def test_cell_ids_in_range(self):
        grid = RegularGrid(Box(0, 0, 10, 10), target_cells=100)
        rng = np.random.default_rng(0)
        xs = rng.uniform(0, 10, 500)
        ys = rng.uniform(0, 10, 500)
        ids = grid.cell_ids(xs, ys)
        assert ids.min() >= 0 and ids.max() < grid.n_cells

    def test_boundary_points_clamp(self):
        grid = RegularGrid(Box(0, 0, 10, 10), target_cells=4)
        ids = grid.cell_ids(np.array([10.0]), np.array([10.0]))
        assert ids[0] == grid.n_cells - 1

    def test_cell_box_round_trip(self):
        grid = RegularGrid(Box(0, 0, 10, 10), target_cells=25)
        for cid in range(grid.n_cells):
            box = grid.cell_box(cid)
            cx, cy = box.center
            assert grid.cell_ids(np.array([cx]), np.array([cy]))[0] == cid

    def test_cell_box_out_of_range(self):
        grid = RegularGrid(Box(0, 0, 1, 1), target_cells=4)
        with pytest.raises(ValueError):
            grid.cell_box(grid.n_cells)

    def test_group_points_partition(self):
        grid = RegularGrid(Box(0, 0, 10, 10), target_cells=16)
        rng = np.random.default_rng(1)
        xs = rng.uniform(0, 10, 200)
        ys = rng.uniform(0, 10, 200)
        groups = grid.group_points(xs, ys)
        members = np.sort(np.concatenate(list(groups.values())))
        np.testing.assert_array_equal(members, np.arange(200))
        ids = grid.cell_ids(xs, ys)
        for cid, idx in groups.items():
            assert (ids[idx] == cid).all()


POLY = Polygon([(2, 2), (8, 3), (7, 8), (3, 7)])
DONUT = Polygon(
    [(0, 0), (10, 0), (10, 10), (0, 10)],
    holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
)


class TestRefine:
    def _points(self, n=3000, seed=0):
        rng = np.random.default_rng(seed)
        return rng.uniform(0, 10, n), rng.uniform(0, 10, n)

    def test_matches_exhaustive_polygon(self):
        xs, ys = self._points()
        got, _ = refine(xs, ys, POLY)
        want, _ = refine_exhaustive(xs, ys, POLY)
        np.testing.assert_array_equal(got, want)

    def test_matches_exhaustive_donut(self):
        xs, ys = self._points(seed=2)
        got, _ = refine(xs, ys, DONUT)
        want, _ = refine_exhaustive(xs, ys, DONUT)
        np.testing.assert_array_equal(got, want)

    def test_matches_exhaustive_dwithin(self):
        xs, ys = self._points(seed=3)
        line = LineString([(0, 0), (10, 5), (5, 10)])
        got, _ = refine(xs, ys, line, "dwithin", distance=1.5)
        want, _ = refine_exhaustive(xs, ys, line, "dwithin", distance=1.5)
        np.testing.assert_array_equal(got, want)

    def test_empty_candidates(self):
        mask, stats = refine(np.empty(0), np.empty(0), POLY)
        assert mask.shape == (0,)
        assert stats.n_candidates == 0

    def test_grid_avoids_exact_tests(self):
        """The point of the grid: most points decided wholesale."""
        xs, ys = self._points(n=20_000)
        _, stats = refine(xs, ys, POLY, target_cells=1024)
        assert stats.exact_test_fraction < 0.5
        assert stats.points_accepted_wholesale > 0
        assert stats.inside_cells > 0
        assert stats.boundary_cells > 0

    def test_stats_account_for_every_point(self):
        xs, ys = self._points(n=5000, seed=5)
        _, stats = refine(xs, ys, DONUT)
        total = (
            stats.points_accepted_wholesale
            + stats.points_rejected_wholesale
            + stats.points_tested_exact
        )
        assert total == stats.n_candidates
        assert (
            stats.inside_cells + stats.outside_cells + stats.boundary_cells
            == stats.n_cells
        )

    def test_extent_override(self):
        xs, ys = self._points(n=100, seed=7)
        mask, _ = refine(xs, ys, POLY, extent=Box(0, 0, 10, 10))
        want, _ = refine_exhaustive(xs, ys, POLY)
        np.testing.assert_array_equal(mask, want)


@st.composite
def random_polygon(draw):
    """Star-shaped (possibly concave) polygon around a random centre."""
    n = draw(st.integers(3, 12))
    cx = draw(st.floats(2, 8))
    cy = draw(st.floats(2, 8))
    angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
    radii = np.array([draw(st.floats(0.5, 4.0)) for _ in range(n)])
    xs = cx + radii * np.cos(angles)
    ys = cy + radii * np.sin(angles)
    return Polygon(np.column_stack([xs, ys]))


@settings(max_examples=50, deadline=None)
@given(
    poly=random_polygon(),
    seed=st.integers(0, 2**31),
    n=st.integers(1, 500),
    target_cells=st.sampled_from([1, 16, 256, 2048]),
)
def test_refine_equals_exhaustive_for_random_polygons(poly, seed, n, target_cells):
    """Grid refinement must be a pure optimisation: same answer as testing
    every point, for any polygon shape and any grid resolution."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0, 10, n)
    ys = rng.uniform(0, 10, n)
    got, _ = refine(xs, ys, poly, target_cells=target_cells)
    want = points_satisfy(xs, ys, poly)
    np.testing.assert_array_equal(got, want)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    n=st.integers(1, 300),
    distance=st.floats(0.1, 5.0),
)
def test_refine_dwithin_equals_exhaustive(seed, n, distance):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0, 10, n)
    ys = rng.uniform(0, 10, n)
    line = LineString([(1, 1), (9, 2), (5, 9)])
    got, _ = refine(xs, ys, line, "dwithin", distance)
    want = points_satisfy(xs, ys, line, "dwithin", distance)
    np.testing.assert_array_equal(got, want)
