"""Integration tests for the two-step SpatialSelect pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.imprints import ImprintsManager
from repro.core.query import SpatialSelect
from repro.engine.table import Table
from repro.gis.envelope import Box
from repro.gis.geometry import LineString, MultiPolygon, Polygon


def make_cloud(n=20_000, seed=0, extent=100.0):
    rng = np.random.default_rng(seed)
    table = Table(
        "pts", [("x", "float64"), ("y", "float64"), ("z", "float64")]
    )
    table.append_columns(
        {
            "x": rng.uniform(0, extent, n),
            "y": rng.uniform(0, extent, n),
            "z": rng.normal(10, 3, n),
        }
    )
    return table


@pytest.fixture(scope="module")
def cloud():
    return make_cloud()


@pytest.fixture(scope="module")
def select(cloud):
    return SpatialSelect(cloud)


POLY = Polygon([(10, 10), (40, 15), (35, 45), (12, 38)])


class TestBoxQueries:
    def test_box_query_exact_without_refinement(self, select):
        box = Box(20, 20, 30, 30)
        result = select.query(box)
        np.testing.assert_array_equal(result.oids, select.query_scan(box))
        # Box + contains short-circuits: no refinement work at all.
        assert result.stats.refine_stats.n_cells == 0
        assert result.stats.refine_seconds == 0.0

    def test_empty_region(self, select):
        result = select.query(Box(200, 200, 300, 300))
        assert len(result) == 0

    def test_full_region(self, select, cloud):
        result = select.query(Box(-10, -10, 110, 110))
        assert len(result) == len(cloud)


class TestPolygonQueries:
    def test_polygon_matches_scan(self, select):
        result = select.query(POLY)
        np.testing.assert_array_equal(result.oids, select.query_scan(POLY))
        assert result.stats.n_results == len(result)

    def test_polygon_without_grid_matches(self, select):
        with_grid = select.query(POLY, use_grid=True)
        without_grid = select.query(POLY, use_grid=False)
        np.testing.assert_array_equal(with_grid.oids, without_grid.oids)

    def test_polygon_without_imprints_matches(self, select):
        with_imp = select.query(POLY, use_imprints=True)
        without_imp = select.query(POLY, use_imprints=False)
        np.testing.assert_array_equal(with_imp.oids, without_imp.oids)

    def test_multipolygon(self, select):
        mp = MultiPolygon(
            [
                Polygon([(0, 0), (10, 0), (10, 10), (0, 10)]),
                Polygon([(50, 50), (60, 50), (60, 60), (50, 60)]),
            ]
        )
        result = select.query(mp)
        np.testing.assert_array_equal(result.oids, select.query_scan(mp))

    def test_donut_hole_excluded(self, select):
        donut = Polygon(
            [(10, 10), (50, 10), (50, 50), (10, 50)],
            holes=[[(20, 20), (40, 20), (40, 40), (20, 40)]],
        )
        result = select.query(donut)
        np.testing.assert_array_equal(result.oids, select.query_scan(donut))


class TestDWithinQueries:
    def test_dwithin_line_matches_scan(self, select):
        road = LineString([(0, 50), (50, 55), (100, 40)])
        result = select.query(road, "dwithin", distance=5.0)
        np.testing.assert_array_equal(
            result.oids, select.query_scan(road, "dwithin", 5.0)
        )

    def test_dwithin_envelope_expansion(self, select):
        # Points near but outside the line's envelope must still be found.
        road = LineString([(50, 50), (60, 50)])
        result = select.query(road, "dwithin", distance=10.0)
        scan = select.query_scan(road, "dwithin", 10.0)
        np.testing.assert_array_equal(result.oids, scan)
        assert len(result) > 0


class TestStats:
    def test_filter_counts(self, select, cloud):
        result = select.query(POLY)
        stats = result.stats
        assert stats.n_rows == len(cloud)
        assert stats.n_filter_candidates >= stats.n_results
        assert 0 < stats.filter_selectivity < 1
        assert stats.total_seconds >= 0

    def test_imprints_created_lazily(self, cloud):
        mgr = ImprintsManager()
        sel = SpatialSelect(cloud, manager=mgr)
        assert mgr.builds == 0
        # x-selective box: the cascade probes the x imprint first.
        sel.query(Box(10, 0, 11, 100))
        assert mgr.builds == 1
        assert mgr.get(cloud, "x") is not None
        # A y-selective box then lazily builds the y imprint too.
        sel.query(Box(0, 10, 100, 11))
        assert mgr.builds == 2

    def test_shared_manager_reused(self, cloud):
        mgr = ImprintsManager()
        sel_a = SpatialSelect(cloud, manager=mgr)
        sel_b = SpatialSelect(cloud, manager=mgr)
        sel_a.query(Box(10, 0, 11, 100))
        builds = mgr.builds
        sel_b.query(Box(20, 0, 21, 100))  # same axis: no rebuild
        assert mgr.builds == builds


class TestEdgeCases:
    def test_empty_table(self):
        table = Table("pts", [("x", "float64"), ("y", "float64")])
        sel = SpatialSelect(table)
        result = sel.query(Box(0, 0, 1, 1))
        assert len(result) == 0

    def test_append_then_query_sees_new_rows(self):
        table = make_cloud(n=1000, seed=1)
        sel = SpatialSelect(table)
        before = len(sel.query(Box(0, 0, 100, 100)))
        table.append_columns({"x": [50.0], "y": [50.0], "z": [0.0]})
        after = len(sel.query(Box(0, 0, 100, 100)))
        assert after == before + 1

    def test_custom_column_names(self):
        rng = np.random.default_rng(2)
        table = Table("pc", [("easting", "float64"), ("northing", "float64")])
        table.append_columns(
            {
                "easting": rng.uniform(0, 10, 500),
                "northing": rng.uniform(0, 10, 500),
            }
        )
        sel = SpatialSelect(table, x_column="easting", y_column="northing")
        result = sel.query(Box(2, 2, 5, 5))
        xs = table.column("easting").take(result.oids)
        ys = table.column("northing").take(result.oids)
        assert ((xs >= 2) & (xs <= 5) & (ys >= 2) & (ys <= 5)).all()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    n=st.integers(1, 2000),
    x0=st.floats(0, 80),
    y0=st.floats(0, 80),
    w=st.floats(1, 40),
    h=st.floats(1, 40),
)
def test_two_step_equals_brute_force(seed, n, x0, y0, w, h):
    """Headline invariant: the full pipeline (imprints + grid) returns
    exactly the brute-force result for random clouds and query polygons."""
    table = make_cloud(n=n, seed=seed)
    sel = SpatialSelect(table)
    poly = Polygon([(x0, y0), (x0 + w, y0), (x0 + w / 2, y0 + h)])
    result = sel.query(poly)
    np.testing.assert_array_equal(result.oids, sel.query_scan(poly))
