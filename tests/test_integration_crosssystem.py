"""Cross-system equivalence: all four query paths return the same answer.

The demo's Scenario 1 compares systems on the *same* data; this module
turns that comparison into a property: for random clouds and random query
geometries, the flat-table+imprints pipeline, the pure scan, the block
store and the file-based toolchain must all return the same point set
(files modulo LAS coordinate quantisation, which is asserted separately
by loading the quantised coordinates back first).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.blockstore.store import BlockStore
from repro.core.query import SpatialSelect
from repro.engine.table import Table
from repro.gis.envelope import Box
from repro.gis.geometry import LineString, Polygon
from repro.gis.predicates import points_satisfy
from repro.las.reader import read_las
from repro.las.writer import write_las
from repro.lastools.clip import LasClip

EXTENT = Box(0, 0, 1000, 1000)


def _random_cloud(n, seed):
    rng = np.random.default_rng(seed)
    return {
        "x": rng.uniform(0, 1000, n),
        "y": rng.uniform(0, 1000, n),
        "z": rng.uniform(0, 30, n),
    }


def _random_geometry(rng):
    kind = rng.integers(0, 3)
    cx, cy = rng.uniform(200, 800, 2)
    if kind == 0:
        w, h = rng.uniform(20, 300, 2)
        return Box(cx - w, cy - h, cx + w, cy + h), "contains", 0.0
    if kind == 1:
        n_vertices = int(rng.integers(3, 12))
        angles = np.linspace(0, 2 * np.pi, n_vertices, endpoint=False)
        radii = rng.uniform(30, 250, n_vertices)
        return (
            Polygon(
                np.column_stack(
                    [cx + radii * np.cos(angles), cy + radii * np.sin(angles)]
                )
            ),
            "contains",
            0.0,
        )
    line = LineString(
        [
            (rng.uniform(0, 1000), rng.uniform(0, 1000)),
            (cx, cy),
            (rng.uniform(0, 1000), rng.uniform(0, 1000)),
        ]
    )
    return line, "dwithin", float(rng.uniform(5, 80))


class TestCrossSystemEquivalence:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 2**31))
    def test_all_systems_agree(self, tmp_path_factory, seed):
        rng = np.random.default_rng(seed)
        tmp = tmp_path_factory.mktemp(f"xsys_{seed % 1000}")

        # Ship the cloud through LAS so every system sees the *quantised*
        # coordinates — then exact equality is required everywhere.
        raw = _random_cloud(3000, seed)
        las_path = tmp / "tile.las"
        write_las(las_path, raw)
        _header, cloud = read_las(las_path)

        table = Table(
            "pts", [("x", "float64"), ("y", "float64"), ("z", "float64")]
        )
        table.append_columns(
            {"x": cloud["x"], "y": cloud["y"], "z": cloud["z"]}
        )
        select = SpatialSelect(table)

        store = BlockStore(patch_size=512, sort="morton")
        store.load({"x": cloud["x"], "y": cloud["y"], "z": cloud["z"]})

        clip = LasClip(tmp, use_index=True)
        clip.build_indexes(leaf_capacity=300)

        geometry, predicate, distance = _random_geometry(rng)
        expected_mask = points_satisfy(
            cloud["x"], cloud["y"], geometry, predicate, distance
        )
        expected = np.sort(cloud["x"][expected_mask])

        # 1. flat + imprints + grid
        result = select.query(geometry, predicate, distance)
        np.testing.assert_array_equal(
            np.sort(table.column("x").take(result.oids)), expected
        )
        # 2. pure scan, no grid
        result_scan = select.query(
            geometry, predicate, distance, use_imprints=False, use_grid=False
        )
        np.testing.assert_array_equal(
            np.sort(result_scan.oids), np.sort(result.oids)
        )
        # 3. blockstore
        out_blk, _ = store.query(geometry, predicate, distance)
        np.testing.assert_array_equal(np.sort(out_blk["x"]), expected)
        # 4. file-based
        out_las, _ = clip.query(geometry, predicate, distance)
        np.testing.assert_array_equal(np.sort(out_las["x"]), expected)


class TestSqlAgreesWithDirect:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_sql_count_matches_spatial_select(self, seed):
        from repro.sql.executor import Session

        rng = np.random.default_rng(seed)
        cloud = _random_cloud(2000, seed)
        table = Table(
            "pts", [("x", "float64"), ("y", "float64"), ("z", "float64")]
        )
        table.append_columns(cloud)
        session = Session()
        session.register_table(table)
        select = SpatialSelect(table, manager=session.manager)

        geometry, predicate, distance = _random_geometry(rng)
        direct = len(select.query(geometry, predicate, distance))
        wkt = (
            geometry.wkt()
            if not isinstance(geometry, Box)
            else Polygon.from_box(geometry).wkt()
        )
        if predicate == "dwithin":
            sql = (
                f"SELECT count(*) FROM pts WHERE ST_DWithin("
                f"ST_GeomFromText('{wkt}'), ST_Point(x, y), {distance})"
            )
        else:
            sql = (
                f"SELECT count(*) FROM pts WHERE ST_Contains("
                f"ST_GeomFromText('{wkt}'), ST_Point(x, y))"
            )
        assert session.execute(sql).scalar() == direct
