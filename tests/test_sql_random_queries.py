"""Mini-SQLsmith: random WHERE trees vs a numpy oracle.

Hypothesis generates random boolean expression trees over two integer
columns; each tree is rendered both as SQL text and as a numpy evaluator.
``SELECT count(*)`` through the full engine (lexer, parser, push-down,
vectorised evaluation) must match the oracle exactly — this shreds
operator precedence, NOT/AND/OR semantics, BETWEEN/IN edges and the
range-push-down rewrite in one property.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.table import Table
from repro.sql.executor import Session

N_ROWS = 300
_RNG = np.random.default_rng(99)
_A = _RNG.integers(-20, 20, N_ROWS)
_B = _RNG.integers(0, 10, N_ROWS)


def make_session() -> Session:
    t = Table("t", [("a", "int64"), ("b", "int64")])
    t.append_columns({"a": _A, "b": _B})
    session = Session()
    session.register_table(t, point_columns=None)
    return session


class Expr:
    """A paired (sql_text, numpy_fn) expression."""

    def __init__(self, sql, fn):
        self.sql = sql
        self.fn = fn


def _leaf_comparison(draw):
    column = draw(st.sampled_from(["a", "b"]))
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
    value = draw(st.integers(-25, 25))
    arr = _A if column == "a" else _B
    py_ops = {
        "<": lambda v: arr < v,
        "<=": lambda v: arr <= v,
        ">": lambda v: arr > v,
        ">=": lambda v: arr >= v,
        "=": lambda v: arr == v,
        "!=": lambda v: arr != v,
    }
    return Expr(f"{column} {op} {value}", lambda v=value, o=op: py_ops[o](v))


def _leaf_between(draw):
    column = draw(st.sampled_from(["a", "b"]))
    lo = draw(st.integers(-25, 25))
    hi = lo + draw(st.integers(0, 20))
    arr = _A if column == "a" else _B
    negated = draw(st.booleans())
    word = "NOT BETWEEN" if negated else "BETWEEN"
    base = lambda: (arr >= lo) & (arr <= hi)
    fn = (lambda: ~base()) if negated else base
    return Expr(f"{column} {word} {lo} AND {hi}", fn)


def _leaf_in(draw):
    column = draw(st.sampled_from(["a", "b"]))
    options = draw(st.lists(st.integers(-25, 25), min_size=1, max_size=4))
    arr = _A if column == "a" else _B
    negated = draw(st.booleans())
    word = "NOT IN" if negated else "IN"
    base = lambda: np.isin(arr, options)
    fn = (lambda: ~base()) if negated else base
    return Expr(
        f"{column} {word} ({', '.join(map(str, options))})", fn
    )


@st.composite
def expr_tree(draw, depth=0):
    if depth >= 3 or draw(st.integers(0, 2)) == 0:
        kind = draw(st.sampled_from(["cmp", "between", "in"]))
        if kind == "cmp":
            return _leaf_comparison(draw)
        if kind == "between":
            return _leaf_between(draw)
        return _leaf_in(draw)
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        inner = draw(expr_tree(depth=depth + 1))
        return Expr(f"NOT ({inner.sql})", lambda i=inner: ~i.fn())
    left = draw(expr_tree(depth=depth + 1))
    right = draw(expr_tree(depth=depth + 1))
    if kind == "and":
        return Expr(
            f"({left.sql}) AND ({right.sql})",
            lambda l=left, r=right: l.fn() & r.fn(),
        )
    return Expr(
        f"({left.sql}) OR ({right.sql})",
        lambda l=left, r=right: l.fn() | r.fn(),
    )


@settings(max_examples=120, deadline=None)
@given(tree=expr_tree())
def test_random_where_matches_numpy_oracle(tree):
    session = make_session()
    got = session.execute(f"SELECT count(*) FROM t WHERE {tree.sql}").scalar()
    want = int(tree.fn().sum())
    assert got == want, tree.sql


@settings(max_examples=60, deadline=None)
@given(tree=expr_tree())
def test_random_where_projection_matches(tree):
    """Projected `a` values under the random predicate match the oracle."""
    session = make_session()
    result = session.execute(f"SELECT a FROM t WHERE {tree.sql}")
    got = sorted(row[0] for row in result.rows)
    want = sorted(_A[tree.fn()].tolist())
    assert got == want, tree.sql


@settings(max_examples=40, deadline=None)
@given(tree=expr_tree())
def test_random_where_negation_partitions(tree):
    """count(P) + count(NOT P) == total rows, always."""
    session = make_session()
    pos = session.execute(f"SELECT count(*) FROM t WHERE {tree.sql}").scalar()
    neg = session.execute(
        f"SELECT count(*) FROM t WHERE NOT ({tree.sql})"
    ).scalar()
    assert pos + neg == N_ROWS, tree.sql
