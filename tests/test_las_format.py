"""Unit and property tests for the LAS/LAZ substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.las.header import HEADER_SIZE, LasFormatError, LasHeader
from repro.las.laz import read_laz, write_laz
from repro.las.reader import iter_points, read_header, read_las
from repro.las.spec import (
    FLAT_SCHEMA,
    POINT_FORMATS,
    RECORD_LENGTHS,
    pack_classification,
    pack_flags,
    unpack_classification,
    unpack_flags,
)
from repro.las.writer import write_las


class TestSpec:
    def test_record_lengths_match_standard(self):
        assert RECORD_LENGTHS == {0: 20, 1: 28, 2: 26, 3: 34}

    def test_flat_schema_has_23_properties(self):
        # The paper: "a total of 23 properties excluding the X, Y, and Z".
        assert len(FLAT_SCHEMA) == 26
        assert [n for n, _ in FLAT_SCHEMA[:3]] == ["x", "y", "z"]

    def test_flags_round_trip(self):
        rn = np.array([1, 2, 7], dtype=np.uint8)
        nr = np.array([1, 3, 7], dtype=np.uint8)
        sd = np.array([0, 1, 0], dtype=np.uint8)
        ee = np.array([1, 0, 0], dtype=np.uint8)
        out = unpack_flags(pack_flags(rn, nr, sd, ee))
        np.testing.assert_array_equal(out["return_number"], rn)
        np.testing.assert_array_equal(out["number_of_returns"], nr)
        np.testing.assert_array_equal(out["scan_direction_flag"], sd)
        np.testing.assert_array_equal(out["edge_of_flight_line"], ee)

    def test_classification_round_trip(self):
        cls = np.array([2, 6, 31], dtype=np.uint8)
        syn = np.array([0, 1, 0], dtype=np.uint8)
        kp = np.array([1, 0, 0], dtype=np.uint8)
        wh = np.array([0, 0, 1], dtype=np.uint8)
        out = unpack_classification(pack_classification(cls, syn, kp, wh))
        np.testing.assert_array_equal(out["classification"], cls)
        np.testing.assert_array_equal(out["synthetic"], syn)
        np.testing.assert_array_equal(out["key_point"], kp)
        np.testing.assert_array_equal(out["withheld"], wh)


class TestHeader:
    def test_pack_size(self):
        assert len(LasHeader(n_points=5).pack()) == HEADER_SIZE

    def test_round_trip(self):
        h = LasHeader(
            point_format=3,
            n_points=1234,
            scale=(0.01, 0.01, 0.001),
            offset=(100000.0, 400000.0, -5.0),
            min_xyz=(1.0, 2.0, 3.0),
            max_xyz=(4.0, 5.0, 6.0),
            points_by_return=(1000, 200, 30, 4, 0),
            file_source_id=7,
        )
        back = LasHeader.unpack(h.pack())
        assert back == h

    def test_bad_signature(self):
        raw = bytearray(LasHeader().pack())
        raw[:4] = b"XXXX"
        with pytest.raises(LasFormatError, match="signature"):
            LasHeader.unpack(bytes(raw))

    def test_truncated(self):
        with pytest.raises(LasFormatError, match="truncated"):
            LasHeader.unpack(b"LASF")

    def test_invalid_format(self):
        with pytest.raises(LasFormatError):
            LasHeader(point_format=9)

    def test_invalid_scale(self):
        with pytest.raises(LasFormatError):
            LasHeader(scale=(0.0, 0.01, 0.01))


def sample_points(n=500, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "x": rng.uniform(10_000, 10_100, n),
        "y": rng.uniform(450_000, 450_100, n),
        "z": rng.uniform(-3, 40, n),
        "intensity": rng.integers(0, 4000, n).astype(np.uint16),
        "return_number": rng.integers(1, 4, n).astype(np.uint8),
        "number_of_returns": np.full(n, 3, dtype=np.uint8),
        "classification": rng.choice(
            np.array([2, 3, 6, 9], dtype=np.uint8), n
        ),
        "gps_time": np.sort(rng.uniform(0, 3600, n)),
        "red": rng.integers(0, 65535, n).astype(np.uint16),
        "green": rng.integers(0, 65535, n).astype(np.uint16),
        "blue": rng.integers(0, 65535, n).astype(np.uint16),
        "scan_angle": rng.integers(-20, 20, n).astype(np.int16),
    }


class TestLasRoundTrip:
    @pytest.mark.parametrize("fmt", [0, 1, 2, 3])
    def test_write_read_all_formats(self, tmp_path, fmt):
        pts = sample_points()
        path = tmp_path / f"t{fmt}.las"
        header = write_las(path, pts, point_format=fmt)
        back_header, cols = read_las(path)
        assert back_header.n_points == 500
        assert back_header.point_format == fmt
        # Coordinates round-trip to within half a scale step (0.01).
        np.testing.assert_allclose(cols["x"], pts["x"], atol=0.006)
        np.testing.assert_allclose(cols["y"], pts["y"], atol=0.006)
        np.testing.assert_allclose(cols["z"], pts["z"], atol=0.006)
        np.testing.assert_array_equal(cols["intensity"], pts["intensity"])
        np.testing.assert_array_equal(
            cols["classification"], pts["classification"]
        )
        if fmt in (1, 3):
            np.testing.assert_array_equal(cols["gps_time"], pts["gps_time"])
        if fmt in (2, 3):
            np.testing.assert_array_equal(cols["red"], pts["red"])

    def test_header_bbox_matches_data(self, tmp_path):
        pts = sample_points()
        path = tmp_path / "t.las"
        write_las(path, pts)
        header, cols = read_las(path)
        assert header.min_xyz[0] == pytest.approx(cols["x"].min())
        assert header.max_xyz[0] == pytest.approx(cols["x"].max())
        assert header.min_xyz[2] == pytest.approx(cols["z"].min())

    def test_read_header_only(self, tmp_path):
        path = tmp_path / "t.las"
        write_las(path, sample_points())
        header = read_header(path)
        assert header.n_points == 500

    def test_missing_file(self, tmp_path):
        with pytest.raises(LasFormatError):
            read_las(tmp_path / "ghost.las")

    def test_truncated_point_data(self, tmp_path):
        path = tmp_path / "t.las"
        write_las(path, sample_points())
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])
        with pytest.raises(LasFormatError, match="truncated"):
            read_las(path)

    def test_missing_xyz_raises(self, tmp_path):
        with pytest.raises(LasFormatError, match="missing"):
            write_las(tmp_path / "t.las", {"x": np.zeros(1), "y": np.zeros(1)})

    def test_coordinate_overflow_detected(self, tmp_path):
        pts = {
            "x": np.array([0.0, 1e9]),
            "y": np.zeros(2),
            "z": np.zeros(2),
        }
        with pytest.raises(LasFormatError, match="overflow"):
            write_las(tmp_path / "t.las", pts, offset=(0.0, 0.0, 0.0))

    def test_read_intervals(self, tmp_path):
        from repro.las.reader import read_intervals

        pts = sample_points(n=100)
        path = tmp_path / "t.las"
        write_las(path, pts)
        _h, cols = read_intervals(path, [(10, 20), (50, 55)])
        assert cols["x"].shape == (15,)
        np.testing.assert_array_equal(
            cols["_record_index"], list(range(10, 20)) + list(range(50, 55))
        )
        full = read_las(path)[1]
        np.testing.assert_array_equal(cols["x"][:10], full["x"][10:20])
        np.testing.assert_array_equal(
            cols["intensity"][10:], full["intensity"][50:55]
        )

    def test_read_intervals_empty_and_degenerate(self, tmp_path):
        from repro.las.reader import read_intervals

        path = tmp_path / "t.las"
        write_las(path, sample_points(n=30))
        _h, cols = read_intervals(path, [])
        assert cols["x"].shape == (0,)
        _h, cols = read_intervals(path, [(5, 5)])
        assert cols["x"].shape == (0,)

    def test_read_intervals_out_of_range(self, tmp_path):
        from repro.las.reader import read_intervals

        path = tmp_path / "t.las"
        write_las(path, sample_points(n=30))
        with pytest.raises(LasFormatError, match="out of range"):
            read_intervals(path, [(10, 99)])

    def test_iter_points_chunks(self, tmp_path):
        pts = sample_points(n=1000)
        path = tmp_path / "t.las"
        write_las(path, pts)
        chunks = list(iter_points(path, chunk_size=300))
        assert [c[1]["x"].shape[0] for c in chunks] == [300, 300, 300, 100]
        merged = np.concatenate([c[1]["x"] for c in chunks])
        np.testing.assert_allclose(merged, pts["x"], atol=0.006)


class TestLazRoundTrip:
    @pytest.mark.parametrize("fmt", [0, 1, 2, 3])
    def test_write_read(self, tmp_path, fmt):
        pts = sample_points(seed=3)
        path = tmp_path / f"t{fmt}.laz"
        write_laz(path, pts, point_format=fmt)
        header, cols = read_laz(path)
        assert header.n_points == 500
        np.testing.assert_allclose(cols["x"], pts["x"], atol=0.006)
        np.testing.assert_array_equal(cols["intensity"], pts["intensity"])
        if fmt in (1, 3):
            np.testing.assert_array_equal(cols["gps_time"], pts["gps_time"])

    def test_laz_smaller_than_las(self, tmp_path):
        pts = sample_points(n=20_000, seed=4)
        las_path = tmp_path / "t.las"
        laz_path = tmp_path / "t.laz"
        write_las(las_path, pts)
        write_laz(laz_path, pts)
        assert laz_path.stat().st_size < las_path.stat().st_size

    def test_empty_raises(self, tmp_path):
        with pytest.raises(LasFormatError):
            write_laz(
                tmp_path / "t.laz",
                {"x": np.empty(0), "y": np.empty(0), "z": np.empty(0)},
            )

    def test_corrupt_magic(self, tmp_path):
        path = tmp_path / "t.laz"
        write_laz(path, sample_points())
        raw = bytearray(path.read_bytes())
        raw[HEADER_SIZE : HEADER_SIZE + 4] = b"JUNK"
        path.write_bytes(bytes(raw))
        with pytest.raises(LasFormatError, match="RLAZ"):
            read_laz(path)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 200),
    seed=st.integers(0, 2**31),
    fmt=st.sampled_from([0, 1, 2, 3]),
)
def test_las_round_trip_property(tmp_path_factory, n, seed, fmt):
    """Write -> read reproduces coordinates within quantisation for any
    cloud size, seed and point format."""
    tmp = tmp_path_factory.mktemp("las_prop")
    rng = np.random.default_rng(seed)
    pts = {
        "x": rng.uniform(-1000, 1000, n),
        "y": rng.uniform(-1000, 1000, n),
        "z": rng.uniform(-100, 100, n),
        "intensity": rng.integers(0, 65535, n).astype(np.uint16),
        "classification": rng.integers(0, 32, n).astype(np.uint8),
    }
    path = tmp / f"p{seed % 1000}_{n}_{fmt}.las"
    write_las(path, pts, point_format=fmt)
    _header, cols = read_las(path)
    np.testing.assert_allclose(cols["x"], pts["x"], atol=0.006)
    np.testing.assert_allclose(cols["y"], pts["y"], atol=0.006)
    np.testing.assert_allclose(cols["z"], pts["z"], atol=0.006)
    np.testing.assert_array_equal(cols["intensity"], pts["intensity"])
    np.testing.assert_array_equal(cols["classification"], pts["classification"])
