"""Per-query resource attribution: CPU, allocations, data touched."""

import threading

import numpy as np
import pytest

from repro import Box, PointCloudDB
from repro.engine import parallel
from repro.obs import resources
from repro.obs.resources import ResourceTracker, ResourceUsage


class TestTracker:
    def test_no_tracker_means_no_current(self):
        assert resources.current() is None

    def test_current_inside_context(self):
        with ResourceTracker() as tracker:
            assert resources.current() is tracker
        assert resources.current() is None

    def test_trackers_nest_and_unwind(self):
        with ResourceTracker() as outer:
            with ResourceTracker() as inner:
                assert resources.current() is inner
            assert resources.current() is outer

    def test_caller_cpu_measured_at_exit(self):
        with ResourceTracker() as tracker:
            sum(i * i for i in range(200_000))
        assert tracker.usage.cpu_seconds > 0.0
        assert tracker.usage.worker_cpu_seconds == 0.0

    def test_add_cpu_propagates_to_parents(self):
        with ResourceTracker() as outer:
            with ResourceTracker() as inner:
                inner.add_cpu(0.5)
        assert inner.usage.worker_cpu_seconds == pytest.approx(0.5)
        assert outer.usage.worker_cpu_seconds == pytest.approx(0.5)

    def test_add_touched_propagates_to_parents(self):
        with ResourceTracker() as outer:
            with ResourceTracker() as inner:
                inner.add_touched(rows=10, nbytes=80)
        for tracker in (inner, outer):
            assert tracker.usage.rows_touched == 10
            assert tracker.usage.bytes_touched == 80

    def test_worker_threads_have_their_own_stack(self):
        seen = []
        with ResourceTracker():
            thread = threading.Thread(
                target=lambda: seen.append(resources.current())
            )
            thread.start()
            thread.join()
        assert seen == [None]

    def test_tracemalloc_opt_in_records_peak(self):
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        try:
            with ResourceTracker(trace_malloc=True) as tracker:
                _scratch = bytearray(4 * 1024 * 1024)
        finally:
            if not was_tracing and tracemalloc.is_tracing():
                tracemalloc.stop()
        assert tracker.usage.peak_alloc_bytes >= 4 * 1024 * 1024

    def test_peak_is_none_when_sampling_off(self, monkeypatch):
        import tracemalloc

        monkeypatch.delenv(resources.TRACEMALLOC_ENV, raising=False)
        if tracemalloc.is_tracing():
            pytest.skip("tracemalloc already on in this process")
        with ResourceTracker() as tracker:
            pass
        assert tracker.usage.peak_alloc_bytes is None

    def test_usage_to_dict_is_json_friendly(self):
        usage = ResourceUsage(
            cpu_seconds=0.5, rows_touched=3, bytes_touched=24
        )
        assert usage.to_dict() == {
            "cpu_seconds": 0.5,
            "worker_cpu_seconds": 0.0,
            "peak_alloc_bytes": None,
            "rows_touched": 3,
            "bytes_touched": 24,
            "encoded_bytes": 0,
            "materialized_bytes": 0,
        }


class TestMorselAttribution:
    def test_pooled_workers_report_cpu_to_caller_tracker(self):
        def burn(i):
            return sum(j * j for j in range(50_000))

        with ResourceTracker() as tracker:
            parallel.run_tasks(burn, list(range(16)), threads=4)
        assert tracker.usage.worker_cpu_seconds > 0.0
        assert tracker.usage.cpu_seconds >= tracker.usage.worker_cpu_seconds

    def test_serial_path_attributes_via_caller_only(self):
        with ResourceTracker() as tracker:
            parallel.run_tasks(
                lambda i: sum(j for j in range(50_000)), list(range(8)), threads=1
            )
        # The caller's own clock covers serial work; no double counting.
        assert tracker.usage.worker_cpu_seconds == 0.0
        assert tracker.usage.cpu_seconds > 0.0


class TestQueryIntegration:
    @pytest.fixture(scope="class")
    def db(self):
        db = PointCloudDB()
        db.create_pointcloud("pts")
        rng = np.random.default_rng(11)
        db.load_points(
            "pts",
            {
                "x": rng.uniform(0, 100, 20_000),
                "y": rng.uniform(0, 100, 20_000),
                "z": rng.uniform(0, 10, 20_000),
            },
        )
        return db

    def test_spatial_query_stats_carry_resources(self, db):
        result = db.spatial_select("pts", Box(20, 20, 70, 70))
        usage = result.stats.resources
        assert usage.cpu_seconds > 0.0
        assert usage.rows_touched > 0
        assert usage.bytes_touched > 0

    def test_imprint_skips_cost_nothing(self, db):
        """A query outside the data's bbox touches (almost) no bytes —
        the attribution reflects what the index earned, the paper's
        whole point."""
        hit = db.spatial_select("pts", Box(0, 0, 100, 100))
        miss = db.spatial_select("pts", Box(5000, 5000, 6000, 6000))
        assert len(miss) == 0
        assert (
            miss.stats.resources.bytes_touched
            < hit.stats.resources.bytes_touched
        )

    def test_sql_session_records_last_resources(self, db):
        session_result = db.sql("SELECT avg(z) FROM pts WHERE x < 50")
        assert len(session_result.rows) == 1

    def test_explain_analyze_footer_shows_attribution(self, db):
        text = db.explain_analyze("SELECT count(*) FROM pts WHERE x < 25")
        assert "cpu:" in text
        assert "touched:" in text
        assert "rows" in text

    def test_cpu_seconds_histogram_observes_queries(self, db):
        from repro.obs.metrics import get_registry

        hist = get_registry().histogram("query.cpu_seconds")
        before = hist.snapshot()["count"]
        db.spatial_select("pts", Box(10, 10, 30, 30))
        assert hist.snapshot()["count"] == before + 1
