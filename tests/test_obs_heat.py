"""Workload heat maps: EWMA decay, rasterisation, journal durability."""

import json

import numpy as np
import pytest

from repro import Box, PointCloudDB
from repro.cli import main
from repro.engine.compressed import CompressedColumn
from repro.engine.durable import InjectedCrash
from repro.obs.heat import (
    HEAT_JOURNAL_NAME,
    HeatMap,
    disable_heat,
    enable_heat,
    maybe_heat,
    read_journal,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.queries import get_queries
from tests import faults

DOMAIN = (0.0, 0.0, 100.0, 100.0)


@pytest.fixture(autouse=True)
def _isolate_process_heat():
    """No test leaves the process-wide heat map behind."""
    disable_heat()
    yield
    disable_heat()


def make_heat(**kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return HeatMap(**kwargs)


class TestRecording:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_heat(halflife_s=0)
        with pytest.raises(ValueError):
            make_heat(grid=0)

    def test_record_scan_folds_segment_outcomes(self):
        heat = make_heat()
        heat.record_scan(
            "x",
            probed=[(0, 512, 0), (2, 0, 4096)],
            skipped=[1, 3],
            full=[4],
            table="pts",
        )
        snapshot = heat.snapshot()
        rows = {
            (row["table"], row["column"], row["segment"]): row
            for row in snapshot["segments"]
        }
        assert rows[("pts", "x", 0)]["probes"] == pytest.approx(1.0)
        assert rows[("pts", "x", 0)]["encoded_bytes"] == pytest.approx(512)
        assert rows[("pts", "x", 2)]["materialized_bytes"] == pytest.approx(
            4096
        )
        assert rows[("pts", "x", 1)]["skips"] == pytest.approx(1.0)
        assert rows[("pts", "x", 4)]["fulls"] == pytest.approx(1.0)
        assert snapshot["tables"] == ["pts"]
        # The hottest segment (most bytes) sorts first.
        assert snapshot["segments"][0]["segment"] == 2

    def test_scan_attributes_to_in_flight_query_table(self):
        heat = make_heat()
        with get_queries().track("spatial", detail={"table": "lidar"}):
            heat.record_scan("x", probed=[(0, 100, 0)])
        heat.record_scan("x", probed=[(-1, 0, 100)])  # no query: "?"
        tables = {row["table"] for row in heat.snapshot()["segments"]}
        assert tables == {"lidar", "?"}

    def test_footprint_rasterises_onto_the_grid(self):
        heat = make_heat(grid=4)
        heat.record_footprint(
            "pts", bbox=(0, 0, 49, 49), domain=DOMAIN, nbytes=4000
        )
        extents = heat.snapshot()["extents"]
        cells = {tuple(row["cell"]) for row in extents}
        assert cells == {(0, 0), (0, 1), (1, 0), (1, 1)}
        for row in extents:
            assert row["bytes"] == pytest.approx(1000.0)
            # The query count lands on every touched cell undivided.
            assert row["queries"] == pytest.approx(1.0)

    def test_footprint_covering_domain_touches_every_cell(self):
        heat = make_heat(grid=4)
        heat.record_footprint("pts", bbox=DOMAIN, domain=DOMAIN, nbytes=1600)
        assert len(heat.snapshot()["extents"]) == 16

    def test_degenerate_domain_collapses_to_one_cell(self):
        heat = make_heat(grid=8)
        heat.record_footprint(
            "pts", bbox=(5, 5, 6, 6), domain=(5, 5, 5, 5), nbytes=100
        )
        extents = heat.snapshot()["extents"]
        assert len(extents) == 1
        assert extents[0]["cell"] == [0, 0]

    def test_domain_is_fixed_by_the_first_footprint(self):
        heat = make_heat(grid=4)
        heat.record_footprint(
            "pts", bbox=(0, 0, 10, 10), domain=DOMAIN, nbytes=100
        )
        # A later, different domain must not re-grid accumulated heat.
        heat.record_footprint(
            "pts", bbox=(0, 0, 10, 10), domain=(0, 0, 10, 10), nbytes=100
        )
        assert heat.snapshot()["extents"][0]["bytes"] == pytest.approx(200.0)

    def test_snapshot_sets_gauges(self):
        registry = MetricsRegistry()
        heat = make_heat(registry=registry)
        heat.record_scan("x", probed=[(0, 1000, 0)], table="pts")
        heat.record_footprint(
            "pts", bbox=(0, 0, 10, 10), domain=DOMAIN, nbytes=500
        )
        heat.snapshot()
        gauges = registry.snapshot()["gauges"]
        assert gauges["heat.tables"] == 1.0
        assert gauges["heat.segments"] == 1.0
        # bbox (0,0,10,10) on the default 16-grid spans 2x2 cells.
        assert gauges["heat.extents"] == 4.0
        assert gauges["heat.hottest_segment_bytes"] == pytest.approx(1000.0)
        counters = registry.snapshot()["counters"]
        assert counters["heat.updates"] == 2


class TestDecay:
    def test_heat_halves_after_one_halflife(self):
        heat = make_heat(halflife_s=600.0)
        heat.record_scan("x", probed=[(0, 1000, 0)], table="pts")
        heat.record_footprint(
            "pts", bbox=(0, 0, 10, 10), domain=DOMAIN, nbytes=800
        )
        # Rewind the entries' clocks one half-life: wall-clock decay
        # without sleeping (or monkeypatching time for every thread).
        for entry in heat._segments.values():
            entry.last_ts -= 600.0
        for entry in heat._extents.values():
            entry.last_ts -= 600.0
        snapshot = heat.snapshot()
        assert snapshot["segments"][0]["encoded_bytes"] == pytest.approx(
            500.0, rel=0.01
        )
        total_extent_bytes = sum(
            row["bytes"] for row in snapshot["extents"]
        )
        assert total_extent_bytes == pytest.approx(400.0, rel=0.01)

    def test_fresh_touch_decays_before_accumulating(self):
        heat = make_heat(halflife_s=600.0)
        heat.record_scan("x", probed=[(0, 1000, 0)], table="pts")
        for entry in heat._segments.values():
            entry.last_ts -= 600.0
        heat.record_scan("x", probed=[(0, 1000, 0)], table="pts")
        row = heat.snapshot()["segments"][0]
        assert row["encoded_bytes"] == pytest.approx(1500.0, rel=0.01)


class TestHints:
    def test_hints_rank_extents_by_bytes(self):
        heat = make_heat(grid=4)
        heat.record_footprint(
            "pts", bbox=(0, 0, 10, 10), domain=DOMAIN, nbytes=100
        )
        heat.record_footprint(
            "pts", bbox=(80, 80, 90, 90), domain=DOMAIN, nbytes=9000
        )
        hints = heat.hints(top=5)
        assert hints["version"] == 1
        assert hints["grid"] == 4
        ranked = hints["hints"]
        assert [hint["rank"] for hint in ranked] == [1, 2]
        assert ranked[0]["cell"] == [3, 3]
        assert ranked[0]["bytes"] > ranked[1]["bytes"]
        # The extent is the cell's bbox on the fixed lattice.
        assert ranked[0]["extent"] == [75.0, 75.0, 100.0, 100.0]
        # JSON-clean: the sharding consumer reads this off disk.
        assert json.loads(json.dumps(hints)) == hints

    def test_hints_empty_without_footprints(self):
        heat = make_heat()
        heat.record_scan("x", probed=[(0, 10, 0)], table="pts")
        assert heat.hints()["hints"] == []


class TestJournal:
    def make_populated(self, tmp_path, **kwargs):
        heat = make_heat(journal=tmp_path / HEAT_JOURNAL_NAME, **kwargs)
        heat.record_scan(
            "x", probed=[(0, 512, 0)], skipped=[1], full=[2], table="pts"
        )
        heat.record_footprint(
            "pts", bbox=(10, 10, 40, 40), domain=DOMAIN, nbytes=2048
        )
        return heat

    def test_flush_and_restore_round_trip(self, tmp_path):
        heat = self.make_populated(tmp_path, halflife_s=120.0, grid=8)
        path = heat.flush()
        assert path == tmp_path / HEAT_JOURNAL_NAME
        records = read_journal(path)
        assert len(records) == 1
        restored = HeatMap.from_journal(path, registry=MetricsRegistry())
        # Tunables come back from the journal, not the defaults.
        assert restored.halflife_s == 120.0
        assert restored.grid == 8
        original = heat.snapshot()
        revived = restored.snapshot()
        assert revived["tables"] == original["tables"]
        assert len(revived["segments"]) == len(original["segments"])
        assert len(revived["extents"]) == len(original["extents"])
        assert revived["segments"][0]["encoded_bytes"] == pytest.approx(
            original["segments"][0]["encoded_bytes"], rel=0.01
        )
        assert restored.hints()["hints"][0]["cell"] == heat.hints()["hints"][0]["cell"]

    def test_flush_without_journal_is_a_noop(self):
        heat = make_heat()
        assert heat.flush() is None
        assert heat.maybe_flush() is None

    def test_maybe_flush_honours_the_interval(self, tmp_path):
        heat = self.make_populated(tmp_path, flush_interval_s=3600.0)
        assert heat.maybe_flush() is None  # interval not yet elapsed
        heat.flush_interval_s = 0.0
        assert heat.maybe_flush() is not None
        assert len(read_journal(heat.journal)) == 1

    def test_torn_tail_is_skipped_on_read(self, tmp_path):
        heat = self.make_populated(tmp_path)
        heat.flush()
        heat.flush()
        with open(heat.journal, "ab") as fh:
            fh.write(b'{"ts": 1.0, "segments": [["pts", "x"')  # torn line
        records = read_journal(heat.journal)
        assert len(records) == 2
        # And the torn journal still restores and ranks hints.
        restored = HeatMap.from_journal(heat.journal, registry=MetricsRegistry())
        assert restored.hints()["hints"]

    def test_read_journal_missing_file(self, tmp_path):
        assert read_journal(tmp_path / "absent.jsonl") == []

    def test_restore_skips_malformed_rows(self):
        heat = make_heat()
        heat.restore(
            {
                "ts": 1.0,
                "segments": [["pts", "x"], ["pts", "x", 0, 1, 0, 0, 10, 0]],
                "extents": [["pts", 0], ["pts", 0, 0, 1, 10]],
            }
        )
        snapshot = heat.snapshot()
        assert len(snapshot["segments"]) == 1
        assert len(snapshot["extents"]) == 1


class TestJournalCrashSafety:
    """Satellite: the heat journal through the crash-fault harness."""

    def test_flush_fires_the_append_crash_points(self, tmp_path):
        heat = TestJournal().make_populated(tmp_path)
        events = faults.crash_points_hit(heat.flush)
        assert events == ["durable.heat.append_begin", "durable.heat.appended"]

    def test_crash_before_append_loses_only_the_open_window(self, tmp_path):
        heat = TestJournal().make_populated(tmp_path)
        heat.flush()
        with faults.crash_at("durable.heat.append_begin") as state:
            with pytest.raises(InjectedCrash):
                heat.flush()
        assert state["seen"] == 1
        assert len(read_journal(heat.journal)) == 1

    def test_crash_at_every_step_keeps_closed_windows(self, tmp_path):
        heat = TestJournal().make_populated(tmp_path)
        heat.flush()  # one closed window on disk before any injection
        steps = len(faults.crash_points_hit(heat.flush))
        closed = len(read_journal(heat.journal))
        for step in range(steps):
            # Mutate between attempts so every window is distinct.
            heat.record_scan("x", probed=[(step, 64, 0)], table="pts")
            with faults.crash_at_step(step):
                with pytest.raises(InjectedCrash):
                    heat.flush()
            records = read_journal(heat.journal)
            # Never fewer intact windows than before the crash: a death
            # mid-append tears at most the final (open) line.
            assert len(records) >= closed
            closed = len(records)
            # And whatever survived round-trips into ranked hints.
            restored = HeatMap.from_journal(
                heat.journal, registry=MetricsRegistry()
            )
            hints = restored.hints()
            assert hints["version"] == 1
            assert hints["hints"][0]["extent"]
            assert json.loads(json.dumps(hints))["hints"] == hints["hints"]
        # The step after the fsync'd write is durable even though the
        # flush call itself died.
        assert closed >= 2


class TestProcessHeat:
    def test_enable_is_idempotent_and_disable_drops(self):
        assert maybe_heat() is None
        heat = enable_heat()
        assert maybe_heat() is heat
        assert enable_heat() is heat
        disable_heat()
        assert maybe_heat() is None

    def test_enable_restores_from_an_existing_journal(self, tmp_path):
        journal = tmp_path / HEAT_JOURNAL_NAME
        seed = make_heat(journal=journal)
        seed.record_scan("x", probed=[(0, 256, 0)], table="pts")
        seed.flush()
        heat = enable_heat(journal=journal)
        snapshot = heat.snapshot()
        assert snapshot["tables"] == ["pts"]
        assert snapshot["segments"][0]["encoded_bytes"] > 0


class TestScanIntegration:
    def test_compressed_scan_records_segment_heat(self):
        heat = enable_heat(registry=MetricsRegistry())
        rng = np.random.default_rng(5)
        column = CompressedColumn.from_values(
            "v", rng.integers(0, 100_000, 100_000), segment_rows=8192
        )
        column.range_select(10_000, 12_000)
        rows = heat.snapshot(top=50)["segments"]
        assert rows, "compressed range_select recorded no heat"
        assert {row["column"] for row in rows} == {"v"}
        assert {row["table"] for row in rows} == {"?"}  # no in-flight query
        # Every segment got a verdict: probed, skipped or full-accepted.
        outcomes = sum(
            row["probes"] + row["skips"] + row["fulls"] for row in rows
        )
        assert outcomes == pytest.approx(len(column.blocks))
        assert any(row["bytes"] > 0 for row in rows)

    def test_spatial_query_records_footprint_and_segments(self):
        heat = enable_heat(registry=MetricsRegistry())
        db = PointCloudDB(threads=1)
        db.create_pointcloud("pts")
        rng = np.random.default_rng(9)
        n = 20_000
        db.load_points(
            "pts",
            {
                "x": rng.uniform(0, 100, n),
                "y": rng.uniform(0, 100, n),
                "z": rng.uniform(0, 10, n),
            },
        )
        result = db.spatial_select("pts", Box(10, 10, 30, 30))
        assert len(result) > 0
        snapshot = heat.snapshot(top=50)
        assert "pts" in snapshot["tables"]
        # The query's bbox footprint landed on the extent grid...
        assert snapshot["extents"]
        assert {row["table"] for row in snapshot["extents"]} == {"pts"}
        # ...and the column scans attributed to the query's table.
        assert any(row["table"] == "pts" for row in snapshot["segments"])
        hints = heat.hints()
        assert hints["hints"][0]["table"] == "pts"


class TestHeatCli:
    @pytest.fixture()
    def journal(self, tmp_path):
        heat = make_heat(journal=tmp_path / HEAT_JOURNAL_NAME)
        heat.record_scan(
            "x", probed=[(0, 512, 0), (-1, 0, 2048)], skipped=[1], table="pts"
        )
        heat.record_footprint(
            "pts", bbox=(10, 10, 40, 40), domain=DOMAIN, nbytes=4096
        )
        heat.flush()
        return heat.journal

    def test_report_renders_segments_and_extents(self, journal, capsys):
        assert main(["heat", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "hot segments" in out
        assert "hot extents" in out
        assert "pts" in out
        assert "all" in out  # segment -1 renders as a whole-column scan

    def test_accepts_a_database_directory(self, journal, capsys):
        assert main(["heat", str(journal.parent)]) == 0
        assert "hot segments" in capsys.readouterr().out

    def test_hints_emits_ranked_json(self, journal, capsys):
        assert main(["heat", str(journal), "--hints"]) == 0
        hints = json.loads(capsys.readouterr().out)
        assert hints["version"] == 1
        assert [hint["rank"] for hint in hints["hints"]] == list(
            range(1, len(hints["hints"]) + 1)
        )
        assert all("extent" in hint for hint in hints["hints"])

    def test_json_snapshot(self, journal, capsys):
        assert main(["heat", str(journal), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["enabled"] is True
        assert snapshot["tables"] == ["pts"]

    def test_missing_journal_fails(self, tmp_path, capsys):
        assert main(["heat", str(tmp_path / "nope.jsonl")]) == 1
        assert "no journal" in capsys.readouterr().err

    def test_journal_with_no_intact_windows_fails(self, tmp_path, capsys):
        path = tmp_path / HEAT_JOURNAL_NAME
        path.write_bytes(b'{"torn": ')
        assert main(["heat", str(path)]) == 1
        assert "no intact windows" in capsys.readouterr().err
