"""Failure injection: corrupt inputs must fail loudly and cleanly.

Databases live or die by how they handle broken inputs.  These tests feed
corrupted files, malformed WKT/SQL and random bytes into every parser in
the repo and require a *typed* error — never a silent wrong answer, an
unrelated exception (AttributeError, struct.error...), or a hang.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.storage import StorageError, dump_array, load_array, load_table
from repro.gis.wkt import WKTError, loads as wkt_loads
from repro.las.header import HEADER_SIZE, LasFormatError, LasHeader
from repro.las.laz import read_laz, write_laz
from repro.las.reader import read_las
from repro.las.writer import write_las
from repro.lastools.lasindex import LasIndex
from repro.sql.executor import Session, SqlExecutionError
from repro.sql.functions import SqlFunctionError
from repro.sql.lexer import SqlSyntaxError


def sample_points(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "x": rng.uniform(0, 100, n),
        "y": rng.uniform(0, 100, n),
        "z": rng.uniform(0, 10, n),
    }


class TestCorruptLas:
    def test_bitflips_in_header(self, tmp_path):
        path = tmp_path / "t.las"
        write_las(path, sample_points())
        raw = bytearray(path.read_bytes())
        # Flip bytes across the header; every corruption must either still
        # parse (flipped a benign field) or raise LasFormatError.
        for offset in (0, 4, 24, 25, 96, 104, 105, 107):
            mutated = bytearray(raw)
            mutated[offset] ^= 0xFF
            path.write_bytes(bytes(mutated))
            try:
                read_las(path)
            except LasFormatError:
                pass

    def test_zero_length_file(self, tmp_path):
        path = tmp_path / "empty.las"
        path.write_bytes(b"")
        with pytest.raises(LasFormatError):
            read_las(path)

    def test_header_only_file_with_claimed_points(self, tmp_path):
        header = LasHeader(point_format=0, n_points=1000)
        path = tmp_path / "lying.las"
        path.write_bytes(header.pack())
        with pytest.raises(LasFormatError, match="truncated"):
            read_las(path)

    def test_laz_field_corruption(self, tmp_path):
        path = tmp_path / "t.laz"
        write_laz(path, sample_points())
        raw = bytearray(path.read_bytes())
        raw[HEADER_SIZE + 50] ^= 0xFF  # somewhere in the first payload
        path.write_bytes(bytes(raw))
        # zlib corruption must surface as the repo's typed format error,
        # never a raw zlib.error or a numpy shape explosion.
        with pytest.raises(LasFormatError, match="corrupt LAZ"):
            read_laz(path)

    @settings(max_examples=50, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=400))
    def test_random_bytes_never_crash_header_parser(self, junk):
        try:
            LasHeader.unpack(junk)
        except LasFormatError:
            pass


class TestCorruptColumnFiles:
    def test_flipped_type_code(self, tmp_path):
        path = tmp_path / "c.col"
        dump_array(np.arange(10, dtype=np.int64), path)
        raw = bytearray(path.read_bytes())
        raw[6] = 0xEE  # type code byte
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError):
            load_array(path)

    def test_table_with_missing_column_file(self, tmp_path):
        from repro.engine.storage import save_table
        from repro.engine.table import Table

        t = Table("pts", [("a", "int64"), ("b", "int64")])
        t.append_columns({"a": [1, 2], "b": [3, 4]})
        save_table(t, tmp_path / "pts")
        (tmp_path / "pts" / "b.col").unlink()
        with pytest.raises(StorageError):
            load_table(tmp_path / "pts")

    def test_table_with_corrupt_schema_json(self, tmp_path):
        from repro.engine.storage import save_table
        from repro.engine.table import Table

        t = Table("pts", [("a", "int64")])
        t.append_columns({"a": [1]})
        save_table(t, tmp_path / "pts")
        (tmp_path / "pts" / "schema.json").write_text("{not json")
        with pytest.raises(Exception):
            load_table(tmp_path / "pts")

    @settings(max_examples=50, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=200))
    def test_random_bytes_never_crash_column_loader(self, junk, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("colfuzz")
        path = tmp / "junk.col"
        path.write_bytes(junk)
        try:
            load_array(path)
        except StorageError:
            pass


class TestTruncatedPersistentFiles:
    """Truncations and bit flips at sampled offsets must raise typed
    errors — ``StorageError`` / ``ImprintPersistError`` — never a raw
    ``struct.error`` or a silently wrong array (the v2 ``.col`` / v3
    ``.imprint`` checksums cover the whole file, header included)."""

    _col_raw = None
    _imprint_raw = None

    @classmethod
    def _column_bytes(cls) -> bytes:
        if cls._col_raw is None:
            import tempfile
            from pathlib import Path

            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / "v.col"
                dump_array(np.arange(64, dtype=np.int64), path)
                cls._col_raw = path.read_bytes()
        return cls._col_raw

    @classmethod
    def _imprint_bytes(cls) -> bytes:
        if cls._imprint_raw is None:
            import tempfile
            from pathlib import Path

            from repro.core.imprints.persist import save_segmented
            from repro.core.imprints.segments import SegmentedImprints
            from repro.engine.column import Column

            rng = np.random.default_rng(3)
            column = Column.from_array("x", rng.uniform(0, 100, 2048))
            imprint = SegmentedImprints(column, segment_rows=512, threads=1)
            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / "x.imprint"
                save_segmented(imprint, "pts", "x", path)
                cls._imprint_raw = path.read_bytes()
        return cls._imprint_raw

    @settings(max_examples=60, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
    def test_truncated_col_raises_typed_error(self, fraction, tmp_path_factory):
        raw = self._column_bytes()
        cut = int(fraction * len(raw))
        path = tmp_path_factory.mktemp("trunc") / "v.col"
        path.write_bytes(raw[:cut])
        with pytest.raises(StorageError):
            load_array(path)

    @settings(max_examples=60, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
    def test_flipped_col_byte_raises_typed_error(
        self, fraction, tmp_path_factory
    ):
        raw = bytearray(self._column_bytes())
        raw[int(fraction * len(raw))] ^= 0xFF
        path = tmp_path_factory.mktemp("flip") / "v.col"
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError):
            load_array(path)

    @settings(max_examples=60, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
    def test_truncated_imprint_raises_typed_error(
        self, fraction, tmp_path_factory
    ):
        from repro.core.imprints.persist import (
            ImprintPersistError,
            verify_segmented_file,
        )

        raw = self._imprint_bytes()
        cut = int(fraction * len(raw))
        path = tmp_path_factory.mktemp("itrunc") / "x.imprint"
        path.write_bytes(raw[:cut])
        with pytest.raises(ImprintPersistError):
            verify_segmented_file(path)

    @settings(max_examples=60, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
    def test_flipped_imprint_byte_raises_typed_error(
        self, fraction, tmp_path_factory
    ):
        from repro.core.imprints.persist import (
            ImprintPersistError,
            verify_segmented_file,
        )

        raw = bytearray(self._imprint_bytes())
        raw[int(fraction * len(raw))] ^= 0xFF
        path = tmp_path_factory.mktemp("iflip") / "x.imprint"
        path.write_bytes(bytes(raw))
        with pytest.raises(ImprintPersistError):
            verify_segmented_file(path)

    def test_truncated_imprint_never_loads_over_a_column(
        self, tmp_path
    ):
        from repro.core.imprints.persist import (
            ImprintPersistError,
            load_segmented,
        )
        from repro.engine.column import Column

        raw = self._imprint_bytes()
        rng = np.random.default_rng(3)
        column = Column.from_array("x", rng.uniform(0, 100, 2048))
        for cut in (0, 3, 17, len(raw) // 2, len(raw) - 1):
            path = tmp_path / f"cut_{cut}.imprint"
            path.write_bytes(raw[:cut])
            with pytest.raises(ImprintPersistError):
                load_segmented(column, path)


class TestCorruptLaxIndex:
    def test_truncated_json(self, tmp_path):
        rng = np.random.default_rng(0)
        from repro.gis.envelope import Box

        index = LasIndex(
            rng.uniform(0, 10, 100), rng.uniform(0, 10, 100), Box(0, 0, 10, 10)
        )
        path = tmp_path / "t.lax"
        index.save(path)
        path.write_text(path.read_text()[:-30])
        with pytest.raises(Exception):
            LasIndex.load(path)

    def test_clip_ignores_missing_index(self, tmp_path):
        """lasclip must fall back to full decode when .lax is absent."""
        from repro.lastools.clip import LasClip
        from repro.gis.envelope import Box

        write_las(tmp_path / "t.las", sample_points(seed=2))
        clip = LasClip(tmp_path, use_index=True)
        out, stats = clip.query(Box(0, 0, 100, 100))
        assert stats.n_results == 200
        assert stats.index_hits == 0


class TestMalformedWkt:
    @settings(max_examples=80, deadline=None)
    @given(text=st.text(max_size=60))
    def test_random_text_never_crashes(self, text):
        try:
            wkt_loads(text)
        except (WKTError, Exception) as exc:
            # Only repo-typed or geometry errors may surface.
            assert not isinstance(exc, (MemoryError, RecursionError))


class TestMalformedSql:
    @pytest.fixture()
    def session(self):
        from repro.engine.table import Table

        t = Table("t", [("a", "int64")])
        t.append_columns({"a": [1, 2, 3]})
        session = Session()
        session.register_table(t, point_columns=None)
        return session

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t WHERE ST_Contains(1, 2)",
            "SELECT nonexistent(a) FROM t",
            "SELECT a FROM missing_table",
            "SELECT missing_col FROM t",
            "SELECT sum(a, a) FROM t",
            "SELECT a FROM t ORDER BY 99",
        ],
    )
    def test_semantic_errors_are_typed(self, session, sql):
        with pytest.raises((SqlExecutionError, SqlFunctionError)):
            session.execute(sql)

    @settings(max_examples=80, deadline=None)
    @given(
        text=st.text(
            alphabet="SELECT FROM WHERE abc123*(),.'<>= ", max_size=80
        )
    )
    def test_token_soup_never_crashes(self, text):
        session = _fuzz_session()
        try:
            session.execute(text)
        except (SqlSyntaxError, SqlExecutionError, SqlFunctionError, WKTError):
            pass
        except (ValueError, TypeError, KeyError):
            # Geometry/function argument errors are acceptable; anything
            # like RecursionError or AttributeError is not.
            pass


_FUZZ_SESSION = None


def _fuzz_session() -> Session:
    """A small shared session for the SQL fuzzer (hypothesis-safe)."""
    global _FUZZ_SESSION
    if _FUZZ_SESSION is None:
        from repro.engine.table import Table

        t = Table("t", [("a", "int64")])
        t.append_columns({"a": [1, 2, 3]})
        _FUZZ_SESSION = Session()
        _FUZZ_SESSION.register_table(t, point_columns=None)
    return _FUZZ_SESSION
