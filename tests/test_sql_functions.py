"""Direct unit tests for the SQL function registry."""

import numpy as np
import pytest

from repro.gis.geometry import LineString, Point, Polygon
from repro.sql.functions import (
    SqlFunctionError,
    call,
    st_area,
    st_contains,
    st_distance,
    st_dwithin,
    st_geomfromtext,
    st_length,
    st_makeenvelope,
    st_point,
    st_x,
    st_y,
)

SQUARE = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])


class TestConstructors:
    def test_st_point_scalar(self):
        p = st_point(1.0, 2.0)
        assert isinstance(p, Point)
        assert (p.x, p.y) == (1.0, 2.0)

    def test_st_point_vectorised(self):
        pts = st_point(np.array([1.0, 3.0]), np.array([2.0, 4.0]))
        assert pts.dtype == object
        assert pts[1] == Point(3.0, 4.0)

    def test_st_point_broadcast_scalar_array(self):
        pts = st_point(5.0, np.array([1.0, 2.0]))
        assert pts[0] == Point(5.0, 1.0)
        assert pts[1] == Point(5.0, 2.0)

    def test_st_geomfromtext(self):
        geom = st_geomfromtext("POINT (1 2)")
        assert isinstance(geom, Point)

    def test_st_makeenvelope(self):
        env = st_makeenvelope(0, 0, 4, 2)
        assert env.area == 8.0

    def test_mismatched_lengths(self):
        with pytest.raises(SqlFunctionError):
            st_point(np.array([1.0]), np.array([1.0, 2.0]))


class TestAccessors:
    def test_st_x_y(self):
        assert st_x(Point(3, 4)) == 3
        assert st_y(Point(3, 4)) == 4

    def test_st_x_requires_point(self):
        with pytest.raises(SqlFunctionError):
            st_x(SQUARE)

    def test_st_area_and_length(self):
        assert st_area(SQUARE) == 100.0
        assert st_area(Point(0, 0)) == 0.0
        assert st_length(LineString([(0, 0), (3, 4)])) == 5.0

    def test_st_distance(self):
        assert st_distance(SQUARE, Point(13, 0)) == 3.0
        assert st_distance(Point(13, 0), SQUARE) == 3.0

    def test_st_distance_needs_a_point(self):
        with pytest.raises(SqlFunctionError):
            st_distance(SQUARE, SQUARE)


class TestPredicates:
    def test_st_contains(self):
        assert st_contains(SQUARE, Point(5, 5))
        assert not st_contains(SQUARE, Point(50, 5))

    def test_st_contains_vectorised_returns_bool_array(self):
        pts = st_point(np.array([5.0, 50.0]), np.array([5.0, 5.0]))
        out = st_contains(SQUARE, pts)
        assert out.dtype == bool
        assert out.tolist() == [True, False]

    def test_st_contains_rejects_non_point(self):
        with pytest.raises(SqlFunctionError):
            st_contains(SQUARE, SQUARE)

    def test_st_dwithin_argument_order(self):
        line = LineString([(0, 0), (10, 0)])
        assert st_dwithin(line, Point(5, 2), 3)
        assert st_dwithin(Point(5, 2), line, 3)  # swapped is fine

    def test_st_dwithin_two_areal_rejected(self):
        with pytest.raises(SqlFunctionError):
            st_dwithin(SQUARE, SQUARE, 1)


class TestDispatch:
    def test_call_by_name(self):
        assert call("abs", [-3.0]) == 3.0
        assert call("sqrt", [9.0]) == 3.0

    def test_call_vectorised_numeric(self):
        out = call("round", [np.array([1.4, 1.6])])
        np.testing.assert_array_equal(out, [1.0, 2.0])

    def test_unknown_function(self):
        with pytest.raises(SqlFunctionError):
            call("st_buffer", [SQUARE, 1.0])
