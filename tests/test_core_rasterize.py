"""Tests for elevation products (DSM/DTM/CHM, hillshade)."""

import numpy as np
import pytest

from repro.core.rasterize import (
    ElevationGrid,
    chm,
    dsm,
    dtm,
    hillshade,
    rasterize,
)
from repro.datasets.lidar import (
    CLASS_BUILDING,
    CLASS_GROUND,
    generate_points,
    make_scene,
)
from repro.gis.envelope import Box

EXTENT = Box(0, 0, 100, 100)


class TestRasterize:
    def test_grid_shape_from_cell_size(self):
        xs = np.array([5.0])
        grid = rasterize(xs, xs, xs, EXTENT, cell_size=10.0)
        assert grid.shape == (10, 10)
        assert grid.cell_size == (10.0, 10.0)

    def test_max_aggregation(self):
        xs = np.array([5.0, 5.0, 55.0])
        ys = np.array([5.0, 5.0, 55.0])
        zs = np.array([1.0, 9.0, 4.0])
        grid = rasterize(xs, ys, zs, EXTENT, 10.0, how="max")
        assert grid.values[0, 0] == 9.0
        assert grid.values[5, 5] == 4.0

    def test_min_and_mean(self):
        xs = np.array([5.0, 5.0])
        ys = np.array([5.0, 5.0])
        zs = np.array([2.0, 6.0])
        assert rasterize(xs, ys, zs, EXTENT, 10.0, how="min").values[0, 0] == 2.0
        assert rasterize(xs, ys, zs, EXTENT, 10.0, how="mean").values[0, 0] == 4.0

    def test_empty_cells_are_nan(self):
        xs = np.array([5.0])
        grid = rasterize(xs, xs, xs, EXTENT, 10.0)
        assert np.isnan(grid.values[9, 9])
        assert grid.coverage == pytest.approx(1 / 100)

    def test_bad_cell_size(self):
        with pytest.raises(ValueError):
            rasterize(np.array([1.0]), np.array([1.0]), np.array([1.0]), EXTENT, 0)

    def test_unknown_aggregation(self):
        with pytest.raises(ValueError):
            rasterize(
                np.array([1.0]),
                np.array([1.0]),
                np.array([1.0]),
                EXTENT,
                10.0,
                how="median",
            )

    def test_row0_is_south(self):
        grid = rasterize(
            np.array([5.0]), np.array([95.0]), np.array([7.0]), EXTENT, 10.0
        )
        assert grid.values[9, 0] == 7.0  # north row is the last


class TestFillAndDiff:
    def test_hole_filling(self):
        values = np.full((5, 5), np.nan)
        values[2, 2] = 10.0
        grid = ElevationGrid(values=values, extent=EXTENT).filled(iterations=1)
        assert grid.values[2, 3] == 10.0
        assert np.isnan(grid.values[0, 0])  # too far for one pass

    def test_fill_converges(self):
        values = np.full((5, 5), np.nan)
        values[0, 0] = 3.0
        grid = ElevationGrid(values=values, extent=EXTENT).filled(iterations=10)
        assert np.isfinite(grid.values).all()

    def test_minus_shape_mismatch(self):
        a = ElevationGrid(np.zeros((2, 2)), EXTENT)
        b = ElevationGrid(np.zeros((3, 3)), EXTENT)
        with pytest.raises(ValueError):
            a.minus(b)


class TestElevationModels:
    @pytest.fixture(scope="class")
    def cloud(self):
        scene = make_scene(EXTENT, seed=9, n_buildings=25)
        return generate_points(scene, 60_000, seed=9)

    def test_dsm_above_dtm(self, cloud):
        surface = dsm(cloud["x"], cloud["y"], cloud["z"], EXTENT, 5.0)
        terrain = dtm(
            cloud["x"], cloud["y"], cloud["z"], cloud["classification"], EXTENT, 5.0
        )
        both = np.isfinite(surface.values) & np.isfinite(terrain.values)
        assert both.any()
        # The surface envelope dominates the terrain almost everywhere
        # (tiny inversions possible where DTM is interpolated).
        frac_above = (
            surface.values[both] >= terrain.values[both] - 0.5
        ).mean()
        assert frac_above > 0.95

    def test_chm_positive_over_canopy(self, cloud):
        canopy = chm(
            cloud["x"], cloud["y"], cloud["z"], cloud["classification"], EXTENT, 5.0
        )
        finite = canopy.values[np.isfinite(canopy.values)]
        assert (finite >= 0).all()
        assert finite.max() > 3.0  # trees/buildings stick out

    def test_dsm_catches_buildings(self, cloud):
        surface = dsm(cloud["x"], cloud["y"], cloud["z"], EXTENT, 5.0)
        bld = cloud["classification"] == CLASS_BUILDING
        gnd = cloud["classification"] == CLASS_GROUND
        if bld.any() and gnd.any():
            assert np.nanmax(surface.values) >= cloud["z"][bld].max() - 0.01


class TestHillshade:
    def test_flat_surface_constant(self):
        grid = ElevationGrid(np.zeros((10, 10)), EXTENT)
        shade = hillshade(grid)
        assert np.allclose(shade, shade[0, 0])
        assert 0.0 <= shade[0, 0] <= 1.0

    def test_slope_orientation(self):
        # Values drop west->east: an east-facing slope.  A sun in the east
        # (azimuth 90) must light it more than its west-facing mirror,
        # and vice versa for a western sun.
        east_facing = ElevationGrid(
            np.tile(np.linspace(10, 0, 20), (20, 1)), EXTENT
        )
        west_facing = ElevationGrid(east_facing.values[:, ::-1], EXTENT)
        assert (
            hillshade(east_facing, azimuth_deg=90).mean()
            > hillshade(west_facing, azimuth_deg=90).mean()
        )
        assert (
            hillshade(west_facing, azimuth_deg=270).mean()
            > hillshade(east_facing, azimuth_deg=270).mean()
        )

    def test_nan_cells_neutral(self):
        values = np.zeros((5, 5))
        values[2, 2] = np.nan
        shade = hillshade(ElevationGrid(values, EXTENT))
        assert shade[2, 2] == 0.5

    def test_range(self):
        rng = np.random.default_rng(0)
        grid = ElevationGrid(rng.uniform(0, 50, (30, 30)), EXTENT)
        shade = hillshade(grid)
        assert shade.min() >= 0.0 and shade.max() <= 1.0
