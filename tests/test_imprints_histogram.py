"""Unit and property tests for repro.core.imprints.histogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.imprints.histogram import (
    MAX_BINS,
    BinScheme,
    build_bins,
)


class TestBinScheme:
    def test_bin_of_semantics(self):
        scheme = BinScheme(borders=np.array([10.0, 20.0, 30.0]))
        assert scheme.n_bins == 4
        np.testing.assert_array_equal(
            scheme.bin_of(np.array([5.0, 10.0, 15.0, 30.0, 99.0])),
            [0, 1, 1, 3, 3],
        )

    def test_single_bin(self):
        scheme = BinScheme(borders=np.empty(0))
        assert scheme.n_bins == 1
        assert scheme.bin_of(np.array([1.0, -5.0])).tolist() == [0, 0]
        assert scheme.range_mask(0, 10) == 1

    def test_range_mask_inner(self):
        scheme = BinScheme(borders=np.array([10.0, 20.0, 30.0]))
        # [12, 18] lies entirely in bin 1.
        assert scheme.range_mask(12, 18) == 0b0010
        # [12, 25] spans bins 1-2.
        assert scheme.range_mask(12, 25) == 0b0110

    def test_range_mask_unbounded(self):
        scheme = BinScheme(borders=np.array([10.0, 20.0, 30.0]))
        assert scheme.range_mask(None, None) == 0b1111
        assert scheme.range_mask(None, 5) == 0b0001
        assert scheme.range_mask(35, None) == 0b1000

    def test_range_mask_on_border(self):
        scheme = BinScheme(borders=np.array([10.0, 20.0]))
        # lo exactly on a border: values >= 10 start at bin 1.
        assert scheme.range_mask(10, 10) == 0b010

    def test_range_mask_outside_domain(self):
        scheme = BinScheme(borders=np.array([10.0, 20.0]))
        # Extremes land in the first/last catch-all bins, never mask 0.
        assert scheme.range_mask(-100, -50) == 0b001
        assert scheme.range_mask(100, 200) == 0b100


class TestBuildBins:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            build_bins(np.empty(0))

    def test_bad_max_bins(self):
        with pytest.raises(ValueError):
            build_bins(np.arange(10), max_bins=0)
        with pytest.raises(ValueError):
            build_bins(np.arange(10), max_bins=65)

    def test_constant_column_single_bin(self):
        scheme = build_bins(np.full(100, 7.0))
        assert scheme.n_bins == 1

    def test_low_cardinality_fewer_bins(self):
        values = np.tile(np.arange(5, dtype=np.int64), 100)
        scheme = build_bins(values)
        # 5 distinct values -> 4 bins (largest power of two <= 5).
        assert scheme.n_bins == 4

    def test_bins_capped_at_64(self):
        values = np.arange(100_000, dtype=np.float64)
        scheme = build_bins(values)
        assert scheme.n_bins <= MAX_BINS

    def test_borders_strictly_ascending(self):
        rng = np.random.default_rng(1)
        scheme = build_bins(rng.normal(size=10_000))
        assert np.all(np.diff(scheme.borders) > 0)

    def test_equi_depth_on_skewed_data(self):
        rng = np.random.default_rng(2)
        values = rng.exponential(scale=1.0, size=50_000)
        scheme = build_bins(values, sample_size=50_000)
        bins = scheme.bin_of(values)
        counts = np.bincount(bins, minlength=scheme.n_bins)
        # Equi-depth: no bin may be grossly overloaded despite heavy skew.
        assert counts.max() < 6 * values.shape[0] / scheme.n_bins

    def test_deterministic_given_rng(self):
        values = np.random.default_rng(3).normal(size=10_000)
        a = build_bins(values, rng=np.random.default_rng(42))
        b = build_bins(values, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a.borders, b.borders)


@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=1,
        max_size=400,
    ),
    lo=st.floats(-1e6, 1e6),
    span=st.floats(0, 1e6),
)
def test_range_mask_covers_all_in_range_bins(values, lo, span):
    """Every value inside [lo, hi] must fall in a bin set in the mask.

    This is the no-false-negative property of the bin mask, on which the
    entire imprint correctness rests.
    """
    arr = np.array(values, dtype=np.float64)
    scheme = build_bins(arr)
    hi = lo + span
    mask = scheme.range_mask(lo, hi)
    in_range = arr[(arr >= lo) & (arr <= hi)]
    if in_range.shape[0] == 0:
        return
    bins = scheme.bin_of(in_range)
    assert all(mask >> int(b) & 1 for b in bins)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=400),
)
def test_bin_of_is_monotone(values):
    arr = np.sort(np.array(values, dtype=np.int64))
    scheme = build_bins(arr)
    bins = scheme.bin_of(arr)
    assert np.all(np.diff(bins) >= 0)
    assert bins.min() >= 0
    assert bins.max() < scheme.n_bins
