"""The telemetry HTTP endpoint: routes, content types, lifecycle."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import Box, PointCloudDB
from repro.obs.context import ObsContext
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.openmetrics import CONTENT_TYPE, render
from repro.obs.queries import QueryRegistry
from repro.obs.server import (
    DEFAULT_PORT,
    METRICS_PORT_ENV,
    TelemetryServer,
    resolve_port,
)
from repro.obs.trace import Tracer


def get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode("utf-8")


@pytest.fixture
def server():
    """A telemetry server on an OS-picked port, with its own registry."""
    registry = MetricsRegistry()
    tracer = Tracer(enabled=False)
    srv = TelemetryServer(
        port=0, registry=registry, tracer=tracer, queries=QueryRegistry()
    )
    srv.start()
    yield srv
    srv.stop()


class TestRoutes:
    def test_metrics_serves_openmetrics(self, server):
        server.registry.counter("sql.queries").inc(3)
        status, headers, body = get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        assert "sql_queries_total 3" in body
        assert body.endswith("# EOF\n")

    def test_healthz_without_callback(self, server):
        status, headers, body = get(server.url + "/healthz")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        assert json.loads(body) == {"status": "ok"}

    def test_healthz_merges_callback_fields(self):
        srv = TelemetryServer(
            port=0,
            registry=MetricsRegistry(),
            tracer=Tracer(enabled=False),
            health=lambda: {"tables": {"points": 42}},
        )
        with srv:
            _status, _headers, body = get(srv.url + "/healthz")
        assert json.loads(body) == {"status": "ok", "tables": {"points": 42}}

    def test_healthz_failing_callback_returns_500(self):
        def broken():
            raise RuntimeError("catalog unreadable")

        srv = TelemetryServer(
            port=0,
            registry=MetricsRegistry(),
            tracer=Tracer(enabled=False),
            health=broken,
        )
        with srv:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(srv.url + "/healthz")
        assert err.value.code == 500
        payload = json.loads(err.value.read().decode("utf-8"))
        assert payload["status"] == "error"
        assert "catalog unreadable" in payload["error"]

    def test_debug_trace_returns_recent_spans(self, server):
        tracer = server.tracer
        tracer.enable()
        for i in range(3):
            with tracer.span(f"q{i}"):
                pass
        _status, headers, body = get(server.url + "/debug/trace?last=2")
        assert headers["Content-Type"].startswith("application/json")
        names = [span["name"] for span in json.loads(body)]
        assert names == ["q1", "q2"]

    def test_debug_trace_rejects_bad_last(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/debug/trace?last=soon")
        assert err.value.code == 400

    def test_debug_queries_shows_active_then_recent(self, server):
        with server.queries.track("spatial", detail={"table": "pts"}) as query:
            _status, headers, body = get(server.url + "/debug/queries")
            assert headers["Content-Type"].startswith("application/json")
            snapshot = json.loads(body)
            assert [q["query_id"] for q in snapshot["active"]] == [
                query.query_id
            ]
            assert snapshot["active"][0]["status"] == "running"
        _status, _headers, body = get(server.url + "/debug/queries")
        snapshot = json.loads(body)
        assert snapshot["active"] == []
        assert snapshot["recent"][0]["query_id"] == query.query_id
        assert snapshot["recent"][0]["status"] == "finished"

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/nope")
        assert err.value.code == 404
        assert "/debug/queries" in err.value.read().decode("utf-8")

    def test_requests_increment_counter(self, server):
        counter = server.registry.counter("obs.http_requests")
        before = counter.value
        get(server.url + "/metrics")
        get(server.url + "/healthz")
        assert counter.value - before == 2


class TestLifecycle:
    def test_port_zero_binds_a_real_port(self, server):
        assert server.port > 0
        assert server.running

    def test_server_up_gauge_tracks_lifecycle(self):
        registry = MetricsRegistry()
        srv = TelemetryServer(
            port=0, registry=registry, tracer=Tracer(enabled=False)
        )
        gauge = registry.gauge("obs.server_up")
        srv.start()
        assert gauge.value == 1.0
        srv.stop()
        assert gauge.value == 0.0

    def test_stop_is_idempotent(self):
        srv = TelemetryServer(
            port=0, registry=MetricsRegistry(), tracer=Tracer(enabled=False)
        )
        srv.start()
        srv.stop()
        srv.stop()
        assert not srv.running

    def test_start_twice_is_a_noop(self, server):
        port = server.port
        assert server.start() is server
        assert server.port == port

    def test_defaults_to_global_singletons(self):
        srv = TelemetryServer()
        assert srv.registry is get_registry()


class TestConcurrentScrapes:
    """The endpoint under fire: parallel scrapers during live queries."""

    N_SCRAPERS = 6

    @pytest.fixture
    def context_db(self):
        context = ObsContext.fresh(enabled=False)
        db = PointCloudDB(obs=context)
        db.create_pointcloud("pts")
        rng = np.random.default_rng(13)
        db.load_points(
            "pts",
            {
                "x": rng.uniform(0, 100, 10_000),
                "y": rng.uniform(0, 100, 10_000),
                "z": rng.uniform(0, 10, 10_000),
            },
        )
        return context, db

    def test_scrapes_never_fail_while_queries_run(self, context_db):
        context, db = context_db
        server = TelemetryServer(
            port=0,
            registry=context.registry,
            tracer=context.tracer,
            queries=context.queries,
        )
        failures = []
        request_counts = [0] * self.N_SCRAPERS
        stop = threading.Event()

        def scrape(index, path):
            while not stop.is_set():
                try:
                    status, _headers, body = get(server.url + path)
                except Exception as exc:  # any 5xx/parse failure is a bug
                    failures.append((path, repr(exc)))
                    return
                request_counts[index] += 1
                if status != 200:
                    failures.append((path, status))
                    return
                if path == "/metrics" and not body.endswith("# EOF\n"):
                    failures.append((path, "truncated render"))
                    return
                if path == "/debug/queries":
                    snapshot = json.loads(body)
                    if set(snapshot) != {"active", "recent"}:
                        failures.append((path, "malformed snapshot"))
                        return

        with server:
            scrapers = [
                threading.Thread(
                    target=scrape,
                    args=(i, "/metrics" if i % 2 == 0 else "/debug/queries"),
                )
                for i in range(self.N_SCRAPERS)
            ]
            for thread in scrapers:
                thread.start()
            for _ in range(10):
                db.spatial_select("pts", Box(20, 20, 80, 80))
            stop.set()
            for thread in scrapers:
                thread.join(timeout=30.0)
            assert failures == []
            # Consistency: every successful scrape was counted exactly once.
            counter = context.registry.counter("obs.http_requests")
            assert counter.value == sum(request_counts)
        assert all(count > 0 for count in request_counts)

    def test_render_is_byte_stable_when_quiet(self, context_db):
        context, db = context_db
        db.spatial_select("pts", Box(20, 20, 80, 80))
        assert render(context.registry) == render(context.registry)


class TestPortResolution:
    def test_explicit_port_wins(self, monkeypatch):
        monkeypatch.setenv(METRICS_PORT_ENV, "1234")
        assert resolve_port(4321) == 4321

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(METRICS_PORT_ENV, "1234")
        assert resolve_port(None) == 1234

    def test_default_when_unset_or_garbage(self, monkeypatch):
        monkeypatch.delenv(METRICS_PORT_ENV, raising=False)
        assert resolve_port(None) == DEFAULT_PORT
        monkeypatch.setenv(METRICS_PORT_ENV, "lots")
        assert resolve_port(None) == DEFAULT_PORT
