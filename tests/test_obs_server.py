"""The telemetry HTTP endpoint: routes, content types, lifecycle."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.openmetrics import CONTENT_TYPE
from repro.obs.server import (
    DEFAULT_PORT,
    METRICS_PORT_ENV,
    TelemetryServer,
    resolve_port,
)
from repro.obs.trace import Tracer


def get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode("utf-8")


@pytest.fixture
def server():
    """A telemetry server on an OS-picked port, with its own registry."""
    registry = MetricsRegistry()
    tracer = Tracer(enabled=False)
    srv = TelemetryServer(port=0, registry=registry, tracer=tracer)
    srv.start()
    yield srv
    srv.stop()


class TestRoutes:
    def test_metrics_serves_openmetrics(self, server):
        server.registry.counter("sql.queries").inc(3)
        status, headers, body = get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        assert "sql_queries_total 3" in body
        assert body.endswith("# EOF\n")

    def test_healthz_without_callback(self, server):
        status, headers, body = get(server.url + "/healthz")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        assert json.loads(body) == {"status": "ok"}

    def test_healthz_merges_callback_fields(self):
        srv = TelemetryServer(
            port=0,
            registry=MetricsRegistry(),
            tracer=Tracer(enabled=False),
            health=lambda: {"tables": {"points": 42}},
        )
        with srv:
            _status, _headers, body = get(srv.url + "/healthz")
        assert json.loads(body) == {"status": "ok", "tables": {"points": 42}}

    def test_healthz_failing_callback_returns_500(self):
        def broken():
            raise RuntimeError("catalog unreadable")

        srv = TelemetryServer(
            port=0,
            registry=MetricsRegistry(),
            tracer=Tracer(enabled=False),
            health=broken,
        )
        with srv:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(srv.url + "/healthz")
        assert err.value.code == 500
        payload = json.loads(err.value.read().decode("utf-8"))
        assert payload["status"] == "error"
        assert "catalog unreadable" in payload["error"]

    def test_debug_trace_returns_recent_spans(self, server):
        tracer = server.tracer
        tracer.enable()
        for i in range(3):
            with tracer.span(f"q{i}"):
                pass
        _status, headers, body = get(server.url + "/debug/trace?last=2")
        assert headers["Content-Type"].startswith("application/json")
        names = [span["name"] for span in json.loads(body)]
        assert names == ["q1", "q2"]

    def test_debug_trace_rejects_bad_last(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/debug/trace?last=soon")
        assert err.value.code == 400

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/nope")
        assert err.value.code == 404

    def test_requests_increment_counter(self, server):
        counter = server.registry.counter("obs.http_requests")
        before = counter.value
        get(server.url + "/metrics")
        get(server.url + "/healthz")
        assert counter.value - before == 2


class TestLifecycle:
    def test_port_zero_binds_a_real_port(self, server):
        assert server.port > 0
        assert server.running

    def test_server_up_gauge_tracks_lifecycle(self):
        registry = MetricsRegistry()
        srv = TelemetryServer(
            port=0, registry=registry, tracer=Tracer(enabled=False)
        )
        gauge = registry.gauge("obs.server_up")
        srv.start()
        assert gauge.value == 1.0
        srv.stop()
        assert gauge.value == 0.0

    def test_stop_is_idempotent(self):
        srv = TelemetryServer(
            port=0, registry=MetricsRegistry(), tracer=Tracer(enabled=False)
        )
        srv.start()
        srv.stop()
        srv.stop()
        assert not srv.running

    def test_start_twice_is_a_noop(self, server):
        port = server.port
        assert server.start() is server
        assert server.port == port

    def test_defaults_to_global_singletons(self):
        srv = TelemetryServer()
        assert srv.registry is get_registry()


class TestPortResolution:
    def test_explicit_port_wins(self, monkeypatch):
        monkeypatch.setenv(METRICS_PORT_ENV, "1234")
        assert resolve_port(4321) == 4321

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(METRICS_PORT_ENV, "1234")
        assert resolve_port(None) == 1234

    def test_default_when_unset_or_garbage(self, monkeypatch):
        monkeypatch.delenv(METRICS_PORT_ENV, raising=False)
        assert resolve_port(None) == DEFAULT_PORT
        monkeypatch.setenv(METRICS_PORT_ENV, "lots")
        assert resolve_port(None) == DEFAULT_PORT
