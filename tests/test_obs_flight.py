"""The crash flight recorder: event buffer, hooks, post-mortem dumps."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.flight import (
    FLIGHT_DIR_ENV,
    FlightRecorder,
    flight_directory,
    get_flight_recorder,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture
def recorder(tmp_path):
    """An isolated recorder dumping into tmp_path; uninstalled after."""
    rec = FlightRecorder(
        directory=tmp_path,
        tracer=Tracer(enabled=False),
        registry=MetricsRegistry(),
    )
    yield rec
    rec.uninstall()


def read_dump(tmp_path):
    dumps = sorted(tmp_path.glob("flight-*.json"))
    assert len(dumps) == 1
    return json.loads(dumps[0].read_text())


class TestBlackBox:
    def test_note_buffers_events_oldest_first(self, recorder):
        recorder.note("load.start", tiles=4)
        recorder.note("load.done")
        events = recorder.events()
        assert [e["event"] for e in events] == ["load.start", "load.done"]
        assert events[0]["tiles"] == 4
        assert events[0]["ts"] <= events[1]["ts"]

    def test_buffer_is_bounded(self, tmp_path):
        rec = FlightRecorder(max_events=8, directory=tmp_path)
        for i in range(20):
            rec.note(f"e{i}")
        events = rec.events()
        assert len(events) == 8
        assert events[0]["event"] == "e12"


class TestDump:
    def test_dump_writes_reason_events_and_deltas(self, recorder):
        recorder.install()
        recorder.registry.counter("sql.queries").inc(3)
        recorder.note("phase", stage="load")
        path = recorder.dump("test_reason")
        assert path is not None and path.exists()
        record = json.loads(path.read_text())
        assert record["reason"] == "test_reason"
        assert record["pid"] > 0
        assert [e["event"] for e in record["events"]] == [
            "flight.installed",
            "phase",
        ]
        assert record["counter_deltas"] == {"sql.queries": 3}
        assert "metrics" in record
        assert recorder.registry.counter("flight.dumps").value == 1

    def test_dump_embeds_exception_and_spans(self, recorder):
        recorder.tracer.enable()
        with recorder.tracer.span("doomed.query"):
            pass
        try:
            raise ValueError("bad bbox")
        except ValueError as exc:
            path = recorder.dump("unhandled_exception", exc)
        record = json.loads(path.read_text())
        assert record["exception"]["type"] == "ValueError"
        assert record["exception"]["message"] == "bad bbox"
        assert any(
            "bad bbox" in line for line in record["exception"]["traceback"]
        )
        assert [s["name"] for s in record["spans"]] == ["doomed.query"]

    def test_dump_snapshots_the_query_registry(self, tmp_path):
        from repro.obs.queries import QueryRegistry

        queries = QueryRegistry()
        rec = FlightRecorder(
            directory=tmp_path,
            tracer=Tracer(enabled=False),
            registry=MetricsRegistry(),
            queries=queries,
        )
        with queries.track("spatial", detail={"table": "pts"}) as query:
            path = rec.dump("mid_query")
        record = json.loads(path.read_text())
        active = record["queries"]["active"]
        assert [q["query_id"] for q in active] == [query.query_id]
        assert active[0]["kind"] == "spatial"
        assert active[0]["status"] == "running"
        # A later dump sees it retired into the recent ring.
        path = rec.dump("post_query")
        record = json.loads(path.read_text())
        assert record["queries"]["active"] == []
        assert record["queries"]["recent"][0]["status"] == "finished"

    def test_dump_never_raises(self, tmp_path):
        rec = FlightRecorder(directory=tmp_path / "file-not-dir")
        (tmp_path / "file-not-dir").write_text("in the way")
        assert rec.dump("blocked") is None

    def test_directory_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path / "dumps"))
        assert flight_directory() == tmp_path / "dumps"
        monkeypatch.delenv(FLIGHT_DIR_ENV)
        assert flight_directory() == type(tmp_path)(".")


class TestHooks:
    def test_install_chains_excepthook(self, recorder, tmp_path):
        seen = []
        original = sys.excepthook
        sys.excepthook = lambda *args: seen.append(args)
        try:
            recorder.install()
            exc = RuntimeError("worker died")
            sys.excepthook(RuntimeError, exc, None)
        finally:
            recorder.uninstall()
            sys.excepthook = original
        # The previous hook still ran (tracebacks keep printing)...
        assert len(seen) == 1
        assert seen[0][1] is exc
        # ...and the dump landed.
        record = read_dump(tmp_path)
        assert record["reason"] == "unhandled_exception"
        assert record["exception"]["type"] == "RuntimeError"

    def test_keyboard_interrupt_does_not_dump(self, recorder, tmp_path):
        original = sys.excepthook
        sys.excepthook = lambda *args: None
        try:
            recorder.install()
            sys.excepthook(KeyboardInterrupt, KeyboardInterrupt(), None)
        finally:
            recorder.uninstall()
            sys.excepthook = original
        assert list(tmp_path.glob("flight-*.json")) == []

    def test_install_is_idempotent(self, recorder):
        original = sys.excepthook
        try:
            recorder.install()
            hook = sys.excepthook
            recorder.install()
            assert sys.excepthook is hook
            assert (
                sum(
                    1
                    for e in recorder.events()
                    if e["event"] == "flight.installed"
                )
                == 1
            )
        finally:
            recorder.uninstall()
            sys.excepthook = original

    def test_uninstall_restores_previous_hook(self, recorder):
        original = sys.excepthook
        recorder.install()
        recorder.uninstall()
        assert sys.excepthook is original

    def test_cli_crash_leaves_a_dump(self, tmp_path):
        """End to end: an unhandled exception in a repro-gis process
        writes a flight dump before the traceback prints."""
        script = (
            "import sys; sys.argv = ['repro-gis', 'info']\n"
            "from repro.obs.flight import get_flight_recorder\n"
            "rec = get_flight_recorder(); rec.install()\n"
            "rec.note('cli.start', argv=sys.argv)\n"
            "raise RuntimeError('simulated crash')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            cwd=tmp_path,
            env={
                **os.environ,
                "PYTHONPATH": str(Path(__file__).parent.parent / "src"),
                FLIGHT_DIR_ENV: str(tmp_path),
            },
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode != 0
        assert "simulated crash" in result.stderr  # traceback still printed
        record = read_dump(tmp_path)
        assert record["reason"] == "unhandled_exception"
        assert record["exception"]["message"] == "simulated crash"
        assert any(e["event"] == "cli.start" for e in record["events"])


class TestSingleton:
    def test_get_flight_recorder_is_stable(self):
        assert get_flight_recorder() is get_flight_recorder()
