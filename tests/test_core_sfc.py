"""Unit and property tests for repro.core.sfc (Morton + Hilbert curves)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sfc import (
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
    quantize,
    sort_order,
)


class TestQuantize:
    def test_maps_range_to_cells(self):
        cells = quantize(np.array([0.0, 50.0, 100.0]), 0.0, 100.0, order=4)
        assert cells[0] == 0
        assert cells[1] == 8
        assert cells[2] == 15  # upper bound clips into last cell

    def test_out_of_range_clipped(self):
        cells = quantize(np.array([-10.0, 110.0]), 0.0, 100.0, order=4)
        assert cells.tolist() == [0, 15]

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            quantize(np.array([1.0]), 5.0, 5.0)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            quantize(np.array([1.0]), 0.0, 1.0, order=0)


class TestMorton:
    def test_known_codes(self):
        # Classic 2x2 Z pattern: (0,0)=0 (1,0)=1 (0,1)=2 (1,1)=3
        x = np.array([0, 1, 0, 1])
        y = np.array([0, 0, 1, 1])
        assert morton_encode(x, y, order=1).tolist() == [0, 1, 2, 3]

    def test_interleaving(self):
        assert morton_encode(np.array([3]), np.array([5]), order=3)[0] == 0b100111

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([4]), np.array([0]), order=2)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([1, 2]), np.array([1]), order=4)


class TestHilbert:
    def test_known_order1(self):
        # Order-1 Hilbert visits (0,0) (0,1) (1,1) (1,0).
        x = np.array([0, 0, 1, 1])
        y = np.array([0, 1, 1, 0])
        assert hilbert_encode(x, y, order=1).tolist() == [0, 1, 2, 3]

    def test_curve_is_a_bijection(self):
        order = 4
        n = 1 << order
        xx, yy = np.meshgrid(np.arange(n), np.arange(n))
        codes = hilbert_encode(xx.ravel(), yy.ravel(), order=order)
        assert np.unique(codes).shape[0] == n * n
        assert codes.min() == 0 and codes.max() == n * n - 1

    def test_curve_is_continuous(self):
        """Consecutive Hilbert codes are 4-adjacent cells — the locality
        property that makes Hilbert-sorted blocks compress well."""
        order = 5
        codes = np.arange((1 << order) ** 2, dtype=np.uint64)
        x, y = hilbert_decode(codes, order=order)
        steps = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert (steps == 1).all()

    def test_morton_is_not_continuous(self):
        """Contrast: Z-order jumps; documents why Hilbert exists."""
        order = 5
        codes = np.arange((1 << order) ** 2, dtype=np.uint64)
        x, y = morton_decode(codes, order=order)
        steps = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert steps.max() > 1


class TestSortOrder:
    def test_permutation(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 100, 500)
        y = rng.uniform(0, 100, 500)
        for curve in ("morton", "hilbert"):
            perm = sort_order(x, y, 0, 100, 0, 100, curve=curve)
            assert np.sort(perm).tolist() == list(range(500))

    def test_sorted_points_cluster(self):
        """After SFC sort, consecutive points are spatially close on average."""
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 100, 2000)
        y = rng.uniform(0, 100, 2000)
        perm = sort_order(x, y, 0, 100, 0, 100, curve="hilbert")
        xs, ys = x[perm], y[perm]
        sorted_step = np.hypot(np.diff(xs), np.diff(ys)).mean()
        raw_step = np.hypot(np.diff(x), np.diff(y)).mean()
        assert sorted_step < raw_step / 5

    def test_unknown_curve(self):
        with pytest.raises(ValueError):
            sort_order(np.array([1.0]), np.array([1.0]), 0, 10, 0, 10, curve="peano")


@settings(max_examples=60, deadline=None)
@given(
    cells=st.lists(
        st.tuples(st.integers(0, (1 << 12) - 1), st.integers(0, (1 << 12) - 1)),
        min_size=1,
        max_size=100,
    ),
    order=st.sampled_from([12, 16, 20]),
)
def test_morton_round_trip(cells, order):
    x = np.array([c[0] for c in cells], dtype=np.int64)
    y = np.array([c[1] for c in cells], dtype=np.int64)
    dx, dy = morton_decode(morton_encode(x, y, order), order)
    np.testing.assert_array_equal(dx, x)
    np.testing.assert_array_equal(dy, y)


@settings(max_examples=60, deadline=None)
@given(
    cells=st.lists(
        st.tuples(st.integers(0, (1 << 10) - 1), st.integers(0, (1 << 10) - 1)),
        min_size=1,
        max_size=100,
    ),
    order=st.sampled_from([10, 12, 16]),
)
def test_hilbert_round_trip(cells, order):
    x = np.array([c[0] for c in cells], dtype=np.int64)
    y = np.array([c[1] for c in cells], dtype=np.int64)
    dx, dy = hilbert_decode(hilbert_encode(x, y, order), order)
    np.testing.assert_array_equal(dx, x)
    np.testing.assert_array_equal(dy, y)
