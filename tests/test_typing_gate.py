"""The strict-typing gate: `mypy --strict` on the annotated packages.

Skipped when mypy is not installed (it is a `dev` extra, not a runtime
dependency); the CI `check` job installs it and runs the same command.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy", reason="strict-typing gate needs the mypy dev extra")

REPO = Path(__file__).resolve().parent.parent
PACKAGES = [
    "src/repro/engine",
    "src/repro/core/imprints",
    "src/repro/obs",
    "src/repro/serve",
    "src/repro/analysis",
]


def test_strict_typing_gate() -> None:
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", *PACKAGES],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
