"""Tests for the bench harness and workloads."""

import numpy as np
import pytest

from repro.bench.harness import (
    Report,
    best_of,
    format_table,
    human_seconds,
    speedup,
    timer,
)
from repro.bench.workloads import (
    circle_polygon,
    irregular_polygon,
    selectivity_sweep,
    standard_queries,
)
from repro.gis.envelope import Box
from repro.gis.predicates import geometry_envelope


class TestHarness:
    def test_timer_measures(self):
        with timer() as t:
            sum(range(10000))
        assert t.seconds > 0
        assert t.millis == pytest.approx(t.seconds * 1000)

    def test_best_of(self):
        calls = []
        best = best_of(lambda: calls.append(1), repeats=4)
        assert len(calls) == 4
        assert best >= 0

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long_name", 12.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_report_emit(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        report = Report("E9", "demo", headers=["a"], rows=[])
        report.add_row(1)
        report.note("a note")
        report.emit()
        out = capsys.readouterr().out
        assert "E9: demo" in out
        assert (tmp_path / "E9.txt").exists()

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_human_seconds(self):
        assert human_seconds(10) == "10.0 s"
        assert "min" in human_seconds(600)
        assert "hours" in human_seconds(20_000)
        assert "days" in human_seconds(10 * 86400)


class TestWorkloads:
    EXTENT = Box(0, 0, 1000, 800)

    def test_standard_queries_cover_types(self):
        specs = standard_queries(self.EXTENT)
        names = {spec.name for spec in specs}
        assert {"rect_small", "rect_medium", "rect_large"} <= names
        assert any(spec.predicate == "dwithin" for spec in specs)

    def test_queries_within_extent(self):
        for spec in standard_queries(self.EXTENT):
            env = geometry_envelope(spec.geometry)
            assert env.intersects(self.EXTENT)

    def test_rect_sizes_ordered(self):
        specs = {s.name: s for s in standard_queries(self.EXTENT)}
        small = specs["rect_small"].geometry.area
        medium = specs["rect_medium"].geometry.area
        large = specs["rect_large"].geometry.area
        assert small < medium < large
        assert large == pytest.approx(0.25 * self.EXTENT.area)

    def test_circle_polygon_area(self):
        circle = circle_polygon(0, 0, 10, segments=256)
        assert circle.area == pytest.approx(np.pi * 100, rel=0.01)

    def test_irregular_polygon_deterministic(self):
        a = irregular_polygon(0, 0, 10, seed=3)
        b = irregular_polygon(0, 0, 10, seed=3)
        np.testing.assert_array_equal(a.shell, b.shell)

    def test_selectivity_sweep_monotone(self):
        specs = selectivity_sweep(self.EXTENT)
        areas = [spec.geometry.area for spec in specs]
        assert areas == sorted(areas)
