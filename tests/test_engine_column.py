"""Unit tests for repro.engine.column."""

import numpy as np
import pytest

from repro.engine.column import Column, ColumnTypeError, resolve_type


class TestResolveType:
    def test_known_names(self):
        assert resolve_type("float64") == np.dtype(np.float64)
        assert resolve_type("uint16") == np.dtype(np.uint16)

    def test_numpy_dtype_passthrough(self):
        assert resolve_type(np.dtype(np.int32)) == np.dtype(np.int32)

    def test_unknown_name_raises(self):
        with pytest.raises(ColumnTypeError):
            resolve_type("varchar")

    def test_unsupported_dtype_raises(self):
        with pytest.raises(ColumnTypeError):
            resolve_type(np.dtype("complex128"))


class TestColumnBasics:
    def test_empty_column(self):
        col = Column("x", "float64")
        assert len(col) == 0
        assert col.nbytes == 0
        assert col.values.shape == (0,)

    def test_append_returns_first_oid(self):
        col = Column("x", "int64")
        assert col.append([1, 2, 3]) == 0
        assert col.append([4]) == 3
        assert list(col.values) == [1, 2, 3, 4]

    def test_append_scalar(self):
        col = Column("x", "int64")
        col.append(7)
        assert list(col.values) == [7]

    def test_initial_data(self):
        col = Column("x", "float64", data=[1.5, 2.5])
        assert list(col.values) == [1.5, 2.5]

    def test_from_array_copies(self):
        arr = np.array([1, 2, 3], dtype=np.int32)
        col = Column.from_array("a", arr)
        arr[0] = 99
        assert col.values[0] == 1
        assert col.type_name == "int32"

    def test_growth_beyond_initial_capacity(self):
        col = Column("x", "int32")
        for batch_start in range(0, 5000, 100):
            col.append(np.arange(batch_start, batch_start + 100, dtype=np.int32))
        assert len(col) == 5000
        np.testing.assert_array_equal(col.values, np.arange(5000, dtype=np.int32))

    def test_values_view_is_readonly(self):
        col = Column("x", "int64", data=[1, 2])
        with pytest.raises(ValueError):
            col.values[0] = 5

    def test_nbytes(self):
        col = Column("x", "float64", data=np.zeros(10))
        assert col.nbytes == 80


class TestColumnTyping:
    def test_safe_cast_int_to_wider(self):
        col = Column("x", "int64")
        col.append(np.array([1, 2], dtype=np.int32))
        assert col.values.dtype == np.int64

    def test_reject_float_into_int(self):
        col = Column("x", "int32")
        with pytest.raises(ColumnTypeError):
            col.append(np.array([1.5, 2.5]))

    def test_reject_2d(self):
        col = Column("x", "int32")
        with pytest.raises(ColumnTypeError):
            col.append(np.zeros((2, 2), dtype=np.int32))

    def test_int_into_float_is_allowed(self):
        col = Column("x", "float64")
        col.append(np.array([1, 2], dtype=np.int32))
        assert col.values.dtype == np.float64


class TestColumnAccess:
    def test_take(self):
        col = Column("x", "int64", data=[10, 20, 30, 40])
        np.testing.assert_array_equal(
            col.take(np.array([3, 0])), np.array([40, 10])
        )

    def test_minmax(self):
        col = Column("x", "float64", data=[3.0, -1.0, 2.0])
        assert col.minmax() == (-1.0, 3.0)

    def test_minmax_empty_raises(self):
        with pytest.raises(ValueError):
            Column("x", "float64").minmax()
