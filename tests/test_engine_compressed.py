"""Tests for the segmented compressed execution format
(repro.engine.compressed) and its dispatch from the select operators.

Parity is the whole contract: a packed select must return exactly the
oids the plain scan returns, serial and morsel-parallel alike, while the
scan stats prove it skipped what the zone maps let it skip.
"""

import numpy as np
import pytest

from repro.engine.column import Column
from repro.engine.compressed import CompressedColumn, ScanStats
from repro.engine.select import range_select, theta_select
from repro.engine.table import Table
from repro.obs.resources import ResourceTracker

THETA_OPS = ["==", "!=", "<", "<=", ">", ">="]


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(23)
    # Sorted-ish blocks so zone maps have something to prune.
    parts = [
        np.sort(rng.integers(lo, lo + 5000, 20_000))
        for lo in (0, 40_000, 80_000, 120_000)
    ]
    return np.concatenate(parts).astype(np.int64)


@pytest.fixture(scope="module")
def packed(values):
    return CompressedColumn.from_values("v", values, segment_rows=8192)


def plain_range(values, lo, hi, lo_inc=True, hi_inc=True):
    mask = np.ones(values.shape[0], dtype=bool)
    if lo is not None:
        mask &= (values >= lo) if lo_inc else (values > lo)
    if hi is not None:
        mask &= (values <= hi) if hi_inc else (values < hi)
    return np.flatnonzero(mask).astype(np.int64)


class TestCompressedColumn:
    def test_segmentation(self, packed, values):
        assert packed.n_rows == values.shape[0]
        assert len(packed.blocks) == -(-values.shape[0] // 8192)
        assert sum(b.count for b in packed.blocks) == values.shape[0]

    def test_decode_all_round_trips(self, packed, values):
        np.testing.assert_array_equal(packed.decode_all(), values)

    def test_take_crosses_segments(self, packed, values):
        oids = np.array([0, 8191, 8192, 50_000, values.shape[0] - 1])
        np.testing.assert_array_equal(packed.take(oids), values[oids])

    def test_compresses(self, packed):
        assert packed.nbytes < packed.plain_nbytes / 2

    @pytest.mark.parametrize("threads", [1, 4])
    def test_range_select_parity(self, packed, values, threads):
        cases = [
            (41_000, 43_000, True, True),
            (0, 200_000, True, True),
            (-10, -1, True, True),
            (None, 42_000, True, False),
            (119_999, None, False, True),
        ]
        for lo, hi, lo_inc, hi_inc in cases:
            got = packed.range_select(lo, hi, lo_inc, hi_inc, threads=threads)
            np.testing.assert_array_equal(
                got, plain_range(values, lo, hi, lo_inc, hi_inc)
            )

    @pytest.mark.parametrize("threads", [1, 4])
    @pytest.mark.parametrize("op", THETA_OPS)
    def test_theta_select_parity(self, packed, values, op, threads):
        fn = {
            "==": np.equal,
            "!=": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }[op]
        constant = int(values[12_345])
        got = packed.theta_select(op, constant, threads=threads)
        np.testing.assert_array_equal(
            got, np.flatnonzero(fn(values, constant)).astype(np.int64)
        )

    def test_zone_pruning_stats(self, packed):
        stats = ScanStats()
        packed.range_select(41_000, 43_000, stats=stats)
        # Values 41k-43k live only in the second quarter's segments.
        assert stats.segments_skipped > 0
        assert stats.segments_probed > 0
        assert stats.packed_probes == stats.segments_probed
        assert stats.encoded_bytes < packed.plain_nbytes / 2

    def test_all_skip_costs_nothing(self, packed):
        stats = ScanStats()
        result = packed.range_select(10**9, 2 * 10**9, stats=stats)
        assert result.shape == (0,)
        assert stats.segments_probed == 0
        assert stats.encoded_bytes == 0
        assert stats.materialized_bytes == 0

    def test_full_segments_short_circuit(self, packed, values):
        stats = ScanStats()
        result = packed.range_select(None, None, stats=stats)
        assert result.shape[0] == values.shape[0]
        assert stats.segments_probed == 0
        assert stats.segments_full == len(packed.blocks)

    def test_row_count_mismatch_rejected(self, values):
        with pytest.raises(ValueError):
            CompressedColumn(
                "v",
                "int64",
                8192,
                int(values.shape[0]) + 1,
                CompressedColumn.from_values("v", values, 8192).blocks,
            )


class TestColumnMirror:
    def test_pack_and_drop(self, values):
        col = Column("v", "int64")
        col.append(values)
        assert col.packed is None
        packed = col.pack(segment_rows=8192)
        assert col.packed is packed
        col.drop_packed()
        assert col.packed is None

    def test_append_invalidates(self, values):
        col = Column("v", "int64")
        col.append(values)
        col.pack(segment_rows=8192)
        col.append(np.array([1], dtype=np.int64))
        assert col.packed is None

    def test_adopt_rejects_wrong_length(self, values):
        col = Column("v", "int64")
        col.append(values[:100])
        mirror = CompressedColumn.from_values("v", values, 8192)
        with pytest.raises(ValueError):
            col.adopt_packed(mirror)


class TestSelectDispatch:
    """engine.select must route through the packed path when (and only
    when) it can, with identical answers either way."""

    @pytest.fixture()
    def column(self, values):
        col = Column("v", "int64")
        col.append(values)
        col.pack(segment_rows=8192)
        return col

    def test_range_parity_with_plain(self, column, values):
        packed_result = range_select(column, 41_000, 43_000)
        column.drop_packed()
        plain_result = range_select(column, 41_000, 43_000)
        np.testing.assert_array_equal(packed_result, plain_result)

    @pytest.mark.parametrize("op", THETA_OPS)
    def test_theta_parity_with_plain(self, column, values, op):
        packed_result = theta_select(column, op, 42_000)
        column.drop_packed()
        plain_result = theta_select(column, op, 42_000)
        np.testing.assert_array_equal(packed_result, plain_result)

    def test_candidates_bypass_packed(self, column, values):
        # A candidate-list select inspects only those rows; the packed
        # path covers whole columns, so results must match the subset.
        candidates = np.arange(0, values.shape[0], 3, dtype=np.int64)
        got = range_select(column, 41_000, 43_000, candidates=candidates)
        subset = values[candidates]
        expected = candidates[(subset >= 41_000) & (subset <= 43_000)]
        np.testing.assert_array_equal(got, expected)

    def test_non_numeric_bound_bypasses_packed(self, column):
        # Exotic constants (anything the zone-map algebra cannot compare)
        # must keep the select on the plain numpy scan.
        from repro.engine.select import _packed_for

        assert _packed_for(column, None, 41_000, 43_000) is not None
        assert _packed_for(column, None, "41000", None) is None
        assert _packed_for(column, None, None, None) is not None

    def test_packed_attribution_counts_encoded_bytes(self, column, values):
        tracker = ResourceTracker()
        with tracker:
            range_select(column, 41_000, 43_000)
        packed_bytes = tracker.usage.bytes_touched
        assert 0 < packed_bytes < values.nbytes / 2

        column.drop_packed()
        tracker2 = ResourceTracker()
        with tracker2:
            range_select(column, 41_000, 43_000)
        assert tracker2.usage.bytes_touched == values.nbytes

    def test_all_skip_attribution_is_free(self, column):
        tracker = ResourceTracker()
        with tracker:
            result = range_select(column, 10**9, 2 * 10**9)
        assert result.shape == (0,)
        assert tracker.usage.bytes_touched == 0


class TestTableCompression:
    def test_compress_reports_schemes(self, values):
        table = Table("t", [("v", "int64"), ("cls", "uint8")])
        table.append_columns(
            {"v": values, "cls": np.zeros(values.shape[0], dtype=np.uint8)}
        )
        schemes = table.compress(segment_rows=8192)
        assert schemes["v"] == "for"
        report = table.compression_report()
        assert set(report) == {"v", "cls"}
        assert report["v"]["nbytes"] < report["v"]["plain_nbytes"]
