"""Reusable fault-injection harness for the durability suite.

Builds on the crash-point instrumentation in :mod:`repro.engine.durable`:
every state transition that matters for recovery calls
``crash_point(name, **context)``, and this module installs hooks that
turn those no-ops into a simulated ``kill -9`` (:class:`InjectedCrash`,
a ``BaseException`` nothing may swallow).  It also patches the module's
``_open`` / ``_replace`` seams to tear a write at byte N or fail the
final rename — the failure modes atomic replace + checksums exist for.

Typical use::

    from tests import faults

    events = faults.crash_points_hit(run_the_save)      # rehearse
    for step in range(len(events)):
        with faults.crash_at_step(step):
            with pytest.raises(InjectedCrash):
                run_the_save()                           # die mid-flight
        ...recover and verify...
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Tuple

from repro.engine import durable
from repro.engine.durable import InjectedCrash


@contextlib.contextmanager
def crash_at(name: str, hits: int = 1) -> Iterator[dict]:
    """Raise :class:`InjectedCrash` at the ``hits``-th firing of ``name``.

    Yields a state dict whose ``"seen"`` counts how often the point fired
    (useful to assert the point was actually reached).
    """
    state = {"seen": 0}

    def hook(point: str, context: dict) -> None:
        if point == name:
            state["seen"] += 1
            if state["seen"] == hits:
                raise InjectedCrash(f"injected crash at {point} (hit {hits})")

    durable.set_crash_hook(hook)
    try:
        yield state
    finally:
        durable.set_crash_hook(None)


@contextlib.contextmanager
def crash_at_step(step: int) -> Iterator[dict]:
    """Raise at the ``step``-th crash-point firing overall (0-based).

    Enumerating every step of a rehearsed run simulates dying at every
    instant the write path distinguishes — stronger than per-name
    injection, which only covers each point's first firing.
    """
    state = {"fired": 0}

    def hook(point: str, context: dict) -> None:
        if state["fired"] == step:
            state["fired"] += 1
            raise InjectedCrash(f"injected crash at step {step} ({point})")
        state["fired"] += 1

    durable.set_crash_hook(hook)
    try:
        yield state
    finally:
        durable.set_crash_hook(None)


@contextlib.contextmanager
def record_crash_points(out: List[str]) -> Iterator[List[str]]:
    """Append every crash-point name fired inside the block to ``out``."""

    def hook(point: str, context: dict) -> None:
        out.append(point)

    durable.set_crash_hook(hook)
    try:
        yield out
    finally:
        durable.set_crash_hook(None)


def crash_points_hit(fn) -> List[str]:
    """The ordered crash-point names a call to ``fn()`` fires."""
    events: List[str] = []
    with record_crash_points(events):
        fn()
    return events


class _TornFile:
    """A binary file wrapper that dies after ``budget`` written bytes.

    The partial prefix is flushed to disk first, so the temp file holds
    exactly the bytes a real torn write would leave behind.
    """

    def __init__(self, fh, state: dict) -> None:
        self._fh = fh
        self._state = state

    def write(self, data: bytes) -> int:
        budget = self._state["budget"]
        if budget is not None and len(data) > budget:
            self._fh.write(data[:budget])
            self._fh.flush()
            self._state["budget"] = 0
            raise InjectedCrash(
                f"torn write: died after {self._state['at_byte']} bytes"
            )
        if budget is not None:
            self._state["budget"] = budget - len(data)
        return self._fh.write(data)

    def __getattr__(self, name):
        return getattr(self._fh, name)

    def __enter__(self) -> "_TornFile":
        self._fh.__enter__()
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        return self._fh.__exit__(*exc)


@contextlib.contextmanager
def torn_write(at_byte: int) -> Iterator[None]:
    """Kill the next binary write through ``durable._open`` at byte N.

    Only the first ``at_byte`` bytes reach the temp file; the crash fires
    before ``os.replace``, so the destination must survive untouched.
    """
    real_open = durable._open
    state = {"budget": at_byte, "at_byte": at_byte}

    def opener(path, mode="r", *args, **kwargs):
        fh = real_open(path, mode, *args, **kwargs)
        if "w" in mode and "b" in mode:
            return _TornFile(fh, state)
        return fh

    durable._open = opener
    try:
        yield
    finally:
        durable._open = real_open


@contextlib.contextmanager
def failing_replace(
    exc_factory=lambda: InjectedCrash("died before rename"),
    calls: int = 1,
) -> Iterator[None]:
    """Make the next ``calls`` renames through ``durable._replace`` fail.

    The default simulates dying between fsync and rename; pass
    ``exc_factory=lambda: OSError(...)`` to simulate a transient
    filesystem error instead.
    """
    real_replace = durable._replace
    state = {"left": calls}

    def replace(src, dst):
        if state["left"] > 0:
            state["left"] -= 1
            raise exc_factory()
        return real_replace(src, dst)

    durable._replace = replace
    try:
        yield
    finally:
        durable._replace = real_replace


# -- service-layer faults ---------------------------------------------------
#
# The PR 8 query daemon extends the harness upward: the crash-point
# seams inside request handling (``serve.request.received`` /
# ``admitted`` / ``executed``) compose with :func:`crash_at` and
# :func:`stall_at` below, and the raw-socket clients simulate the two
# client-side failure modes an HTTP front end must shrug off — a slow
# writer and a mid-response disconnect.


@contextlib.contextmanager
def stall_at(name: str, release) -> Iterator[dict]:
    """Block every firing of crash point ``name`` until ``release`` is set.

    Turns a crash-point seam into a deterministic latency injector: a
    request parked on ``serve.request.admitted`` holds its admission
    slot until the test releases it — the only reliable way to fill the
    daemon's slots and queue without racing on real query durations.

    ``release`` is a :class:`threading.Event`.  The yielded state's
    ``"stalled"`` counts how many firings blocked.
    """
    state = {"stalled": 0}

    def hook(point: str, context: dict) -> None:
        if point == name:
            state["stalled"] += 1
            release.wait(timeout=30.0)

    durable.set_crash_hook(hook)
    try:
        yield state
    finally:
        durable.set_crash_hook(None)


def raw_post(
    host: str,
    port: int,
    path: str,
    body: bytes,
    headers: Optional[dict] = None,
    send_chunk: Optional[int] = None,
    send_delay_s: float = 0.0,
    read_limit: Optional[int] = None,
    reset: bool = False,
    timeout_s: float = 10.0,
) -> bytes:
    """A raw-socket POST with injectable client misbehaviour.

    ``send_chunk``/``send_delay_s`` drip the body out slowly (a slow
    client); ``read_limit`` stops reading the response after N bytes and
    ``reset=True`` then closes with RST via ``SO_LINGER 0`` (a
    mid-response disconnect).  Returns whatever response bytes were
    read (possibly empty).
    """
    import socket
    import struct
    import time

    request_headers = {
        "Host": f"{host}:{port}",
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    request_headers.update(headers or {})
    head = f"POST {path} HTTP/1.1\r\n" + "".join(
        f"{k}: {v}\r\n" for k, v in request_headers.items()
    ) + "\r\n"
    sock = socket.create_connection((host, port), timeout=timeout_s)
    try:
        sock.sendall(head.encode("ascii"))
        if send_chunk is None:
            sock.sendall(body)
        else:
            for start in range(0, len(body), send_chunk):
                sock.sendall(body[start:start + send_chunk])
                if send_delay_s:
                    time.sleep(send_delay_s)
        received = b""
        while read_limit is None or len(received) < read_limit:
            chunk = sock.recv(65536)
            if not chunk:
                break
            received += chunk
        if reset:
            # RST instead of FIN: the server's next write dies with
            # ECONNRESET / EPIPE instead of quietly buffering.
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        return received
    finally:
        sock.close()


def counter_value(name: str) -> int:
    """Current value of a metrics-registry counter (0 if never touched)."""
    from repro.obs.metrics import get_registry

    return get_registry().counter(name).value


def rehearse_and_enumerate(fn, sample_every: int = 1) -> List[Tuple[int, str]]:
    """Rehearse ``fn`` once, then pick the crash steps worth injecting.

    Returns ``(step, name)`` pairs: every first and last occurrence of
    each distinct crash point, plus every ``sample_every``-th step in
    between — full coverage of the distinct points at a bounded cost for
    long event streams.
    """
    events = crash_points_hit(fn)
    chosen = set()
    first_seen = {}
    last_seen = {}
    for i, name in enumerate(events):
        first_seen.setdefault(name, i)
        last_seen[name] = i
    chosen.update(first_seen.values())
    chosen.update(last_seen.values())
    chosen.update(range(0, len(events), max(1, sample_every)))
    return [(i, events[i]) for i in sorted(chosen)]
