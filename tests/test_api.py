"""Integration tests for the PointCloudDB facade."""

import numpy as np
import pytest

from repro import Box, PointCloudDB, Polygon
from repro.datasets.lidar import generate_points, make_scene, write_tile_files

EXTENT = Box(0, 0, 500, 500)


@pytest.fixture(scope="module")
def loaded_db():
    db = PointCloudDB()
    db.create_pointcloud("ahn2")
    scene = make_scene(EXTENT, seed=21)
    cloud = generate_points(scene, 30_000, seed=21)
    db.load_points("ahn2", cloud)
    return db, cloud


class TestLifecycle:
    def test_load_from_las_files(self, tmp_path):
        paths = write_tile_files(tmp_path, EXTENT, 3000, 2, 2, seed=22)
        db = PointCloudDB()
        db.create_pointcloud("pts")
        stats = db.load_las("pts", paths)
        assert stats.n_points == 3000
        assert len(db.table("pts")) == 3000

    def test_save_and_load(self, tmp_path, loaded_db):
        db, _cloud = loaded_db
        db.save(tmp_path / "farm")
        back = PointCloudDB.load(tmp_path / "farm")
        assert len(back.table("ahn2")) == 30_000
        hits = back.spatial_select("ahn2", Box(0, 0, 100, 100))
        assert len(hits) > 0


class TestSpatialSelect:
    def test_box(self, loaded_db):
        db, cloud = loaded_db
        result = db.spatial_select("ahn2", Box(100, 100, 200, 200))
        want = int(
            (
                (cloud["x"] >= 100)
                & (cloud["x"] <= 200)
                & (cloud["y"] >= 100)
                & (cloud["y"] <= 200)
            ).sum()
        )
        assert len(result) == want

    def test_polygon(self, loaded_db):
        db, cloud = loaded_db
        poly = Polygon([(50, 50), (300, 80), (250, 350), (80, 280)])
        from repro.gis.predicates import points_satisfy

        result = db.spatial_select("ahn2", poly)
        want = int(points_satisfy(cloud["x"], cloud["y"], poly).sum())
        assert len(result) == want

    def test_imprints_shared_across_queries(self, loaded_db):
        db, _ = loaded_db
        builds_before = db.manager.builds
        db.spatial_select("ahn2", Box(0, 0, 50, 50))
        db.spatial_select("ahn2", Box(50, 50, 100, 100))
        # At most one build pair (x, y); possibly zero if already built.
        assert db.manager.builds - builds_before in (0, 2)


class TestSqlFacade:
    def test_count(self, loaded_db):
        db, _ = loaded_db
        assert db.sql("SELECT count(*) FROM ahn2").scalar() == 30_000

    def test_spatial_sql(self, loaded_db):
        db, cloud = loaded_db
        got = db.sql(
            "SELECT count(*) FROM ahn2 WHERE "
            "ST_Contains(ST_MakeEnvelope(0, 0, 250, 250), ST_Point(x, y))"
        ).scalar()
        want = int(
            (
                (cloud["x"] >= 0)
                & (cloud["x"] <= 250)
                & (cloud["y"] >= 0)
                & (cloud["y"] <= 250)
            ).sum()
        )
        assert got == want

    def test_vector_relation_join(self, loaded_db):
        db, _ = loaded_db
        db.register_vector(
            "zones",
            {
                "code": np.array([12210]),
                "geom": [Polygon([(0, 0), (100, 0), (100, 100), (0, 100)])],
            },
        )
        got = db.sql(
            "SELECT count(*) FROM ahn2 a, zones z WHERE "
            "z.code = 12210 AND ST_Contains(z.geom, ST_Point(a.x, a.y))"
        ).scalar()
        direct = len(db.spatial_select("ahn2", Box(0, 0, 100, 100)))
        assert got == direct

    def test_sql_sees_appended_points(self, loaded_db):
        db, _ = loaded_db
        before = db.sql("SELECT count(*) FROM ahn2").scalar()
        batch = {
            name: np.zeros(1, dtype=db.table("ahn2").column(name).dtype)
            for name in db.table("ahn2").column_names
        }
        db.load_points("ahn2", batch)
        after = db.sql("SELECT count(*) FROM ahn2").scalar()
        assert after == before + 1


class TestStorageReport:
    def test_report_shapes(self, loaded_db):
        db, _ = loaded_db
        db.spatial_select("ahn2", Box(0, 0, 10, 10))  # force imprints
        report = db.storage_report()
        assert "ahn2" in report
        entry = report["ahn2"]
        assert entry["column_bytes"] > 0
        assert entry["imprint_bytes"] > 0
        # The headline overhead claim: imprints on x+y are a small
        # fraction of the x+y column bytes (5-12% per indexed column).
        xy_bytes = 2 * entry["rows"] * 8
        assert entry["imprint_bytes"] < 0.3 * xy_bytes
