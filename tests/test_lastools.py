"""Tests for the file-based (LAStools-like) baseline."""

import numpy as np
import pytest

from repro.datasets.lidar import write_tile_files
from repro.gis.envelope import Box
from repro.gis.geometry import Polygon
from repro.las.reader import read_las
from repro.lastools.catalog import FileCatalog
from repro.lastools.clip import LasClip
from repro.lastools.lasindex import LasIndex, lax_path_for
from repro.lastools.lassort import lasindex_file, lassort

EXTENT = Box(0, 0, 1000, 1000)


@pytest.fixture(scope="module")
def tile_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("tiles")
    write_tile_files(directory, EXTENT, 8000, 3, 3, seed=11)
    return directory


@pytest.fixture(scope="module")
def all_points(tile_dir):
    xs, ys = [], []
    for path in sorted(tile_dir.glob("*.las")):
        _h, cols = read_las(path)
        xs.append(cols["x"])
        ys.append(cols["y"])
    return np.concatenate(xs), np.concatenate(ys)


class TestLasIndex:
    def test_intervals_cover_all_points(self):
        rng = np.random.default_rng(0)
        xs = rng.uniform(0, 100, 5000)
        ys = rng.uniform(0, 100, 5000)
        index = LasIndex(xs, ys, Box(0, 0, 100, 100), leaf_capacity=200)
        full = index.candidate_indices(Box(0, 0, 100, 100))
        assert full.shape == (5000,)

    def test_candidates_superset_of_exact(self):
        rng = np.random.default_rng(1)
        xs = rng.uniform(0, 100, 3000)
        ys = rng.uniform(0, 100, 3000)
        index = LasIndex(xs, ys, Box(0, 0, 100, 100), leaf_capacity=100)
        query = Box(20, 20, 40, 40)
        cands = set(index.candidate_indices(query).tolist())
        exact = set(
            np.flatnonzero(
                (xs >= 20) & (xs <= 40) & (ys >= 20) & (ys <= 40)
            ).tolist()
        )
        assert exact <= cands
        assert len(cands) < 3000  # the quadtree actually prunes

    def test_sorted_input_fewer_intervals(self):
        """The lassort payoff: SFC order collapses interval lists."""
        rng = np.random.default_rng(2)
        xs = rng.uniform(0, 100, 4000)
        ys = rng.uniform(0, 100, 4000)
        from repro.core.sfc import sort_order

        perm = sort_order(xs, ys, 0, 100, 0, 100, curve="morton")
        unsorted_index = LasIndex(xs, ys, Box(0, 0, 100, 100), leaf_capacity=64)
        sorted_index = LasIndex(
            xs[perm], ys[perm], Box(0, 0, 100, 100), leaf_capacity=64
        )
        assert sorted_index.total_intervals < unsorted_index.total_intervals / 3

    def test_save_load_round_trip(self, tmp_path):
        rng = np.random.default_rng(3)
        xs = rng.uniform(0, 10, 500)
        ys = rng.uniform(0, 10, 500)
        index = LasIndex(xs, ys, Box(0, 0, 10, 10), leaf_capacity=50)
        path = tmp_path / "t.lax"
        index.save(path)
        back = LasIndex.load(path)
        query = Box(2, 2, 5, 5)
        np.testing.assert_array_equal(
            back.candidate_indices(query), index.candidate_indices(query)
        )

    def test_empty_index(self):
        index = LasIndex(np.empty(0), np.empty(0), Box(0, 0, 1, 1))
        assert index.candidate_indices(Box(0, 0, 1, 1)).shape == (0,)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            LasIndex(np.array([1.0]), np.array([1.0]), Box(0, 0, 1, 1), leaf_capacity=0)


class TestLassort:
    def test_lassort_preserves_content(self, tmp_path):
        from repro.datasets.lidar import generate_points, make_scene
        from repro.las.writer import write_las

        scene = make_scene(Box(0, 0, 100, 100), seed=4)
        pts = generate_points(scene, 2000, seed=4)
        src = tmp_path / "raw.las"
        dst = tmp_path / "sorted.las"
        write_las(src, pts)
        n = lassort(src, dst, curve="hilbert")
        assert n == 2000
        _h, cols = read_las(dst)
        # Same point multiset, different order.
        assert sorted(cols["x"].tolist()) == pytest.approx(
            sorted(read_las(src)[1]["x"].tolist())
        )

    def test_lassort_improves_locality(self, tmp_path):
        rng = np.random.default_rng(5)
        pts = {
            "x": rng.uniform(0, 100, 5000),
            "y": rng.uniform(0, 100, 5000),
            "z": rng.uniform(0, 10, 5000),
        }
        from repro.las.writer import write_las

        src = tmp_path / "raw.las"
        dst = tmp_path / "sorted.las"
        write_las(src, pts)
        lassort(src, dst)
        _h, cols = read_las(dst)
        raw_step = np.hypot(np.diff(pts["x"]), np.diff(pts["y"])).mean()
        sorted_step = np.hypot(np.diff(cols["x"]), np.diff(cols["y"])).mean()
        assert sorted_step < raw_step / 5

    def test_lasindex_file_writes_sidecar(self, tmp_path):
        from repro.las.writer import write_las

        rng = np.random.default_rng(6)
        pts = {
            "x": rng.uniform(0, 10, 300),
            "y": rng.uniform(0, 10, 300),
            "z": rng.uniform(0, 5, 300),
        }
        path = tmp_path / "t.las"
        write_las(path, pts)
        lasindex_file(path, leaf_capacity=50)
        assert lax_path_for(path).exists()


class TestFileCatalog:
    def test_metadata_built_once(self, tile_dir):
        catalog = FileCatalog(tile_dir, mode="metadata")
        assert catalog.metadata_path.exists()
        assert catalog.n_files == 9

    def test_modes_agree(self, tile_dir):
        query = Box(100, 100, 500, 500)
        meta = FileCatalog(tile_dir, mode="metadata")
        head = FileCatalog(tile_dir, mode="headers")
        files_m, _ = meta.files_intersecting(query)
        files_h, stats_h = head.files_intersecting(query)
        assert [p.name for p in files_m] == [p.name for p in files_h]
        assert stats_h.headers_read == 9

    def test_pruning_reduces_files(self, tile_dir):
        catalog = FileCatalog(tile_dir, mode="metadata")
        files, stats = catalog.files_intersecting(Box(0, 0, 200, 200))
        assert 0 < len(files) < 9
        assert stats.files_matched == len(files)

    def test_total_points(self, tile_dir):
        assert FileCatalog(tile_dir).total_points() == 8000

    def test_bad_mode(self, tile_dir):
        with pytest.raises(ValueError):
            FileCatalog(tile_dir, mode="bogus")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FileCatalog(tmp_path / "ghost")


class TestLasClip:
    def _brute_force(self, all_points, geometry, predicate="contains", distance=0.0):
        from repro.gis.predicates import points_satisfy

        xs, ys = all_points
        mask = points_satisfy(xs, ys, geometry, predicate, distance)
        return np.sort(xs[mask]), int(mask.sum())

    def test_box_query_matches_brute_force(self, tile_dir, all_points):
        clip = LasClip(tile_dir)
        query = Box(150, 150, 600, 450)
        out, stats = clip.query(query)
        want_xs, want_n = self._brute_force(all_points, query)
        assert stats.n_results == want_n
        np.testing.assert_allclose(np.sort(out["x"]), want_xs)

    def test_polygon_query_matches_brute_force(self, tile_dir, all_points):
        clip = LasClip(tile_dir)
        poly = Polygon([(100, 100), (800, 200), (600, 800), (150, 700)])
        out, stats = clip.query(poly)
        want_xs, want_n = self._brute_force(all_points, poly)
        assert stats.n_results == want_n
        np.testing.assert_allclose(np.sort(out["x"]), want_xs)

    def test_pruning_skips_files(self, tile_dir):
        clip = LasClip(tile_dir)
        _out, stats = clip.query(Box(0, 0, 150, 150))
        assert stats.files_read < stats.files_considered

    def test_index_used_when_present(self, tile_dir, all_points):
        clip = LasClip(tile_dir, use_index=True)
        clip.build_indexes(leaf_capacity=200)
        query = Box(200, 200, 400, 400)
        out, stats = clip.query(query)
        assert stats.index_hits == stats.files_read > 0
        want_xs, want_n = self._brute_force(all_points, query)
        assert stats.n_results == want_n

        # The quadtree + interval seeks decode fewer records than reading
        # the touched files whole.
        unindexed = LasClip(tile_dir, use_index=False)
        _out2, stats_full = unindexed.query(query)
        assert stats.points_decoded < stats_full.points_decoded
        np.testing.assert_allclose(np.sort(out["x"]), want_xs)

    def test_extra_columns(self, tile_dir):
        clip = LasClip(tile_dir)
        out, _stats = clip.query(
            Box(0, 0, 1000, 1000), columns=["x", "y", "z", "classification"]
        )
        assert out["classification"].shape == out["x"].shape

    def test_unknown_column(self, tile_dir):
        clip = LasClip(tile_dir)
        with pytest.raises(KeyError):
            clip.query(Box(0, 0, 1000, 1000), columns=["bogus"])
