"""Tests for the dataset registration helpers."""

import pytest

from repro.datasets.osm import generate_osm
from repro.datasets.urbanatlas import generate_urban_atlas
from repro.gis.envelope import Box
from repro.sql.executor import Session
from repro.sql.helpers import register_osm, register_urban_atlas

EXTENT = Box(0, 0, 1000, 1000)


@pytest.fixture()
def session():
    session = Session()
    osm = generate_osm(EXTENT, seed=2)
    ua = generate_urban_atlas(EXTENT, osm=osm, seed=2)
    register_osm(session, osm)
    register_urban_atlas(session, ua)
    session._osm = osm
    session._ua = ua
    return session


class TestRegisterOsm:
    def test_roads_queryable(self, session):
        got = session.execute("SELECT count(*) FROM roads").scalar()
        assert got == len(session._osm.roads)

    def test_road_classes(self, session):
        got = session.execute(
            "SELECT count(*) FROM roads WHERE class = 1"
        ).scalar()
        assert got == len(session._osm.roads_of_class("motorway"))

    def test_rivers_and_pois(self, session):
        assert session.execute("SELECT count(*) FROM rivers").scalar() == len(
            session._osm.rivers
        )
        assert session.execute("SELECT count(*) FROM pois").scalar() == len(
            session._osm.pois
        )

    def test_poi_geometry_accessible(self, session):
        rows = session.execute(
            "SELECT ST_X(geom), ST_Y(geom) FROM pois LIMIT 3"
        ).rows
        assert all(0 <= x <= 1000 and 0 <= y <= 1000 for x, y in rows)

    def test_prefix(self):
        session = Session()
        osm = generate_osm(EXTENT, seed=3)
        register_osm(session, osm, prefix="osm_")
        assert session.execute("SELECT count(*) FROM osm_roads").scalar() > 0


class TestRegisterUrbanAtlas:
    def test_zones_queryable(self, session):
        got = session.execute("SELECT count(*) FROM ua_zones").scalar()
        assert got == len(session._ua.zones)

    def test_labels_match_codes(self, session):
        rows = session.execute(
            "SELECT DISTINCT code, label FROM ua_zones"
        ).rows
        from repro.datasets.urbanatlas import UA_CODES

        for code, label in rows:
            assert UA_CODES[code] == label

    def test_area_sql(self, session):
        total = session.execute(
            "SELECT sum(ST_Area(geom)) FROM ua_zones WHERE code != 12210"
        ).scalar()
        assert total == pytest.approx(EXTENT.area, rel=1e-9)
