"""Unit and property tests for imprint bit vectors and the cacheline dict."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.imprints.bitvec import (
    build_vectors,
    match_vectors,
    popcount,
    values_per_cacheline,
)
from repro.core.imprints.dictionary import (
    CachelineDict,
    compress,
    compression_ratio,
    decompress,
)
from repro.core.imprints.histogram import BinScheme, build_bins


class TestValuesPerCacheline:
    def test_doubles(self):
        assert values_per_cacheline(8) == 8

    def test_uint16(self):
        assert values_per_cacheline(2) == 32

    def test_wider_than_line(self):
        assert values_per_cacheline(128) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            values_per_cacheline(0)


class TestBuildVectors:
    def setup_method(self):
        self.scheme = BinScheme(borders=np.array([10.0, 20.0, 30.0]))

    def test_one_full_line(self):
        vals = np.array([5.0, 15.0, 25.0, 35.0])
        vecs = build_vectors(vals, self.scheme, vpc=4)
        assert vecs.shape == (1,)
        assert vecs[0] == 0b1111

    def test_multiple_lines(self):
        vals = np.array([5.0, 5.0, 25.0, 25.0])
        vecs = build_vectors(vals, self.scheme, vpc=2)
        assert vecs.tolist() == [0b0001, 0b0100]

    def test_partial_last_line_pads_harmlessly(self):
        vals = np.array([5.0, 5.0, 35.0])
        vecs = build_vectors(vals, self.scheme, vpc=2)
        # Padding repeats 35.0 -> only bit 3, no spurious bits.
        assert vecs.tolist() == [0b0001, 0b1000]

    def test_empty(self):
        assert build_vectors(np.empty(0), self.scheme, vpc=8).shape == (0,)

    def test_bad_vpc(self):
        with pytest.raises(ValueError):
            build_vectors(np.array([1.0]), self.scheme, vpc=0)

    def test_bit63_usable(self):
        # 64-bin scheme: the top bin must use bit 63 without overflow.
        borders = np.arange(1, 64, dtype=np.float64)
        scheme = BinScheme(borders=borders)
        assert scheme.n_bins == 64
        vecs = build_vectors(np.array([100.0]), scheme, vpc=1)
        assert vecs[0] == np.uint64(1) << np.uint64(63)


class TestMatchAndPopcount:
    def test_match(self):
        vecs = np.array([0b0011, 0b1100, 0b0000], dtype=np.uint64)
        np.testing.assert_array_equal(
            match_vectors(vecs, 0b0100), [False, True, False]
        )

    def test_popcount(self):
        vecs = np.array([0, 0b1011, np.iinfo(np.uint64).max], dtype=np.uint64)
        np.testing.assert_array_equal(popcount(vecs), [0, 3, 64])


class TestCachelineDict:
    def test_empty(self):
        cd = compress(np.empty(0, dtype=np.uint64))
        assert cd.n_entries == 0
        assert decompress(cd).shape == (0,)

    def test_all_distinct(self):
        vecs = np.array([1, 2, 3, 4], dtype=np.uint64)
        cd = compress(vecs)
        assert cd.n_entries == 1
        assert not cd.repeats[0]
        assert cd.counters[0] == 4
        np.testing.assert_array_equal(decompress(cd), vecs)

    def test_all_same(self):
        vecs = np.full(1000, 7, dtype=np.uint64)
        cd = compress(vecs)
        assert cd.n_entries == 1
        assert cd.repeats[0]
        assert cd.counters[0] == 1000
        assert cd.vectors.shape == (1,)
        np.testing.assert_array_equal(decompress(cd), vecs)

    def test_mixed_runs(self):
        vecs = np.array([1, 1, 1, 2, 3, 4, 4], dtype=np.uint64)
        cd = compress(vecs)
        # run(1x3) -> repeat, singles(2,3) -> non-repeat, run(4x2) -> repeat
        assert cd.repeats.tolist() == [True, False, True]
        assert cd.counters.tolist() == [3, 2, 2]
        np.testing.assert_array_equal(decompress(cd), vecs)

    def test_counter_cap_splits_runs(self):
        vecs = np.full(10, 5, dtype=np.uint64)
        cd = compress(vecs, max_counter=4)
        np.testing.assert_array_equal(decompress(cd), vecs)
        assert cd.counters.max() <= 4

    def test_counter_cap_on_singles(self):
        vecs = np.arange(10, dtype=np.uint64)
        cd = compress(vecs, max_counter=3)
        np.testing.assert_array_equal(decompress(cd), vecs)
        assert cd.counters.max() <= 3

    def test_bad_max_counter(self):
        with pytest.raises(ValueError):
            compress(np.array([1], dtype=np.uint64), max_counter=0)

    def test_compression_ratio_repetitive(self):
        vecs = np.full(10_000, 9, dtype=np.uint64)
        assert compression_ratio(compress(vecs)) > 1000

    def test_nbytes_accounting(self):
        vecs = np.array([1, 1, 2], dtype=np.uint64)
        cd = compress(vecs)
        assert cd.nbytes == 4 * cd.n_entries + 8 * cd.vectors.shape[0]

    def test_coverage_sums_to_lines(self):
        vecs = np.array([1, 1, 2, 3, 3, 3, 4], dtype=np.uint64)
        cd = compress(vecs)
        assert int(cd.coverage().sum()) == 7


@settings(max_examples=80, deadline=None)
@given(
    vec_ids=st.lists(st.integers(0, 5), min_size=0, max_size=300),
    max_counter=st.sampled_from([1, 2, 3, 7, 1 << 24]),
)
def test_dictionary_round_trip(vec_ids, max_counter):
    """compress/decompress is the identity for any vector sequence."""
    vecs = np.array(vec_ids, dtype=np.uint64)
    cd = compress(vecs, max_counter=max_counter)
    np.testing.assert_array_equal(decompress(cd), vecs)
    assert cd.n_lines == vecs.shape[0]
    if cd.n_entries:
        assert cd.counters.max() <= max_counter
        assert cd.counters.min() >= 1


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=300),
    vpc=st.sampled_from([1, 2, 8, 32]),
)
def test_vectors_cover_their_lines(values, vpc):
    """Each value's bin bit must be set in its cacheline's vector."""
    arr = np.array(values, dtype=np.float64)
    scheme = build_bins(arr)
    vecs = build_vectors(arr, scheme, vpc)
    bins = scheme.bin_of(arr)
    for i, b in enumerate(bins):
        assert (int(vecs[i // vpc]) >> int(b)) & 1
