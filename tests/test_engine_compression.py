"""Unit and property tests for repro.engine.compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.compression import (
    CompressionError,
    best_scheme,
    decode,
    delta_zlib_decode,
    delta_zlib_encode,
    dict_decode,
    dict_encode,
    encode,
    for_decode,
    for_encode,
    rle_decode,
    rle_encode,
)


class TestRLE:
    def test_round_trip(self):
        vals = np.array([1, 1, 1, 2, 2, 3], dtype=np.int32)
        block = rle_encode(vals)
        np.testing.assert_array_equal(rle_decode(block), vals)

    def test_empty(self):
        block = rle_encode(np.empty(0, dtype=np.int64))
        assert rle_decode(block).shape == (0,)

    def test_compresses_runs(self):
        vals = np.repeat(np.arange(5, dtype=np.int64), 1000)
        block = rle_encode(vals)
        assert block.nbytes < vals.nbytes / 10

    def test_scheme_mismatch(self):
        block = rle_encode(np.array([1], dtype=np.int64))
        with pytest.raises(CompressionError):
            dict_decode(block)


class TestDict:
    def test_round_trip(self):
        vals = np.array([5.5, 1.5, 5.5, 1.5, 9.0])
        block = dict_encode(vals)
        np.testing.assert_array_equal(dict_decode(block), vals)

    def test_code_width_grows(self):
        small = dict_encode(np.arange(10, dtype=np.int64))
        large = dict_encode(np.arange(300, dtype=np.int64))
        # 300 distinct values need 2-byte codes; 10 need 1-byte codes.
        assert large.nbytes > small.nbytes

    def test_empty(self):
        block = dict_encode(np.empty(0, dtype=np.float64))
        assert dict_decode(block).shape == (0,)


class TestFOR:
    def test_round_trip(self):
        vals = np.array([100000, 100003, 100001], dtype=np.int64)
        block = for_encode(vals)
        np.testing.assert_array_equal(for_decode(block), vals)
        assert for_decode(block).dtype == np.int64

    def test_narrow_offsets(self):
        vals = (1_000_000 + (np.arange(1000) % 200)).astype(np.int64)
        block = for_encode(vals)
        # 1000 uint8 offsets + reference + framing: far below 8000 raw bytes.
        assert block.nbytes < 1200

    def test_rejects_floats(self):
        with pytest.raises(CompressionError):
            for_encode(np.array([1.5]))

    def test_negative_values(self):
        vals = np.array([-50, -20, -45], dtype=np.int32)
        np.testing.assert_array_equal(for_decode(for_encode(vals)), vals)

    def test_empty(self):
        block = for_encode(np.empty(0, dtype=np.int32))
        assert for_decode(block).shape == (0,)


class TestDeltaZlib:
    def test_int_round_trip(self):
        vals = np.cumsum(np.ones(500, dtype=np.int64)) * 3
        block = delta_zlib_encode(vals)
        np.testing.assert_array_equal(delta_zlib_decode(block), vals)

    def test_float_round_trip_lossless(self):
        rng = np.random.default_rng(7)
        vals = np.cumsum(rng.normal(size=300))
        block = delta_zlib_encode(vals)
        np.testing.assert_array_equal(delta_zlib_decode(block), vals)

    def test_float32_round_trip(self):
        vals = np.linspace(0, 1, 100, dtype=np.float32)
        np.testing.assert_array_equal(
            delta_zlib_decode(delta_zlib_encode(vals)), vals
        )

    def test_sorted_compresses_better_than_shuffled(self):
        rng = np.random.default_rng(3)
        vals = np.sort(rng.integers(0, 10**6, 20_000)).astype(np.int64)
        shuffled = vals.copy()
        rng.shuffle(shuffled)
        assert delta_zlib_encode(vals).nbytes < delta_zlib_encode(shuffled).nbytes

    def test_corrupt_payload(self):
        block = delta_zlib_encode(np.arange(10, dtype=np.int64))
        bad = type(block)(block.scheme, block.dtype, block.count, b"junk")
        with pytest.raises(CompressionError):
            delta_zlib_decode(bad)

    def test_empty(self):
        block = delta_zlib_encode(np.empty(0, dtype=np.int64))
        assert delta_zlib_decode(block).shape == (0,)


class TestDispatch:
    def test_encode_decode_by_name(self):
        vals = np.array([1, 2, 3], dtype=np.int64)
        block = encode("rle", vals)
        np.testing.assert_array_equal(decode(block), vals)

    def test_unknown_scheme(self):
        with pytest.raises(CompressionError):
            encode("lz77", np.array([1]))

    def test_best_scheme_picks_smallest(self):
        vals = np.repeat(np.int64(7), 10_000)
        block = best_scheme(vals)
        assert block.scheme in {"rle", "delta_zlib"}
        np.testing.assert_array_equal(decode(block), vals)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.integers(-(2**40), 2**40), min_size=0, max_size=200),
    scheme=st.sampled_from(["rle", "dict", "for", "delta_zlib"]),
)
def test_all_schemes_round_trip_integers(values, scheme):
    vals = np.array(values, dtype=np.int64)
    block = encode(scheme, vals)
    np.testing.assert_array_equal(decode(block), vals)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        min_size=0,
        max_size=100,
    ),
    scheme=st.sampled_from(["rle", "dict", "delta_zlib"]),
)
def test_float_schemes_round_trip(values, scheme):
    vals = np.array(values, dtype=np.float64)
    block = encode(scheme, vals)
    np.testing.assert_array_equal(decode(block), vals)
