"""Unit and property tests for repro.engine.compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.compression import (
    SCHEMES,
    CompressionError,
    best_scheme,
    choose_scheme,
    decode,
    delta_zlib_decode,
    delta_zlib_encode,
    dict_decode,
    dict_encode,
    encode,
    encode_adaptive,
    for_decode,
    for_encode,
    for_parts,
    int_bounds,
    plain_decode,
    plain_encode,
    rle_decode,
    rle_encode,
)


class TestRLE:
    def test_round_trip(self):
        vals = np.array([1, 1, 1, 2, 2, 3], dtype=np.int32)
        block = rle_encode(vals)
        np.testing.assert_array_equal(rle_decode(block), vals)

    def test_empty(self):
        block = rle_encode(np.empty(0, dtype=np.int64))
        assert rle_decode(block).shape == (0,)

    def test_compresses_runs(self):
        vals = np.repeat(np.arange(5, dtype=np.int64), 1000)
        block = rle_encode(vals)
        assert block.nbytes < vals.nbytes / 10

    def test_scheme_mismatch(self):
        block = rle_encode(np.array([1], dtype=np.int64))
        with pytest.raises(CompressionError):
            dict_decode(block)


class TestDict:
    def test_round_trip(self):
        vals = np.array([5.5, 1.5, 5.5, 1.5, 9.0])
        block = dict_encode(vals)
        np.testing.assert_array_equal(dict_decode(block), vals)

    def test_code_width_grows(self):
        small = dict_encode(np.arange(10, dtype=np.int64))
        large = dict_encode(np.arange(300, dtype=np.int64))
        # 300 distinct values need 2-byte codes; 10 need 1-byte codes.
        assert large.nbytes > small.nbytes

    def test_empty(self):
        block = dict_encode(np.empty(0, dtype=np.float64))
        assert dict_decode(block).shape == (0,)


class TestFOR:
    def test_round_trip(self):
        vals = np.array([100000, 100003, 100001], dtype=np.int64)
        block = for_encode(vals)
        np.testing.assert_array_equal(for_decode(block), vals)
        assert for_decode(block).dtype == np.int64

    def test_narrow_offsets(self):
        vals = (1_000_000 + (np.arange(1000) % 200)).astype(np.int64)
        block = for_encode(vals)
        # 1000 uint8 offsets + reference + framing: far below 8000 raw bytes.
        assert block.nbytes < 1200

    def test_rejects_floats(self):
        with pytest.raises(CompressionError):
            for_encode(np.array([1.5]))

    def test_negative_values(self):
        vals = np.array([-50, -20, -45], dtype=np.int32)
        np.testing.assert_array_equal(for_decode(for_encode(vals)), vals)

    def test_empty(self):
        block = for_encode(np.empty(0, dtype=np.int32))
        assert for_decode(block).shape == (0,)


class TestFOREdgeCases:
    """Regressions for the encoder rewrite: spans that overflow int64,
    extreme dtypes, and the unsigned reference image."""

    def test_int64_span_overflow(self):
        # max - min overflows a signed 64-bit subtraction; the modular
        # uint64 frame must still round-trip exactly.
        vals = np.array([-(2**62), 2**62, 0, -1], dtype=np.int64)
        block = for_encode(vals)
        np.testing.assert_array_equal(for_decode(block), vals)

    def test_int64_extremes(self):
        vals = np.array(
            [np.iinfo(np.int64).min, np.iinfo(np.int64).max], dtype=np.int64
        )
        block = for_encode(vals)
        np.testing.assert_array_equal(for_decode(block), vals)

    def test_uint64_above_2_63(self):
        vals = np.array([2**63 + 5, 2**64 - 1, 2**63], dtype=np.uint64)
        block = for_encode(vals)
        decoded = for_decode(block)
        assert decoded.dtype == np.uint64
        np.testing.assert_array_equal(decoded, vals)

    def test_reference_recovers_sign(self):
        # The stored reference is a uint64 image; for_parts must hand the
        # caller back the signed value for signed columns.
        vals = np.array([-7, -3, -5], dtype=np.int64)
        reference, offsets = for_parts(for_encode(vals))
        assert reference == -7
        np.testing.assert_array_equal(
            offsets.astype(np.int64) + reference, vals
        )

    def test_constant_column(self):
        vals = np.full(100, 42, dtype=np.int64)
        block = for_encode(vals)
        np.testing.assert_array_equal(for_decode(block), vals)
        # Constant column: all offsets zero, packed to one byte each.
        _, offsets = for_parts(block)
        assert offsets.dtype == np.uint8
        assert not offsets.any()

    def test_non_contiguous_view(self):
        base = np.arange(1000, dtype=np.int64)
        for view in (base[::2], base[::-1], base[10:500:7]):
            np.testing.assert_array_equal(for_decode(for_encode(view)), view)


class TestPlain:
    def test_round_trip(self):
        vals = np.array([3.5, -1.0, 2.25])
        block = plain_encode(vals)
        np.testing.assert_array_equal(plain_decode(block), vals)

    def test_empty(self):
        block = plain_encode(np.empty(0, dtype=np.int32))
        assert plain_decode(block).shape == (0,)

    def test_nbytes_matches_raw(self):
        vals = np.arange(100, dtype=np.int64)
        assert plain_encode(vals).plain_nbytes == vals.nbytes


class TestChooseScheme:
    def test_runs_pick_rle(self):
        vals = np.repeat(np.arange(4, dtype=np.int64), 5000)
        assert choose_scheme(vals) == "rle"

    def test_low_cardinality_picks_dict(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 5, 20_000).astype(np.int64)
        vals = vals[np.argsort(rng.random(vals.shape[0]))]  # break runs
        assert choose_scheme(vals) == "dict"

    def test_integers_pick_for(self):
        rng = np.random.default_rng(1)
        assert choose_scheme(rng.integers(0, 10**6, 20_000)) == "for"

    def test_floats_pick_delta(self):
        rng = np.random.default_rng(2)
        assert choose_scheme(rng.normal(size=20_000)) == "delta_zlib"

    def test_empty_picks_plain(self):
        assert choose_scheme(np.empty(0, dtype=np.int64)) == "plain"

    def test_adaptive_round_trips(self):
        rng = np.random.default_rng(3)
        vals = rng.integers(-100, 100, 5000).astype(np.int64)
        block = encode_adaptive(vals)
        np.testing.assert_array_equal(decode(block), vals)


class TestIntBounds:
    def test_integer_bounds_pass_through(self):
        assert int_bounds(3, 9, True, True) == (3, 9)

    def test_exclusive_integers_tighten(self):
        assert int_bounds(3, 9, False, False) == (4, 8)

    def test_float_bounds_round_inward(self):
        assert int_bounds(2.5, 7.5, True, True) == (3, 7)
        assert int_bounds(2.5, 7.5, False, False) == (3, 7)

    def test_integral_floats_exclusive(self):
        assert int_bounds(2.0, 7.0, False, False) == (3, 6)

    def test_open_ends(self):
        assert int_bounds(None, 5, True, True) == (None, 5)
        assert int_bounds(5, None, True, True) == (5, None)


class TestDeltaZlib:
    def test_int_round_trip(self):
        vals = np.cumsum(np.ones(500, dtype=np.int64)) * 3
        block = delta_zlib_encode(vals)
        np.testing.assert_array_equal(delta_zlib_decode(block), vals)

    def test_float_round_trip_lossless(self):
        rng = np.random.default_rng(7)
        vals = np.cumsum(rng.normal(size=300))
        block = delta_zlib_encode(vals)
        np.testing.assert_array_equal(delta_zlib_decode(block), vals)

    def test_float32_round_trip(self):
        vals = np.linspace(0, 1, 100, dtype=np.float32)
        np.testing.assert_array_equal(
            delta_zlib_decode(delta_zlib_encode(vals)), vals
        )

    def test_sorted_compresses_better_than_shuffled(self):
        rng = np.random.default_rng(3)
        vals = np.sort(rng.integers(0, 10**6, 20_000)).astype(np.int64)
        shuffled = vals.copy()
        rng.shuffle(shuffled)
        assert delta_zlib_encode(vals).nbytes < delta_zlib_encode(shuffled).nbytes

    def test_corrupt_payload(self):
        block = delta_zlib_encode(np.arange(10, dtype=np.int64))
        bad = type(block)(block.scheme, block.dtype, block.count, b"junk")
        with pytest.raises(CompressionError):
            delta_zlib_decode(bad)

    def test_empty(self):
        block = delta_zlib_encode(np.empty(0, dtype=np.int64))
        assert delta_zlib_decode(block).shape == (0,)


class TestDispatch:
    def test_encode_decode_by_name(self):
        vals = np.array([1, 2, 3], dtype=np.int64)
        block = encode("rle", vals)
        np.testing.assert_array_equal(decode(block), vals)

    def test_unknown_scheme(self):
        with pytest.raises(CompressionError):
            encode("lz77", np.array([1]))

    def test_best_scheme_picks_smallest(self):
        vals = np.repeat(np.int64(7), 10_000)
        block = best_scheme(vals)
        assert block.scheme in {"rle", "delta_zlib"}
        np.testing.assert_array_equal(decode(block), vals)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.integers(np.iinfo(np.int64).min, np.iinfo(np.int64).max),
        min_size=0,
        max_size=200,
    ),
    scheme=st.sampled_from(["rle", "dict", "for", "delta_zlib", "plain"]),
)
def test_all_schemes_round_trip_integers(values, scheme):
    vals = np.array(values, dtype=np.int64)
    block = encode(scheme, vals)
    np.testing.assert_array_equal(decode(block), vals)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.integers(0, 2**64 - 1), min_size=0, max_size=200
    ),
    scheme=st.sampled_from(["rle", "dict", "for", "delta_zlib", "plain"]),
)
def test_all_schemes_round_trip_uint64(values, scheme):
    vals = np.array(values, dtype=np.uint64)
    block = encode(scheme, vals)
    decoded = decode(block)
    assert decoded.dtype == np.uint64
    np.testing.assert_array_equal(decoded, vals)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        min_size=0,
        max_size=100,
    ),
    scheme=st.sampled_from(["rle", "dict", "delta_zlib", "plain"]),
)
def test_float_schemes_round_trip(values, scheme):
    vals = np.array(values, dtype=np.float64)
    block = encode(scheme, vals)
    np.testing.assert_array_equal(decode(block), vals)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=0,
        max_size=100,
    ),
    scheme=st.sampled_from(["rle", "dict", "delta_zlib", "plain"]),
)
def test_float32_schemes_round_trip(values, scheme):
    vals = np.array(values, dtype=np.float32)
    block = encode(scheme, vals)
    decoded = decode(block)
    assert decoded.dtype == np.float32
    np.testing.assert_array_equal(decoded, vals)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.integers(np.iinfo(np.int64).min, np.iinfo(np.int64).max),
        min_size=0,
        max_size=120,
    ),
    step=st.integers(1, 3),
    scheme=st.sampled_from(sorted(SCHEMES)),
)
def test_strided_views_round_trip(values, step, scheme):
    """Every scheme must accept a non-contiguous view of its input."""
    base = np.array(values, dtype=np.int64)
    view = base[::step]
    block = encode(scheme, view)
    np.testing.assert_array_equal(decode(block), view)
