"""Tests for Session.explain (the demo's query-plan view, Section 4.2)."""

import numpy as np
import pytest

from repro.engine.table import Table
from repro.gis.geometry import Polygon
from repro.sql.executor import Session


@pytest.fixture()
def session():
    rng = np.random.default_rng(0)
    t = Table(
        "pts",
        [("x", "float64"), ("y", "float64"), ("z", "float64"), ("c", "uint8")],
    )
    t.append_columns(
        {
            "x": rng.uniform(0, 100, 500),
            "y": rng.uniform(0, 100, 500),
            "z": rng.uniform(0, 10, 500),
            "c": rng.integers(0, 5, 500).astype(np.uint8),
        }
    )
    zones = Table("zones", [("zone_id", "int64"), ("code", "int64")])
    zones.append_columns({"zone_id": [1, 2], "code": [10, 20]})
    session = Session()
    session.register_table(t)
    session.register_table(zones, point_columns=None)
    session.register_columns(
        "geo_zones",
        {
            "code": np.array([10]),
            "geom": [Polygon([(0, 0), (50, 0), (50, 50), (0, 50)])],
        },
    )
    return session


class TestExplain:
    def test_spatial_pushdown_visible(self, session):
        plan = session.explain(
            "SELECT count(*) FROM pts WHERE "
            "ST_Contains(ST_MakeEnvelope(0, 0, 10, 10), ST_Point(x, y))"
        )
        assert "spatial filter [contains] via imprints + grid" in plan
        assert "residual" not in plan

    def test_range_pushdown_visible(self, session):
        plan = session.explain("SELECT count(*) FROM pts WHERE z BETWEEN 1 AND 3")
        assert "range filter via imprint on 'z'" in plan

    def test_residual_listed(self, session):
        plan = session.explain(
            "SELECT count(*) FROM pts WHERE z > 1 AND c = 2"
        )
        assert "range filter via imprint on 'z'" in plan
        assert "residual scan filter" in plan

    def test_spatial_suppresses_range_pushdown(self, session):
        plan = session.explain(
            "SELECT count(*) FROM pts WHERE z > 1 AND "
            "ST_Contains(ST_MakeEnvelope(0, 0, 10, 10), ST_Point(x, y))"
        )
        assert "spatial filter" in plan
        # z > 1 stays residual once the spatial index narrowed candidates.
        assert "residual scan filter: (z > 1)" in plan

    def test_hash_join_visible(self, session):
        plan = session.explain(
            "SELECT count(*) FROM zones a, zones2 b WHERE 1 = 1"
            if False
            else "SELECT count(*) FROM pts p, zones u WHERE p.c = u.code"
        )
        assert "hash join" in plan

    def test_nested_loop_join_visible(self, session):
        plan = session.explain(
            "SELECT count(*) FROM pts p, geo_zones g WHERE "
            "ST_Contains(g.geom, ST_Point(p.x, p.y))"
        )
        assert "nested-loop join" in plan
        assert "outer loop over geo_zones" in plan
        assert "inner probe" in plan
        assert "spatial filter" in plan

    def test_clauses_listed(self, session):
        plan = session.explain(
            "SELECT c, count(*) FROM pts GROUP BY c HAVING count(*) > 1 "
            "ORDER BY c DESC LIMIT 3"
        )
        assert "group by c" in plan
        assert "having" in plan
        assert "order by c desc" in plan
        assert "limit 3" in plan

    def test_aggregate_without_group(self, session):
        plan = session.explain("SELECT avg(z) FROM pts")
        assert "aggregate (single group)" in plan

    def test_distinct(self, session):
        plan = session.explain("SELECT DISTINCT c FROM pts")
        assert "distinct" in plan

    def test_explain_does_not_execute(self, session):
        session.explain(
            "SELECT count(*) FROM pts WHERE z BETWEEN 1 AND 3"
        )
        # No imprint was built: explain is planning only.
        assert session.manager.builds == 0


class TestProfile:
    def test_last_profile_phases(self, session):
        session.execute("SELECT count(*) FROM pts WHERE z BETWEEN 1 AND 3")
        profile = session.last_profile
        assert set(profile) == {"parse", "join_filter", "project", "total"}
        assert all(v >= 0 for v in profile.values())
        assert profile["total"] >= profile["parse"]
        assert profile["total"] == pytest.approx(
            profile["parse"] + profile["join_filter"] + profile["project"],
            rel=0.5,
        )

    def test_profile_refreshes_per_query(self, session):
        session.execute("SELECT count(*) FROM pts")
        first = dict(session.last_profile)
        session.execute("SELECT count(*) FROM pts WHERE c = 1")
        assert session.last_profile != first or session.last_profile["total"] > 0
