"""End-to-end tests for the repro-gis command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def tile_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli_tiles")
    code = main(
        [
            "generate",
            "--points",
            "5000",
            "--tiles",
            "2",
            "--seed",
            "3",
            "--out",
            str(directory),
        ]
    )
    assert code == 0
    return directory


@pytest.fixture(scope="module")
def db_dir(tmp_path_factory, tile_dir):
    directory = tmp_path_factory.mktemp("cli_db")
    code = main(["load", str(tile_dir), "--db", str(directory)])
    assert code == 0
    return directory


class TestGenerateInfo:
    def test_generate_wrote_tiles(self, tile_dir):
        assert len(list(tile_dir.glob("*.las"))) == 4

    def test_generate_laz(self, tmp_path):
        code = main(
            [
                "generate",
                "--points",
                "1000",
                "--tiles",
                "1",
                "--laz",
                "--out",
                str(tmp_path / "laz_tiles"),
            ]
        )
        assert code == 0
        assert len(list((tmp_path / "laz_tiles").glob("*.laz"))) == 1

    def test_info(self, tile_dir, capsys):
        assert main(["info", str(tile_dir)]) == 0
        out = capsys.readouterr().out
        assert "total: 4 files, 5000 points" in out

    def test_info_empty_dir(self, tmp_path, capsys):
        assert main(["info", str(tmp_path)]) == 1

    def test_info_wgs84(self, tile_dir, capsys):
        assert main(["info", str(tile_dir), "--wgs84"]) == 0
        out = capsys.readouterr().out
        assert "WGS84 bounds" in out
        # The test extent (RD 85-87 km E, 445-447 km N) maps near
        # (52.0 N, 4.4 E) — the Delft area.
        assert "(51.9" in out or "(52.0" in out


class TestLoadQuerySql:
    def test_load_persists(self, db_dir):
        assert (db_dir / "points" / "schema.json").exists()

    def test_query(self, db_dir, capsys):
        code = main(
            [
                "query",
                str(db_dir),
                "--wkt",
                "POLYGON ((85000 445000, 87000 445000, 87000 447000,"
                " 85000 447000, 85000 445000))",
                "--show",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "5000 points" in out

    def test_query_dwithin(self, db_dir, capsys):
        code = main(
            [
                "query",
                str(db_dir),
                "--wkt",
                "LINESTRING (85000 446000, 87000 446000)",
                "--predicate",
                "dwithin",
                "--distance",
                "100",
            ]
        )
        assert code == 0
        assert "points in" in capsys.readouterr().out

    def test_query_bad_wkt(self, db_dir, capsys):
        assert main(["query", str(db_dir), "--wkt", "NONSENSE (1 2)"]) == 1
        assert "error" in capsys.readouterr().err

    def test_sql(self, db_dir, capsys):
        code = main(["sql", str(db_dir), "SELECT count(*) FROM points"])
        assert code == 0
        out = capsys.readouterr().out
        assert "5000" in out

    def test_sql_group_by_limit(self, db_dir, capsys):
        code = main(
            [
                "sql",
                str(db_dir),
                "SELECT classification, count(*) FROM points "
                "GROUP BY classification ORDER BY 2 DESC",
                "--limit",
                "2",
            ]
        )
        assert code == 0

    def test_sql_error(self, db_dir, capsys):
        assert main(["sql", str(db_dir), "SELECT FROM nothing"]) == 1

    def test_sql_explain(self, db_dir, capsys):
        code = main(
            [
                "sql",
                str(db_dir),
                "SELECT count(*) FROM points WHERE z BETWEEN 0 AND 5",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "range filter via imprint on 'z'" in out

    def test_sql_analyze(self, db_dir, capsys):
        code = main(
            [
                "sql",
                str(db_dir),
                "SELECT count(*) FROM points WHERE z BETWEEN 0 AND 5",
                "--analyze",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sql.query" in out
        assert "filter.range" in out
        assert "rows returned:" in out

    def test_query_empty_table_prints_dash_selectivity(
        self, tmp_path, capsys
    ):
        from repro.api import PointCloudDB

        db = PointCloudDB(directory=tmp_path / "empty_db")
        db.create_pointcloud("points")
        db.save()
        code = main(
            [
                "query",
                str(tmp_path / "empty_db"),
                "--wkt",
                "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 points" in out
        assert "(- of 0 rows)" in out


class TestTrace:
    def test_trace_chrome_export(self, db_dir, tmp_path, capsys):
        import json

        from repro.obs.trace import get_tracer

        out_path = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                str(db_dir),
                "--sql",
                "SELECT count(*) FROM points WHERE z > 1",
                "--export",
                "chrome",
                "--out",
                str(out_path),
            ]
        )
        get_tracer().disable()
        assert code == 0
        payload = json.loads(out_path.read_text())
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        events = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        assert events
        assert any(e["name"] == "thread_name" for e in metadata)
        names = {event["name"] for event in events}
        assert "sql.query" in names
        for event in events:
            assert event["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid"} <= set(event)

    def test_trace_json_export_last_n(self, db_dir, capsys):
        import json

        from repro.obs.trace import get_tracer

        code = main(
            [
                "trace",
                str(db_dir),
                "--wkt",
                "POLYGON ((85000 445000, 86000 445000, 86000 446000,"
                " 85000 446000, 85000 445000))",
                "--export",
                "json",
                "--last",
                "1",
            ]
        )
        get_tracer().disable()
        assert code == 0
        records = json.loads(capsys.readouterr().out)
        assert records
        names = {record["name"] for record in records}
        assert "query.spatial" in names
        # --last 1: exactly one trace (query tree) exported.
        assert len({record["trace_id"] for record in records}) == 1

    def test_trace_needs_a_query(self, db_dir, capsys):
        assert main(["trace", str(db_dir)]) == 1
        assert "--sql or --wkt" in capsys.readouterr().err


class TestServeMetrics:
    def test_serves_and_exits_after_deadline(self, db_dir, capsys):
        import json
        import re
        import threading
        import time
        import urllib.request

        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(
                main(
                    [
                        "serve-metrics",
                        str(db_dir),
                        "--port",
                        "0",
                        "--for-seconds",
                        "3",
                    ]
                )
            )
        )
        thread.start()
        # The command prints its URL (OS-picked port) before sleeping.
        printed, base = "", None
        for _ in range(100):
            printed += capsys.readouterr().out
            match = re.search(r"http://[\d.]+:\d+", printed)
            if match:
                base = match.group(0)
                break
            time.sleep(0.05)
        assert base is not None, f"no URL printed: {printed!r}"
        with urllib.request.urlopen(base + "/metrics", timeout=5) as response:
            metrics = response.read().decode("utf-8")
        with urllib.request.urlopen(base + "/healthz", timeout=5) as response:
            healthz = json.loads(response.read())
        thread.join(timeout=30)
        assert codes == [0]
        assert metrics.endswith("# EOF\n")
        assert "repro_info" in metrics
        assert "obs_http_requests_total" in metrics
        assert healthz["status"] == "ok"
        assert healthz["tables"] == {"points": 5000}


class TestTimeouts:
    HALF_BOX = (
        "POLYGON ((85000 445000, 86000 445000, 86000 446000,"
        " 85000 446000, 85000 445000))"
    )

    def test_query_timeout_cancels(self, db_dir, capsys):
        code = main(
            ["query", str(db_dir), "--wkt", self.HALF_BOX, "--timeout", "0"]
        )
        assert code == 1
        assert "cancelled" in capsys.readouterr().err

    def test_sql_timeout_cancels(self, db_dir, capsys):
        code = main(
            [
                "sql",
                str(db_dir),
                "SELECT count(*) FROM points WHERE x < 86000",
                "--timeout",
                "0",
            ]
        )
        assert code == 1
        assert "cancelled" in capsys.readouterr().err


class TestQueriesCommand:
    @pytest.fixture
    def live_server(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.queries import QueryRegistry
        from repro.obs.server import TelemetryServer
        from repro.obs.trace import Tracer

        registry = QueryRegistry()
        server = TelemetryServer(
            port=0,
            registry=MetricsRegistry(),
            tracer=Tracer(enabled=False),
            queries=registry,
        )
        with server:
            yield server, registry

    def test_renders_active_and_recent(self, live_server, capsys):
        server, registry = live_server
        with registry.track("spatial", detail={"table": "pts"}) as query:
            code = main(["queries", "--url", server.url])
        assert code == 0
        out = capsys.readouterr().out
        assert "active (1):" in out
        assert query.query_id in out

    def test_json_output(self, live_server, capsys):
        import json

        server, registry = live_server
        with registry.track("sql"):
            pass
        assert main(["queries", "--url", server.url, "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["active"] == []
        assert snapshot["recent"][0]["kind"] == "sql"

    def test_unreachable_server_errors_cleanly(self, capsys):
        assert main(["queries", "--url", "http://127.0.0.1:1"]) == 1
        assert "cannot fetch" in capsys.readouterr().err


class TestSlowlogCommand:
    @pytest.fixture
    def log_path(self, db_dir, tmp_path):
        from repro.api import PointCloudDB
        from repro.obs.slowlog import SlowQueryLog

        db = PointCloudDB.load(db_dir)
        path = tmp_path / "slow.jsonl"
        db.slow_log = SlowQueryLog(0.0, path)
        db.sql("SELECT count(*) FROM points WHERE z > 2")
        return path

    def test_pretty_output(self, log_path, capsys):
        assert main(["slowlog", str(log_path)]) == 0
        captured = capsys.readouterr()
        assert "sql took" in captured.out
        assert "SELECT count(*) FROM points" in captured.out
        assert "sql.query" in captured.out  # the span tree
        assert "(1 slow queries)" in captured.err

    def test_json_output(self, log_path, capsys):
        import json

        assert main(["slowlog", str(log_path), "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "sql"

    def test_last_limits_records(self, log_path, capsys):
        assert main(["slowlog", str(log_path), "--last", "0"]) == 0

    def test_missing_file_errors(self, tmp_path, capsys):
        assert main(["slowlog", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err


class TestToolCommands:
    def test_sort(self, tile_dir, tmp_path, capsys):
        src = sorted(tile_dir.glob("*.las"))[0]
        dst = tmp_path / "sorted.las"
        code = main(["sort", str(src), str(dst), "--curve", "hilbert"])
        assert code == 0
        assert dst.exists()

    def test_index(self, tile_dir, capsys):
        code = main(["index", str(tile_dir), "--leaf-capacity", "500"])
        assert code == 0
        assert len(list(tile_dir.glob("*.lax"))) == 4

    def test_render(self, tile_dir, tmp_path, capsys):
        out = tmp_path / "render.ppm"
        code = main(["render", str(tile_dir), str(out), "--width", "64"])
        assert code == 0
        assert out.exists()
        assert out.read_bytes().startswith(b"P6")

    def test_render_empty(self, tmp_path):
        assert main(["render", str(tmp_path), str(tmp_path / "x.ppm")]) == 1

    def test_elevation(self, tile_dir, tmp_path, capsys):
        out = tmp_path / "elev"
        code = main(
            ["elevation", str(tile_dir), "--out", str(out), "--cell", "50"]
        )
        assert code == 0
        for name in ("dsm.pgm", "dtm.pgm", "chm.pgm", "hillshade.ppm"):
            assert (out / name).exists()

    def test_elevation_empty(self, tmp_path):
        assert (
            main(["elevation", str(tmp_path), "--out", str(tmp_path / "o")])
            == 1
        )


class TestVerifyCommand:
    """`repro-gis verify` exit codes: the contract CI and probes rely on."""

    @pytest.fixture
    def own_db(self, tmp_path, tile_dir):
        directory = tmp_path / "verify_db"
        assert main(["load", str(tile_dir), "--db", str(directory)]) == 0
        return directory

    def _corrupt(self, db):
        target = db / "points" / "x.col"
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))

    def test_clean_store_exits_zero(self, own_db, capsys):
        assert main(["verify", str(own_db)]) == 0
        assert "verify: OK" in capsys.readouterr().out

    def test_corrupt_store_exits_nonzero(self, own_db, capsys):
        self._corrupt(own_db)
        assert main(["verify", str(own_db)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out
        assert "verify: FAILED" in out

    def test_json_output_clean(self, own_db, capsys):
        import json

        assert main(["verify", str(own_db), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["tables"]["points"]["ok"] is True
        assert report["imprints"]["ok"] is True

    def test_json_output_corrupt(self, own_db, capsys):
        import json

        self._corrupt(own_db)
        assert main(["verify", str(own_db), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False

    def test_repair_then_clean(self, own_db, capsys):
        self._corrupt(own_db)
        assert main(["verify", str(own_db)]) == 1
        capsys.readouterr()
        # Repair quarantines/rolls back the bad column, then re-verifies.
        main(["verify", str(own_db), "--repair"])
        capsys.readouterr()
        assert main(["verify", str(own_db)]) in (0, 1)


class TestServeCommand:
    def test_serves_queries_for_deadline(self, db_dir, capsys):
        import json
        import re
        import threading
        import time
        import urllib.request

        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(
                main(
                    [
                        "serve",
                        str(db_dir),
                        "--port",
                        "0",
                        "--for-seconds",
                        "4",
                        "--threads",
                        "1",
                    ]
                )
            )
        )
        thread.start()
        printed, base = "", None
        for _ in range(150):
            printed += capsys.readouterr().out
            match = re.search(r"http://[\d.]+:\d+", printed)
            if match:
                base = match.group(0)
                break
            time.sleep(0.05)
        assert base is not None, f"no URL printed: {printed!r}"
        request = urllib.request.Request(
            base + "/v1/query",
            data=json.dumps(
                {
                    "table": "points",
                    "bbox": [85000, 445000, 87000, 447000],
                    "limit": 5,
                }
            ).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.loads(response.read())
        thread.join(timeout=30)
        assert codes == [0]
        assert payload["meta"]["n_results"] == 5000
        assert payload["meta"]["n_returned"] == 5
        assert "serving queries on" in printed

    def test_port_in_use_is_actionable(self, db_dir, capsys):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.server import TelemetryServer
        from repro.obs.trace import Tracer

        blocker = TelemetryServer(
            port=0, registry=MetricsRegistry(), tracer=Tracer(enabled=False)
        ).start()
        try:
            code = main(
                ["serve", str(db_dir), "--port", str(blocker.port)]
            )
        finally:
            blocker.stop()
        assert code == 1
        err = capsys.readouterr().err
        assert str(blocker.port) in err
        assert "in use" in err

    def test_serve_metrics_port_in_use_is_actionable(self, db_dir, capsys):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.server import TelemetryServer
        from repro.obs.trace import Tracer

        blocker = TelemetryServer(
            port=0, registry=MetricsRegistry(), tracer=Tracer(enabled=False)
        ).start()
        try:
            code = main(
                ["serve-metrics", str(db_dir), "--port", str(blocker.port)]
            )
        finally:
            blocker.stop()
        assert code == 1
        assert str(blocker.port) in capsys.readouterr().err
