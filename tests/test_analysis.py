"""The static-analysis framework: rules, baseline, reporters, CLI.

Each rule gets positive + negative fixture snippets; the fixture trees
mirror the real layout (``repro/...``) so the default configuration's
module designations (hot paths, lock modules, the durable allowlist)
apply to them exactly as they do to the real tree.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_check
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import Config, Project
from repro.analysis.main import main as check_main
from repro.analysis.registry import all_rules
from repro.analysis.report import to_json, to_sarif, to_text
from repro.analysis.rules.struct_format import field_count

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def make_tree(tmp_path, files):
    """Materialise ``{relpath: source}`` under ``tmp_path`` and return
    the scan root (the ``repro`` directory)."""
    root = tmp_path / "repro"
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    root.mkdir(exist_ok=True)
    return root


def check(tmp_path, files, **kwargs):
    root = make_tree(tmp_path, files)
    return run_check(root, baseline=Baseline(), **kwargs)


def rule_ids(report):
    return sorted({f.rule for f in report.findings})


# -- R1 durable-write ----------------------------------------------------------


class TestDurableWrite:
    def test_raw_binary_open_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {"repro/x.py": 'fh = open("out.col", "wb")\n'},
            rule_ids=["durable-write"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].rule == "durable-write"
        assert report.findings[0].line == 1

    def test_write_text_modes_and_renames_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": (
                    'import os, json\n'
                    'open("a", "w")\n'
                    'open("b", mode="ab")\n'
                    'os.replace("a", "b")\n'
                    'json.dump({}, open("c"))\n'
                )
            },
            rule_ids=["durable-write"],
        )
        assert len(report.findings) == 4

    def test_reads_and_durable_module_exempt(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": 'data = open("a.col", "rb").read()\nopen("b")\n',
                "repro/engine/durable.py": (
                    'import os\n'
                    'fh = open("t", "wb")\n'
                    'os.replace("t", "a")\n'
                ),
            },
            rule_ids=["durable-write"],
        )
        assert report.findings == []


# -- R2 crash-transparency -----------------------------------------------------


class TestCrashTransparency:
    def test_swallowing_handlers_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                def a():
                    try:
                        work()
                    except:
                        pass

                def b():
                    try:
                        work()
                    except BaseException:
                        return None
                """
            },
            rule_ids=["crash-transparency"],
        )
        assert len(report.findings) == 2

    def test_reraising_and_narrow_handlers_pass(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                def a():
                    try:
                        work()
                    except BaseException:
                        cleanup()
                        raise

                def b():
                    try:
                        work()
                    except Exception:
                        pass

                def c():
                    try:
                        work()
                    except (ValueError, BaseException) as exc:
                        raise RuntimeError("wrapped") from exc
                """
            },
            rule_ids=["crash-transparency"],
        )
        assert report.findings == []

    def test_raise_inside_nested_function_does_not_count(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                def a():
                    try:
                        work()
                    except BaseException:
                        def later():
                            raise RuntimeError("never runs now")
                        keep(later)
                """
            },
            rule_ids=["crash-transparency"],
        )
        assert len(report.findings) == 1


# -- R3 lock-discipline --------------------------------------------------------

# Default config designates repro/obs/metrics.py as a lock module; the
# fixtures reuse that path so the stock `repro-gis check` sees them.
LOCKED_CLASS_BAD = """
import threading

class Buffer:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self.count = 0

    def add(self, item):
        with self._lock:
            self._items.append(item)
            self.count += 1

    def sneak(self, item):
        self._items.append(item)
"""

LOCKED_CLASS_GOOD = LOCKED_CLASS_BAD.replace(
    "    def sneak(self, item):\n        self._items.append(item)\n",
    "    def sneak(self, item):\n"
    "        with self._lock:\n"
    "            self._items.append(item)\n",
)

LOCK_ORDER_CYCLE = """
import threading

A = threading.Lock()
B = threading.Lock()

def one():
    with A:
        with B:
            pass

def two():
    with B:
        with A:
            pass
"""


class TestLockDiscipline:
    def test_unguarded_write_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {"repro/obs/metrics.py": LOCKED_CLASS_BAD},
            rule_ids=["lock-discipline"],
        )
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert "Buffer._items" in finding.message
        assert "sneak" in finding.message

    def test_guarded_writes_pass(self, tmp_path):
        report = check(
            tmp_path,
            {"repro/obs/metrics.py": LOCKED_CLASS_GOOD},
            rule_ids=["lock-discipline"],
        )
        assert report.findings == []

    def test_init_writes_exempt(self, tmp_path):
        # Construction happens before the object is shared.
        report = check(
            tmp_path,
            {
                "repro/obs/metrics.py": """
                import threading

                class Plain:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.value = 0

                    def bump(self):
                        with self._lock:
                            self.value += 1
                """
            },
            rule_ids=["lock-discipline"],
        )
        assert report.findings == []

    def test_lock_order_cycle_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {"repro/obs/metrics.py": LOCK_ORDER_CYCLE},
            rule_ids=["lock-discipline"],
        )
        assert len(report.findings) == 1
        assert "cycle" in report.findings[0].message

    def test_consistent_lock_order_passes(self, tmp_path):
        consistent = LOCK_ORDER_CYCLE.replace(
            "def two():\n    with B:\n        with A:",
            "def two():\n    with A:\n        with B:",
        )
        report = check(
            tmp_path,
            {"repro/obs/metrics.py": consistent},
            rule_ids=["lock-discipline"],
        )
        assert report.findings == []

    def test_non_designated_module_ignored(self, tmp_path):
        report = check(
            tmp_path,
            {"repro/gis/whatever.py": LOCKED_CLASS_BAD},
            rule_ids=["lock-discipline"],
        )
        assert report.findings == []


# -- R4 struct-format ----------------------------------------------------------


class TestStructFormat:
    def test_size_constant_drift_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                import struct
                HEADER_SIZE = 7
                _S = struct.Struct("<4sH")
                assert _S.size == HEADER_SIZE
                """
            },
            rule_ids=["struct-format"],
        )
        assert len(report.findings) == 1
        assert "drifted" in report.findings[0].message

    def test_matching_size_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                import struct
                HEADER_SIZE = 6
                _S = struct.Struct("<4sH")
                assert _S.size == HEADER_SIZE
                """
            },
            rule_ids=["struct-format"],
        )
        assert report.findings == []

    def test_pack_arity_mismatch_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                import struct
                _S = struct.Struct("<4sHH")
                raw = _S.pack(b"MAGI", 1)
                """
            },
            rule_ids=["struct-format"],
        )
        assert len(report.findings) == 1
        assert "2 values" in report.findings[0].message
        assert "3 fields" in report.findings[0].message

    def test_unpack_arity_mismatch_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                import struct
                _S = struct.Struct("<4sHH")
                magic, version = _S.unpack(b"x" * 8)
                """
            },
            rule_ids=["struct-format"],
        )
        assert len(report.findings) == 1

    def test_invalid_format_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                import struct
                _S = struct.Struct("<4sZ")
                """
            },
            rule_ids=["struct-format"],
        )
        assert len(report.findings) == 1
        assert "invalid struct format" in report.findings[0].message

    def test_correct_usage_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                import struct
                _S = struct.Struct("<4sHHQ")
                raw = _S.pack(b"MAGI", 2, 3, 4)
                magic, version, kind, rows = _S.unpack(raw)
                """
            },
            rule_ids=["struct-format"],
        )
        assert report.findings == []

    def test_field_count(self):
        assert field_count("<4sH") == 2
        assert field_count("<4sHHQQI") == 6
        assert field_count("<3i") == 3
        assert field_count("<4x2H") == 2
        assert field_count("@QQ") == 2


# -- R5 span-discipline --------------------------------------------------------


class TestSpanDiscipline:
    def test_clock_call_in_hot_module_flagged(self, tmp_path):
        # repro/core/query.py is in the default hot-path designation.
        report = check(
            tmp_path,
            {
                "repro/core/query.py": (
                    "import time\nstart = time.perf_counter()\n"
                )
            },
            rule_ids=["span-discipline"],
        )
        assert len(report.findings) == 1

    def test_cold_module_and_obs_helper_pass(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/bench/harness.py": (
                    "import time\nstart = time.perf_counter()\n"
                ),
                "repro/core/query.py": (
                    "from repro.obs.timing import now\nstart = now()\n"
                ),
            },
            rule_ids=["span-discipline"],
        )
        assert report.findings == []


# -- R6 counter-registry -------------------------------------------------------


class TestCounterRegistry:
    def test_typod_counter_flagged_with_hint(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": (
                    "from repro.obs.metrics import get_registry\n"
                    'get_registry().counter("durability.retires").inc()\n'
                )
            },
            rule_ids=["counter-registry"],
        )
        assert len(report.findings) == 1
        assert "durability.retries" in report.findings[0].message  # hint

    def test_declared_names_pass(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": (
                    "from repro.obs.metrics import get_registry\n"
                    'get_registry().counter("durability.retries").inc()\n'
                    'get_registry().histogram("query.total_seconds")\n'
                )
            },
            rule_ids=["counter-registry"],
        )
        assert report.findings == []

    def test_wrong_kind_flagged(self, tmp_path):
        # Declared as a histogram, used as a counter.
        report = check(
            tmp_path,
            {
                "repro/x.py": (
                    "from repro.obs.metrics import get_registry\n"
                    'get_registry().counter("query.total_seconds").inc()\n'
                )
            },
            rule_ids=["counter-registry"],
        )
        assert len(report.findings) == 1

    def test_lifecycle_names_are_declared(self, tmp_path):
        # The query-lifecycle metrics emitted by repro/obs/queries.py
        # (deliberately not an obs-exempt module) are in the registry.
        report = check(
            tmp_path,
            {
                "repro/x.py": (
                    "from repro.obs.metrics import get_registry\n"
                    'get_registry().counter("query.cancelled").inc()\n'
                    'get_registry().counter("query.errors").inc()\n'
                    'get_registry().gauge("query.active").set(1.0)\n'
                )
            },
            rule_ids=["counter-registry"],
        )
        assert report.findings == []

    def test_typod_lifecycle_counter_flagged_with_hint(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": (
                    "from repro.obs.metrics import get_registry\n"
                    'get_registry().counter("query.cancelld").inc()\n'
                )
            },
            rule_ids=["counter-registry"],
        )
        assert len(report.findings) == 1
        assert "query.cancelled" in report.findings[0].message  # hint

    def test_lifecycle_gauge_used_as_counter_flagged(self, tmp_path):
        # query.active is declared as a gauge, not a counter.
        report = check(
            tmp_path,
            {
                "repro/x.py": (
                    "from repro.obs.metrics import get_registry\n"
                    'get_registry().counter("query.active").inc()\n'
                )
            },
            rule_ids=["counter-registry"],
        )
        assert len(report.findings) == 1

    def test_unregistered_heat_counter_flagged_with_hint(self, tmp_path):
        # Seeded bug: a heat counter that skipped obs/names.py.  The
        # emitting modules (repro/obs/heat.py, repro/obs/profiler.py)
        # are deliberately not obs-exempt, so R6 covers them.
        report = check(
            tmp_path,
            {
                "repro/obs/heat.py": (
                    "from repro.obs.metrics import get_registry\n"
                    'get_registry().counter("heat.segment_probes").inc()\n'
                )
            },
            rule_ids=["counter-registry"],
        )
        assert len(report.findings) == 1
        assert "heat.segment_probes" in report.findings[0].message

    def test_typod_profiler_counter_flagged_with_hint(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/obs/profiler.py": (
                    "from repro.obs.metrics import get_registry\n"
                    'get_registry().counter("profiler.sweep").inc()\n'
                )
            },
            rule_ids=["counter-registry"],
        )
        assert len(report.findings) == 1
        assert "profiler.sweeps" in report.findings[0].message  # hint

    def test_profiler_and_heat_names_are_declared(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": (
                    "from repro.obs.metrics import get_registry\n"
                    'get_registry().counter("heat.updates").inc()\n'
                    'get_registry().counter("heat.flushes").inc()\n'
                    'get_registry().counter("profiler.sweeps").inc()\n'
                    'get_registry().counter("profiler.samples").inc()\n'
                    'get_registry().counter("profiler.captures").inc()\n'
                    'get_registry().gauge("heat.tables").set(1.0)\n'
                    'get_registry().gauge("profiler.running").set(1.0)\n'
                    'get_registry().histogram("profiler.sweep_seconds")\n'
                )
            },
            rule_ids=["counter-registry"],
        )
        assert report.findings == []

    def test_heat_gauge_used_as_counter_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": (
                    "from repro.obs.metrics import get_registry\n"
                    'get_registry().counter("heat.extents").inc()\n'
                )
            },
            rule_ids=["counter-registry"],
        )
        assert len(report.findings) == 1


# -- R7 resource-leak ----------------------------------------------------------

# The leaked-slot shape: acquire, fallible work, release — an exception
# in the middle escapes without ever releasing.
LEAKED_SLOT = """
def handle(slot, work):
    slot.acquire()
    work()
    slot.release()
"""


class TestResourceLeak:
    def test_exception_window_flagged(self, tmp_path):
        report = check(tmp_path, {"repro/x.py": LEAKED_SLOT})
        assert rule_ids(report) == ["resource-leak"]
        assert "try/finally" in report.findings[0].message

    def test_early_return_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                def handle(slot, bad):
                    slot.acquire()
                    if bad:
                        return None
                    slot.release()
                    return True
                """
            },
            rule_ids=["resource-leak"],
        )
        assert len(report.findings) == 1

    def test_try_finally_shape_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                def handle(slot, work):
                    slot.acquire()
                    try:
                        work()
                    finally:
                        slot.release()
                """
            },
            rule_ids=["resource-leak"],
        )
        assert report.findings == []

    def test_pin_unpin_pair_tracked(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                def read(snapshot, work):
                    snapshot.pin()
                    work()
                    snapshot.unpin()
                """
            },
            rule_ids=["resource-leak"],
        )
        assert len(report.findings) == 1
        assert "pin" in report.findings[0].message

    def test_cross_function_protocol_skipped(self, tmp_path):
        # acquire with no same-function release: a handoff protocol the
        # intraprocedural analysis cannot judge.
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                def start(slot):
                    slot.acquire()
                    return slot
                """
            },
            rule_ids=["resource-leak"],
        )
        assert report.findings == []

    def test_raw_handle_leak_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                def load(path):
                    fh = open(path)
                    data = fh.read()
                    fh.close()
                    return data
                """
            },
            rule_ids=["resource-leak"],
        )
        assert len(report.findings) == 1

    def test_with_open_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                def load(path):
                    with open(path) as fh:
                        return fh.read()
                """
            },
            rule_ids=["resource-leak"],
        )
        assert report.findings == []

    def test_escaping_handle_skipped(self, tmp_path):
        # Returning the handle transfers ownership to the caller.
        report = check(
            tmp_path,
            {
                "repro/x.py": """
                def open_log(path):
                    fh = open(path)
                    fh.close()
                    return fh
                """
            },
            rule_ids=["resource-leak"],
        )
        assert report.findings == []


# -- R8 exception-status -------------------------------------------------------

# An exception type the service layer defines and raises but never maps
# to an HTTP status: clients would get the generic 500 fallback.
UNMAPPED_EXCEPTION = """
class LedgerCorrupt(RuntimeError):
    pass


def charge(ledger):
    if ledger.bad:
        raise LedgerCorrupt("ledger does not balance")
"""


class TestExceptionStatus:
    def test_unmapped_serve_exception_flagged(self, tmp_path):
        report = check(tmp_path, {"repro/serve/quotas.py": UNMAPPED_EXCEPTION})
        assert rule_ids(report) == ["exception-status"]
        assert "LedgerCorrupt" in report.findings[0].message

    def test_mapped_exception_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/serve/quotas.py": UNMAPPED_EXCEPTION,
                "repro/serve/http.py": """
                from .quotas import LedgerCorrupt, charge

                def handle(ledger):
                    try:
                        charge(ledger)
                    except LedgerCorrupt:
                        return 409
                    return 200
                """,
            },
            rule_ids=["exception-status"],
        )
        assert report.findings == []

    def test_generic_catch_does_not_count(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/serve/quotas.py": UNMAPPED_EXCEPTION,
                "repro/serve/http.py": """
                from .quotas import charge

                def handle(ledger):
                    try:
                        charge(ledger)
                    except Exception:
                        raise
                """,
            },
            rule_ids=["exception-status"],
        )
        assert len(report.findings) == 1

    def test_defined_but_never_raised_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/serve/quotas.py": """
                class FutureError(RuntimeError):
                    pass
                """
            },
            rule_ids=["exception-status"],
        )
        assert report.findings == []

    def test_extra_status_exceptions_covered(self, tmp_path):
        # The cancellation path: QueryCancelled lives in obs but the
        # serve layer must still map it (to 408).
        report = check(
            tmp_path,
            {
                "repro/obs/queries.py": """
                class QueryCancelled(RuntimeError):
                    pass
                """,
                "repro/serve/http.py": "def handle():\n    return 200\n",
            },
            rule_ids=["exception-status"],
        )
        assert len(report.findings) == 1
        assert "QueryCancelled" in report.findings[0].message


# -- R9 blocking-under-lock ----------------------------------------------------

FSYNC_UNDER_LOCK = """
import os
import threading


class Gate:
    def __init__(self):
        self._lock = threading.Lock()

    def persist(self, fd):
        with self._lock:
            os.fsync(fd)
"""


class TestBlockingUnderLock:
    def test_fsync_under_lock_flagged(self, tmp_path):
        report = check(tmp_path, {"repro/serve/admission.py": FSYNC_UNDER_LOCK})
        assert rule_ids(report) == ["blocking-under-lock"]
        assert "os.fsync" in report.findings[0].message

    def test_sleep_under_module_lock_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/serve/admission.py": """
                import threading
                import time

                _lock = threading.Lock()


                def backoff():
                    with _lock:
                        time.sleep(0.1)
                """
            },
            rule_ids=["blocking-under-lock"],
        )
        assert len(report.findings) == 1

    def test_condition_wait_exempt(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/serve/admission.py": """
                import threading


                class Queue:
                    def __init__(self):
                        self._cond = threading.Condition()

                    def get(self):
                        with self._cond:
                            self._cond.wait()
                """
            },
            rule_ids=["blocking-under-lock"],
        )
        assert report.findings == []

    def test_blocking_outside_lock_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/serve/admission.py": """
                import os
                import threading


                class Gate:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def persist(self, fd):
                        with self._lock:
                            pending = True
                        if pending:
                            os.fsync(fd)
                """
            },
            rule_ids=["blocking-under-lock"],
        )
        assert report.findings == []

    def test_non_designated_module_ignored(self, tmp_path):
        report = check(
            tmp_path,
            {"repro/gis/whatever.py": FSYNC_UNDER_LOCK},
            rule_ids=["blocking-under-lock"],
        )
        assert report.findings == []


# -- R10 thread-boundary -------------------------------------------------------

RAW_THREAD_SPAWN = """
import threading


def spawn(fn):
    worker = threading.Thread(target=fn)
    worker.start()
    return worker
"""


class TestThreadBoundary:
    def test_raw_spawn_flagged(self, tmp_path):
        report = check(tmp_path, {"repro/engine/select.py": RAW_THREAD_SPAWN})
        assert rule_ids(report) == ["thread-boundary"]

    def test_copy_context_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/engine/select.py": """
                import contextvars
                import threading


                def spawn(fn):
                    ctx = contextvars.copy_context()
                    worker = threading.Thread(target=lambda: ctx.run(fn))
                    worker.start()
                    return worker
                """
            },
            rule_ids=["thread-boundary"],
        )
        assert report.findings == []

    def test_run_tasks_in_scope_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/engine/select.py": """
                import threading

                from .parallel import run_tasks


                def drive(fn, watchdog):
                    thread = threading.Thread(target=watchdog)
                    thread.start()
                    return run_tasks(fn, [1, 2, 3])
                """
            },
            rule_ids=["thread-boundary"],
        )
        assert report.findings == []

    def test_non_designated_module_ignored(self, tmp_path):
        report = check(
            tmp_path,
            {"repro/gis/whatever.py": RAW_THREAD_SPAWN},
            rule_ids=["thread-boundary"],
        )
        assert report.findings == []


# -- R11 cancellation-coverage -------------------------------------------------

CHECKLESS_SCAN_LOOP = """
def scan(segments):
    out = []
    for seg in segments:
        out.append(decode_block(seg))
    return out
"""


class TestCancellationCoverage:
    def test_checkless_scan_loop_flagged(self, tmp_path):
        report = check(
            tmp_path, {"repro/engine/select.py": CHECKLESS_SCAN_LOOP}
        )
        assert rule_ids(report) == ["cancellation-coverage"]
        assert "check_deadline" in report.findings[0].message

    def test_deadline_check_in_body_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/engine/select.py": """
                def scan(segments):
                    out = []
                    for seg in segments:
                        check_deadline()
                        out.append(decode_block(seg))
                    return out
                """
            },
            rule_ids=["cancellation-coverage"],
        )
        assert report.findings == []

    def test_run_tasks_fanout_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/engine/select.py": """
                def scan(segments):
                    probes = [seg for seg in segments]
                    return run_tasks(decode_block, probes)
                """
            },
            rule_ids=["cancellation-coverage"],
        )
        assert report.findings == []

    def test_transitive_check_through_helper_passes(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/engine/select.py": """
                def decode_segment(seg):
                    check_deadline()
                    return unpack(seg)


                def scan(segments):
                    out = []
                    for seg in segments:
                        out.append(decode_segment(seg))
                    return out
                """
            },
            rule_ids=["cancellation-coverage"],
        )
        assert report.findings == []

    def test_assembly_loop_ignored(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/engine/select.py": """
                def collect(parts):
                    out = []
                    for part in parts:
                        out.append(normalise(part))
                    return out
                """
            },
            rule_ids=["cancellation-coverage"],
        )
        assert report.findings == []

    def test_init_exempt(self, tmp_path):
        report = check(
            tmp_path,
            {
                "repro/engine/select.py": """
                class Column:
                    def __init__(self, segments):
                        self.blocks = []
                        for seg in segments:
                            self.blocks.append(decode_block(seg))
                """
            },
            rule_ids=["cancellation-coverage"],
        )
        assert report.findings == []

    def test_non_designated_module_ignored(self, tmp_path):
        report = check(
            tmp_path,
            {"repro/gis/whatever.py": CHECKLESS_SCAN_LOOP},
            rule_ids=["cancellation-coverage"],
        )
        assert report.findings == []


# -- baseline ------------------------------------------------------------------


class TestBaseline:
    FILES = {"repro/x.py": 'fh = open("out.col", "wb")\n'}

    def test_round_trip_add_then_clean(self, tmp_path):
        root = make_tree(tmp_path, self.FILES)
        report = run_check(root, baseline=Baseline(), rule_ids=["durable-write"])
        assert len(report.findings) == 1

        path = tmp_path / "baseline.json"
        Baseline.from_findings(report.findings).save(path)
        loaded = Baseline.load(path)
        again = run_check(root, baseline=loaded, rule_ids=["durable-write"])
        assert again.ok
        assert again.findings == []
        assert len(again.suppressed) == 1

    def test_baseline_survives_line_shifts(self, tmp_path):
        root = make_tree(tmp_path, self.FILES)
        report = run_check(root, baseline=Baseline(), rule_ids=["durable-write"])
        path = tmp_path / "baseline.json"
        Baseline.from_findings(report.findings).save(path)

        # Prepend lines: the finding moves but its snippet does not.
        target = tmp_path / "repro" / "x.py"
        target.write_text("import os\n\n\n" + target.read_text())
        again = run_check(
            root,
            baseline=Baseline.load(path),
            rule_ids=["durable-write"],
        )
        assert again.findings == []
        assert len(again.suppressed) == 1

    def test_stale_entries_reported_not_fatal(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": "value = 1\n"})
        stale = Baseline(
            [BaselineEntry("durable-write", "repro/gone.py", "open('a','wb')")]
        )
        report = run_check(root, baseline=stale, rule_ids=["durable-write"])
        assert report.ok
        assert len(report.unused_baseline) == 1

    def test_justifications_preserved_on_update(self, tmp_path):
        root = make_tree(tmp_path, self.FILES)
        report = run_check(root, baseline=Baseline(), rule_ids=["durable-write"])
        old = Baseline.from_findings(report.findings)
        entry = next(iter(old.unused()))
        entry.justification = "because streaming"
        new = Baseline.from_findings(report.findings, previous=old)
        assert new.justification(report.findings[0]) == "because streaming"


# -- reporters -----------------------------------------------------------------


class TestReporters:
    def test_text_and_json_agree(self, tmp_path):
        report = check(
            tmp_path,
            {"repro/x.py": 'fh = open("out.col", "wb")\n'},
            rule_ids=["durable-write"],
        )
        text = to_text(report)
        doc = json.loads(to_json(report))
        assert "durable-write" in text
        assert doc["ok"] is False
        assert doc["errors"] == 1
        assert doc["findings"][0]["rule"] == "durable-write"
        assert doc["findings"][0]["path"] == "repro/x.py"

    def test_sarif_marks_baselined_findings_suppressed(self, tmp_path):
        root = make_tree(
            tmp_path, {"repro/x.py": 'fh = open("out.col", "wb")\n'}
        )
        first = run_check(
            root, baseline=Baseline(), rule_ids=["durable-write"]
        )
        baseline = Baseline.from_findings(first.findings)
        report = run_check(root, baseline=baseline, rule_ids=["durable-write"])
        assert report.findings == [] and report.suppressed

        doc = json.loads(to_sarif(report))
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["suppressions"] == [{"kind": "external"}]


# -- CLI entry points ----------------------------------------------------------


class TestCli:
    def seed(self, tmp_path, files):
        return str(make_tree(tmp_path, files))

    @pytest.mark.parametrize(
        "relpath,source",
        [
            ("repro/x.py", 'open("a.col", "wb")\n'),  # R1
            (
                "repro/x.py",
                "try:\n    pass\nexcept BaseException:\n    pass\n",
            ),  # R2
            ("repro/obs/metrics.py", LOCKED_CLASS_BAD),  # R3
            (
                "repro/x.py",
                'import struct\nS = struct.Struct("<H")\nS.pack(1, 2)\n',
            ),  # R4
            ("repro/core/query.py", "import time\ntime.perf_counter()\n"),  # R5
            (
                "repro/x.py",
                'from repro.obs.metrics import get_registry\n'
                'get_registry().counter("durability.retires")\n',
            ),  # R6
            ("repro/x.py", LEAKED_SLOT),  # R7
            ("repro/serve/quotas.py", UNMAPPED_EXCEPTION),  # R8
            ("repro/serve/admission.py", FSYNC_UNDER_LOCK),  # R9
            ("repro/engine/select.py", RAW_THREAD_SPAWN),  # R10
            ("repro/engine/select.py", CHECKLESS_SCAN_LOOP),  # R11
        ],
        ids=[
            "durable-write",
            "crash-transparency",
            "lock-discipline",
            "struct-format",
            "span-discipline",
            "counter-registry",
            "resource-leak",
            "exception-status",
            "blocking-under-lock",
            "thread-boundary",
            "cancellation-coverage",
        ],
    )
    def test_seeded_violation_exits_nonzero(self, tmp_path, relpath, source, capsys):
        root = self.seed(tmp_path, {relpath: source})
        assert check_main([root]) == 1
        out = capsys.readouterr().out
        assert "error[" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = self.seed(tmp_path, {"repro/x.py": "value = 1\n"})
        assert check_main([root]) == 0

    def test_json_format(self, tmp_path, capsys):
        root = self.seed(tmp_path, {"repro/x.py": 'open("a", "wb")\n'})
        assert check_main([root, "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["errors"] == 1

    def test_select_limits_rules(self, tmp_path, capsys):
        root = self.seed(
            tmp_path,
            {"repro/x.py": 'open("a", "wb")\n'},
        )
        assert check_main([root, "--select", "struct-format"]) == 0

    def test_update_baseline_flow(self, tmp_path, capsys):
        root = self.seed(tmp_path, {"repro/x.py": 'open("a", "wb")\n'})
        baseline = str(tmp_path / "baseline.json")
        assert check_main([root, "--baseline", baseline]) == 1
        assert (
            check_main([root, "--baseline", baseline, "--update-baseline"])
            == 0
        )
        assert check_main([root, "--baseline", baseline]) == 0

    def test_repro_gis_check_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        root = self.seed(tmp_path, {"repro/x.py": 'open("a", "wb")\n'})
        assert cli_main(["check", root]) == 1
        assert cli_main(["check", root, "--select", "struct-format"]) == 0

    def test_list_rules(self, capsys):
        assert check_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out
            assert rule.code in out

    def test_rule_code_filter(self, tmp_path, capsys):
        root = self.seed(tmp_path, {"repro/x.py": 'open("a", "wb")\n'})
        assert check_main([root, "--rule", "R4"]) == 0
        assert check_main([root, "--rule", "R1"]) == 1

    def test_path_filter(self, tmp_path, capsys):
        root = self.seed(
            tmp_path,
            {
                "repro/clean.py": "value = 1\n",
                "repro/dirty.py": 'open("a", "wb")\n',
            },
        )
        clean = str(Path(root) / "clean.py")
        dirty = str(Path(root) / "dirty.py")
        assert check_main([root, "--path", clean]) == 0
        assert check_main([root, "--path", dirty]) == 1
        assert check_main([root, "--path", clean, "--path", dirty]) == 1

    def test_path_filter_accepts_directories(self, tmp_path, capsys):
        root = self.seed(
            tmp_path,
            {
                "repro/serve/ok.py": "value = 1\n",
                "repro/dirty.py": 'open("a", "wb")\n',
            },
        )
        serve_dir = str(Path(root) / "serve")
        assert check_main([root, "--path", serve_dir]) == 0

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        root = self.seed(tmp_path, {"repro/x.py": "value = 1\n"})
        assert check_main([root, "--path", "no/such/file.py"]) == 2

    def test_sarif_format(self, tmp_path, capsys):
        root = self.seed(tmp_path, {"repro/x.py": 'open("a", "wb")\n'})
        assert check_main([root, "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {
            rule.id for rule in all_rules()
        }
        result = run["results"][0]
        assert result["ruleId"] == "durable-write"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "repro/x.py"
        assert location["region"]["startLine"] >= 1

    def test_informational_demotes_and_passes(self, tmp_path, capsys):
        root = self.seed(tmp_path, {"repro/x.py": 'open("a", "wb")\n'})
        assert check_main([root, "--informational"]) == 0
        out = capsys.readouterr().out
        assert "note[durable-write]" in out
        assert "error[" not in out


# -- the meta-test: the repo itself is clean -----------------------------------


class TestSelfCheck:
    def test_src_tree_clean_with_committed_baseline(self):
        """`repro-gis check` runs clean on src/ with the committed
        baseline — the invariant the CI `check` job enforces."""
        repo_root = SRC_ROOT.parent.parent
        baseline = Baseline.load(repo_root / "repro-check.baseline.json")
        report = run_check(SRC_ROOT, baseline=baseline)
        assert report.findings == [], [f.to_dict() for f in report.findings]
        assert report.ok

    def test_committed_baseline_has_justifications(self):
        repo_root = SRC_ROOT.parent.parent
        doc = json.loads(
            (repo_root / "repro-check.baseline.json").read_text()
        )
        assert doc["findings"], "baseline should carry the deliberate cases"
        for entry in doc["findings"]:
            assert entry["justification"].strip(), entry

    def test_no_stale_baseline_entries(self):
        repo_root = SRC_ROOT.parent.parent
        baseline = Baseline.load(repo_root / "repro-check.baseline.json")
        report = run_check(SRC_ROOT, baseline=baseline)
        assert report.unused_baseline == [], [
            e.to_dict() for e in report.unused_baseline
        ]

    def test_every_rule_registered(self):
        ids = {rule.id for rule in all_rules()}
        assert ids == {
            "durable-write",
            "crash-transparency",
            "lock-discipline",
            "struct-format",
            "span-discipline",
            "counter-registry",
            "resource-leak",
            "exception-status",
            "blocking-under-lock",
            "thread-boundary",
            "cancellation-coverage",
        }

    def test_rule_codes_are_r1_through_r11(self):
        codes = sorted(
            (rule.code for rule in all_rules()),
            key=lambda c: int(c[1:]),
        )
        assert codes == [f"R{i}" for i in range(1, 12)]


# -- config plumbing -----------------------------------------------------------


class TestConfig:
    def test_custom_config_overrides_designations(self, tmp_path):
        root = make_tree(
            tmp_path,
            {"repro/custom/hot.py": "import time\ntime.monotonic()\n"},
        )
        config = Config(hotpath_modules=frozenset({"repro/custom/hot.py"}))
        report = run_check(
            root,
            config=config,
            baseline=Baseline(),
            rule_ids=["span-discipline"],
        )
        assert len(report.findings) == 1

    def test_project_module_lookup(self, tmp_path):
        root = make_tree(tmp_path, {"repro/a.py": "x = 1\n"})
        project = Project.load(root)
        assert project.module("repro/a.py") is not None
        assert project.module("repro/missing.py") is None
