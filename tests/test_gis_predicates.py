"""Unit and property tests for repro.gis.predicates (incl. classify_box)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gis.envelope import Box
from repro.gis.geometry import (
    LineString,
    MultiLineString,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.gis.predicates import (
    CellRelation,
    classify_box,
    classify_box_vs_box,
    classify_box_vs_polygon,
    contains,
    dwithin,
    intersects,
    min_distance_box_to_geometry,
    points_satisfy,
)

SQUARE = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
DONUT = Polygon(
    [(0, 0), (10, 0), (10, 10), (0, 10)],
    holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
)


class TestPointsSatisfy:
    def test_contains_box(self):
        xs = np.array([1.0, 11.0])
        ys = np.array([1.0, 1.0])
        got = points_satisfy(xs, ys, Box(0, 0, 10, 10), "contains")
        np.testing.assert_array_equal(got, [True, False])

    def test_contains_polygon(self):
        xs = np.array([5.0, 5.0])
        ys = np.array([5.0, 15.0])
        got = points_satisfy(xs, ys, SQUARE, "contains")
        np.testing.assert_array_equal(got, [True, False])

    def test_dwithin_line(self):
        line = LineString([(0, 0), (10, 0)])
        xs = np.array([5.0, 5.0])
        ys = np.array([1.0, 3.0])
        got = points_satisfy(xs, ys, line, "dwithin", distance=2.0)
        np.testing.assert_array_equal(got, [True, False])

    def test_dwithin_box(self):
        got = points_satisfy(
            np.array([12.0]), np.array([5.0]), Box(0, 0, 10, 10), "dwithin", 3.0
        )
        assert got[0]

    def test_negative_distance_raises(self):
        with pytest.raises(ValueError):
            points_satisfy(np.array([0.0]), np.array([0.0]), SQUARE, "dwithin", -1)

    def test_unknown_predicate(self):
        with pytest.raises(ValueError):
            points_satisfy(np.array([0.0]), np.array([0.0]), SQUARE, "overlaps")

    def test_contains_needs_areal(self):
        with pytest.raises(TypeError):
            points_satisfy(
                np.array([0.0]), np.array([0.0]), LineString([(0, 0), (1, 1)])
            )


class TestClassifyBoxVsPolygon:
    def test_fully_inside(self):
        assert (
            classify_box_vs_polygon(Box(2, 2, 3, 3), SQUARE) is CellRelation.INSIDE
        )

    def test_fully_outside(self):
        assert (
            classify_box_vs_polygon(Box(20, 20, 30, 30), SQUARE)
            is CellRelation.OUTSIDE
        )

    def test_boundary_crossing(self):
        assert (
            classify_box_vs_polygon(Box(-1, 4, 1, 6), SQUARE)
            is CellRelation.BOUNDARY
        )

    def test_polygon_inside_box_is_boundary(self):
        big = Box(-5, -5, 15, 15)
        assert classify_box_vs_polygon(big, SQUARE) is CellRelation.BOUNDARY

    def test_box_inside_hole_is_outside(self):
        assert (
            classify_box_vs_polygon(Box(4.5, 4.5, 5.5, 5.5), DONUT)
            is CellRelation.OUTSIDE
        )

    def test_box_straddling_hole_is_boundary(self):
        assert (
            classify_box_vs_polygon(Box(3, 3, 5, 5), DONUT)
            is CellRelation.BOUNDARY
        )

    def test_box_between_hole_and_shell_inside(self):
        assert (
            classify_box_vs_polygon(Box(1, 1, 2, 2), DONUT) is CellRelation.INSIDE
        )


class TestClassifyBoxVsBox:
    def test_inside(self):
        assert (
            classify_box_vs_box(Box(1, 1, 2, 2), Box(0, 0, 10, 10))
            is CellRelation.INSIDE
        )

    def test_outside(self):
        assert (
            classify_box_vs_box(Box(11, 11, 12, 12), Box(0, 0, 10, 10))
            is CellRelation.OUTSIDE
        )

    def test_boundary(self):
        assert (
            classify_box_vs_box(Box(9, 9, 12, 12), Box(0, 0, 10, 10))
            is CellRelation.BOUNDARY
        )


class TestClassifyDwithin:
    def test_outside_exact(self):
        line = LineString([(0, 0), (10, 0)])
        rel = classify_box(Box(0, 5, 2, 6), line, "dwithin", distance=2.0)
        assert rel is CellRelation.OUTSIDE

    def test_inside_lipschitz(self):
        line = LineString([(0, 0), (10, 0)])
        rel = classify_box(Box(4, 0.1, 4.2, 0.3), line, "dwithin", distance=5.0)
        assert rel is CellRelation.INSIDE

    def test_boundary(self):
        line = LineString([(0, 0), (10, 0)])
        rel = classify_box(Box(0, 1, 10, 3), line, "dwithin", distance=2.0)
        assert rel is CellRelation.BOUNDARY

    def test_min_distance_box_geometry(self):
        line = LineString([(0, 0), (10, 0)])
        assert min_distance_box_to_geometry(Box(2, 3, 4, 5), line) == 3.0
        assert min_distance_box_to_geometry(Box(2, -1, 4, 5), line) == 0.0
        assert min_distance_box_to_geometry(Box(12, 0, 13, 0), line) == 2.0

    def test_min_distance_box_to_polygon_interior(self):
        assert min_distance_box_to_geometry(Box(4, 4, 5, 5), SQUARE) == 0.0
        assert min_distance_box_to_geometry(Box(12, 0, 13, 1), SQUARE) == 2.0

    def test_min_distance_box_to_box(self):
        assert min_distance_box_to_geometry(Box(0, 0, 1, 1), Box(4, 4, 5, 5)) == (
            18**0.5
        )


class TestGeometryPairPredicates:
    def test_contains(self):
        assert contains(SQUARE, Point(5, 5))
        assert not contains(SQUARE, Point(15, 5))
        assert contains(Box(0, 0, 1, 1), Point(1, 1))

    def test_dwithin(self):
        assert dwithin(LineString([(0, 0), (10, 0)]), Point(5, 1), 2.0)
        assert not dwithin(LineString([(0, 0), (10, 0)]), Point(5, 5), 2.0)

    def test_intersects_lines(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        assert intersects(a, b)

    def test_intersects_line_polygon(self):
        road = LineString([(-5, 5), (15, 5)])
        assert intersects(SQUARE, road)
        assert intersects(road, SQUARE)
        far = LineString([(-5, 50), (15, 50)])
        assert not intersects(far, SQUARE)

    def test_intersects_polygon_polygon(self):
        other = Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])
        assert intersects(SQUARE, other)
        disjoint = Polygon([(20, 20), (30, 20), (30, 30), (20, 30)])
        assert not intersects(SQUARE, disjoint)

    def test_intersects_containing_polygon(self):
        # One polygon strictly inside the other still intersects.
        inner = Polygon([(2, 2), (3, 2), (3, 3), (2, 3)])
        assert intersects(SQUARE, inner)
        assert intersects(inner, SQUARE)

    def test_intersects_point(self):
        assert intersects(Point(5, 5), SQUARE)
        assert intersects(SQUARE, Point(5, 5))
        assert not intersects(Point(50, 50), SQUARE)
        assert intersects(Point(1, 1), Point(1, 1))

    def test_intersects_multilinestring(self):
        ml = MultiLineString([[(-5, 5), (15, 5)]])
        assert intersects(ml, SQUARE)


@settings(max_examples=80, deadline=None)
@given(
    bx=st.floats(-20, 20),
    by=st.floats(-20, 20),
    bw=st.floats(0.1, 15),
    bh=st.floats(0.1, 15),
    n_pts=st.integers(1, 30),
    seed=st.integers(0, 2**31),
)
def test_classify_box_consistent_with_point_tests(bx, by, bw, bh, n_pts, seed):
    """INSIDE cells must contain only qualifying points; OUTSIDE cells none.

    This is the correctness contract the grid refinement relies on.
    """
    box = Box(bx, by, bx + bw, by + bh)
    rng = np.random.default_rng(seed)
    xs = rng.uniform(box.xmin, box.xmax, n_pts)
    ys = rng.uniform(box.ymin, box.ymax, n_pts)
    for geom, pred, dist in [
        (DONUT, "contains", 0.0),
        (SQUARE, "contains", 0.0),
        (LineString([(0, 0), (10, 4)]), "dwithin", 3.0),
    ]:
        rel = classify_box(box, geom, pred, dist)
        mask = points_satisfy(xs, ys, geom, pred, dist)
        if rel is CellRelation.INSIDE:
            assert mask.all()
        elif rel is CellRelation.OUTSIDE:
            assert not mask.any()
