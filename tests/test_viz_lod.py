"""Tests for the level-of-detail point pyramid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gis.envelope import Box
from repro.viz.lod import PointPyramid, build_pyramid, uniformity


def make_points(n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    # Clustered cloud: uniform sampling would over-represent the cluster.
    cluster = rng.normal([25, 25], 3, (n // 2, 2))
    spread = rng.uniform(0, 100, (n - n // 2, 2))
    pts = np.vstack([cluster, spread])
    return np.clip(pts[:, 0], 0, 100), np.clip(pts[:, 1], 0, 100)


class TestBuildPyramid:
    def test_order_is_a_permutation(self):
        xs, ys = make_points(5000)
        pyramid = build_pyramid(xs, ys)
        assert np.sort(pyramid.order).tolist() == list(range(5000))

    def test_levels_monotone(self):
        xs, ys = make_points(5000)
        pyramid = build_pyramid(xs, ys)
        assert pyramid.level_sizes == sorted(pyramid.level_sizes)
        assert pyramid.n_levels >= 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            build_pyramid(np.empty(0), np.empty(0))

    def test_prefix_bounds(self):
        xs, ys = make_points(1000)
        pyramid = build_pyramid(xs, ys)
        assert pyramid.prefix(0).shape == (0,)
        assert pyramid.prefix(10**9).shape == (1000,)
        assert pyramid.prefix(100).shape == (100,)

    def test_level_accessor(self):
        xs, ys = make_points(2000)
        pyramid = build_pyramid(xs, ys)
        assert pyramid.level(0).shape[0] == pyramid.level_sizes[0]
        with pytest.raises(ValueError):
            pyramid.level(99)


class TestUniformity:
    def test_prefix_more_uniform_than_head(self):
        """The whole point: a pyramid prefix spreads over the extent while
        the raw array head (acquisition order) clumps."""
        xs, ys = make_points(20_000, seed=3)
        pyramid = build_pyramid(xs, ys)
        extent = pyramid.extent
        k = 300
        prefix = pyramid.prefix(k)
        u_pyramid = uniformity(xs[prefix], ys[prefix], extent)
        u_head = uniformity(xs[:k], ys[:k], extent)
        assert u_pyramid > u_head * 1.5
        assert u_pyramid > 0.8

    def test_every_prefix_reasonably_uniform(self):
        xs, ys = make_points(10_000, seed=4)
        pyramid = build_pyramid(xs, ys)
        for k in (64, 256, 1024, 4096):
            sub = pyramid.prefix(k)
            assert uniformity(xs[sub], ys[sub], pyramid.extent) > 0.55

    def test_uniformity_empty(self):
        assert uniformity(np.empty(0), np.empty(0), Box(0, 0, 1, 1)) == 0.0


class TestViewport:
    def test_viewport_filters_and_truncates(self):
        xs, ys = make_points(10_000, seed=5)
        pyramid = build_pyramid(xs, ys)
        view = Box(0, 0, 30, 30)
        picked = pyramid.for_viewport(view, pixel_budget=500)
        assert picked.shape[0] <= 500
        assert ((xs[picked] >= 0) & (xs[picked] <= 30)).all()
        assert ((ys[picked] >= 0) & (ys[picked] <= 30)).all()

    def test_zoom_increases_local_detail(self):
        """Zooming in must surface points that the full-extent budget
        never drew — the LoD promise."""
        xs, ys = make_points(20_000, seed=6)
        pyramid = build_pyramid(xs, ys)
        budget = 1000
        whole = set(pyramid.for_viewport(pyramid.extent, budget).tolist())
        zoomed = set(
            pyramid.for_viewport(Box(20, 20, 30, 30), budget).tolist()
        )
        assert len(zoomed - whole) > 0

    def test_zero_budget(self):
        xs, ys = make_points(100, seed=7)
        pyramid = build_pyramid(xs, ys)
        assert pyramid.for_viewport(pyramid.extent, 0).shape == (0,)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31), n=st.integers(1, 3000))
def test_pyramid_is_always_a_permutation(seed, n):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0, 50, n)
    ys = rng.uniform(0, 50, n)
    pyramid = build_pyramid(xs, ys)
    assert np.sort(pyramid.order).tolist() == list(range(n))
