"""Unit and property tests for repro.engine.select."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.column import Column
from repro.engine.select import (
    difference_candidates,
    intersect_candidates,
    mask_select,
    range_select,
    theta_select,
    union_candidates,
)


@pytest.fixture
def col():
    return Column("v", "int64", data=[5, 1, 9, 3, 7, 3])


class TestThetaSelect:
    def test_equality(self, col):
        np.testing.assert_array_equal(theta_select(col, "==", 3), [3, 5])

    def test_less_than(self, col):
        np.testing.assert_array_equal(theta_select(col, "<", 5), [1, 3, 5])

    def test_not_equal(self, col):
        np.testing.assert_array_equal(theta_select(col, "!=", 3), [0, 1, 2, 4])

    def test_with_candidates_subsets(self, col):
        cands = np.array([0, 2, 4], dtype=np.int64)
        np.testing.assert_array_equal(
            theta_select(col, ">=", 7, candidates=cands), [2, 4]
        )

    def test_unknown_op(self, col):
        with pytest.raises(ValueError):
            theta_select(col, "<>", 1)


class TestRangeSelect:
    def test_closed_range(self, col):
        np.testing.assert_array_equal(range_select(col, 3, 7), [0, 3, 4, 5])

    def test_open_bounds(self, col):
        np.testing.assert_array_equal(
            range_select(col, 3, 7, lo_inclusive=False, hi_inclusive=False), [0]
        )

    def test_half_open(self, col):
        np.testing.assert_array_equal(range_select(col, None, 3), [1, 3, 5])
        np.testing.assert_array_equal(range_select(col, 7, None), [2, 4])

    def test_empty_result(self, col):
        assert range_select(col, 100, 200).shape == (0,)

    def test_with_candidates(self, col):
        cands = np.array([1, 3, 5], dtype=np.int64)
        np.testing.assert_array_equal(
            range_select(col, 2, 4, candidates=cands), [3, 5]
        )


class TestMaskAndSetOps:
    def test_mask_select(self, col):
        mask = np.array([True, False, True, False, False, False])
        np.testing.assert_array_equal(mask_select(mask), [0, 2])

    def test_mask_select_over_candidates(self, col):
        cands = np.array([2, 4], dtype=np.int64)
        np.testing.assert_array_equal(
            mask_select(np.array([False, True]), cands), [4]
        )

    def test_intersect_union_difference(self):
        a = np.array([1, 3, 5], dtype=np.int64)
        b = np.array([3, 4, 5], dtype=np.int64)
        np.testing.assert_array_equal(intersect_candidates(a, b), [3, 5])
        np.testing.assert_array_equal(union_candidates(a, b), [1, 3, 4, 5])
        np.testing.assert_array_equal(difference_candidates(a, b), [1])


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(-1000, 1000), min_size=0, max_size=200),
    lo=st.integers(-1000, 1000),
    span=st.integers(0, 500),
)
def test_range_select_matches_reference(values, lo, span):
    """range_select must agree with a plain boolean-mask reference."""
    col = Column("v", "int64", data=np.array(values, dtype=np.int64))
    hi = lo + span
    got = range_select(col, lo, hi)
    arr = np.array(values, dtype=np.int64)
    expected = np.flatnonzero((arr >= lo) & (arr <= hi))
    np.testing.assert_array_equal(got, expected)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(-50, 50), min_size=1, max_size=100))
def test_theta_select_partition(values):
    """<, ==, > of the same constant must partition all rows."""
    col = Column("v", "int64", data=np.array(values, dtype=np.int64))
    const = values[0]
    lt = theta_select(col, "<", const)
    eq = theta_select(col, "==", const)
    gt = theta_select(col, ">", const)
    merged = np.sort(np.concatenate([lt, eq, gt]))
    np.testing.assert_array_equal(merged, np.arange(len(values)))
