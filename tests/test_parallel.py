"""Parallel == serial: the morsel-driven execution layer must be invisible.

The contract of the whole parallel rework is that ``threads=N`` returns
byte-identical oid arrays to ``threads=1``, which in turn matches the
brute-force scan.  These tests sweep thread counts x query predicates x
mutation histories against :meth:`SpatialSelect.query_scan`.
"""

import numpy as np
import pytest

from repro.core.imprints import ImprintsManager
from repro.core.query import SpatialSelect
from repro.engine import parallel
from repro.engine.column import Column
from repro.engine.select import range_select, theta_select
from repro.engine.table import Table
from repro.gis.envelope import Box
from repro.gis.geometry import LineString, Polygon

THREAD_SWEEP = [1, 2, 8]


def make_cloud(n=40_000, seed=0, extent=100.0):
    rng = np.random.default_rng(seed)
    table = Table(
        "pts", [("x", "float64"), ("y", "float64"), ("z", "float64")]
    )
    table.append_columns(
        {
            "x": rng.uniform(0, extent, n),
            "y": rng.uniform(0, extent, n),
            "z": rng.normal(10, 3, n),
        }
    )
    return table


QUERIES = {
    "box": dict(geometry=Box(20, 20, 60, 45)),
    "polygon": dict(
        geometry=Polygon([(10, 10), (70, 15), (55, 80), (12, 60)])
    ),
    "dwithin": dict(
        geometry=LineString([(0, 50), (50, 55), (100, 40)]),
        predicate="dwithin",
        distance=4.0,
    ),
    "z_slab": dict(geometry=Box(0, 0, 100, 100), z_range=(8.0, 12.0)),
}


def scan_reference(select, spec):
    """Brute-force oids for a query spec (z-slab intersected by hand)."""
    oids = select.query_scan(
        spec["geometry"],
        spec.get("predicate", "contains"),
        spec.get("distance", 0.0),
    )
    if "z_range" in spec:
        zlo, zhi = spec["z_range"]
        z = np.asarray(select.table.column("z").values)
        oids = oids[(z[oids] >= zlo) & (z[oids] <= zhi)]
    return oids


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    @pytest.mark.parametrize("threads", THREAD_SWEEP)
    def test_query_identical_across_threads(self, name, threads):
        # Small segments force many per-query morsels even at test scale.
        table = make_cloud()
        select = SpatialSelect(
            table, manager=ImprintsManager(segment_rows=4096)
        )
        spec = QUERIES[name]
        kwargs = {k: v for k, v in spec.items() if k != "geometry"}
        serial = select.query(spec["geometry"], threads=1, **kwargs)
        parallel_result = select.query(
            spec["geometry"], threads=threads, **kwargs
        )
        np.testing.assert_array_equal(parallel_result.oids, serial.oids)
        np.testing.assert_array_equal(serial.oids, scan_reference(select, spec))
        assert parallel_result.oids.dtype == np.int64

    @pytest.mark.parametrize("threads", THREAD_SWEEP)
    def test_append_then_query_identical(self, threads):
        table = make_cloud(n=20_000, seed=3)
        select = SpatialSelect(
            table, manager=ImprintsManager(segment_rows=4096)
        )
        box = Box(10, 10, 80, 80)
        select.query(box, threads=threads)  # builds the index
        rng = np.random.default_rng(99)
        table.append_columns(
            {
                "x": rng.uniform(0, 100, 7000),
                "y": rng.uniform(0, 100, 7000),
                "z": rng.normal(10, 3, 7000),
            }
        )
        for name, spec in sorted(QUERIES.items()):
            kwargs = {k: v for k, v in spec.items() if k != "geometry"}
            got = select.query(spec["geometry"], threads=threads, **kwargs)
            np.testing.assert_array_equal(
                got.oids, scan_reference(select, spec), err_msg=name
            )

    def test_segment_stats_reported(self):
        table = make_cloud(n=30_000, seed=5)
        select = SpatialSelect(
            table, manager=ImprintsManager(segment_rows=4096)
        )
        result = select.query(Box(40, 0, 42, 100))
        stats = result.stats
        assert stats.n_segments_probed + stats.n_segments_skipped > 0
        # The full-extent query is answered by zone maps alone.
        full = select.query(Box(-10, -10, 110, 110))
        assert full.stats.n_segments_probed == 0
        assert full.stats.n_segments_skipped > 0

    def test_threads_recorded_in_stats(self):
        table = make_cloud(n=2000, seed=6)
        select = SpatialSelect(table)
        assert select.query(Box(0, 0, 50, 50), threads=3).stats.n_threads == 3
        assert select.query(Box(0, 0, 50, 50), threads=1).stats.n_threads == 1


class TestParallelSelectOperators:
    @pytest.mark.parametrize("threads", THREAD_SWEEP)
    def test_range_select_identical(self, threads):
        rng = np.random.default_rng(11)
        col = Column("v", "float64", data=rng.uniform(0, 1000, 150_000))
        serial = range_select(col, 100, 300, threads=1)
        got = range_select(col, 100, 300, threads=threads)
        np.testing.assert_array_equal(got, serial)

    @pytest.mark.parametrize("threads", THREAD_SWEEP)
    def test_range_select_with_candidates(self, threads):
        rng = np.random.default_rng(12)
        col = Column("v", "float64", data=rng.uniform(0, 1000, 150_000))
        cands = np.flatnonzero(rng.random(150_000) < 0.5).astype(np.int64)
        serial = range_select(col, 100, 300, candidates=cands, threads=1)
        got = range_select(col, 100, 300, candidates=cands, threads=threads)
        np.testing.assert_array_equal(got, serial)

    @pytest.mark.parametrize("op", ["==", "!=", "<", "<=", ">", ">="])
    def test_theta_select_identical(self, op):
        rng = np.random.default_rng(13)
        col = Column("v", "int64", data=rng.integers(0, 50, 150_000))
        serial = theta_select(col, op, 25, threads=1)
        got = theta_select(col, op, 25, threads=8)
        np.testing.assert_array_equal(got, serial)


class TestExecutionLayer:
    def test_morsels_cover_exactly(self):
        spans = parallel.morsels(1_000_000, morsel_rows=4096)
        assert spans[0][0] == 0
        assert spans[-1][1] == 1_000_000
        for (a_start, a_stop), (b_start, b_stop) in zip(spans, spans[1:]):
            assert a_stop == b_start
            assert a_stop - a_start == 4096

    def test_morsels_alignment(self):
        spans = parallel.morsels(100, morsel_rows=30, align=8)
        for start, stop in spans[:-1]:
            assert start % 8 == 0 and stop % 8 == 0
        assert spans[-1][1] == 100

    def test_morsels_empty(self):
        assert parallel.morsels(0) == []

    def test_run_tasks_order_preserved(self):
        got = parallel.run_tasks(lambda i: i * i, list(range(100)), threads=8)
        assert got == [i * i for i in range(100)]

    def test_run_tasks_serial_path(self):
        got = parallel.run_tasks(lambda i: i + 1, [1, 2, 3], threads=1)
        assert got == [2, 3, 4]

    def test_run_tasks_propagates_errors(self):
        def boom(i):
            if i == 37:
                raise ValueError("morsel 37")
            return i

        with pytest.raises(ValueError, match="morsel 37"):
            parallel.run_tasks(boom, list(range(100)), threads=4)

    def test_resolve_threads(self):
        assert parallel.resolve_threads(1) == 1
        assert parallel.resolve_threads(7) == 7
        assert parallel.resolve_threads(None) >= 1
        assert parallel.resolve_threads(0) >= 1
