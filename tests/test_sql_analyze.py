"""EXPLAIN ANALYZE: per-operator span trees from real query runs."""

import numpy as np
import pytest

from repro.engine.catalog import Database
from repro.las.binloader import create_flat_table, load_arrays
from repro.obs.trace import get_tracer
from repro.sql.executor import Session

N_POINTS = 4000


@pytest.fixture(scope="module")
def session():
    db = Database()
    table = create_flat_table(db, "points")
    rng = np.random.default_rng(5)
    load_arrays(
        table,
        {
            "x": rng.uniform(0.0, 100.0, N_POINTS),
            "y": rng.uniform(0.0, 100.0, N_POINTS),
            "z": rng.uniform(0.0, 30.0, N_POINTS),
            "classification": rng.integers(0, 3, N_POINTS).astype(np.uint8),
        },
    )
    session = Session()
    session.register_table(table)
    session.register_columns(
        "zones",
        {
            "zone_id": [0, 1, 2],
            "label": ["low", "mid", "high"],
            "wkt": [
                "POLYGON ((0 0, 50 0, 50 50, 0 50, 0 0))",
                "POLYGON ((50 0, 100 0, 100 50, 50 50, 50 0))",
                "POLYGON ((0 50, 100 50, 100 100, 0 100, 0 50))",
            ],
        },
    )
    session.register_columns(
        "classes", {"code": [0, 1, 2], "meaning": ["ground", "veg", "building"]}
    )
    return session


SPATIAL_SQL = (
    "SELECT count(*) FROM points WHERE st_contains("
    "st_geomfromtext('POLYGON ((10 10, 70 10, 70 70, 10 70, 10 10))'), "
    "st_point(x, y))"
)


class TestSelect:
    def test_spatial_select_tree(self, session):
        text = session.explain_analyze(SPATIAL_SQL)
        lines = text.splitlines()
        assert lines[0].startswith("sql.query")
        assert "ms" in lines[0]
        names = [line.strip().split()[0] for line in lines]
        for expected in ("sql.parse", "scan", "filter.spatial", "aggregate"):
            assert expected in names, text
        spatial_line = next(l for l in lines if "filter.spatial" in l)
        assert "segments_skipped=" in spatial_line
        assert "segments_probed=" in spatial_line
        assert "rows_out=" in spatial_line
        scan_line = next(l for l in lines if l.strip().startswith("scan"))
        assert f"rows_in={N_POINTS}" in scan_line
        assert text.splitlines()[-1].startswith("rows returned:")

    def test_range_select_tree(self, session):
        text = session.explain_analyze(
            "SELECT count(*) FROM points WHERE z BETWEEN 5 AND 10"
        )
        names = [line.strip().split()[0] for line in text.splitlines()]
        assert "filter.range" in names
        assert "imprints.probe" in names

    def test_residual_filter_tree(self, session):
        text = session.explain_analyze(
            "SELECT count(*) FROM points WHERE classification = 1 AND z > 5"
        )
        names = [line.strip().split()[0] for line in text.splitlines()]
        assert "filter.residual" in names

    def test_execute_prefix_dispatch(self, session):
        result = session.execute("EXPLAIN ANALYZE " + SPATIAL_SQL)
        assert result.columns == ["plan"]
        assert result.rows[0][0].startswith("sql.query")

    def test_execute_plain_explain_prefix(self, session):
        result = session.execute(
            "explain SELECT count(*) FROM points WHERE z > 5"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "range filter via imprint on 'z'" in text
        assert "ms" not in text  # plain EXPLAIN does not run the query


class TestJoin:
    def test_hash_join_tree(self, session):
        text = session.explain_analyze(
            "SELECT meaning, count(*) FROM points p JOIN classes c "
            "ON p.classification = c.code GROUP BY meaning"
        )
        names = [line.strip().split()[0] for line in text.splitlines()]
        assert "join.hash" in names
        assert "aggregate" in names
        join_line = next(
            l for l in text.splitlines() if "join.hash" in l
        )
        assert "rows_out=" in join_line

    def test_nested_loop_spatial_join_tree(self, session):
        text = session.explain_analyze(
            "SELECT z.label, count(*) FROM zones z, points p "
            "WHERE st_contains(st_geomfromtext(z.wkt), st_point(p.x, p.y)) "
            "GROUP BY z.label"
        )
        lines = text.splitlines()
        names = [line.strip().split()[0] for line in lines]
        assert "join.nested_loop" in names
        assert "filter.spatial" in names
        # One imprints-backed spatial probe per outer zone row.
        assert names.count("filter.spatial") == 3
        spatial_line = next(l for l in lines if "filter.spatial" in l)
        assert "segments_skipped=" in spatial_line

    def test_analyze_leaves_tracer_state(self, session):
        tracer = get_tracer()
        before = tracer.enabled
        session.explain_analyze(SPATIAL_SQL)
        assert tracer.enabled == before


class TestProfilePreserved:
    def test_last_profile_keys_unchanged(self, session):
        session.execute("SELECT count(*) FROM points WHERE z > 5")
        assert set(session.last_profile) == {
            "parse",
            "join_filter",
            "project",
            "total",
        }
