"""Smoke tests: the example scripts must run end-to-end.

Each example is executed as a subprocess in a temp directory (they write
images/files to the working directory).  Only the faster examples run
here; the long ones (500k-1M point renders) are exercised manually and
by the benchmarks.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = Path(__file__).resolve().parent.parent / "src"


def run_example(name: str, tmp_path, *args, timeout=420):
    # The examples import `repro` from the source tree; the subprocess does
    # not inherit pytest's import path, so prepend src/ explicitly.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self, tmp_path):
        out = run_example("quickstart.py", tmp_path)
        assert "polygon query ->" in out
        assert "per-class breakdown" in out
        assert "storage:" in out

    def test_figure2(self, tmp_path):
        out = run_example("figure2_map.py", tmp_path, str(tmp_path / "f2.ppm"))
        assert (tmp_path / "f2.ppm").exists()
        assert "layer inventory" in out

    def test_scenario2(self, tmp_path):
        out = run_example("scenario2_thematic_sql.py", tmp_path)
        assert "points_near_transit" in out
        assert "avg_elevation" in out
        assert "EXPLAIN" in out
        assert "imprints + grid refinement" in out

    @pytest.mark.slow
    def test_scenario1(self, tmp_path):
        out = run_example("scenario1_file_vs_dbms.py", tmp_path)
        assert "flat table + imprints" in out
        assert "functional gap" in out

    @pytest.mark.slow
    def test_figure1(self, tmp_path):
        out = run_example(
            "figure1_pointcloud.py", tmp_path, str(tmp_path / "f1.ppm")
        )
        assert (tmp_path / "f1.ppm").exists()
        assert (tmp_path / "f1_query.ppm").exists()

    @pytest.mark.slow
    def test_elevation_models(self, tmp_path):
        out = run_example("elevation_models.py", tmp_path, str(tmp_path))
        assert (tmp_path / "dsm.pgm").exists()
        assert "DSM coverage" in out

    @pytest.mark.slow
    def test_lod_navigation(self, tmp_path):
        out = run_example("lod_navigation.py", tmp_path, str(tmp_path))
        assert (tmp_path / "nav_street.ppm").exists()
        assert "pyramid" in out
