"""Tests for the block-storage (PostgreSQL-pointcloud-like) baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockstore.patch import build_patch
from repro.blockstore.rtree import RTree
from repro.blockstore.store import BlockStore
from repro.gis.envelope import Box
from repro.gis.geometry import LineString, Polygon
from repro.gis.predicates import points_satisfy


def make_columns(n=10_000, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "x": rng.uniform(0, 100, n),
        "y": rng.uniform(0, 100, n),
        "z": rng.normal(5, 2, n),
        "intensity": rng.integers(0, 4000, n).astype(np.uint16),
    }


class TestPatch:
    def test_round_trip(self):
        cols = make_columns(n=500)
        patch = build_patch(0, cols)
        back = patch.decompress()
        for name in cols:
            np.testing.assert_array_equal(back[name], cols[name])

    def test_bbox_tight(self):
        cols = make_columns(n=100, seed=1)
        patch = build_patch(0, cols)
        assert patch.bbox.xmin == cols["x"].min()
        assert patch.bbox.ymax == cols["y"].max()

    def test_partial_decompress(self):
        patch = build_patch(0, make_columns(n=100))
        out = patch.decompress(["z"])
        assert list(out) == ["z"]

    def test_unknown_dimension(self):
        patch = build_patch(0, make_columns(n=10))
        with pytest.raises(KeyError):
            patch.decompress(["bogus"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_patch(0, {"x": np.empty(0), "y": np.empty(0)})

    def test_nbytes_positive(self):
        patch = build_patch(0, make_columns(n=100))
        assert 0 < patch.nbytes


class TestRTree:
    def _grid_boxes(self, n=10):
        return [
            Box(i * 10, j * 10, i * 10 + 9, j * 10 + 9)
            for j in range(n)
            for i in range(n)
        ]

    def test_query_matches_linear_scan(self):
        boxes = self._grid_boxes()
        tree = RTree(boxes)
        query = Box(15, 15, 38, 22)
        got = tree.query(query)
        want = [i for i, b in enumerate(boxes) if b.intersects(query)]
        assert got == want

    def test_empty_tree(self):
        tree = RTree([])
        assert tree.query(Box(0, 0, 1, 1)) == []
        assert tree.height == 0

    def test_single_entry(self):
        tree = RTree([Box(0, 0, 1, 1)])
        assert tree.query(Box(0.5, 0.5, 2, 2)) == [0]
        assert tree.query(Box(5, 5, 6, 6)) == []

    def test_capacity_respected(self):
        tree = RTree(self._grid_boxes(), node_capacity=4)
        assert tree.height >= 3

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RTree([], node_capacity=1)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        n=st.integers(0, 120),
        cap=st.sampled_from([2, 4, 16]),
    )
    def test_random_boxes_match_scan(self, seed, n, cap):
        rng = np.random.default_rng(seed)
        boxes = []
        for _ in range(n):
            x0, y0 = rng.uniform(0, 90, 2)
            boxes.append(Box(x0, y0, x0 + rng.uniform(0, 10), y0 + rng.uniform(0, 10)))
        tree = RTree(boxes, node_capacity=cap)
        q0x, q0y = rng.uniform(0, 80, 2)
        query = Box(q0x, q0y, q0x + 20, q0y + 20)
        want = [i for i, b in enumerate(boxes) if b.intersects(query)]
        assert tree.query(query) == want


class TestBlockStore:
    @pytest.fixture(scope="class")
    def store(self):
        store = BlockStore(patch_size=512, sort="morton")
        store.load(make_columns(seed=3))
        return store

    @pytest.fixture(scope="class")
    def columns(self):
        return make_columns(seed=3)

    def _brute(self, columns, geometry, predicate="contains", distance=0.0):
        mask = points_satisfy(columns["x"], columns["y"], geometry, predicate, distance)
        return np.sort(columns["x"][mask])

    def test_load_stats(self, store):
        assert store.n_points == 10_000
        assert len(store.patches) == int(np.ceil(10_000 / 512))
        assert store.nbytes > 0

    def test_box_query_matches_brute_force(self, store, columns):
        query = Box(20, 20, 50, 45)
        out, stats = store.query(query)
        np.testing.assert_allclose(np.sort(out["x"]), self._brute(columns, query))
        assert stats.patches_candidate <= stats.patches_total

    def test_polygon_query_matches_brute_force(self, store, columns):
        poly = Polygon([(10, 10), (80, 20), (60, 80), (15, 70)])
        out, _stats = store.query(poly)
        np.testing.assert_allclose(np.sort(out["x"]), self._brute(columns, poly))

    def test_dwithin_query_matches_brute_force(self, store, columns):
        line = LineString([(0, 50), (100, 55)])
        out, _stats = store.query(line, "dwithin", distance=4.0)
        np.testing.assert_allclose(
            np.sort(out["x"]), self._brute(columns, line, "dwithin", 4.0)
        )

    def test_rtree_prunes(self, store):
        _out, stats = store.query(Box(0, 0, 10, 10))
        assert stats.patches_candidate < stats.patches_total

    def test_inside_patches_skip_tests(self, store):
        _out, stats = store.query(Box(5, 5, 95, 95))
        assert stats.patches_inside > 0
        assert stats.points_tested < stats.points_decompressed

    def test_extra_dimension(self, store):
        out, _stats = store.query(
            Box(0, 0, 100, 100), dimensions=["x", "y", "intensity"]
        )
        assert out["intensity"].shape == out["x"].shape

    def test_unknown_dimension(self, store):
        with pytest.raises(KeyError):
            store.query(Box(0, 0, 1, 1), dimensions=["bogus"])

    def test_query_before_load(self):
        with pytest.raises(RuntimeError):
            BlockStore().query(Box(0, 0, 1, 1))

    def test_sorting_shrinks_storage(self):
        cols = make_columns(n=20_000, seed=4)
        unsorted_store = BlockStore(patch_size=1024, sort=None)
        sorted_store = BlockStore(patch_size=1024, sort="hilbert")
        unsorted_store.load(cols)
        sorted_store.load(cols)
        # Spatial order -> smaller deltas -> better compression (Section 2.3).
        assert sorted_store.nbytes < unsorted_store.nbytes

    def test_unsorted_store_still_correct(self):
        cols = make_columns(n=5000, seed=5)
        store = BlockStore(patch_size=256, sort=None)
        store.load(cols)
        poly = Polygon([(10, 10), (90, 15), (50, 90)])
        out, _stats = store.query(poly)
        np.testing.assert_allclose(np.sort(out["x"]), self._brute(cols, poly))

    def test_bad_params(self):
        with pytest.raises(ValueError):
            BlockStore(patch_size=0)
        with pytest.raises(ValueError):
            BlockStore(sort="peano")
        with pytest.raises(ValueError):
            BlockStore().load({"x": np.empty(0), "y": np.empty(0)})
