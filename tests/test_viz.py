"""Tests for the visualisation substrate."""

import numpy as np
import pytest

from repro.datasets.lidar import generate_points, make_scene
from repro.datasets.osm import generate_osm
from repro.datasets.urbanatlas import generate_urban_atlas
from repro.gis.envelope import Box
from repro.gis.geometry import LineString, Polygon
from repro.viz.layers import LayeredMap, LineLayer, PointLayer, PolygonLayer
from repro.viz.raster import Canvas, read_ppm
from repro.viz.render import render_basemap, render_pointcloud, render_query_overlay

EXTENT = Box(0, 0, 100, 100)


class TestCanvas:
    def test_dimensions_follow_aspect(self):
        canvas = Canvas(Box(0, 0, 200, 100), width=200)
        assert canvas.height == 100

    def test_explicit_height(self):
        canvas = Canvas(EXTENT, width=64, height=32)
        assert canvas.pixels.shape == (32, 64, 3)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            Canvas(EXTENT, width=0)

    def test_to_pixel_orientation(self):
        canvas = Canvas(EXTENT, width=100, height=100)
        px, py = canvas.to_pixel(np.array([0.0, 100.0]), np.array([0.0, 100.0]))
        assert px.tolist() == [0, 99]
        assert py.tolist() == [99, 0]  # north is up: ymax -> row 0

    def test_draw_points(self):
        canvas = Canvas(EXTENT, width=50, height=50)
        canvas.draw_points(np.array([50.0]), np.array([50.0]), color=(255, 0, 0))
        assert (canvas.pixels == [255, 0, 0]).all(axis=2).any()

    def test_draw_points_per_point_colors(self):
        canvas = Canvas(EXTENT, width=50, height=50)
        colors = np.array([[255, 0, 0], [0, 255, 0]], dtype=np.uint8)
        canvas.draw_points(
            np.array([10.0, 90.0]), np.array([10.0, 90.0]), color=colors
        )
        assert (canvas.pixels == [255, 0, 0]).all(axis=2).any()
        assert (canvas.pixels == [0, 255, 0]).all(axis=2).any()

    def test_draw_line_connects_endpoints(self):
        canvas = Canvas(EXTENT, width=50, height=50)
        canvas.draw_line(0, 0, 100, 100, color=(0, 0, 255))
        blue = (canvas.pixels == [0, 0, 255]).all(axis=2)
        assert blue[49, 0] and blue[0, 49]
        assert blue.sum() >= 50

    def test_fill_polygon(self):
        canvas = Canvas(EXTENT, width=50, height=50)
        poly = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])
        canvas.fill_polygon(poly, color=(0, 128, 0))
        filled = (canvas.pixels == [0, 128, 0]).all(axis=2)
        # Roughly 36% of the canvas is inside the square.
        assert 0.25 < filled.mean() < 0.45

    def test_ppm_round_trip(self, tmp_path):
        canvas = Canvas(EXTENT, width=20, height=10)
        canvas.draw_points(np.array([50.0]), np.array([50.0]), color=(9, 8, 7))
        path = canvas.write_ppm(tmp_path / "out.ppm")
        back = read_ppm(path)
        np.testing.assert_array_equal(back, canvas.pixels)

    def test_pgm_write(self, tmp_path):
        canvas = Canvas(EXTENT, width=20, height=10)
        path = canvas.write_pgm(tmp_path / "out.pgm")
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n20 10\n255\n")
        assert len(raw) == len(b"P5\n20 10\n255\n") + 200

    def test_read_ppm_rejects_other(self, tmp_path):
        bad = tmp_path / "x.ppm"
        bad.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ValueError):
            read_ppm(bad)

    def test_to_ascii_shape(self):
        canvas = Canvas(EXTENT, width=100, height=100, background=(0, 0, 0))
        art = canvas.to_ascii(columns=40)
        lines = art.splitlines()
        assert all(len(line) == 40 for line in lines)
        assert len(lines) == 20  # half-height for character aspect

    def test_to_ascii_brightness(self):
        dark = Canvas(EXTENT, width=10, height=10, background=(0, 0, 0))
        bright = Canvas(EXTENT, width=10, height=10, background=(255, 255, 255))
        assert set(dark.to_ascii(columns=10)) <= {" ", "\n"}
        assert "@" in bright.to_ascii(columns=10)

    def test_ascii_bad_columns(self):
        from repro.viz.raster import ascii_render

        canvas = Canvas(EXTENT, width=10, height=10)
        with pytest.raises(ValueError):
            ascii_render(canvas.pixels, columns=1)


class TestLayers:
    def test_layered_map_composition(self):
        world = LayeredMap(EXTENT, width=64)
        world.add(
            PolygonLayer(
                [Polygon([(0, 0), (100, 0), (100, 100), (0, 100)])],
                color=(10, 10, 10),
            )
        )
        world.add(LineLayer([LineString([(0, 50), (100, 50)])], color=(250, 0, 0)))
        world.add(
            PointLayer(np.array([50.0]), np.array([75.0]), color=(0, 250, 0))
        )
        canvas = world.render()
        assert (canvas.pixels == [250, 0, 0]).all(axis=2).any()
        assert (canvas.pixels == [0, 250, 0]).all(axis=2).any()

    def test_polygon_outline(self):
        world = LayeredMap(EXTENT, width=64)
        world.add(
            PolygonLayer(
                [Polygon([(10, 10), (90, 10), (90, 90), (10, 90)])],
                color=(200, 200, 200),
                outline=(0, 0, 0),
            )
        )
        canvas = world.render()
        assert (canvas.pixels == [0, 0, 0]).all(axis=2).any()

    def test_empty_point_layer(self):
        world = LayeredMap(EXTENT, width=16)
        world.add(PointLayer(np.empty(0), np.empty(0)))
        world.render()  # must not raise


class TestFigureRenderers:
    def test_figure1_pointcloud(self):
        scene = make_scene(EXTENT, seed=1)
        cloud = generate_points(scene, 5000, seed=1)
        canvas = render_pointcloud(cloud, width=128)
        # Dark background with many coloured points drawn over it.
        background = (canvas.pixels == [15, 15, 25]).all(axis=2)
        assert 0.01 < background.mean() < 0.99

    def test_figure2_basemap(self):
        osm = generate_osm(EXTENT, seed=2)
        ua = generate_urban_atlas(EXTENT, osm=osm, seed=2)
        canvas = render_basemap(osm=osm, urban_atlas=ua, width=128)
        # Motorway red must be visible on top of the land cover.
        assert (canvas.pixels == [220, 60, 30]).all(axis=2).any()

    def test_basemap_needs_extent(self):
        with pytest.raises(ValueError):
            render_basemap()

    def test_query_overlay(self):
        scene = make_scene(EXTENT, seed=3)
        cloud = generate_points(scene, 1000, seed=3)
        canvas = render_pointcloud(cloud, width=64)
        before = (canvas.pixels == [255, 0, 0]).all(axis=2).sum()
        render_query_overlay(
            canvas, cloud["x"][:100], cloud["y"][:100], color=(255, 0, 0)
        )
        after = (canvas.pixels == [255, 0, 0]).all(axis=2).sum()
        assert after > before
