"""Unit tests for repro.engine.table."""

import numpy as np
import pytest

from repro.engine.table import SchemaError, Table


@pytest.fixture
def points():
    t = Table("pts", [("x", "float64"), ("y", "float64"), ("cls", "uint8")])
    t.append_columns(
        {
            "x": np.array([0.0, 1.0, 2.0]),
            "y": np.array([5.0, 6.0, 7.0]),
            "cls": np.array([2, 6, 2], dtype=np.uint8),
        }
    )
    return t


class TestSchema:
    def test_schema_round_trip(self, points):
        assert points.schema == [("x", "float64"), ("y", "float64"), ("cls", "uint8")]
        assert points.column_names == ["x", "y", "cls"]

    def test_duplicate_column_raises(self):
        with pytest.raises(SchemaError):
            Table("t", [("a", "int32"), ("a", "int64")])

    def test_unknown_column_raises(self, points):
        with pytest.raises(SchemaError):
            points.column("z")

    def test_contains(self, points):
        assert "x" in points
        assert "z" not in points

    def test_empty_table_len(self):
        assert len(Table("t", [("a", "int32")])) == 0
        assert len(Table("t", [])) == 0


class TestAppend:
    def test_append_columns_aligns(self, points):
        assert len(points) == 3
        oid = points.append_columns(
            {"x": [3.0], "y": [8.0], "cls": np.array([9], dtype=np.uint8)}
        )
        assert oid == 3
        assert len(points) == 4

    def test_append_missing_column_raises(self, points):
        with pytest.raises(SchemaError, match="missing"):
            points.append_columns({"x": [1.0], "y": [2.0]})

    def test_append_extra_column_raises(self, points):
        with pytest.raises(SchemaError, match="unknown"):
            points.append_columns(
                {"x": [1.0], "y": [2.0], "cls": [1], "bogus": [0]}
            )

    def test_append_ragged_raises(self, points):
        with pytest.raises(SchemaError, match="ragged"):
            points.append_columns({"x": [1.0, 2.0], "y": [2.0], "cls": [1]})

    def test_append_rows(self, points):
        points.append_rows([(9.0, 9.0, 1), (8.0, 8.0, 2)])
        assert len(points) == 5
        assert points.row(4) == (8.0, 8.0, 2)

    def test_append_rows_wrong_width(self, points):
        with pytest.raises(SchemaError, match="width"):
            points.append_rows([(1.0, 2.0)])

    def test_append_rows_empty_noop(self, points):
        assert points.append_rows([]) == 3
        assert len(points) == 3


class TestFetch:
    def test_fetch_selected_columns(self, points):
        out = points.fetch(np.array([2, 0]), columns=["x"])
        assert list(out.keys()) == ["x"]
        np.testing.assert_array_equal(out["x"], [2.0, 0.0])

    def test_fetch_all_columns(self, points):
        out = points.fetch(np.array([1]))
        assert set(out.keys()) == {"x", "y", "cls"}
        assert out["cls"][0] == 6

    def test_nbytes(self, points):
        assert points.nbytes == 3 * 8 + 3 * 8 + 3 * 1
