"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.lidar import (
    CLASS_BUILDING,
    CLASS_GROUND,
    CLASS_WATER,
    generate_points,
    generate_tiles,
    make_scene,
    write_tile_files,
)
from repro.datasets.osm import ROAD_CLASSES, generate_osm
from repro.datasets.terrain import generate_terrain
from repro.datasets.urbanatlas import (
    FAST_TRANSIT,
    UA_CODES,
    WATER_BODY,
    generate_urban_atlas,
)
from repro.gis.envelope import Box
from repro.las.reader import read_las
from repro.las.spec import FLAT_SCHEMA

EXTENT = Box(85_000, 445_000, 86_000, 446_000)  # 1 km² in RD-like coords


@pytest.fixture(scope="module")
def scene():
    return make_scene(EXTENT, seed=42)


@pytest.fixture(scope="module")
def cloud(scene):
    return generate_points(scene, 20_000, seed=42)


class TestTerrain:
    def test_extent_and_shape(self):
        t = generate_terrain(EXTENT, order=5, seed=1)
        assert t.heights.shape == (33, 33)
        assert t.extent == EXTENT

    def test_water_fraction_near_quantile(self):
        t = generate_terrain(EXTENT, order=7, sea_level_quantile=0.2, seed=2)
        assert 0.1 < t.water_fraction < 0.35

    def test_height_at_matches_grid_nodes(self):
        t = generate_terrain(EXTENT, order=4, seed=3)
        # Sampling exactly at corner nodes reproduces the grid values.
        got = t.height_at(
            np.array([EXTENT.xmin, EXTENT.xmax]),
            np.array([EXTENT.ymin, EXTENT.ymax]),
        )
        np.testing.assert_allclose(
            got, [t.heights[0, 0], t.heights[-1, -1]], atol=1e-6
        )

    def test_deterministic(self):
        a = generate_terrain(EXTENT, order=5, seed=7)
        b = generate_terrain(EXTENT, order=5, seed=7)
        np.testing.assert_array_equal(a.heights, b.heights)

    def test_bad_roughness(self):
        with pytest.raises(ValueError):
            generate_terrain(EXTENT, roughness=1.5)


class TestLidarGenerator:
    def test_full_flat_schema(self, cloud):
        assert set(cloud) == {name for name, _ in FLAT_SCHEMA}
        n = cloud["x"].shape[0]
        assert n == 20_000
        assert all(arr.shape[0] == n for arr in cloud.values())

    def test_points_inside_extent(self, cloud):
        assert cloud["x"].min() >= EXTENT.xmin and cloud["x"].max() <= EXTENT.xmax
        assert cloud["y"].min() >= EXTENT.ymin and cloud["y"].max() <= EXTENT.ymax

    def test_class_mix(self, cloud):
        classes = set(np.unique(cloud["classification"]).tolist())
        assert CLASS_GROUND in classes
        assert CLASS_WATER in classes or CLASS_BUILDING in classes

    def test_buildings_are_elevated(self, scene, cloud):
        bld = cloud["classification"] == CLASS_BUILDING
        gnd = cloud["classification"] == CLASS_GROUND
        if bld.any() and gnd.any():
            assert cloud["z"][bld].mean() > cloud["z"][gnd].mean() + 2.0

    def test_water_is_low_intensity(self, cloud):
        wat = cloud["classification"] == CLASS_WATER
        gnd = cloud["classification"] == CLASS_GROUND
        if wat.any() and gnd.any():
            assert cloud["intensity"][wat].mean() < cloud["intensity"][gnd].mean()

    def test_gps_time_monotone(self, cloud):
        assert (np.diff(cloud["gps_time"]) >= 0).all()

    def test_acquisition_order_clusters_x(self, cloud):
        """Flightline order gives local x clustering — the property that
        makes imprints effective on raw LAS loads."""
        step = np.abs(np.diff(cloud["x"])).mean()
        rng = np.random.default_rng(0)
        shuffled = cloud["x"].copy()
        rng.shuffle(shuffled)
        shuffled_step = np.abs(np.diff(shuffled)).mean()
        assert step < shuffled_step / 10

    def test_return_numbers_valid(self, cloud):
        assert (cloud["return_number"] >= 1).all()
        assert (cloud["return_number"] <= cloud["number_of_returns"]).all()

    def test_n_points_validation(self, scene):
        with pytest.raises(ValueError):
            generate_points(scene, 0)

    def test_deterministic(self, scene):
        a = generate_points(scene, 500, seed=5)
        b = generate_points(scene, 500, seed=5)
        np.testing.assert_array_equal(a["x"], b["x"])
        np.testing.assert_array_equal(a["classification"], b["classification"])


class TestTiles:
    def test_tiles_partition_points(self):
        tiles = list(generate_tiles(EXTENT, 5000, 2, 2, seed=1))
        assert len(tiles) == 4
        assert sum(t[1]["x"].shape[0] for t in tiles) == 5000
        for tile_extent, cols in tiles:
            assert cols["x"].min() >= tile_extent.xmin - 1e-9
            assert cols["x"].max() <= tile_extent.xmax + 1e-9

    def test_write_tile_files(self, tmp_path):
        paths = write_tile_files(tmp_path, EXTENT, 2000, 2, 2, seed=2)
        assert len(paths) == 4
        total = 0
        for path in paths:
            header, cols = read_las(path)
            total += header.n_points
        assert total == 2000

    def test_write_compressed_tiles(self, tmp_path):
        paths = write_tile_files(
            tmp_path, EXTENT, 1000, 2, 1, seed=3, compressed=True
        )
        assert all(p.suffix == ".laz" for p in paths)


class TestSplitCloudTiles:
    def test_split_preserves_multiset(self):
        from repro.datasets.lidar import split_cloud_into_tiles

        scene = make_scene(EXTENT, seed=31)
        cloud = generate_points(scene, 3000, seed=31)
        tiles = list(split_cloud_into_tiles(cloud, EXTENT, 3, 2))
        total = sum(t[1]["x"].shape[0] for t in tiles)
        assert total == 3000
        merged = np.sort(np.concatenate([t[1]["x"] for t in tiles]))
        np.testing.assert_array_equal(merged, np.sort(cloud["x"]))

    def test_split_respects_tile_bounds(self):
        from repro.datasets.lidar import split_cloud_into_tiles

        scene = make_scene(EXTENT, seed=32)
        cloud = generate_points(scene, 2000, seed=32)
        for tile_extent, cols in split_cloud_into_tiles(cloud, EXTENT, 2, 2):
            assert cols["x"].min() >= tile_extent.xmin - 1e9 * 0  # inside
            assert (cols["x"] <= tile_extent.xmax).all()
            assert (cols["y"] <= tile_extent.ymax).all()

    def test_write_cloud_tiles_round_trip(self, tmp_path):
        from repro.datasets.lidar import write_cloud_tiles

        scene = make_scene(EXTENT, seed=33)
        cloud = generate_points(scene, 1500, seed=33)
        paths = write_cloud_tiles(tmp_path, cloud, EXTENT, 2, 2)
        total = 0
        xs = []
        for path in paths:
            _h, cols = read_las(path)
            total += cols["x"].shape[0]
            xs.append(cols["x"])
        assert total == 1500
        np.testing.assert_allclose(
            np.sort(np.concatenate(xs)), np.sort(cloud["x"]), atol=0.006
        )

    def test_write_cloud_tiles_compressed(self, tmp_path):
        from repro.datasets.lidar import write_cloud_tiles

        scene = make_scene(EXTENT, seed=34)
        cloud = generate_points(scene, 400, seed=34)
        paths = write_cloud_tiles(
            tmp_path, cloud, EXTENT, 1, 2, compressed=True
        )
        assert all(p.suffix == ".laz" for p in paths)


class TestOsm:
    def test_road_classes_present(self):
        osm = generate_osm(EXTENT, seed=1)
        classes = {r.road_class for r in osm.roads}
        assert "motorway" in classes
        assert classes <= set(ROAD_CLASSES)

    def test_geometries_inside_extent(self):
        osm = generate_osm(EXTENT, seed=2)
        for road in osm.roads:
            env = road.geometry.envelope
            assert env.xmin >= EXTENT.xmin - 1e-6
            assert env.xmax <= EXTENT.xmax + 1e-6

    def test_rivers_cross_extent(self):
        osm = generate_osm(EXTENT, n_rivers=1, seed=3)
        river = osm.rivers[0].geometry
        assert river.coords[0, 0] == EXTENT.xmin
        assert river.coords[-1, 0] == EXTENT.xmax

    def test_pois(self):
        osm = generate_osm(EXTENT, n_pois=10, seed=4)
        assert len(osm.pois) == 10
        assert all(EXTENT.contains_point(p.geometry.x, p.geometry.y) for p in osm.pois)

    def test_bad_grid(self):
        with pytest.raises(ValueError):
            generate_osm(EXTENT, grid=1)


class TestUrbanAtlas:
    def test_codes_are_known(self):
        ua = generate_urban_atlas(EXTENT, seed=1)
        assert all(z.code in UA_CODES for z in ua.zones)

    def test_fast_transit_follows_motorways(self):
        osm = generate_osm(EXTENT, seed=2)
        ua = generate_urban_atlas(EXTENT, osm=osm, seed=2)
        transit = ua.zones_of(FAST_TRANSIT)
        assert len(transit) == len(osm.roads_of_class("motorway"))
        # Every motorway vertex lies inside its corridor zone.
        from repro.gis.predicates import points_in_geometry

        for zone, road in zip(transit, osm.roads_of_class("motorway")):
            xs = road.geometry.coords[:, 0]
            ys = road.geometry.coords[:, 1]
            assert points_in_geometry(xs, ys, zone.geometry).all()

    def test_water_zones_follow_terrain(self):
        terrain = generate_terrain(EXTENT, order=6, sea_level_quantile=0.3, seed=3)
        ua = generate_urban_atlas(EXTENT, terrain=terrain, seed=3)
        water = ua.zones_of(WATER_BODY)
        assert water, "terrain with 30% water must yield water zones"

    def test_zone_areas_positive(self):
        ua = generate_urban_atlas(EXTENT, seed=4)
        assert all(z.area > 0 for z in ua.zones)

    def test_land_zones_tile_the_extent(self):
        """Without corridors, zone areas sum to the extent area (the grid
        partition is exact)."""
        ua = generate_urban_atlas(EXTENT, seed=5)
        total = sum(z.area for z in ua.zones)
        assert total == pytest.approx(EXTENT.area, rel=1e-9)
