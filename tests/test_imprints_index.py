"""Unit and property tests for the ColumnImprints index and its manager."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.imprints import ColumnImprints, ImprintsManager
from repro.engine.column import Column
from repro.engine.select import range_select
from repro.engine.table import Table


def make_column(values, dtype=np.float64):
    return Column("v", np.dtype(dtype), data=np.asarray(values, dtype=dtype))


class TestBuild:
    def test_empty_column_raises(self):
        with pytest.raises(ValueError):
            ColumnImprints(Column("v", "float64"))

    def test_vpc_from_dtype(self):
        imp = ColumnImprints(make_column(np.arange(100)))
        assert imp.vpc == 8  # 64-byte lines / 8-byte doubles
        imp16 = ColumnImprints(make_column(np.arange(100), dtype=np.uint16))
        assert imp16.vpc == 32

    def test_line_count(self):
        imp = ColumnImprints(make_column(np.arange(100)))
        assert imp.n_lines == 13  # ceil(100 / 8)

    def test_custom_cacheline(self):
        imp = ColumnImprints(make_column(np.arange(64)), cacheline_bytes=128)
        assert imp.vpc == 16

    def test_stats_accounting(self):
        imp = ColumnImprints(make_column(np.arange(10_000)))
        s = imp.stats()
        assert s.n_rows == 10_000
        assert s.column_bytes == 80_000
        assert s.index_bytes == imp.nbytes
        assert 0 < s.overhead < 1


class TestQuery:
    def test_matches_scan_on_sorted(self):
        col = make_column(np.arange(5000))
        imp = ColumnImprints(col)
        got = imp.query(1000, 2000)
        np.testing.assert_array_equal(got, range_select(col, 1000, 2000))

    def test_matches_scan_on_shuffled(self):
        rng = np.random.default_rng(9)
        vals = np.arange(5000, dtype=np.float64)
        rng.shuffle(vals)
        col = make_column(vals)
        imp = ColumnImprints(col)
        np.testing.assert_array_equal(
            imp.query(1000, 2000), range_select(col, 1000, 2000)
        )

    def test_exclusive_bounds(self):
        col = make_column(np.arange(100))
        imp = ColumnImprints(col)
        np.testing.assert_array_equal(
            imp.query(10, 12, lo_inclusive=False, hi_inclusive=False), [11]
        )

    def test_half_open(self):
        col = make_column(np.arange(100))
        imp = ColumnImprints(col)
        np.testing.assert_array_equal(imp.query(None, 3), [0, 1, 2, 3])
        np.testing.assert_array_equal(imp.query(96, None), [96, 97, 98, 99])

    def test_empty_range(self):
        imp = ColumnImprints(make_column(np.arange(100)))
        assert imp.query(1000, 2000).shape == (0,)

    def test_candidates_superset_of_exact(self):
        rng = np.random.default_rng(4)
        col = make_column(rng.normal(size=3000))
        imp = ColumnImprints(col)
        exact = imp.query(-0.5, 0.5)
        cands = imp.candidate_rows(-0.5, 0.5)
        assert np.isin(exact, cands).all()

    def test_scanned_fraction_small_on_sorted(self):
        imp = ColumnImprints(make_column(np.arange(100_000)))
        # A 1% range over sorted data touches a small sliver of lines.
        assert imp.scanned_fraction(0, 1000) < 0.05

    def test_false_positive_rate_bounds(self):
        rng = np.random.default_rng(5)
        imp = ColumnImprints(make_column(rng.normal(size=10_000)))
        fpr = imp.false_positive_rate(-0.1, 0.1)
        assert 0.0 <= fpr <= 1.0


class TestStaleness:
    def test_stale_after_append(self):
        col = make_column(np.arange(100))
        imp = ColumnImprints(col)
        assert not imp.stale
        col.append([1.0])
        assert imp.stale


class TestManager:
    def _table(self, n=2000):
        t = Table("pts", [("x", "float64")])
        rng = np.random.default_rng(0)
        t.append_columns({"x": rng.uniform(0, 100, n)})
        return t

    def test_lazy_build_on_first_query(self):
        t = self._table()
        mgr = ImprintsManager()
        assert mgr.get(t, "x") is None
        out = mgr.range_select(t, "x", 10, 20)
        assert mgr.get(t, "x") is not None
        assert mgr.builds == 1
        np.testing.assert_array_equal(out, range_select(t.column("x"), 10, 20))

    def test_reuse_without_rebuild(self):
        t = self._table()
        mgr = ImprintsManager()
        mgr.range_select(t, "x", 10, 20)
        mgr.range_select(t, "x", 30, 40)
        assert mgr.builds == 1

    def test_rebuild_after_append(self):
        t = self._table()
        mgr = ImprintsManager()
        mgr.range_select(t, "x", 10, 20)
        t.append_columns({"x": [15.0, 16.0]})
        out = mgr.range_select(t, "x", 10, 20)
        assert mgr.builds == 2
        np.testing.assert_array_equal(out, range_select(t.column("x"), 10, 20))

    def test_invalidate_column(self):
        t = self._table()
        mgr = ImprintsManager()
        mgr.range_select(t, "x", 10, 20)
        mgr.invalidate(t, "x")
        assert mgr.get(t, "x") is None

    def test_invalidate_table(self):
        t = self._table()
        mgr = ImprintsManager()
        mgr.range_select(t, "x", 10, 20)
        mgr.invalidate(t)
        assert mgr.get(t, "x") is None

    def test_nbytes_and_stats(self):
        t = self._table()
        mgr = ImprintsManager()
        mgr.range_select(t, "x", 10, 20)
        assert mgr.nbytes > 0
        assert ("pts", "x") in mgr.stats()


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(
            min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
        ),
        min_size=1,
        max_size=500,
    ),
    lo=st.floats(-1e9, 1e9),
    span=st.floats(0, 1e9),
    max_bins=st.sampled_from([2, 8, 64]),
    cacheline=st.sampled_from([8, 64, 256]),
)
def test_imprint_query_equals_scan(values, lo, span, max_bins, cacheline):
    """THE correctness invariant: imprint select == full-scan select,
    for arbitrary data, bin budgets and cacheline sizes."""
    col = make_column(values)
    imp = ColumnImprints(col, max_bins=max_bins, cacheline_bytes=cacheline)
    hi = lo + span
    np.testing.assert_array_equal(imp.query(lo, hi), range_select(col, lo, hi))


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(0, 100), min_size=1, max_size=300),
    lo=st.integers(-10, 110),
    span=st.integers(0, 60),
)
def test_imprint_no_false_negatives_on_ints(values, lo, span):
    col = make_column(values, dtype=np.int64)
    imp = ColumnImprints(col)
    hi = lo + span
    exact = set(range_select(col, lo, hi).tolist())
    cands = set(imp.candidate_rows(lo, hi).tolist())
    assert exact <= cands
