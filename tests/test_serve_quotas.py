"""Per-tenant quotas: spec parsing, the ledger, and exhaustion reports."""

import pytest

from repro.obs.resources import ResourceUsage
from repro.serve.quotas import (
    QuotaExceeded,
    QuotaLedger,
    TenantBudget,
    parse_quota_spec,
)


class TestParseQuotaSpec:
    def test_full_spec(self):
        budgets = parse_quota_spec("alice=1.5:100000")
        assert budgets == {
            "alice": TenantBudget(cpu_seconds=1.5, rows_touched=100000)
        }

    def test_cpu_only(self):
        assert parse_quota_spec("bob=2.0") == {
            "bob": TenantBudget(cpu_seconds=2.0, rows_touched=None)
        }

    def test_rows_only(self):
        assert parse_quota_spec("carol=:50000") == {
            "carol": TenantBudget(cpu_seconds=None, rows_touched=50000)
        }

    def test_multiple_tenants_with_whitespace(self):
        budgets = parse_quota_spec(" alice=1:10 , bob=2.5 ,")
        assert set(budgets) == {"alice", "bob"}
        assert budgets["alice"].rows_touched == 10

    def test_missing_equals(self):
        with pytest.raises(ValueError, match="bad quota spec"):
            parse_quota_spec("alice")

    def test_non_numeric_limit(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_quota_spec("alice=lots")


def usage(cpu=0.0, worker=0.0, rows=0):
    return ResourceUsage(
        cpu_seconds=cpu, worker_cpu_seconds=worker, rows_touched=rows
    )


class TestQuotaLedger:
    def test_unbudgeted_tenant_never_blocked(self):
        ledger = QuotaLedger()
        ledger.charge("anyone", usage(cpu=1e9, rows=10**12))
        ledger.check("anyone")  # no budget, no enforcement

    def test_usage_accumulates(self):
        ledger = QuotaLedger()
        ledger.charge("t", usage(cpu=0.5, worker=0.25, rows=100))
        ledger.charge("t", usage(cpu=0.5, rows=50))
        report = ledger.report("t")
        assert report["budget"]["cpu_seconds"]["used"] == pytest.approx(1.25)
        assert report["budget"]["rows_touched"]["used"] == 150

    def test_worker_cpu_counts(self):
        ledger = QuotaLedger({"t": TenantBudget(cpu_seconds=1.0)})
        ledger.charge("t", usage(cpu=0.4, worker=0.7))
        with pytest.raises(QuotaExceeded):
            ledger.check("t")

    def test_rows_axis_enforced(self):
        ledger = QuotaLedger({"t": TenantBudget(rows_touched=100)})
        ledger.charge("t", usage(rows=99))
        ledger.check("t")
        ledger.charge("t", usage(rows=1))
        with pytest.raises(QuotaExceeded) as info:
            ledger.check("t")
        assert "rows_touched" in str(info.value)
        assert info.value.tenant == "t"

    def test_report_carried_on_error(self):
        ledger = QuotaLedger({"t": TenantBudget(cpu_seconds=0.1)})
        ledger.charge("t", usage(cpu=0.2))
        with pytest.raises(QuotaExceeded) as info:
            ledger.check("t")
        axis = info.value.report["budget"]["cpu_seconds"]
        assert axis["exhausted"] is True
        assert axis["limit"] == 0.1
        assert axis["remaining"] == 0.0

    def test_default_budget_fallback(self):
        ledger = QuotaLedger(
            budgets={"vip": TenantBudget()},
            default_budget=TenantBudget(rows_touched=10),
        )
        ledger.charge("vip", usage(rows=1000))
        ledger.check("vip")  # explicit unlimited entry wins
        ledger.charge("pleb", usage(rows=1000))
        with pytest.raises(QuotaExceeded):
            ledger.check("pleb")

    def test_report_shape_for_unlimited(self):
        report = QuotaLedger().report("t")
        assert report["tenant"] == "t"
        for axis in report["budget"].values():
            assert axis["limit"] is None
            assert axis["remaining"] is None
            assert axis["exhausted"] is False

    def test_snapshot_covers_budgeted_and_seen(self):
        ledger = QuotaLedger({"configured": TenantBudget(cpu_seconds=1)})
        ledger.charge("walkin", usage(cpu=0.1))
        snap = ledger.snapshot()
        assert set(snap) == {"configured", "walkin"}
