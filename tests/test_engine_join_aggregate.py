"""Unit and property tests for repro.engine.join and repro.engine.aggregate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregate import avg, count, group_aggregate, max_, min_, sum_
from repro.engine.column import Column
from repro.engine.join import band_join, hash_join


class TestHashJoin:
    def test_simple_equi_join(self):
        left = Column("l", "int64", data=[1, 2, 3])
        right = Column("r", "int64", data=[3, 1, 1])
        lo, ro = hash_join(left, right)
        pairs = sorted(zip(lo.tolist(), ro.tolist()))
        assert pairs == [(0, 1), (0, 2), (2, 0)]

    def test_no_matches(self):
        left = Column("l", "int64", data=[1, 2])
        right = Column("r", "int64", data=[5, 6])
        lo, ro = hash_join(left, right)
        assert lo.shape == (0,) and ro.shape == (0,)

    def test_empty_side(self):
        left = Column("l", "int64", data=[])
        right = Column("r", "int64", data=[1])
        lo, ro = hash_join(left, right)
        assert lo.shape == (0,)

    def test_with_candidates(self):
        left = Column("l", "int64", data=[1, 2, 3, 2])
        right = Column("r", "int64", data=[2, 2])
        lo, ro = hash_join(left, right, left_candidates=np.array([0, 1]))
        pairs = sorted(zip(lo.tolist(), ro.tolist()))
        assert pairs == [(1, 0), (1, 1)]

    def test_duplicates_both_sides_product(self):
        left = Column("l", "int64", data=[7, 7])
        right = Column("r", "int64", data=[7, 7, 7])
        lo, ro = hash_join(left, right)
        assert lo.shape == (6,)

    @settings(max_examples=40, deadline=None)
    @given(
        lvals=st.lists(st.integers(0, 10), min_size=0, max_size=40),
        rvals=st.lists(st.integers(0, 10), min_size=0, max_size=40),
    )
    def test_matches_nested_loop_reference(self, lvals, rvals):
        left = Column("l", "int64", data=np.array(lvals, dtype=np.int64))
        right = Column("r", "int64", data=np.array(rvals, dtype=np.int64))
        lo, ro = hash_join(left, right)
        got = sorted(zip(lo.tolist(), ro.tolist()))
        expected = sorted(
            (i, j)
            for i, lv in enumerate(lvals)
            for j, rv in enumerate(rvals)
            if lv == rv
        )
        assert got == expected


class TestBandJoin:
    def test_radius_zero_is_equi(self):
        left = Column("l", "float64", data=[1.0, 2.0])
        right = Column("r", "float64", data=[2.0, 3.0])
        lo, ro = band_join(left, right, 0.0)
        assert sorted(zip(lo.tolist(), ro.tolist())) == [(1, 0)]

    def test_band(self):
        left = Column("l", "float64", data=[0.0])
        right = Column("r", "float64", data=[-1.5, -0.5, 0.5, 1.5])
        lo, ro = band_join(left, right, 1.0)
        assert sorted(ro.tolist()) == [1, 2]

    def test_negative_radius_raises(self):
        left = Column("l", "float64", data=[0.0])
        with pytest.raises(ValueError):
            band_join(left, left, -1.0)

    @settings(max_examples=40, deadline=None)
    @given(
        lvals=st.lists(st.integers(-20, 20), min_size=0, max_size=30),
        rvals=st.lists(st.integers(-20, 20), min_size=0, max_size=30),
        radius=st.integers(0, 5),
    )
    def test_matches_nested_loop_reference(self, lvals, rvals, radius):
        left = Column("l", "int64", data=np.array(lvals, dtype=np.int64))
        right = Column("r", "int64", data=np.array(rvals, dtype=np.int64))
        lo, ro = band_join(left, right, float(radius))
        got = sorted(zip(lo.tolist(), ro.tolist()))
        expected = sorted(
            (i, j)
            for i, lv in enumerate(lvals)
            for j, rv in enumerate(rvals)
            if abs(lv - rv) <= radius
        )
        assert got == expected


class TestScalarAggregates:
    def test_count_sum_avg(self):
        col = Column("v", "float64", data=[1.0, 2.0, 3.0, 4.0])
        assert count(col) == 4
        assert sum_(col) == 10.0
        assert avg(col) == 2.5

    def test_with_candidates(self):
        col = Column("v", "float64", data=[1.0, 2.0, 3.0, 4.0])
        cands = np.array([1, 3], dtype=np.int64)
        assert count(col, cands) == 2
        assert sum_(col, cands) == 6.0
        assert min_(col, cands) == 2.0
        assert max_(col, cands) == 4.0

    def test_avg_empty_is_nan(self):
        col = Column("v", "float64", data=[1.0])
        assert np.isnan(avg(col, np.empty(0, dtype=np.int64)))

    def test_minmax_empty_raise(self):
        col = Column("v", "float64", data=[1.0])
        with pytest.raises(ValueError):
            min_(col, np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            max_(col, np.empty(0, dtype=np.int64))


class TestGroupAggregate:
    def test_grouped_count(self):
        out = group_aggregate(np.array([2, 1, 2, 2]), None, "count")
        np.testing.assert_array_equal(out["groups"], [1, 2])
        np.testing.assert_array_equal(out["values"], [1, 3])

    def test_grouped_avg(self):
        groups = np.array([1, 1, 2])
        vals = np.array([1.0, 3.0, 10.0])
        out = group_aggregate(groups, vals, "avg")
        np.testing.assert_array_equal(out["groups"], [1, 2])
        np.testing.assert_allclose(out["values"], [2.0, 10.0])

    def test_grouped_min_max_sum(self):
        groups = np.array([0, 1, 0, 1])
        vals = np.array([5, 2, 3, 8])
        assert group_aggregate(groups, vals, "min")["values"].tolist() == [3, 2]
        assert group_aggregate(groups, vals, "max")["values"].tolist() == [5, 8]
        assert group_aggregate(groups, vals, "sum")["values"].tolist() == [8, 10]

    def test_empty_input(self):
        out = group_aggregate(np.empty(0, dtype=np.int64), None, "count")
        assert out["groups"].shape == (0,)

    def test_unknown_aggregate(self):
        with pytest.raises(ValueError):
            group_aggregate(np.array([1]), np.array([1.0]), "median")

    def test_missing_values_for_sum(self):
        with pytest.raises(ValueError):
            group_aggregate(np.array([1]), None, "sum")

    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 5), st.integers(-100, 100)),
            min_size=1,
            max_size=60,
        )
    )
    def test_grouped_sum_matches_dict_reference(self, pairs):
        groups = np.array([p[0] for p in pairs], dtype=np.int64)
        vals = np.array([p[1] for p in pairs], dtype=np.int64)
        out = group_aggregate(groups, vals, "sum")
        expected = {}
        for g, v in pairs:
            expected[g] = expected.get(g, 0) + v
        got = dict(zip(out["groups"].tolist(), out["values"].tolist()))
        assert got == expected
