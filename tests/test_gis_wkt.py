"""Unit and property tests for repro.gis.wkt."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gis.geometry import (
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.gis.wkt import WKTError, dumps, loads


class TestParse:
    def test_point(self):
        geom = loads("POINT (30 10)")
        assert isinstance(geom, Point)
        assert (geom.x, geom.y) == (30.0, 10.0)

    def test_point_scientific_and_negative(self):
        geom = loads("POINT(-1.5e2 +2.25)")
        assert (geom.x, geom.y) == (-150.0, 2.25)

    def test_point_3d_z_dropped(self):
        geom = loads("POINT (1 2 99)")
        assert (geom.x, geom.y) == (1.0, 2.0)

    def test_linestring(self):
        geom = loads("LINESTRING (0 0, 10 0, 10 10)")
        assert isinstance(geom, LineString)
        assert geom.coords.shape == (3, 2)

    def test_polygon_with_hole(self):
        geom = loads(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0),"
            " (2 2, 4 2, 4 4, 2 4, 2 2))"
        )
        assert isinstance(geom, Polygon)
        assert len(geom.holes) == 1
        assert geom.area == 96.0

    def test_multipoint_both_syntaxes(self):
        a = loads("MULTIPOINT ((1 2), (3 4))")
        b = loads("MULTIPOINT (1 2, 3 4)")
        assert isinstance(a, MultiPoint) and isinstance(b, MultiPoint)
        np.testing.assert_array_equal(a.coords, b.coords)

    def test_multilinestring(self):
        geom = loads("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))")
        assert isinstance(geom, MultiLineString)
        assert len(geom) == 2

    def test_multipolygon(self):
        geom = loads(
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)),"
            " ((5 5, 6 5, 6 6, 5 6, 5 5)))"
        )
        assert isinstance(geom, MultiPolygon)
        assert len(geom) == 2

    def test_case_insensitive_tag(self):
        assert isinstance(loads("point (1 2)"), Point)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "POINT",
            "POINT (1)",
            "POINT (1 2",
            "POINT (1 2) junk",
            "CIRCLE (1 2, 3)",
            "POLYGON ((0 0, 1 1))",
            "POINT EMPTY",
            "LINESTRING EMPTY",
            "POINT (a b)",
        ],
    )
    def test_malformed(self, text):
        with pytest.raises((WKTError, Exception)):
            loads(text)

    def test_not_a_string(self):
        with pytest.raises(WKTError):
            loads(None)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "POINT (30.5 -10.25)",
            "LINESTRING (0 0, 10 0, 10 10)",
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)))",
            "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
            "MULTIPOINT ((1 2), (3 4))",
        ],
    )
    def test_parse_dump_parse_stable(self, text):
        geom1 = loads(text)
        geom2 = loads(dumps(geom1))
        assert type(geom1) is type(geom2)
        assert dumps(geom1) == dumps(geom2)


finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@settings(max_examples=60, deadline=None)
@given(x=finite, y=finite)
def test_point_round_trip_exact(x, y):
    geom = loads(dumps(Point(x, y)))
    assert geom.x == x and geom.y == y


@settings(max_examples=40, deadline=None)
@given(
    coords=st.lists(st.tuples(finite, finite), min_size=2, max_size=20),
)
def test_linestring_round_trip_exact(coords):
    line = LineString(coords)
    back = loads(dumps(line))
    np.testing.assert_array_equal(back.coords, line.coords)
