"""Unit and property tests for repro.engine.stats (zonemaps)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.column import Column
from repro.engine.select import range_select
from repro.engine.stats import ZoneMap


class TestZoneMapBasics:
    def test_chunk_bounds(self):
        col = Column("v", "int64", data=np.arange(100))
        zm = ZoneMap(col, chunk_rows=10)
        assert zm.n_chunks == 10
        assert zm.mins[0] == 0 and zm.maxs[0] == 9
        assert zm.mins[9] == 90 and zm.maxs[9] == 99

    def test_uneven_last_chunk(self):
        col = Column("v", "int64", data=np.arange(25))
        zm = ZoneMap(col, chunk_rows=10)
        assert zm.n_chunks == 3
        assert zm.maxs[2] == 24

    def test_invalid_chunk_rows(self):
        col = Column("v", "int64", data=[1])
        with pytest.raises(ValueError):
            ZoneMap(col, chunk_rows=0)

    def test_empty_column(self):
        col = Column("v", "int64")
        zm = ZoneMap(col)
        assert zm.n_chunks == 0
        assert zm.query(0, 10).shape == (0,)
        assert zm.scanned_fraction(0, 10) == 0.0

    def test_nbytes_positive(self):
        col = Column("v", "int64", data=np.arange(100))
        assert ZoneMap(col, chunk_rows=10).nbytes == 2 * 10 * 8


class TestZoneMapQueries:
    def test_sorted_data_skips_chunks(self):
        col = Column("v", "int64", data=np.arange(1000))
        zm = ZoneMap(col, chunk_rows=100)
        assert zm.candidate_chunks(250, 260).tolist() == [2]
        assert zm.scanned_fraction(250, 260) == 0.1

    def test_shuffled_data_degrades(self):
        rng = np.random.default_rng(11)
        vals = np.arange(1000)
        rng.shuffle(vals)
        zm = ZoneMap(Column("v", "int64", data=vals), chunk_rows=100)
        # Every chunk very likely spans most of the domain.
        assert zm.scanned_fraction(400, 600) == 1.0

    def test_query_matches_scan(self):
        rng = np.random.default_rng(5)
        vals = rng.integers(0, 500, 777)
        col = Column("v", "int64", data=vals)
        zm = ZoneMap(col, chunk_rows=64)
        got = np.sort(zm.query(100, 200))
        expected = range_select(col, 100, 200)
        np.testing.assert_array_equal(got, expected)

    def test_half_open_bounds(self):
        col = Column("v", "int64", data=np.arange(100))
        zm = ZoneMap(col, chunk_rows=10)
        np.testing.assert_array_equal(zm.query(None, 5), np.arange(6))
        np.testing.assert_array_equal(zm.query(95, None), np.arange(95, 100))

    def test_exclusive_bounds(self):
        col = Column("v", "int64", data=np.arange(10))
        zm = ZoneMap(col, chunk_rows=4)
        np.testing.assert_array_equal(
            zm.query(2, 5, lo_inclusive=False, hi_inclusive=False), [3, 4]
        )


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.integers(-500, 500), min_size=1, max_size=300),
    lo=st.integers(-500, 500),
    span=st.integers(0, 200),
    chunk_rows=st.sampled_from([1, 7, 32, 100]),
)
def test_zonemap_equals_scan_reference(values, lo, span, chunk_rows):
    """Zonemap-accelerated select must equal the full-scan reference."""
    col = Column("v", "int64", data=np.array(values, dtype=np.int64))
    zm = ZoneMap(col, chunk_rows=chunk_rows)
    got = np.sort(zm.query(lo, lo + span))
    expected = range_select(col, lo, lo + span)
    np.testing.assert_array_equal(got, expected)
