"""Tests for imprint persistence (save/load with the database)."""

import numpy as np
import pytest

from repro import Box, PointCloudDB
from repro.core.imprints import ColumnImprints, ImprintsManager
from repro.core.imprints.persist import (
    ImprintPersistError,
    load_imprint,
    save_imprint,
)
from repro.engine.column import Column
from repro.engine.select import range_select
from repro.engine.table import Table


def make_column(n=5000, seed=0):
    rng = np.random.default_rng(seed)
    return Column("x", "float64", data=rng.uniform(0, 1000, n))


class TestSaveLoad:
    def test_round_trip_queries_identical(self, tmp_path):
        col = make_column()
        imp = ColumnImprints(col)
        path = tmp_path / "x.imprint"
        save_imprint(imp, path)
        back = load_imprint(col, path)
        for lo, hi in [(0, 10), (500, 600), (990, 1000), (-5, 2000)]:
            np.testing.assert_array_equal(
                np.sort(back.query(lo, hi)), np.sort(imp.query(lo, hi))
            )
        assert back.nbytes == imp.nbytes
        assert back.vpc == imp.vpc

    def test_loaded_imprint_exact(self, tmp_path):
        col = make_column(seed=1)
        imp = ColumnImprints(col)
        path = tmp_path / "x.imprint"
        save_imprint(imp, path)
        back = load_imprint(col, path)
        np.testing.assert_array_equal(
            np.sort(back.query(100, 200)), range_select(col, 100, 200)
        )

    def test_grown_column_is_stale_not_error(self, tmp_path):
        col = make_column(seed=2)
        imp = ColumnImprints(col)
        path = tmp_path / "x.imprint"
        save_imprint(imp, path)
        col.append([1.0, 2.0])
        back = load_imprint(col, path)
        assert back.stale

    def test_shorter_column_rejected(self, tmp_path):
        col = make_column(seed=3)
        imp = ColumnImprints(col)
        path = tmp_path / "x.imprint"
        save_imprint(imp, path)
        small = make_column(n=10, seed=3)
        with pytest.raises(ImprintPersistError, match="holds only"):
            load_imprint(small, path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ImprintPersistError, match="no imprint"):
            load_imprint(make_column(), tmp_path / "ghost.imprint")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.imprint"
        path.write_bytes(b"XXXX" + b"\x00" * 30)
        with pytest.raises(ImprintPersistError, match="magic"):
            load_imprint(make_column(), path)

    def test_truncated(self, tmp_path):
        col = make_column(seed=4)
        path = tmp_path / "x.imprint"
        save_imprint(ColumnImprints(col), path)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(ImprintPersistError, match="truncated"):
            load_imprint(col, path)


class TestManagerPersistence:
    def _table(self, n=3000, seed=5):
        rng = np.random.default_rng(seed)
        t = Table("pts", [("x", "float64"), ("y", "float64")])
        t.append_columns(
            {"x": rng.uniform(0, 100, n), "y": rng.uniform(0, 100, n)}
        )
        return t

    def test_save_load_skips_rebuild(self, tmp_path):
        table = self._table()
        mgr = ImprintsManager()
        mgr.range_select(table, "x", 10, 20)
        mgr.range_select(table, "y", 10, 20)
        mgr.save(tmp_path / "imp")

        mgr2 = ImprintsManager()
        loaded = mgr2.load({"pts": table}, tmp_path / "imp")
        assert loaded == 2
        out = mgr2.range_select(table, "x", 10, 20)
        assert mgr2.builds == 0  # reused from disk, no rebuild
        np.testing.assert_array_equal(
            np.sort(out), np.sort(mgr.range_select(table, "x", 10, 20))
        )

    def test_load_missing_directory(self, tmp_path):
        assert ImprintsManager().load({}, tmp_path / "absent") == 0

    def test_load_ignores_unknown_tables(self, tmp_path):
        table = self._table()
        mgr = ImprintsManager()
        mgr.range_select(table, "x", 0, 50)
        mgr.save(tmp_path / "imp")
        other = Table("other", [("x", "float64")])
        assert ImprintsManager().load({"other": other}, tmp_path / "imp") == 0


class TestDatabasePersistence:
    def test_pointclouddb_round_trip_with_imprints(self, tmp_path):
        rng = np.random.default_rng(6)
        db = PointCloudDB(directory=tmp_path / "farm")
        table = db.create_pointcloud("ahn2")
        batch = {
            name: np.zeros(2000, dtype=table.column(name).dtype)
            for name in table.column_names
        }
        batch["x"] = rng.uniform(0, 100, 2000)
        batch["y"] = rng.uniform(0, 100, 2000)
        db.load_points("ahn2", batch)
        before = db.spatial_select("ahn2", Box(10, 10, 40, 40))
        assert db.manager.builds >= 1
        db.save()

        back = PointCloudDB.load(tmp_path / "farm")
        after = back.spatial_select("ahn2", Box(10, 10, 40, 40))
        np.testing.assert_array_equal(np.sort(after.oids), np.sort(before.oids))
        assert back.manager.builds == 0  # imprints restored, not rebuilt
