"""The in-flight query registry: identity, progress, deadlines."""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro import Box, PointCloudDB
from repro.core.imprints import ImprintsManager
from repro.core.imprints import segments as segments_mod
from repro.engine import parallel
from repro.obs.context import ObsContext
from repro.obs.metrics import MetricsRegistry
from repro.obs.queries import (
    ActiveQuery,
    QueryCancelled,
    QueryRegistry,
    check_deadline,
    current_query,
    get_queries,
)
from repro.obs.server import TelemetryServer
from repro.obs.trace import Tracer


@pytest.fixture
def probe_hook():
    """Install a segment-probe hook; always uninstalled afterwards."""
    installed = []

    def install(hook):
        segments_mod.probe_hook = hook
        installed.append(hook)

    yield install
    segments_mod.probe_hook = None


def make_db(context, n=20_000, segment_rows=2048, seed=7):
    """A db with many small imprint segments (forces visible progress)."""
    db = PointCloudDB(obs=context, threads=1)
    db.manager = ImprintsManager(threads=1, segment_rows=segment_rows)
    db.create_pointcloud("pts")
    rng = np.random.default_rng(seed)
    db.load_points(
        "pts",
        {
            "x": rng.uniform(0, 100, n),
            "y": rng.uniform(0, 100, n),
            "z": rng.uniform(0, 10, n),
        },
    )
    return db


class TestActiveQuery:
    def test_progress_zero_before_any_scan(self):
        query = ActiveQuery("q1", "spatial")
        assert query.progress == 0.0

    def test_progress_ratio_and_clamp(self):
        query = ActiveQuery("q1", "spatial")
        query.add_segments(total=4, done=1)
        assert query.progress == pytest.approx(0.25)
        query.add_segments(done=5)
        assert query.progress == 1.0

    def test_to_dict_is_json_ready(self):
        query = ActiveQuery("q1", "sql", detail={"sql": "SELECT 1"})
        query.set_phase("execute")
        query.add_segments(total=2, done=2)
        record = json.loads(json.dumps(query.to_dict()))
        assert record["query_id"] == "q1"
        assert record["kind"] == "sql"
        assert record["phase"] == "execute"
        assert record["progress"] == 1.0
        assert record["status"] == "running"

    def test_deadline_check_raises_typed_error(self):
        query = ActiveQuery("q1", "spatial", timeout_s=0.0, deadline=0.0)
        with pytest.raises(QueryCancelled) as err:
            query.check_deadline()
        assert err.value.query_id == "q1"
        assert err.value.timeout_s == 0.0
        assert err.value.elapsed_s >= 0.0

    def test_no_deadline_never_cancels(self):
        ActiveQuery("q1", "spatial").check_deadline()


class TestTrack:
    def test_lifecycle_active_then_recent(self):
        registry = QueryRegistry()
        with registry.track("spatial", detail={"table": "pts"}) as query:
            assert query.query_id.startswith("q")
            assert len(registry) == 1
            assert registry.active()[0] is query
            assert current_query() is query
        assert len(registry) == 0
        assert current_query() is None
        (record,) = registry.recent()
        assert record["query_id"] == query.query_id
        assert record["status"] == "finished"

    def test_query_ids_are_unique(self):
        registry = QueryRegistry()
        ids = []
        for _ in range(3):
            with registry.track("sql") as query:
                ids.append(query.query_id)
        assert len(set(ids)) == 3

    def test_error_recorded_and_reraised(self):
        context = ObsContext.fresh(enabled=False)
        with context.activate():
            with pytest.raises(ValueError):
                with context.queries.track("sql"):
                    raise ValueError("bad query")
            (record,) = context.queries.recent()
            assert record["status"] == "error"
            assert record["error"] == "ValueError"
            assert context.registry.counter("query.errors").value == 1

    def test_cancel_recorded_with_counter(self):
        context = ObsContext.fresh(enabled=False)
        with context.activate():
            with pytest.raises(QueryCancelled):
                with context.queries.track("spatial", timeout_s=0.001):
                    time.sleep(0.01)
                    check_deadline()
            (record,) = context.queries.recent()
            assert record["status"] == "cancelled"
            assert record["timeout_s"] == 0.001
            assert context.registry.counter("query.cancelled").value == 1

    def test_active_gauge_tracks_depth(self):
        context = ObsContext.fresh(enabled=False)
        with context.activate():
            gauge = context.registry.gauge("query.active")
            with context.queries.track("sql"):
                assert gauge.value == 1.0
                with context.queries.track("spatial"):
                    assert gauge.value == 2.0
            assert gauge.value == 0.0

    def test_nested_queries_inherit_identity_and_deadline(self):
        registry = QueryRegistry()
        with registry.track("sql", timeout_s=5.0) as outer:
            with registry.track("spatial", timeout_s=99.0) as inner:
                assert inner.parent_id == outer.query_id
                # The tighter (parent) deadline wins.
                assert inner.deadline == pytest.approx(outer.deadline)
            with registry.track("spatial") as untimed:
                # No own timeout still inherits the parent deadline.
                assert untimed.deadline == pytest.approx(outer.deadline)

    def test_check_deadline_is_a_noop_untracked(self):
        assert current_query() is None
        check_deadline()

    def test_recent_ring_is_bounded(self):
        registry = QueryRegistry(max_recent=4)
        for _ in range(10):
            with registry.track("sql"):
                pass
        assert len(registry.recent()) == 4


class TestWorkerPropagation:
    def test_workers_see_the_deadline(self):
        """Morsel workers inherit the active query via the context copy,
        so an expired deadline cancels at the next morsel boundary."""
        registry = QueryRegistry()
        with pytest.raises(QueryCancelled):
            with registry.track("spatial", timeout_s=0.001):
                time.sleep(0.01)
                parallel.run_tasks(lambda i: i, list(range(8)), threads=4)
        (record,) = registry.recent()
        assert record["status"] == "cancelled"

    def test_workers_see_the_active_query(self):
        registry = QueryRegistry()
        seen = []
        with registry.track("spatial") as query:
            parallel.run_tasks(
                lambda i: seen.append(current_query()), list(range(4)), threads=2
            )
        assert all(q is query for q in seen)

    def test_worker_spans_share_the_query_trace(self):
        """The acceptance trace test: a threads>1 query yields ONE trace —
        every parallel.task span carries the query span's trace_id."""
        context = ObsContext.fresh(enabled=True)
        db = make_db(context)
        db.spatial_select("pts", Box(25, 25, 75, 75), threads=4)
        spans = db.trace_spans()
        roots = [s for s in spans if s.name == "query.spatial"]
        tasks = [s for s in spans if s.name == "parallel.task"]
        assert len(roots) == 1
        assert len(tasks) > 1
        assert {s.trace_id for s in tasks} == {roots[0].trace_id}


class TestQueryIntegration:
    def test_spatial_stats_carry_query_id(self):
        context = ObsContext.fresh(enabled=False)
        db = make_db(context, n=5000)
        result = db.spatial_select("pts", Box(10, 10, 60, 60))
        assert result.stats.query_id.startswith("q")
        (record,) = context.queries.recent()
        assert record["query_id"] == result.stats.query_id
        assert record["kind"] == "spatial"
        assert record["detail"]["table"] == "pts"

    def test_session_records_last_query_id(self):
        context = ObsContext.fresh(enabled=False)
        db = make_db(context, n=5000)
        session = db._session()
        session.execute("SELECT count(*) FROM pts WHERE x < 50")
        assert session.last_query_id is not None
        records = [
            r for r in context.queries.recent() if r["kind"] == "sql"
        ]
        assert records[0]["query_id"] == session.last_query_id

    def test_timeout_cancels_a_real_scan(self, probe_hook):
        context = ObsContext.fresh(enabled=False)
        db = make_db(context)
        probe_hook(lambda seg: time.sleep(0.02))
        with pytest.raises(QueryCancelled) as err:
            db.spatial_select(
                "pts", Box(25, 25, 75, 75), timeout_s=0.01, threads=1
            )
        (record,) = context.queries.recent()
        assert record["status"] == "cancelled"
        assert record["query_id"] == err.value.query_id
        assert context.registry.counter("query.cancelled").value == 1

    def test_sql_timeout_cancels(self, probe_hook):
        context = ObsContext.fresh(enabled=False)
        db = make_db(context)
        probe_hook(lambda seg: time.sleep(0.02))
        with pytest.raises(QueryCancelled):
            db.sql("SELECT count(*) FROM pts WHERE x < 75", timeout_s=0.01)
        records = [r for r in context.queries.recent() if r["kind"] == "sql"]
        assert records[0]["status"] == "cancelled"

    def test_untimed_queries_still_finish(self, probe_hook):
        context = ObsContext.fresh(enabled=False)
        db = make_db(context, n=5000)
        probe_hook(lambda seg: None)
        result = db.spatial_select("pts", Box(10, 10, 60, 60))
        assert len(result) > 0


class TestProgress:
    def test_progress_is_monotonic_during_a_scan(self, probe_hook):
        """Each probe ticks the record forward; skips are credited up
        front — so progress observed from the hook never decreases."""
        context = ObsContext.fresh(enabled=False)
        db = make_db(context)
        observed = []
        probe_hook(lambda seg: observed.append(current_query().progress))
        db.spatial_select("pts", Box(25, 25, 75, 75), threads=1)
        assert len(observed) > 2
        assert observed == sorted(observed)
        assert observed[-1] > observed[0]
        (record,) = context.queries.recent()
        assert record["progress"] == 1.0
        assert record["segments_total"] > 0
        assert record["segments_done"] == record["segments_total"]

    def test_debug_queries_shows_live_monotonic_progress(self, probe_hook):
        """The acceptance introspection test: poll /debug/queries while a
        slowed-down scan runs and watch its progress climb."""
        context = ObsContext.fresh(enabled=False)
        db = make_db(context)
        probe_hook(lambda seg: time.sleep(0.01))
        server = TelemetryServer(
            port=0,
            registry=context.registry,
            tracer=context.tracer,
            queries=context.queries,
        )
        samples = []
        with server:
            url = server.url + "/debug/queries"
            worker = threading.Thread(
                target=lambda: db.spatial_select(
                    "pts", Box(25, 25, 75, 75), threads=1
                )
            )
            worker.start()
            deadline = time.monotonic() + 30.0
            while worker.is_alive() and time.monotonic() < deadline:
                with urllib.request.urlopen(url, timeout=5) as response:
                    snapshot = json.loads(response.read().decode("utf-8"))
                for query in snapshot["active"]:
                    samples.append((query["query_id"], query["progress"]))
                time.sleep(0.005)
            worker.join(timeout=30.0)
        assert samples, "never caught the query in flight"
        by_query = {}
        for query_id, progress in samples:
            by_query.setdefault(query_id, []).append(progress)
        for progresses in by_query.values():
            assert progresses == sorted(progresses)
        assert any(
            0.0 < p < 1.0 for ps in by_query.values() for p in ps
        ), "never observed a partial progress value"


class TestGlobalRegistry:
    def test_get_queries_without_context_is_the_singleton(self):
        assert get_queries() is get_queries()

    def test_track_publishes_on_the_global_registry(self):
        registry = get_queries()
        with registry.track("sql") as query:
            pass
        # recent() is newest-first (and bounded, so counting is unreliable
        # once the full suite has filled the ring).
        assert registry.recent()[0]["query_id"] == query.query_id
