"""The bench regression differ (python -m repro.bench.compare)."""

import json

import pytest

from repro.bench.compare import (
    compare,
    diff_metrics,
    load_metrics,
    load_timings,
    main,
)


def _report(path, seconds_by_query, metrics=None):
    payload = {
        "experiment": "thread_scaling",
        "queries": [
            {
                "name": name,
                "timings": [
                    {"threads": threads, "seconds": seconds}
                    for threads, seconds in timings.items()
                ],
            }
            for name, timings in seconds_by_query.items()
        ],
    }
    if metrics is not None:
        payload["metrics"] = metrics
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def baseline(tmp_path):
    return _report(
        tmp_path / "baseline.json",
        {"rect_small": {1: 0.010, 4: 0.004}, "corridor": {1: 0.100}},
    )


class TestLoadAndCompare:
    def test_load_timings(self, baseline):
        timings = load_timings(baseline)
        assert timings[("rect_small", 1)] == 0.010
        assert timings[("corridor", 1)] == 0.100
        assert len(timings) == 3

    def test_compare_flags_only_over_threshold(self):
        base = {("q", 1): 0.100, ("q", 4): 0.100, ("r", 1): 0.100}
        cur = {("q", 1): 0.110, ("q", 4): 0.120, ("r", 1): 0.090}
        rows = compare(base, cur, threshold=0.15)
        by_key = {(r["query"], r["threads"]): r for r in rows}
        assert not by_key[("q", 1)]["regressed"]  # +10% < 15%
        assert by_key[("q", 4)]["regressed"]  # +20% > 15%
        assert not by_key[("r", 1)]["regressed"]  # faster
        assert by_key[("q", 4)]["ratio"] == pytest.approx(1.2)

    def test_compare_skips_unshared_cells(self):
        rows = compare({("old", 1): 1.0}, {("new", 1): 1.0})
        assert rows == []


class TestMain:
    def test_no_regression_exits_zero(self, tmp_path, baseline, capsys):
        current = _report(
            tmp_path / "current.json",
            {"rect_small": {1: 0.010, 4: 0.004}, "corridor": {1: 0.099}},
        )
        assert main([str(baseline), str(current)]) == 0
        out = capsys.readouterr().out
        assert "3 cells compared, 0 regressed" in out

    def test_regression_exits_nonzero(self, tmp_path, baseline, capsys):
        current = _report(
            tmp_path / "current.json",
            {"rect_small": {1: 0.020, 4: 0.004}, "corridor": {1: 0.100}},
        )
        assert main([str(baseline), str(current)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_soft_mode_warns_but_exits_zero(self, tmp_path, baseline, capsys):
        current = _report(
            tmp_path / "current.json", {"rect_small": {1: 0.020, 4: 0.004}}
        )
        assert main([str(baseline), str(current), "--soft"]) == 0
        out = capsys.readouterr().out
        assert "::warning::" in out

    def test_threshold_flag(self, tmp_path, baseline):
        current = _report(
            tmp_path / "current.json", {"rect_small": {1: 0.011, 4: 0.004}}
        )
        # +10%: fails a 5% threshold, passes the default 15%.
        assert main([str(baseline), str(current), "--threshold", "0.05"]) == 1
        assert main([str(baseline), str(current)]) == 0

    def test_empty_reports_exit_two(self, tmp_path, capsys):
        empty = _report(tmp_path / "empty.json", {})
        other = _report(tmp_path / "other.json", {"q": {1: 1.0}})
        assert main([str(empty), str(other)]) == 2
        assert main([str(empty), str(other), "--soft"]) == 0


class TestMetricsDiff:
    def test_load_metrics_tolerates_missing_section(self, tmp_path):
        report = _report(tmp_path / "old.json", {"q": {1: 1.0}})
        loaded = load_metrics(report)
        assert loaded == {"counters": set(), "gauges": set(), "histograms": set()}

    def test_load_metrics_reads_names_per_kind(self, tmp_path):
        report = _report(
            tmp_path / "new.json",
            {"q": {1: 1.0}},
            metrics={
                "counters": {"sql.queries": 3},
                "gauges": {"obs.server_up": 1.0},
                "histograms": {"query.cpu_seconds": {"count": 2}},
            },
        )
        loaded = load_metrics(report)
        assert loaded["counters"] == {"sql.queries"}
        assert loaded["gauges"] == {"obs.server_up"}
        assert loaded["histograms"] == {"query.cpu_seconds"}

    def test_diff_reports_added_and_removed(self):
        baseline = {"counters": {"a", "b"}, "gauges": set(), "histograms": set()}
        current = {"counters": {"b", "c"}, "gauges": {"d"}, "histograms": set()}
        diff = diff_metrics(baseline, current)
        assert diff == {"added": ["c", "d"], "removed": ["a"]}

    def test_main_prints_metric_diff_without_gating(self, tmp_path, capsys):
        baseline = _report(
            tmp_path / "baseline.json",
            {"q": {1: 0.010}},
            metrics={"counters": {"old.counter": 1}},
        )
        current = _report(
            tmp_path / "current.json",
            {"q": {1: 0.010}},
            metrics={"counters": {"new.counter": 1}},
        )
        assert main([str(baseline), str(current)]) == 0
        out = capsys.readouterr().out
        assert "metric added:   new.counter" in out
        assert "metric removed: old.counter" in out
