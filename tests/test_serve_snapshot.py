"""Snapshot isolation: readers pin a generation, writers publish past them.

Satellite of the PR 8 service work: a writer publishing mid-scan must
never change an in-flight reader's results.  The interleaving tests
drive a real :class:`QueryService` request and use the fault harness's
``stall_at`` to park it *at each crash point in the request path* while
a new generation is published underneath it — every publish/read
interleaving the request path distinguishes.
"""

import threading

import numpy as np
import pytest

from repro.api import PointCloudDB
from repro.core.imprints import ImprintsManager
from repro.obs.context import ObsContext
from repro.serve.service import QueryService, ServiceConfig
from repro.serve.snapshot import SnapshotManager
from tests import faults

BBOX = [0.0, 0.0, 100.0, 100.0]

SERVE_POINTS = [
    "serve.request.received",
    "serve.request.admitted",
    "serve.request.executed",
]


def make_db(context, fill_value, generation, n=2000):
    """An in-memory store whose x column identifies its generation."""
    db = PointCloudDB(obs=context, threads=1)
    # Small segments => several imprint probes per scan, so the
    # mid-scan stall test has a seam to park on.
    db.manager = ImprintsManager(threads=1, segment_rows=512)
    db.create_pointcloud("pts")
    rng = np.random.default_rng(generation)
    db.load_points(
        "pts",
        {
            "x": np.full(n, float(fill_value)),
            "y": rng.uniform(0, 100, n),
            "z": rng.uniform(0, 10, n),
        },
    )
    db.db.generation = generation
    return db


@pytest.fixture
def context():
    return ObsContext.fresh(enabled=False)


class TestSnapshotManager:
    def test_open_is_idempotent(self, context):
        db = make_db(context, 1.0, 1)
        manager = SnapshotManager(loader=lambda: db, obs=context)
        assert manager.open() is manager.open()
        assert manager.current().generation == 1

    def test_pin_counts_readers(self, context):
        manager = SnapshotManager(
            loader=lambda: make_db(context, 1.0, 1), obs=context
        )
        with manager.pin() as snapshot:
            assert snapshot.pins == 1
            with manager.pin() as again:
                assert again is snapshot
                assert snapshot.pins == 2
        assert snapshot.pins == 0

    def test_publish_swaps_current_but_not_pinned(self, context):
        manager = SnapshotManager(
            loader=lambda: make_db(context, 1.0, 1), obs=context
        )
        with manager.pin() as old:
            manager.publish_db(make_db(context, 2.0, 2))
            assert manager.current().generation == 2
            # The pinned reader's world is unchanged.
            assert old.generation == 1
            assert float(old.db.table("pts").column("x").values[0]) == 1.0
        with manager.pin() as new:
            assert new.generation == 2

    def test_reload_if_changed_on_disk(self, context, tmp_path):
        writer = make_db(context, 1.0, 0)
        writer.db.generation = 0  # save() bumps to 1
        writer.save(tmp_path / "store")
        manager = SnapshotManager(directory=tmp_path / "store", threads=1)
        first = manager.open()
        assert manager.reload_if_changed() is False
        writer.save(tmp_path / "store")  # bumps the on-disk generation
        assert manager.reload_if_changed() is True
        assert manager.current().generation == first.generation + 1

    def test_no_directory_no_loader_raises(self):
        with pytest.raises(ValueError, match="no store directory"):
            SnapshotManager().open()


class TestServiceIsolation:
    """The satellite proper: publish-mid-request never bleeds through."""

    def _service(self, context):
        manager = SnapshotManager(
            loader=lambda: make_db(context, 1.0, 1), obs=context
        )
        return QueryService(
            manager, config=ServiceConfig(max_concurrency=2), obs=context
        )

    def _query(self, service, results, errors):
        try:
            response = service.handle(
                "query",
                {"table": "pts", "bbox": BBOX, "columns": ["x"]},
            )
            results.append(response.payload)
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    # The pin happens between "admitted" and "executed": a request
    # stalled before the pin correctly adopts the new generation, one
    # stalled after its scan keeps the old one.  Either way the
    # response must be entirely one generation — never a torn mix.
    @pytest.mark.parametrize(
        "point,expected_generation",
        [
            ("serve.request.received", 2),
            ("serve.request.admitted", 2),
            ("serve.request.executed", 1),
        ],
    )
    def test_publish_while_stalled_at_each_point(
        self, context, point, expected_generation
    ):
        """Stall one request at each crash point in the request path and
        publish generation 2 underneath it — every publish/read
        interleaving the request path distinguishes."""
        service = self._service(context)
        results, errors = [], []
        release = threading.Event()
        with faults.stall_at(point, release) as state:
            thread = threading.Thread(
                target=self._query,
                args=(service, results, errors),
                daemon=True,
            )
            thread.start()
            for _ in range(400):
                if state["stalled"]:
                    break
                thread.join(timeout=0.005)
            assert state["stalled"] == 1, f"request never reached {point}"
            service.snapshots.publish_db(make_db(context, 2.0, 2))
            release.set()
            thread.join(timeout=10)
        assert not errors, errors
        payload = results[0]
        assert payload["meta"]["generation"] == expected_generation
        assert all(
            row[0] == float(expected_generation) for row in payload["rows"]
        )
        # The next request always sees gen 2.
        after = service.handle(
            "query", {"table": "pts", "bbox": BBOX, "columns": ["x"]}
        )
        assert after.payload["meta"]["generation"] == 2
        assert all(row[0] == 2.0 for row in after.payload["rows"])

    def test_publish_mid_scan_never_changes_results(self, context):
        """The satellite's core claim: a publish landing *while the scan
        is running* (stalled on a segment probe, strictly after the pin)
        leaves the in-flight reader's results untouched."""
        from repro.core.imprints import segments as segments_mod

        service = self._service(context)
        results, errors = [], []
        release = threading.Event()
        probed = threading.Event()

        def probe(_segment):
            probed.set()
            release.wait(timeout=10)

        def query():
            try:
                # A bbox that cuts through segments on y forces real
                # imprint probes (a full-extent box is answered from
                # zone maps alone, never reaching the probe hook).
                response = service.handle(
                    "query",
                    {
                        "table": "pts",
                        "bbox": [0.0, 0.0, 100.0, 50.0],
                        "columns": ["x"],
                    },
                )
                results.append(response.payload)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        segments_mod.probe_hook = probe
        try:
            thread = threading.Thread(target=query, daemon=True)
            thread.start()
            assert probed.wait(timeout=10), "scan never probed a segment"
            service.snapshots.publish_db(make_db(context, 2.0, 2))
            release.set()
            thread.join(timeout=10)
        finally:
            segments_mod.probe_hook = None
        assert not errors, errors
        payload = results[0]
        assert payload["meta"]["generation"] == 1
        assert payload["meta"]["n_results"] > 0
        assert all(row[0] == 1.0 for row in payload["rows"])

    def test_crash_points_fire_in_order(self, context):
        service = self._service(context)
        events = []
        with faults.record_crash_points(events):
            service.handle("query", {"table": "pts", "bbox": BBOX})
        serve_events = [e for e in events if e.startswith("serve.")]
        assert serve_events == SERVE_POINTS

    @pytest.mark.parametrize("point", SERVE_POINTS)
    def test_crash_at_each_point_releases_the_slot(self, context, point):
        """An injected kill anywhere in the request path must propagate
        (crash transparency) AND leave the daemon able to serve the next
        request — no leaked admission slot, no leaked pin."""
        service = self._service(context)
        with faults.crash_at(point):
            with pytest.raises(faults.InjectedCrash):
                service.handle("query", {"table": "pts", "bbox": BBOX})
        assert service.admission.inflight == 0
        assert service.snapshots.current().pins == 0
        response = service.handle(
            "query", {"table": "pts", "bbox": BBOX, "columns": ["x"]}
        )
        assert response.payload["meta"]["n_results"] == 2000

    def test_sql_sessions_do_not_cross_generations(self, context):
        """A pooled session built on gen 1 must not serve gen 2 (its
        relations snapshot gen 1's columns)."""
        service = self._service(context)
        first = service.handle("sql", {"sql": "SELECT AVG(x) FROM pts"})
        assert first.payload["rows"][0][0] == pytest.approx(1.0)
        assert service.sessions.built == 1
        service.snapshots.publish_db(make_db(context, 2.0, 2))
        second = service.handle("sql", {"sql": "SELECT AVG(x) FROM pts"})
        assert second.payload["rows"][0][0] == pytest.approx(2.0)
        assert service.sessions.built == 2  # pool miss: new generation
        # Same generation again: the pooled session is reused.
        third = service.handle("sql", {"sql": "SELECT AVG(x) FROM pts"})
        assert third.payload["rows"][0][0] == pytest.approx(2.0)
        assert service.sessions.built == 2
