"""Tests for SQL join strategies (hash equi-join + nested spatial loop)."""

import numpy as np
import pytest

from repro.engine.table import Table
from repro.sql.executor import Session


@pytest.fixture()
def session():
    roads = Table("roads", [("road_id", "int64"), ("class", "int64")])
    roads.append_columns({"road_id": [1, 2, 3, 4], "class": [1, 1, 2, 3]})

    counts = Table("counts", [("road_id", "int64"), ("vehicles", "int64")])
    counts.append_columns(
        {
            "road_id": [1, 1, 2, 3, 9],
            "vehicles": [100, 150, 80, 40, 999],
        }
    )
    session = Session()
    session.register_table(roads, point_columns=None)
    session.register_table(counts, point_columns=None)
    return session


class TestHashEquiJoin:
    def test_basic_join(self, session):
        result = session.execute(
            "SELECT r.road_id, c.vehicles FROM roads r, counts c "
            "WHERE r.road_id = c.road_id ORDER BY c.vehicles"
        )
        assert sorted(result.rows) == [(1, 100), (1, 150), (2, 80), (3, 40)]

    def test_join_on_syntax(self, session):
        result = session.execute(
            "SELECT count(*) FROM roads r JOIN counts c ON r.road_id = c.road_id"
        )
        assert result.scalar() == 4

    def test_join_with_single_table_filters(self, session):
        result = session.execute(
            "SELECT r.road_id, c.vehicles FROM roads r, counts c "
            "WHERE r.road_id = c.road_id AND r.class = 1 AND c.vehicles > 90"
        )
        assert sorted(result.rows) == [(1, 100), (1, 150)]

    def test_join_with_cross_table_residual(self, session):
        result = session.execute(
            "SELECT count(*) FROM roads r, counts c "
            "WHERE r.road_id = c.road_id AND c.vehicles > r.class * 50"
        )
        # pairs: (1,100):100>50 ok, (1,150) ok, (2,80):80>50 ok, (3,40):40>100 no
        assert result.scalar() == 3

    def test_join_aggregate(self, session):
        result = session.execute(
            "SELECT r.class, sum(c.vehicles) FROM roads r, counts c "
            "WHERE r.road_id = c.road_id GROUP BY r.class ORDER BY 1"
        )
        assert result.rows == [(1, 330), (2, 40)]

    def test_unmatched_rows_excluded(self, session):
        result = session.execute(
            "SELECT count(*) FROM roads r, counts c WHERE r.road_id = c.road_id "
            "AND c.road_id = 9"
        )
        assert result.scalar() == 0

    def test_unqualified_ambiguous_key(self, session):
        # road_id exists in both tables -> bare ref is ambiguous, but the
        # equality between two qualified refs still hash-joins.
        result = session.execute(
            "SELECT count(*) FROM roads, counts "
            "WHERE roads.road_id = counts.road_id"
        )
        assert result.scalar() == 4

    def test_self_equality_not_a_join(self, session):
        # a.col = a.col within one table must not be treated as a join key.
        result = session.execute(
            "SELECT count(*) FROM roads r, counts c "
            "WHERE r.road_id = r.road_id AND c.road_id = 1"
        )
        assert result.scalar() == 4 * 2  # cross product of 4 roads x 2 rows


class TestMixedJoin:
    def test_hash_join_matches_nested_loop(self):
        """The hash path and the generic path must agree."""
        rng = np.random.default_rng(8)
        a = Table("a", [("k", "int64"), ("v", "int64")])
        a.append_columns(
            {
                "k": rng.integers(0, 20, 200),
                "v": rng.integers(0, 100, 200),
            }
        )
        b = Table("b", [("k", "int64"), ("w", "int64")])
        b.append_columns(
            {
                "k": rng.integers(0, 20, 150),
                "w": rng.integers(0, 100, 150),
            }
        )
        session = Session()
        session.register_table(a, point_columns=None)
        session.register_table(b, point_columns=None)
        got = session.execute(
            "SELECT count(*) FROM a, b WHERE a.k = b.k"
        ).scalar()
        ak = a.column("k").values
        bk = b.column("k").values
        want = sum(int((bk == k).sum()) for k in ak)
        assert got == want
