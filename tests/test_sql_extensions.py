"""Tests for SQL extensions: DISTINCT, HAVING."""

import numpy as np
import pytest

from repro.engine.table import Table
from repro.sql.executor import Session
from repro.sql.lexer import SqlSyntaxError
from repro.sql.parser import parse


@pytest.fixture()
def session():
    t = Table("obs", [("city", "int32"), ("kind", "int32"), ("v", "float64")])
    t.append_columns(
        {
            "city": [1, 1, 1, 2, 2, 3],
            "kind": [10, 10, 20, 10, 20, 20],
            "v": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        }
    )
    session = Session()
    session.register_table(t, point_columns=None)
    return session


class TestDistinct:
    def test_distinct_single_column(self, session):
        result = session.execute("SELECT DISTINCT city FROM obs ORDER BY city")
        assert [row[0] for row in result.rows] == [1, 2, 3]

    def test_distinct_pairs(self, session):
        result = session.execute("SELECT DISTINCT city, kind FROM obs")
        assert len(result) == 5  # (1,10) appears twice

    def test_distinct_parses(self):
        assert parse("SELECT DISTINCT a FROM t").distinct
        assert not parse("SELECT a FROM t").distinct

    def test_distinct_with_limit(self, session):
        result = session.execute(
            "SELECT DISTINCT city FROM obs ORDER BY city LIMIT 2"
        )
        assert [row[0] for row in result.rows] == [1, 2]


class TestHaving:
    def test_having_filters_groups(self, session):
        result = session.execute(
            "SELECT city, count(*) FROM obs GROUP BY city HAVING count(*) > 1 "
            "ORDER BY city"
        )
        assert [(row[0], row[1]) for row in result.rows] == [(1, 3), (2, 2)]

    def test_having_on_aggregate_expression(self, session):
        result = session.execute(
            "SELECT city, avg(v) FROM obs GROUP BY city HAVING avg(v) >= 4"
        )
        cities = sorted(row[0] for row in result.rows)
        assert cities == [2, 3]

    def test_having_with_and(self, session):
        result = session.execute(
            "SELECT city, count(*) FROM obs GROUP BY city "
            "HAVING count(*) > 1 AND max(v) > 3"
        )
        assert [row[0] for row in result.rows] == [2]

    def test_having_without_group_by_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT count(*) FROM t HAVING count(*) > 1")

    def test_having_all_groups_filtered(self, session):
        result = session.execute(
            "SELECT city, count(*) FROM obs GROUP BY city HAVING count(*) > 99"
        )
        assert len(result) == 0
