"""Property tests: batched cell classification == scalar classify_box."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gis import batch
from repro.gis.envelope import Box
from repro.gis.geometry import LineString, MultiPolygon, Point, Polygon
from repro.gis.predicates import CellRelation, classify_box

_REL_MAP = {
    CellRelation.OUTSIDE: batch.OUTSIDE,
    CellRelation.INSIDE: batch.INSIDE,
    CellRelation.BOUNDARY: batch.BOUNDARY,
}

DONUT = Polygon(
    [(0, 0), (10, 0), (10, 10), (0, 10)],
    holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
)


def _grid_boxes(x0, y0, cell, nx, ny):
    xs, ys = np.meshgrid(np.arange(nx), np.arange(ny))
    xmin = x0 + xs.ravel() * cell
    ymin = y0 + ys.ravel() * cell
    return (xmin, ymin, xmin + cell, ymin + cell)


def _scalar_reference(boxes, geom, predicate, distance):
    xmin, ymin, xmax, ymax = boxes
    out = np.empty(xmin.shape[0], dtype=np.int8)
    for i in range(xmin.shape[0]):
        rel = classify_box(
            Box(xmin[i], ymin[i], xmax[i], ymax[i]), geom, predicate, distance
        )
        out[i] = _REL_MAP[rel]
    return out


class TestAgainstScalar:
    @pytest.mark.parametrize(
        "geom,predicate,distance",
        [
            (Polygon([(2, 2), (8, 3), (7, 8), (3, 7)]), "contains", 0.0),
            (DONUT, "contains", 0.0),
            (Box(2, 2, 7, 7), "contains", 0.0),
            (
                MultiPolygon(
                    [
                        Polygon([(0, 0), (3, 0), (3, 3), (0, 3)]),
                        Polygon([(6, 6), (9, 6), (9, 9), (6, 9)]),
                    ]
                ),
                "contains",
                0.0,
            ),
            (LineString([(0, 0), (10, 5)]), "dwithin", 2.0),
            (Point(5, 5), "dwithin", 3.0),
            (Box(4, 4, 6, 6), "dwithin", 1.5),
            (DONUT, "dwithin", 1.0),
        ],
    )
    def test_grid_matches_scalar(self, geom, predicate, distance):
        boxes = _grid_boxes(-1.0, -1.0, 1.0, 13, 13)
        got = batch.classify_boxes(boxes, geom, predicate, distance)
        want = _scalar_reference(boxes, geom, predicate, distance)
        # INSIDE/OUTSIDE must agree exactly; a batched BOUNDARY where the
        # scalar says INSIDE/OUTSIDE (or vice versa) would be a bug too —
        # the kernels share their decision procedure.
        np.testing.assert_array_equal(got, want)

    def test_segment_box_intersection_touching(self):
        boxes = (
            np.array([0.0]),
            np.array([0.0]),
            np.array([1.0]),
            np.array([1.0]),
        )
        # Touching a corner counts.
        assert batch._segment_intersects_boxes(*boxes, 1.0, 1.0, 2.0, 2.0)[0]
        # Fully outside does not.
        assert not batch._segment_intersects_boxes(*boxes, 2.0, 2.0, 3.0, 2.0)[0]
        # Passing through does.
        assert batch._segment_intersects_boxes(*boxes, -1.0, 0.5, 2.0, 0.5)[0]
        # Parallel to an edge but outside the slab does not.
        assert not batch._segment_intersects_boxes(*boxes, -1.0, 2.0, 2.0, 2.0)[0]

    def test_unknown_predicate(self):
        boxes = _grid_boxes(0, 0, 1.0, 2, 2)
        with pytest.raises(ValueError):
            batch.classify_boxes(boxes, DONUT, "overlaps")

    def test_containment_needs_areal(self):
        boxes = _grid_boxes(0, 0, 1.0, 2, 2)
        with pytest.raises(TypeError):
            batch.classify_boxes(boxes, LineString([(0, 0), (1, 1)]), "contains")


@st.composite
def star_polygon(draw):
    n = draw(st.integers(3, 14))
    cx = draw(st.floats(2, 8))
    cy = draw(st.floats(2, 8))
    angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
    radii = np.array([draw(st.floats(0.5, 4.5)) for _ in range(n)])
    return Polygon(
        np.column_stack([cx + radii * np.cos(angles), cy + radii * np.sin(angles)])
    )


@settings(max_examples=40, deadline=None)
@given(
    poly=star_polygon(),
    x0=st.floats(-2, 2),
    y0=st.floats(-2, 2),
    cell=st.floats(0.3, 3.0),
)
def test_batched_polygon_classification_matches_scalar(poly, x0, y0, cell):
    boxes = _grid_boxes(x0, y0, cell, 7, 7)
    got = batch.classify_boxes(boxes, poly)
    want = _scalar_reference(boxes, poly, "contains", 0.0)
    np.testing.assert_array_equal(got, want)


@settings(max_examples=30, deadline=None)
@given(
    x0=st.floats(-2, 2),
    y0=st.floats(-2, 2),
    cell=st.floats(0.3, 2.0),
    distance=st.floats(0.1, 5.0),
)
def test_batched_dwithin_safe(x0, y0, cell, distance):
    """Batched dwithin INSIDE/OUTSIDE decisions must never contradict the
    exact point predicate (BOUNDARY is always safe)."""
    from repro.gis.predicates import points_satisfy

    line = LineString([(1, 1), (9, 3), (4, 9)])
    boxes = _grid_boxes(x0, y0, cell, 7, 7)
    relations = batch.classify_boxes(boxes, line, "dwithin", distance)
    rng = np.random.default_rng(0)
    xmin, ymin, xmax, ymax = boxes
    for i in range(xmin.shape[0]):
        if relations[i] == batch.BOUNDARY:
            continue
        px = rng.uniform(xmin[i], xmax[i], 8)
        py = rng.uniform(ymin[i], ymax[i], 8)
        mask = points_satisfy(px, py, line, "dwithin", distance)
        if relations[i] == batch.INSIDE:
            assert mask.all()
        else:
            assert not mask.any()
