"""The slow-query log: thresholds, JSONL records, span capture."""

import json

import numpy as np
import pytest

from repro import Box, PointCloudDB
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import (
    SLOW_QUERY_ENV,
    SLOW_QUERY_LOG_ENV,
    SlowQueryLog,
    format_record,
    path_from_env,
    read_records,
    threshold_from_env,
)
from repro.obs.trace import Tracer


@pytest.fixture
def log(tmp_path):
    """A threshold-0 log (records everything) with private singletons."""
    return SlowQueryLog(
        0.0,
        tmp_path / "slow.jsonl",
        tracer=Tracer(enabled=False),
        registry=MetricsRegistry(),
    )


class TestEnv:
    def test_unset_means_disarmed(self, monkeypatch):
        monkeypatch.delenv(SLOW_QUERY_ENV, raising=False)
        assert threshold_from_env() is None

    def test_zero_is_a_valid_threshold(self, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "0")
        assert threshold_from_env() == 0.0

    def test_garbage_is_ignored(self, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "fast")
        assert threshold_from_env() is None

    def test_log_path_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SLOW_QUERY_LOG_ENV, str(tmp_path / "q.jsonl"))
        assert path_from_env() == str(tmp_path / "q.jsonl")
        monkeypatch.delenv(SLOW_QUERY_LOG_ENV)
        assert path_from_env() is None

    def test_negative_threshold_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SlowQueryLog(-1.0, tmp_path / "slow.jsonl")


class TestObserve:
    def test_slow_query_appends_exactly_one_record(self, log):
        with log.observe("sql", sql="SELECT 1") as obs:
            obs.set(rows=1)
        records = read_records(log.path)
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "sql"
        assert record["sql"] == "SELECT 1"
        assert record["rows"] == 1
        assert record["seconds"] >= 0.0
        assert record["threshold_s"] == 0.0
        assert "error" not in record
        assert log.registry.counter("slowlog.records").value == 1

    def test_fast_query_writes_nothing(self, tmp_path):
        log = SlowQueryLog(
            3600.0,
            tmp_path / "slow.jsonl",
            tracer=Tracer(enabled=False),
            registry=MetricsRegistry(),
        )
        with log.observe("sql", sql="SELECT 1"):
            pass
        assert not log.path.exists()

    def test_record_embeds_span_tree(self, log):
        with log.observe("spatial", table="pts"):
            with log.tracer.span("query.spatial"):
                with log.tracer.span("imprints.probe"):
                    pass
        (record,) = read_records(log.path)
        names = {span["name"] for span in record["spans"]}
        assert names == {"query.spatial", "imprints.probe"}
        # The tree structure survives serialisation.
        by_name = {span["name"]: span for span in record["spans"]}
        assert (
            by_name["imprints.probe"]["parent_id"]
            == by_name["query.spatial"]["span_id"]
        )

    def test_capture_restores_tracer_state(self, log):
        assert not log.tracer.enabled
        with log.observe("sql", sql="SELECT 1"):
            assert log.tracer.enabled
        assert not log.tracer.enabled

    def test_raising_query_still_logged_with_error(self, log):
        with pytest.raises(RuntimeError):
            with log.observe("sql", sql="SELECT boom"):
                raise RuntimeError("boom")
        (record,) = read_records(log.path)
        assert record["error"] == "RuntimeError"

    def test_records_accumulate_as_jsonl(self, log):
        for i in range(3):
            with log.observe("sql", sql=f"SELECT {i}"):
                pass
        records = read_records(log.path)
        assert [r["sql"] for r in records] == [f"SELECT {i}" for i in range(3)]


class TestReadRecords:
    def test_torn_final_line_is_skipped(self, log):
        with log.observe("sql", sql="SELECT 1"):
            pass
        with open(log.path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "sql", "secon')  # crash mid-append
        records = read_records(log.path)
        assert len(records) == 1

    def test_blank_and_non_dict_lines_are_skipped(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        path.write_text('\n{"kind": "sql"}\n\n[1, 2]\n"str"\n')
        assert read_records(path) == [{"kind": "sql"}]


class TestFormatRecord:
    def test_header_and_span_tree(self, log):
        with log.observe("sql", sql="SELECT count(*) FROM pts"):
            with log.tracer.span("sql.query"):
                pass
        (record,) = read_records(log.path)
        text = format_record(record)
        lines = text.splitlines()
        assert "sql took" in lines[0]
        assert "SELECT count(*) FROM pts" in lines[0]
        assert lines[1].startswith("sql.query")

    def test_tolerates_minimal_record(self):
        assert "? took 0.0 ms" in format_record({})


class TestPointCloudDBIntegration:
    @pytest.fixture
    def db(self, tmp_path):
        db = PointCloudDB(
            slow_query_s=0.0, slow_query_log=tmp_path / "slow.jsonl"
        )
        db.create_pointcloud("pts")
        rng = np.random.default_rng(7)
        db.load_points(
            "pts",
            {
                "x": rng.uniform(0, 100, 2000),
                "y": rng.uniform(0, 100, 2000),
                "z": rng.uniform(0, 10, 2000),
            },
        )
        return db

    def test_spatial_select_logs_one_record(self, db):
        result = db.spatial_select("pts", Box(10, 10, 60, 60))
        (record,) = read_records(db.slow_log.path)
        assert record["kind"] == "spatial"
        assert record["table"] == "pts"
        assert record["bbox"] == [10.0, 10.0, 60.0, 60.0]
        assert record["rows"] == len(result)
        assert record["resources"]["cpu_seconds"] >= 0.0
        assert {"filter_seconds", "n_segments_probed"} <= set(record["stats"])
        assert any(s["name"].startswith("query.") for s in record["spans"])

    def test_records_carry_query_identity_and_scan_bytes(self, db):
        result = db.spatial_select("pts", Box(10, 10, 60, 60))
        (record,) = read_records(db.slow_log.path)
        assert record["query_id"] == result.stats.query_id
        assert record["query_id"].startswith("q")
        # This db has no packed columns, so nothing was scanned encoded;
        # probing boundary segments materializes their values.
        assert record["encoded_bytes"] == 0
        assert record["materialized_bytes"] > 0
        assert record["resources"]["materialized_bytes"] > 0

    def test_sql_record_carries_query_identity(self, db):
        db.sql("SELECT avg(z) FROM pts WHERE x < 50")
        records = [
            r for r in read_records(db.slow_log.path) if r["kind"] == "sql"
        ]
        record = records[0]
        assert record["query_id"].startswith("q")
        assert record["encoded_bytes"] >= 0
        assert record["materialized_bytes"] >= 0

    def test_sql_logs_one_record(self, db):
        db.sql("SELECT avg(z) FROM pts WHERE x < 50")
        records = [
            r for r in read_records(db.slow_log.path) if r["kind"] == "sql"
        ]
        assert len(records) == 1
        record = records[0]
        assert record["sql"] == "SELECT avg(z) FROM pts WHERE x < 50"
        assert record["rows"] == 1
        assert record["resources"]["rows_touched"] > 0

    def test_disarmed_db_has_no_slow_log(self, monkeypatch):
        monkeypatch.delenv(SLOW_QUERY_ENV, raising=False)
        assert PointCloudDB().slow_log is None

    def test_env_arms_and_places_log(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SLOW_QUERY_ENV, "0")
        monkeypatch.setenv(SLOW_QUERY_LOG_ENV, str(tmp_path / "env.jsonl"))
        db = PointCloudDB()
        assert db.slow_log is not None
        assert db.slow_log.threshold_s == 0.0
        assert db.slow_log.path == tmp_path / "env.jsonl"
