"""The span tracer: nesting, thread-safety, exporters, tree rendering."""

import json
import threading

import pytest

from repro.engine import parallel
from repro.obs.trace import (
    NOOP_SPAN,
    Tracer,
    format_tree,
    from_json,
    get_tracer,
    maybe_span,
    to_chrome,
    to_json,
    traced,
)


@pytest.fixture
def tracer():
    """The global tracer, enabled for the test and restored after."""
    t = get_tracer()
    was_enabled = t.enabled
    t.enable()
    yield t
    t.clear()
    if not was_enabled:
        t.disable()


class TestNesting:
    def test_nested_spans_link_parent_and_trace(self, tracer):
        with tracer.capture() as spans:
            with tracer.span("outer") as outer:
                with tracer.span("middle") as middle:
                    with tracer.span("inner") as inner:
                        pass

        assert [s.name for s in spans] == ["inner", "middle", "outer"]
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert outer.parent_id is None
        assert {s.trace_id for s in spans} == {outer.trace_id}

    def test_sibling_spans_share_parent(self, tracer):
        with tracer.capture() as spans:
            with tracer.span("root") as root:
                with tracer.span("first"):
                    pass
                with tracer.span("second"):
                    pass
        children = [s for s in spans if s.name != "root"]
        assert all(s.parent_id == root.span_id for s in children)

    def test_separate_roots_get_separate_traces(self, tracer):
        with tracer.capture() as spans:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = spans
        assert a.trace_id != b.trace_id

    def test_attributes_and_set(self, tracer):
        with tracer.capture() as spans:
            with tracer.span("op", table="points") as span:
                span.set(rows_out=42)
        assert spans[0].attributes == {"table": "points", "rows_out": 42}

    def test_exception_marks_span(self, tracer):
        with tracer.capture() as spans:
            with pytest.raises(RuntimeError):
                with tracer.span("boom"):
                    raise RuntimeError("x")
        assert spans[0].attributes["error"] == "RuntimeError"

    def test_span_times_even_when_disabled(self):
        t = Tracer(enabled=False)
        with t.span("untimed?") as span:
            pass
        assert span.seconds >= 0.0
        assert span.span_id == 0  # never recorded

    def test_maybe_span_disabled_is_shared_noop(self):
        t = get_tracer()
        was_enabled = t.enabled
        t.disable()
        try:
            span = maybe_span("anything", key="value")
            assert span is NOOP_SPAN
            with span as s:
                s.set(rows=1)
        finally:
            if was_enabled:
                t.enable()

    def test_traced_decorator(self, tracer):
        @traced("decorated.op")
        def work(x):
            return x * 2

        with tracer.capture() as spans:
            assert work(21) == 42
        assert spans[0].name == "decorated.op"


class TestThreadSafety:
    def test_morsel_pool_spans_parent_to_caller(self, tracer):
        with tracer.capture() as spans:
            with tracer.span("driver") as driver:
                results = parallel.run_tasks(
                    lambda i: i * i, list(range(16)), threads=4
                )
        assert results == [i * i for i in range(16)]
        tasks = [s for s in spans if s.name == "parallel.task"]
        assert len(tasks) == 16
        assert all(s.parent_id == driver.span_id for s in tasks)
        assert all(s.trace_id == driver.trace_id for s in tasks)
        assert sorted(s.attributes["index"] for s in tasks) == list(range(16))

    def test_concurrent_spans_do_not_corrupt_buffer(self, tracer):
        n_threads, per_thread = 4, 50

        def spin():
            for i in range(per_thread):
                with tracer.span("worker.op") as span:
                    span.set(i=i)

        with tracer.capture() as spans:
            threads = [threading.Thread(target=spin) for _ in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        ours = [s for s in spans if s.name == "worker.op"]
        assert len(ours) == n_threads * per_thread
        assert len({s.span_id for s in ours}) == len(ours)

    def test_capture_restores_enabled_state(self):
        t = get_tracer()
        was_enabled = t.enabled
        t.disable()
        try:
            with t.capture() as spans:
                assert t.enabled
                with t.span("inside"):
                    pass
            assert not t.enabled
            assert [s.name for s in spans] == ["inside"]
        finally:
            if was_enabled:
                t.enable()


class TestRingBuffer:
    def test_ring_buffer_drops_oldest(self):
        t = Tracer(max_spans=8, enabled=True)
        for i in range(20):
            with t.span(f"s{i}"):
                pass
        names = [s.name for s in t.spans()]
        assert len(names) == 8
        assert names == [f"s{i}" for i in range(12, 20)]

    def test_drops_increment_counter(self):
        from repro.obs.metrics import get_registry

        counter = get_registry().counter("trace.spans_dropped")
        before = counter.value
        t = Tracer(max_spans=4, enabled=True)
        for i in range(10):
            with t.span(f"s{i}"):
                pass
        assert counter.value - before == 6  # 10 finished, buffer holds 4

    def test_traces_group_by_trace_id(self):
        t = Tracer(enabled=True)
        for _ in range(3):
            with t.span("root"):
                with t.span("child"):
                    pass
        groups = t.traces()
        assert len(groups) == 3
        assert all(len(g) == 2 for g in groups)

    def test_last_traces(self):
        t = Tracer(enabled=True)
        for i in range(5):
            with t.span(f"q{i}"):
                pass
        assert [s.name for s in t.last_traces(2)] == ["q3", "q4"]
        assert t.last_traces(0) == []


class TestExporters:
    def _sample_spans(self, tracer):
        with tracer.capture() as spans:
            with tracer.span("parent", table="points") as span:
                span.set(rows_out=7)
                with tracer.span("child"):
                    pass
        return spans

    def test_json_round_trip(self, tracer):
        spans = self._sample_spans(tracer)
        rebuilt = from_json(to_json(spans))
        assert len(rebuilt) == len(spans)
        for orig, copy in zip(spans, rebuilt):
            assert copy.name == orig.name
            assert copy.span_id == orig.span_id
            assert copy.parent_id == orig.parent_id
            assert copy.trace_id == orig.trace_id
            assert copy.attributes == {
                str(k): v for k, v in orig.attributes.items()
            }
            assert copy.seconds == pytest.approx(orig.seconds)

    def test_chrome_schema(self, tracer):
        spans = self._sample_spans(tracer)
        payload = json.loads(to_chrome(spans))
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        events = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        assert len(events) == len(spans)
        assert metadata  # process/thread names lead the event list
        for event in events:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(
                event
            )
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
        by_name = {e["name"]: e for e in events}
        assert by_name["parent"]["args"]["rows_out"] == 7
        # Microsecond timestamps: the child's interval nests in the parent's.
        parent, child = by_name["parent"], by_name["child"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1.0

    def test_chrome_sanitises_numpy_attributes(self, tracer):
        import numpy as np

        with tracer.capture() as spans:
            with tracer.span("np") as span:
                span.set(rows=np.int64(9), frac=np.float64(0.5))
        payload = json.loads(to_chrome(spans))
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert events[0]["args"] == {"rows": 9, "frac": 0.5}

    def test_chrome_metadata_names_process_and_threads(self, tracer):
        with tracer.capture() as spans:
            with tracer.span("driver"):
                parallel.run_tasks(lambda i: i, list(range(8)), threads=2)
        payload = json.loads(to_chrome(spans))
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        # Metadata events lead the list so viewers name lanes up front.
        assert events[: len(metadata)] == metadata
        process = [e for e in metadata if e["name"] == "process_name"]
        assert len(process) == 1
        assert process[0]["args"]["name"] == "repro-gis"
        thread_meta = [e for e in metadata if e["name"] == "thread_name"]
        span_tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert {e["tid"] for e in thread_meta} == span_tids
        assert all(e["args"]["name"] for e in thread_meta)


class TestFormatTree:
    def test_tree_indents_children_in_start_order(self, tracer):
        with tracer.capture() as spans:
            with tracer.span("root"):
                with tracer.span("first") as f:
                    f.set(rows_in=10)
                with tracer.span("second"):
                    pass
        text = format_tree(spans)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  first")
        assert lines[2].startswith("  second")
        assert "ms" in lines[0]
        assert "rows_in=10" in lines[1]

    def test_orphan_spans_render_as_roots(self, tracer):
        with tracer.capture() as spans:
            with tracer.span("root"):
                with tracer.span("kept"):
                    pass
        # Drop the root: the child's parent is now missing from the set.
        orphans = [s for s in spans if s.name == "kept"]
        text = format_tree(orphans)
        assert text.splitlines()[0].startswith("kept")


class TestEnvSwitch:
    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert Tracer().enabled

    def test_env_falsy_values_disable(self, monkeypatch):
        for value in ("", "0", "false", "no", "off"):
            monkeypatch.setenv("REPRO_TRACE", value)
            assert not Tracer().enabled

    def test_env_unset_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not Tracer().enabled
