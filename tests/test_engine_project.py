"""Unit tests for repro.engine.project (late materialisation)."""

import numpy as np
import pytest

from repro.engine.project import project, project_rows
from repro.engine.table import Table


@pytest.fixture
def table():
    t = Table("pts", [("x", "float64"), ("cls", "uint8")])
    t.append_columns(
        {"x": [1.0, 2.0, 3.0, 4.0], "cls": np.array([2, 6, 2, 9], dtype=np.uint8)}
    )
    return t


class TestProject:
    def test_selected_columns(self, table):
        out = project(table, np.array([2, 0]), columns=["x"])
        assert list(out) == ["x"]
        np.testing.assert_array_equal(out["x"], [3.0, 1.0])

    def test_all_columns(self, table):
        out = project(table, np.array([1]))
        assert set(out) == {"x", "cls"}

    def test_empty_candidates(self, table):
        out = project(table, np.empty(0, dtype=np.int64))
        assert out["x"].shape == (0,)

    def test_project_rows(self, table):
        rows = project_rows(table, np.array([3, 1]), columns=["x", "cls"])
        assert rows == [(4.0, 9), (2.0, 6)]

    def test_project_rows_schema_order(self, table):
        rows = project_rows(table, np.array([0]))
        assert rows == [(1.0, 2)]
