"""Tests for Douglas-Peucker simplification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gis.algorithms import (
    dist_points_to_linestring,
    simplify,
    simplify_coords,
)
from repro.gis.geometry import LineString, MultiLineString, Polygon


class TestSimplifyCoords:
    def test_collinear_collapses_to_endpoints(self):
        coords = np.column_stack([np.linspace(0, 10, 50), np.zeros(50)])
        out = simplify_coords(coords, tolerance=0.01)
        assert out.shape == (2, 2)
        np.testing.assert_array_equal(out[0], [0, 0])
        np.testing.assert_array_equal(out[-1], [10, 0])

    def test_corner_preserved(self):
        coords = np.array([(0, 0), (5, 0), (5, 5)], dtype=float)
        out = simplify_coords(coords, tolerance=0.5)
        assert out.shape == (3, 2)

    def test_small_bump_dropped_big_bump_kept(self):
        coords = np.array([(0, 0), (5, 0.1), (10, 0)], dtype=float)
        assert simplify_coords(coords, tolerance=0.5).shape == (2, 2)
        assert simplify_coords(coords, tolerance=0.05).shape == (3, 2)

    def test_two_points_unchanged(self):
        coords = np.array([(0, 0), (1, 1)], dtype=float)
        np.testing.assert_array_equal(simplify_coords(coords, 1.0), coords)

    def test_negative_tolerance(self):
        with pytest.raises(ValueError):
            simplify_coords(np.zeros((3, 2)), -1.0)


class TestSimplifyGeometries:
    def test_linestring(self):
        line = LineString(
            np.column_stack([np.linspace(0, 10, 30), np.zeros(30)])
        )
        slim = simplify(line, 0.01)
        assert isinstance(slim, LineString)
        assert slim.coords.shape[0] == 2

    def test_multilinestring(self):
        ml = MultiLineString(
            [
                np.column_stack([np.linspace(0, 1, 10), np.zeros(10)]),
                np.column_stack([np.zeros(10), np.linspace(0, 1, 10)]),
            ]
        )
        slim = simplify(ml, 0.01)
        assert all(line.coords.shape[0] == 2 for line in slim.lines)

    def test_polygon_ring_stays_valid(self):
        # A triangle with dense edges simplifies back to a triangle.
        t = np.linspace(0, 1, 15)[:-1]
        edges = []
        for (ax, ay), (bx, by) in [((0, 0), (10, 0)), ((10, 0), (5, 8)), ((5, 8), (0, 0))]:
            edges.append(np.column_stack([ax + (bx - ax) * t, ay + (by - ay) * t]))
        poly = Polygon(np.vstack(edges))
        slim = simplify(poly, 0.01)
        assert slim.shell.shape[0] == 4  # 3 vertices + closure
        assert slim.area == pytest.approx(poly.area, rel=0.01)

    def test_aggressive_tolerance_keeps_polygon_valid(self):
        poly = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        slim = simplify(poly, tolerance=100.0)
        assert slim.shell.shape[0] >= 4
        assert slim.area > 0

    def test_unsupported_type(self):
        from repro.gis.geometry import Point

        with pytest.raises(TypeError):
            simplify(Point(0, 0), 1.0)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    n=st.integers(3, 80),
    tolerance=st.floats(0.01, 5.0),
)
def test_error_bound_property(seed, n, tolerance):
    """Every dropped vertex lies within tolerance of the simplified line."""
    rng = np.random.default_rng(seed)
    coords = np.cumsum(rng.normal(0, 1, (n, 2)), axis=0)
    slim = simplify_coords(coords, tolerance)
    assert slim.shape[0] >= 2
    # Endpoints preserved.
    np.testing.assert_array_equal(slim[0], coords[0])
    np.testing.assert_array_equal(slim[-1], coords[-1])
    line = LineString(slim) if slim.shape[0] >= 2 else None
    d = dist_points_to_linestring(coords[:, 0], coords[:, 1], line)
    assert d.max() <= tolerance + 1e-9
