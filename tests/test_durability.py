"""Crash-safety suite: every registered crash point, checked end to end.

The contract under test (docs/durability.md):

* a simulated crash at *every* crash-point firing during save /
  append / imprint persistence leaves a store that ``Database.verify()``
  passes after recovery;
* an ingest killed at any point and resumed with ``resume=True``
  produces column files byte-identical to an uninterrupted run;
* checksum mismatches raise typed errors and count
  ``durability.checksum_failures``; corrupt imprints are quarantined
  (with a warning) and rebuilt lazily with identical query results;
* transient ``OSError``\\ s retry with backoff, typed corruption errors
  do not.
"""

import json

import numpy as np
import pytest

from repro.api import PointCloudDB
from repro.engine.catalog import CATALOG_FILE, Database
from repro.engine.durable import (
    InjectedCrash,
    KNOWN_CRASH_POINTS,
    with_retries,
)
from repro.engine.storage import StorageError, dump_array, load_array
from repro.las import binloader
from repro.las.binloader import LoadStats, load_files
from repro.las.header import LasFormatError
from repro.las.ingest import ResumableIngest, manifest_path
from repro.las.manifest import LoadManifest
from repro.las.writer import write_las
from tests import faults


def _points(n, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "x": rng.uniform(0, 100, n),
        "y": rng.uniform(0, 100, n),
        "z": rng.uniform(0, 10, n),
    }


# -- atomic writes and the torn-write harness --------------------------------


class TestAtomicWrites:
    def test_crash_before_rename_keeps_old_file(self, tmp_path):
        path = tmp_path / "v.col"
        dump_array(np.arange(5, dtype=np.int64), path)
        before = path.read_bytes()
        with faults.crash_at("durable.col.written"):
            with pytest.raises(InjectedCrash):
                dump_array(np.arange(50, dtype=np.int64), path)
        assert path.read_bytes() == before
        np.testing.assert_array_equal(load_array(path), np.arange(5))

    def test_torn_write_never_reaches_destination(self, tmp_path):
        path = tmp_path / "v.col"
        dump_array(np.arange(5, dtype=np.int64), path)
        before = path.read_bytes()
        with faults.torn_write(at_byte=10):
            with pytest.raises(InjectedCrash):
                dump_array(np.arange(500, dtype=np.int64), path)
        # The destination survives; only a temp file holds the torn prefix.
        assert path.read_bytes() == before
        wreckage = list(tmp_path.glob("v.col.tmp.*"))
        assert wreckage and wreckage[0].stat().st_size <= 10

    def test_transient_rename_failure_cleans_up(self, tmp_path):
        path = tmp_path / "v.col"
        dump_array(np.arange(5, dtype=np.int64), path)
        before = path.read_bytes()
        with faults.failing_replace(exc_factory=lambda: OSError("EIO")):
            with pytest.raises(OSError):
                dump_array(np.arange(9, dtype=np.int64), path)
        assert path.read_bytes() == before
        # A real (catchable) failure removes its temp file.
        assert not list(tmp_path.glob("v.col.tmp.*"))


# -- crash at every step of save + imprint persistence -----------------------


def _build_store(root):
    """A two-table store with one built imprint, fully persisted."""
    pc = PointCloudDB(directory=root)
    a = pc.db.create_table("alpha", [("x", "float64"), ("y", "int64")])
    a.append_columns({"x": np.linspace(0, 1, 64), "y": np.arange(64)})
    b = pc.db.create_table("beta", [("z", "float64")])
    b.append_columns({"z": np.linspace(5, 6, 32)})
    pc.manager.ensure(a, "x")
    pc.save()
    return pc


def _mutate_and_save(root):
    """The run the crash is injected into: grow both tables, re-save."""
    pc = PointCloudDB.load(root)
    a = pc.table("alpha")
    a.append_columns({"x": np.linspace(1, 2, 16), "y": np.arange(16)})
    pc.table("beta").append_columns({"z": np.linspace(6, 7, 8)})
    pc.manager.ensure(a, "x")
    pc.save()


class TestCrashEveryPointDuringSave:
    def test_recover_passes_verify_after_crash_at_every_step(self, tmp_path):
        # Rehearse once to enumerate every crash-point firing of the
        # mutate-and-save run, then inject a crash at each step.
        rehearsal = tmp_path / "rehearsal"
        _build_store(rehearsal)
        steps = faults.rehearse_and_enumerate(
            lambda: _mutate_and_save(rehearsal)
        )
        assert len(steps) > 20, "save path lost its instrumentation"

        for step, name in steps:
            root = tmp_path / f"crash_{step}"
            _build_store(root)
            with faults.crash_at_step(step):
                with pytest.raises(InjectedCrash):
                    _mutate_and_save(root)
            recovered = PointCloudDB.recover(root)
            report = recovered.verify()
            assert report["ok"], (
                f"verify failed after crash at step {step} ({name}): {report}"
            )
            # Each table holds either its old or its new committed rows.
            assert len(recovered.table("alpha")) in (64, 80), (step, name)
            assert len(recovered.table("beta")) in (32, 40), (step, name)

    def test_crash_points_cover_every_artifact_class(self, tmp_path):
        _build_store(tmp_path / "s")
        faults.crash_points_hit(lambda: _mutate_and_save(tmp_path / "s"))
        for expected in (
            "durable.col.written",
            "durable.schema.replaced",
            "durable.catalog.begin",
            "durable.imprint.written",
            "storage.table.column_saved",
            "catalog.table_saved",
        ):
            assert expected in KNOWN_CRASH_POINTS


# -- kill-and-resume bulk ingest ---------------------------------------------


@pytest.fixture(scope="module")
def tiles(tmp_path_factory):
    root = tmp_path_factory.mktemp("tiles")
    paths = []
    for i in range(4):
        path = root / f"tile_{i}.las"
        write_las(path, _points(120, seed=i))
        paths.append(path)
    return paths


def _ingest(root, paths, resume=False):
    job = ResumableIngest(root, table="points", checkpoint_every=2)
    return job.load(paths, resume=resume)


def _strip_generation(raw: bytes) -> bytes:
    """Drop the catalog-generation stamp from a metadata file.

    The generation counts *publishes*, so a crashed-and-resumed ingest
    legitimately lands one save ahead of a clean run; content identity
    is what resume guarantees.
    """
    meta = json.loads(raw)
    meta.pop("generation", None)
    return json.dumps(meta, indent=2).encode()


def _store_state(root):
    """The durable artifacts a resumed ingest must reproduce exactly."""
    table_dir = root / "points"
    state = {p.name: p.read_bytes() for p in sorted(table_dir.glob("*.col"))}
    state["schema.json"] = _strip_generation(
        (table_dir / "schema.json").read_bytes()
    )
    state[CATALOG_FILE] = _strip_generation((root / CATALOG_FILE).read_bytes())
    return state


class TestKillAndResumeIngest:
    def test_resume_after_crash_at_every_point_is_byte_identical(
        self, tmp_path, tiles
    ):
        baseline_root = tmp_path / "baseline"
        db, stats = _ingest(baseline_root, tiles)
        assert stats.n_files == 4 and len(db.table("points")) == 480
        baseline = _store_state(baseline_root)

        rehearsal = tmp_path / "rehearsal"
        steps = faults.rehearse_and_enumerate(
            lambda: _ingest(rehearsal, tiles), sample_every=13
        )
        names = {name for _step, name in steps}
        assert {"ingest.tile_pending", "ingest.tile_appended",
                "ingest.checkpointed"} <= names

        for step, name in steps:
            root = tmp_path / f"kill_{step}"
            with faults.crash_at_step(step):
                with pytest.raises(InjectedCrash):
                    _ingest(root, tiles)
            db, stats = _ingest(root, tiles, resume=True)
            assert _store_state(root) == baseline, (
                f"resumed store differs after crash at step {step} ({name})"
            )
            assert db.verify()["ok"], (step, name)

    def test_resume_skips_durable_tiles(self, tmp_path, tiles):
        root = tmp_path / "skip"
        _ingest(root, tiles)
        before = faults.counter_value("load.tiles_skipped")
        db, stats = _ingest(root, tiles, resume=True)
        assert stats.n_skipped == 4 and stats.n_files == 0
        assert faults.counter_value("load.tiles_skipped") == before + 4
        assert len(db.table("points")) == 480

    def test_journal_states_and_fingerprints(self, tmp_path, tiles):
        root = tmp_path / "journal"
        _ingest(root, tiles)
        manifest = LoadManifest.open(manifest_path(root, "points"), "points")
        assert sorted(manifest.states["indexed"]) == sorted(
            p.name for p in tiles
        )
        assert manifest.rows_committed == 480
        for entry in manifest.entries.values():
            assert entry.size > 0 and entry.mtime > 0

    def test_corrupt_journal_is_a_typed_error(self, tmp_path, tiles):
        root = tmp_path / "badjournal"
        _ingest(root, tiles)
        manifest_path(root, "points").write_text("{torn json")
        from repro.las.manifest import ManifestError

        with pytest.raises(ManifestError):
            _ingest(root, tiles, resume=True)


# -- checksums ----------------------------------------------------------------


class TestChecksums:
    def test_payload_flip_is_detected_and_counted(self, tmp_path):
        path = tmp_path / "v.col"
        dump_array(np.arange(32, dtype=np.int64), path)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        before = faults.counter_value("durability.checksum_failures")
        with pytest.raises(StorageError, match="checksum"):
            load_array(path)
        assert faults.counter_value("durability.checksum_failures") == before + 1

    def test_header_flip_is_detected(self, tmp_path):
        # The CRC covers the header too: corrupting the count field must
        # fail verification, not reinterpret the payload.
        path = tmp_path / "v.col"
        dump_array(np.arange(32, dtype=np.int64), path)
        raw = bytearray(path.read_bytes())
        raw[9] ^= 0x01  # inside the u64 count
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError):
            load_array(path)

    def test_load_reports_health_instead_of_dying(self, tmp_path):
        db = Database(directory=tmp_path)
        db.create_table("good", [("v", "int64")]).append_columns({"v": [1, 2]})
        db.create_table("bad", [("v", "int64")]).append_columns({"v": [3, 4]})
        db.save()
        raw = bytearray((tmp_path / "bad" / "v.col").read_bytes())
        raw[-1] ^= 0xFF
        (tmp_path / "bad" / "v.col").write_bytes(bytes(raw))

        loaded = Database.load(tmp_path)
        assert "good" in loaded and "bad" not in loaded
        assert loaded.health["good"]["ok"]
        assert not loaded.health["bad"]["ok"]
        assert loaded.health["bad"]["issues"]
        report = loaded.verify()
        assert not report["ok"] and not report["tables"]["bad"]["ok"]

    def test_torn_tail_recovers_to_committed_rows(self, tmp_path):
        db = Database(directory=tmp_path)
        db.create_table("t", [("a", "int64"), ("b", "int64")]).append_columns(
            {"a": np.arange(5), "b": np.arange(5)}
        )
        db.save()
        # Simulate a crash mid-save: one column one batch ahead.
        dump_array(np.arange(9, dtype=np.int64), tmp_path / "t" / "a.col")
        loaded = Database.load(tmp_path)
        assert len(loaded.table("t")) == 5
        assert loaded.health["t"]["ok"] and loaded.health["t"]["issues"]
        recovered = Database.recover(tmp_path)
        assert recovered.verify()["ok"]


# -- imprint quarantine -------------------------------------------------------


class TestImprintQuarantine:
    def _store_with_imprint(self, root):
        pc = PointCloudDB(directory=root)
        t = pc.db.create_table("pts", [("x", "float64")])
        rng = np.random.default_rng(7)
        t.append_columns({"x": rng.uniform(0, 100, 4096)})
        pc.manager.ensure(t, "x")
        pc.save()
        return pc

    def test_corrupt_imprint_quarantined_and_rebuilt(self, tmp_path):
        pc = self._store_with_imprint(tmp_path)
        expected = pc.manager.range_select(pc.table("pts"), "x", 20.0, 40.0)
        files = list((tmp_path / "_imprints").glob("*.imprint"))
        assert len(files) == 1
        raw = bytearray(files[0].read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        files[0].write_bytes(bytes(raw))

        before = faults.counter_value("durability.quarantines")
        with pytest.warns(RuntimeWarning, match="quarantined corrupt imprint"):
            reloaded = PointCloudDB.load(tmp_path)
        assert faults.counter_value("durability.quarantines") == before + 1
        assert reloaded.manager.quarantined
        assert not files[0].exists()
        quarantined = files[0].with_name(files[0].name + ".quarantined")
        assert quarantined.exists()  # degraded, never destroyed

        # First query rebuilds lazily with identical results.
        got = reloaded.manager.range_select(
            reloaded.table("pts"), "x", 20.0, 40.0
        )
        np.testing.assert_array_equal(np.sort(got), np.sort(expected))
        assert reloaded.verify()["ok"]

    def test_verify_flags_corrupt_imprint(self, tmp_path):
        pc = self._store_with_imprint(tmp_path)
        files = list((tmp_path / "_imprints").glob("*.imprint"))
        raw = bytearray(files[0].read_bytes())
        raw[-1] ^= 0xFF
        files[0].write_bytes(bytes(raw))
        report = pc.verify()
        assert not report["ok"] and report["imprints"]["issues"]


# -- the stale-catalog fix ----------------------------------------------------


class TestDroppedTableCatalog:
    def test_dropped_table_stays_dropped_after_reload(self, tmp_path):
        db = Database(directory=tmp_path)
        db.create_table("keep", [("v", "int64")]).append_columns({"v": [1]})
        db.create_table("drop_me", [("v", "int64")]).append_columns({"v": [2]})
        db.save()
        db.drop_table("drop_me")
        db.save()

        loaded = Database.load(tmp_path)
        assert loaded.table_names == ["keep"]
        # The directory lingers (save never deletes data) but the catalog
        # rules: neither load nor verify resurrects the dropped table.
        assert (tmp_path / "drop_me" / "schema.json").exists()
        report = loaded.verify()
        assert report["ok"] and "drop_me" not in report["tables"]

    def test_catalog_is_written_last(self, tmp_path):
        db = Database(directory=tmp_path)
        db.create_table("t", [("v", "int64")]).append_columns({"v": [1]})
        events = faults.crash_points_hit(db.save)
        assert events[-1] == "durable.catalog.replaced"
        catalog = json.loads((tmp_path / CATALOG_FILE).read_text())
        assert catalog["tables"] == ["t"]


# -- retry policy -------------------------------------------------------------


class TestRetries:
    def test_transient_oserror_retries_and_counts(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        before = faults.counter_value("durability.retries")
        assert with_retries(flaky, retries=3, backoff=0) == "ok"
        assert calls["n"] == 3
        assert faults.counter_value("durability.retries") == before + 2

    def test_typed_corruption_is_never_retried(self):
        calls = {"n": 0}

        def corrupt():
            calls["n"] += 1
            raise StorageError("bad bytes")

        with pytest.raises(StorageError):
            with_retries(
                corrupt, retries=5, backoff=0, no_retry=(StorageError,)
            )
        assert calls["n"] == 1

    def test_retry_budget_is_bounded(self):
        calls = {"n": 0}

        def always_down():
            calls["n"] += 1
            raise OSError("still down")

        with pytest.raises(OSError):
            with_retries(always_down, retries=2, backoff=0)
        assert calls["n"] == 3  # initial try + 2 retries

    def test_load_files_rolls_back_and_retries_tile(
        self, tmp_path, monkeypatch
    ):
        from repro.engine.table import Table

        table = Table("t", [("a", "int64")])
        calls = {"n": 0}

        def flaky_load(table, path, spool_dir=None):
            calls["n"] += 1
            if calls["n"] == 1:
                # Half-appended batch, then a transient failure.
                table.append_columns({"a": [1, 2, 3]})
                raise OSError("NFS hiccup")
            table.append_columns({"a": [10, 20]})
            return LoadStats(n_points=2, n_files=1)

        monkeypatch.setattr(binloader, "load_file", flaky_load)
        stats = load_files(table, [tmp_path / "fake.las"], retries=2, backoff=0)
        assert calls["n"] == 2
        assert stats.n_points == 2 and stats.n_rows_rolled_back == 3
        np.testing.assert_array_equal(
            np.asarray(table.column("a").values), [10, 20]
        )

    def test_load_files_does_not_retry_corrupt_tiles(
        self, tmp_path, monkeypatch
    ):
        from repro.engine.table import Table

        calls = {"n": 0}

        def corrupt_load(table, path, spool_dir=None):
            calls["n"] += 1
            raise LasFormatError("truncated tile")

        monkeypatch.setattr(binloader, "load_file", corrupt_load)
        with pytest.raises(LasFormatError):
            load_files(
                Table("t", [("a", "int64")]),
                [tmp_path / "fake.las"],
                retries=5,
                backoff=0,
            )
        assert calls["n"] == 1
