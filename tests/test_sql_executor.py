"""Integration tests for the SQL executor, incl. the imprints push-down."""

import numpy as np
import pytest

from repro.core.imprints import ImprintsManager
from repro.engine.table import Table
from repro.gis.geometry import LineString, Polygon
from repro.sql.executor import Session, SqlExecutionError


@pytest.fixture()
def session():
    rng = np.random.default_rng(0)
    n = 5000
    table = Table(
        "pts",
        [
            ("x", "float64"),
            ("y", "float64"),
            ("z", "float64"),
            ("classification", "uint8"),
            ("intensity", "uint16"),
        ],
    )
    table.append_columns(
        {
            "x": rng.uniform(0, 100, n),
            "y": rng.uniform(0, 100, n),
            "z": rng.normal(10, 5, n),
            "classification": rng.choice(
                np.array([2, 6, 9], dtype=np.uint8), n
            ),
            "intensity": rng.integers(0, 1000, n).astype(np.uint16),
        }
    )
    session = Session()
    session.register_table(table)

    zones = {
        "zone_id": np.array([1, 2]),
        "code": np.array([12210, 31000]),
        "geom": [
            Polygon([(10, 10), (30, 10), (30, 30), (10, 30)]),
            Polygon([(50, 50), (80, 50), (80, 90), (50, 90)]),
        ],
        "label": ["fast transit", "forest"],
    }
    session.register_columns("zones", zones)
    session._raw = table  # keep for reference computations in tests
    return session


class TestBasicSelect:
    def test_projection(self, session):
        result = session.execute("SELECT x, y FROM pts LIMIT 5")
        assert result.columns == ["x", "y"]
        assert len(result) == 5

    def test_star(self, session):
        result = session.execute("SELECT * FROM pts LIMIT 1")
        assert "pts.x" in result.columns
        assert len(result.columns) == 5

    def test_arithmetic_and_alias(self, session):
        result = session.execute("SELECT z * 2 AS double_z FROM pts LIMIT 3")
        assert result.columns == ["double_z"]
        zs = session._raw.column("z").values
        assert result.rows[0][0] == pytest.approx(zs[0] * 2)

    def test_where_comparison(self, session):
        result = session.execute("SELECT x FROM pts WHERE x < 10")
        xs = session._raw.column("x").values
        assert len(result) == int((xs < 10).sum())

    def test_where_in_and_between(self, session):
        result = session.execute(
            "SELECT x FROM pts WHERE classification IN (2, 9) "
            "AND x BETWEEN 40 AND 60"
        )
        xs = session._raw.column("x").values
        cls = session._raw.column("classification").values
        want = int((np.isin(cls, [2, 9]) & (xs >= 40) & (xs <= 60)).sum())
        assert len(result) == want

    def test_order_by_and_limit(self, session):
        result = session.execute("SELECT x FROM pts ORDER BY x DESC LIMIT 3")
        xs = np.sort(session._raw.column("x").values)[::-1][:3]
        got = [row[0] for row in result.rows]
        np.testing.assert_allclose(got, xs)

    def test_unknown_table(self, session):
        with pytest.raises(SqlExecutionError):
            session.execute("SELECT x FROM ghosts")

    def test_unknown_column(self, session):
        with pytest.raises(SqlExecutionError):
            session.execute("SELECT bogus FROM pts")


class TestAggregates:
    def test_count_star(self, session):
        assert session.execute("SELECT count(*) FROM pts").scalar() == 5000

    def test_avg(self, session):
        got = session.execute("SELECT avg(z) FROM pts").scalar()
        assert got == pytest.approx(session._raw.column("z").values.mean())

    def test_min_max_sum(self, session):
        result = session.execute("SELECT min(z), max(z), sum(z) FROM pts")
        zs = session._raw.column("z").values
        assert result.rows[0][0] == pytest.approx(zs.min())
        assert result.rows[0][1] == pytest.approx(zs.max())
        assert result.rows[0][2] == pytest.approx(zs.sum())

    def test_group_by(self, session):
        result = session.execute(
            "SELECT classification, count(*) FROM pts GROUP BY classification"
        )
        cls = session._raw.column("classification").values
        want = {int(c): int((cls == c).sum()) for c in np.unique(cls)}
        got = {int(row[0]): row[1] for row in result.rows}
        assert got == want

    def test_group_by_avg(self, session):
        result = session.execute(
            "SELECT classification, avg(z) FROM pts GROUP BY classification"
        )
        cls = session._raw.column("classification").values
        zs = session._raw.column("z").values
        for code, mean_z in result.rows:
            assert mean_z == pytest.approx(zs[cls == code].mean())

    def test_aggregate_on_empty_group(self, session):
        result = session.execute("SELECT avg(z) FROM pts WHERE x > 1000")
        assert result.rows[0][0] is None

    def test_aggregate_arithmetic(self, session):
        got = session.execute("SELECT max(z) - min(z) FROM pts").scalar()
        zs = session._raw.column("z").values
        assert got == pytest.approx(zs.max() - zs.min())


class TestSpatialPushdown:
    WKT = "POLYGON ((20 20, 60 25, 50 70, 25 60, 20 20))"

    def _reference(self, session, polygon=None):
        from repro.gis import loads
        from repro.gis.predicates import points_satisfy

        geom = loads(polygon or self.WKT)
        xs = session._raw.column("x").values
        ys = session._raw.column("y").values
        return points_satisfy(xs, ys, geom)

    def test_st_contains_matches_reference(self, session):
        result = session.execute(
            f"SELECT count(*) FROM pts WHERE "
            f"ST_Contains(ST_GeomFromText('{self.WKT}'), ST_Point(x, y))"
        )
        assert result.scalar() == int(self._reference(session).sum())

    def test_pushdown_builds_imprints(self, session):
        assert session.manager.builds == 0
        session.execute(
            f"SELECT count(*) FROM pts WHERE "
            f"ST_Contains(ST_GeomFromText('{self.WKT}'), ST_Point(x, y))"
        )
        # The cascade builds at least the first-axis imprint lazily.
        assert session.manager.builds >= 1

    def test_st_dwithin(self, session):
        from repro.gis.predicates import points_satisfy

        line = LineString([(0, 50), (100, 50)])
        result = session.execute(
            "SELECT count(*) FROM pts WHERE "
            "ST_DWithin(ST_GeomFromText('LINESTRING (0 50, 100 50)'),"
            " ST_Point(x, y), 5)"
        )
        xs = session._raw.column("x").values
        ys = session._raw.column("y").values
        want = int(points_satisfy(xs, ys, line, "dwithin", 5.0).sum())
        assert result.scalar() == want

    def test_spatial_plus_thematic(self, session):
        result = session.execute(
            f"SELECT count(*) FROM pts WHERE classification = 6 AND "
            f"ST_Contains(ST_GeomFromText('{self.WKT}'), ST_Point(x, y))"
        )
        mask = self._reference(session)
        cls = session._raw.column("classification").values
        assert result.scalar() == int((mask & (cls == 6)).sum())

    def test_envelope_function(self, session):
        result = session.execute(
            "SELECT count(*) FROM pts WHERE "
            "ST_Contains(ST_MakeEnvelope(10, 10, 20, 30), ST_Point(x, y))"
        )
        xs = session._raw.column("x").values
        ys = session._raw.column("y").values
        want = int(((xs >= 10) & (xs <= 20) & (ys >= 10) & (ys <= 30)).sum())
        assert result.scalar() == want


class TestJoins:
    def test_thematic_spatial_join(self, session):
        """The Scenario-2 signature query: points near fast-transit zones."""
        result = session.execute(
            "SELECT count(*) FROM pts p, zones u WHERE u.code = 12210 AND "
            "ST_Contains(u.geom, ST_Point(p.x, p.y))"
        )
        from repro.gis.predicates import points_satisfy

        xs = session._raw.column("x").values
        ys = session._raw.column("y").values
        zone = Polygon([(10, 10), (30, 10), (30, 30), (10, 30)])
        assert result.scalar() == int(points_satisfy(xs, ys, zone).sum())

    def test_avg_elevation_near_zone(self, session):
        result = session.execute(
            "SELECT u.label, avg(p.z) FROM pts p, zones u "
            "WHERE ST_Contains(u.geom, ST_Point(p.x, p.y)) "
            "GROUP BY u.label"
        )
        assert len(result) == 2
        labels = {row[0] for row in result.rows}
        assert labels == {"fast transit", "forest"}

    def test_join_on_syntax(self, session):
        result = session.execute(
            "SELECT count(*) FROM pts p JOIN zones u ON "
            "ST_Contains(u.geom, ST_Point(p.x, p.y)) WHERE u.zone_id = 2"
        )
        from repro.gis.predicates import points_satisfy

        xs = session._raw.column("x").values
        ys = session._raw.column("y").values
        zone = Polygon([(50, 50), (80, 50), (80, 90), (50, 90)])
        assert result.scalar() == int(points_satisfy(xs, ys, zone).sum())

    def test_dwithin_join_with_zone_distance(self, session):
        result = session.execute(
            "SELECT u.zone_id, count(*) FROM pts p, zones u "
            "WHERE ST_DWithin(u.geom, ST_Point(p.x, p.y), 5) "
            "GROUP BY u.zone_id"
        )
        assert len(result) == 2

    def test_duplicate_binding_rejected(self, session):
        with pytest.raises(SqlExecutionError):
            session.execute("SELECT 1 FROM pts, pts")


class TestStaleness:
    def test_session_sees_appends_to_registered_table(self):
        """A long-lived session must stay consistent when the backing
        table grows after registration (imprints rebuild + re-snapshot)."""
        rng = np.random.default_rng(3)
        table = Table("pts", [("x", "float64"), ("y", "float64")])
        table.append_columns(
            {"x": rng.uniform(0, 100, 1000), "y": rng.uniform(0, 100, 1000)}
        )
        session = Session()
        session.register_table(table)
        before = session.execute("SELECT count(*) FROM pts").scalar()
        # A spatial query builds the imprints over the 1000-row snapshot.
        session.execute(
            "SELECT count(*) FROM pts WHERE "
            "ST_Contains(ST_MakeEnvelope(0, 0, 50, 50), ST_Point(x, y))"
        )
        table.append_columns({"x": [25.0], "y": [25.0]})
        after = session.execute("SELECT count(*) FROM pts").scalar()
        assert after == before + 1
        got = session.execute(
            "SELECT count(*) FROM pts WHERE "
            "ST_Contains(ST_MakeEnvelope(24, 24, 26, 26), ST_Point(x, y))"
        ).scalar()
        xs = table.column("x").values
        ys = table.column("y").values
        want = int(
            ((xs >= 24) & (xs <= 26) & (ys >= 24) & (ys <= 26)).sum()
        )
        assert got == want


class TestObjectRelations:
    def test_string_filter(self, session):
        result = session.execute(
            "SELECT zone_id FROM zones WHERE label = 'forest'"
        )
        assert result.rows == [(2,)]

    def test_geometry_accessors(self, session):
        result = session.execute("SELECT ST_Area(geom) FROM zones ORDER BY 1")
        areas = sorted(row[0] for row in result.rows)
        assert areas == [400.0, 1200.0]
