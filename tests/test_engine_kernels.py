"""Tests for the packed predicate kernels (repro.engine.kernels).

The contract is bit-identical parity: every ``range_mask`` /
``theta_mask`` / ``take`` result must equal the numpy evaluation of the
same predicate over the decoded values, whatever the encoding scheme —
that is what lets the select operators swap the packed path in without
changing any answer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.compression import SCHEMES, encode, for_encode
from repro.engine.kernels import (
    ZONE_FULL,
    ZONE_PROBE,
    ZONE_SKIP,
    block_zone_verdict,
    materialize_bytes,
    range_mask,
    scan_bytes,
    take,
    theta_mask,
    zone_verdict,
)

SCHEME_NAMES = sorted(SCHEMES)
THETA_OPS = ["==", "!=", "<", "<=", ">", ">="]


def reference_mask(vals, lo, hi, lo_inc=True, hi_inc=True):
    mask = np.ones(vals.shape[0], dtype=bool)
    if lo is not None:
        mask &= (vals >= lo) if lo_inc else (vals > lo)
    if hi is not None:
        mask &= (vals <= hi) if hi_inc else (vals < hi)
    return mask


class TestZoneVerdict:
    def test_disjoint_below_skips(self):
        assert zone_verdict(0, 10, 20, 30) == ZONE_SKIP

    def test_disjoint_above_skips(self):
        assert zone_verdict(40, 50, 20, 30) == ZONE_SKIP

    def test_contained_zone_is_full(self):
        assert zone_verdict(22, 28, 20, 30) == ZONE_FULL

    def test_overlap_probes(self):
        assert zone_verdict(15, 25, 20, 30) == ZONE_PROBE

    def test_exclusive_boundary_skips(self):
        # zone max == lo: inclusive probes, exclusive skips.
        assert zone_verdict(10, 20, 20, 30) == ZONE_PROBE
        assert zone_verdict(10, 20, 20, 30, lo_inclusive=False) == ZONE_SKIP
        assert zone_verdict(30, 40, 20, 30, hi_inclusive=False) == ZONE_SKIP

    def test_open_ended_bounds(self):
        assert zone_verdict(5, 9, None, 10) == ZONE_FULL
        assert zone_verdict(5, 9, 6, None) == ZONE_PROBE

    def test_nan_zone_probes(self):
        assert zone_verdict(float("nan"), float("nan"), 0, 1) == ZONE_PROBE

    def test_empty_block_skips(self):
        block = encode("plain", np.empty(0, dtype=np.int64))
        assert block_zone_verdict(block, 0, 1) == ZONE_SKIP

    def test_zoneless_block_probes(self):
        block = encode("plain", np.array([5], dtype=np.int64))
        stripped = type(block)(
            block.scheme, block.dtype, block.count, block.payload
        )
        assert block_zone_verdict(stripped, 0, 1) == ZONE_PROBE


class TestRangeMaskParity:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    def test_matches_numpy_per_scheme(self, scheme):
        rng = np.random.default_rng(11)
        vals = rng.integers(0, 40, 500).astype(np.int64)
        block = encode(scheme, vals)
        for lo, hi in [(10, 30), (None, 20), (25, None), (39, 39), (41, 50)]:
            for lo_inc in (True, False):
                for hi_inc in (True, False):
                    mask, _ = range_mask(block, lo, hi, lo_inc, hi_inc)
                    np.testing.assert_array_equal(
                        mask, reference_mask(vals, lo, hi, lo_inc, hi_inc)
                    )

    def test_for_stays_packed(self):
        vals = np.arange(1000, dtype=np.int64) + 10**6
        _, packed = range_mask(for_encode(vals), 10**6 + 10, 10**6 + 20)
        assert packed

    def test_delta_zlib_falls_back(self):
        vals = np.linspace(0.0, 1.0, 100)
        _, packed = range_mask(encode("delta_zlib", vals), 0.2, 0.8)
        assert not packed

    def test_float_bounds_on_for(self):
        # Fractional bounds must round inward onto the integer domain.
        vals = np.arange(100, dtype=np.int64)
        mask, packed = range_mask(for_encode(vals), 9.5, 20.5)
        assert packed
        np.testing.assert_array_equal(mask, (vals >= 10) & (vals <= 20))

    def test_huge_magnitude_float_bound_decodes(self):
        # Beyond 2^53 a float compare on int64 is not exact; parity
        # demands the decode fallback there.
        vals = np.array([2**60, 2**60 + 1, 2**60 + 2], dtype=np.int64)
        bound = 0.5 + 2**60  # rounds to exactly 2**60 in float64
        mask, packed = range_mask(
            for_encode(vals), bound, None, lo_inclusive=False
        )
        assert not packed
        np.testing.assert_array_equal(mask, vals > bound)

    def test_negative_reference(self):
        vals = np.array([-50, -10, -30, -50, -1], dtype=np.int64)
        mask, packed = range_mask(for_encode(vals), -40, -5)
        assert packed
        np.testing.assert_array_equal(mask, (vals >= -40) & (vals <= -5))


class TestThetaMaskParity:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    @pytest.mark.parametrize("op", THETA_OPS)
    def test_matches_numpy(self, scheme, op):
        rng = np.random.default_rng(13)
        vals = rng.integers(0, 10, 300).astype(np.int64)
        block = encode(scheme, vals)
        fn = {
            "==": np.equal,
            "!=": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }[op]
        mask, _ = theta_mask(block, op, 4)
        np.testing.assert_array_equal(mask, fn(vals, 4))

    def test_unknown_op(self):
        from repro.engine.compression import CompressionError

        block = encode("plain", np.array([1], dtype=np.int64))
        with pytest.raises(CompressionError):
            theta_mask(block, "<>", 1)


class TestTake:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    def test_matches_fancy_indexing(self, scheme):
        rng = np.random.default_rng(17)
        vals = rng.integers(0, 6, 400).astype(np.int64)
        idx = np.array([0, 399, 7, 7, 200], dtype=np.int64)
        block = encode(scheme, vals)
        np.testing.assert_array_equal(take(block, idx), vals[idx])

    def test_empty_index(self):
        block = encode("for", np.arange(10, dtype=np.int64))
        assert take(block, np.empty(0, dtype=np.int64)).shape == (0,)


class TestByteAccounting:
    def test_scan_bytes_packed_vs_decoded(self):
        vals = np.arange(10_000, dtype=np.int64)
        block = for_encode(vals)
        assert scan_bytes(block, packed=True) == block.nbytes
        assert scan_bytes(block, packed=False) == block.plain_nbytes
        assert block.nbytes < block.plain_nbytes / 2

    def test_materialize_bytes(self):
        assert materialize_bytes(100, "int64") == 800
        assert materialize_bytes(0, "float32") == 0


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.integers(-(2**62), 2**62), min_size=1, max_size=150
    ),
    bounds=st.tuples(
        st.one_of(st.none(), st.integers(-(2**62), 2**62)),
        st.one_of(st.none(), st.integers(-(2**62), 2**62)),
    ),
    inclusive=st.tuples(st.booleans(), st.booleans()),
    scheme=st.sampled_from(SCHEME_NAMES),
)
def test_range_mask_parity_property(values, bounds, inclusive, scheme):
    vals = np.array(values, dtype=np.int64)
    lo, hi = bounds
    lo_inc, hi_inc = inclusive
    mask, _ = range_mask(encode(scheme, vals), lo, hi, lo_inc, hi_inc)
    np.testing.assert_array_equal(
        mask, reference_mask(vals, lo, hi, lo_inc, hi_inc)
    )
