"""The sampling profiler: stack aggregation, attribution, exports."""

import json
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.engine import parallel
from repro.engine.compressed import CompressedColumn
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import (
    DEFAULT_RATE_HZ,
    SPEEDSCOPE_SCHEMA,
    Profile,
    SamplingProfiler,
    StackAggregate,
    capture,
    get_profiler,
    maybe_profiler,
    reset_profiler,
)
from repro.obs.queries import QueryRegistry, get_queries


@pytest.fixture(autouse=True)
def _isolate_process_profiler():
    """No test leaves a process-wide sampler behind."""
    reset_profiler()
    yield
    reset_profiler()


@pytest.fixture
def busy_thread():
    """A background thread spinning in a recognisable function."""
    stop = threading.Event()

    def _burn_cpu():
        acc = 0
        while not stop.is_set():
            acc += sum(range(200))
        return acc

    thread = threading.Thread(target=_burn_cpu, daemon=True)
    thread.start()
    yield thread
    stop.set()
    thread.join(timeout=5.0)


def sample_until(profiler, predicate, attempts=2000):
    """Sweep until ``predicate(profile)`` holds (racy threads settle)."""
    for _ in range(attempts):
        profiler.sample_once()
        snapshot = profiler.profile()
        if predicate(snapshot):
            return snapshot
    return profiler.profile()


class TestStackAggregate:
    def test_add_folds_identical_stacks(self):
        agg = StackAggregate()
        agg.add(("a.f", "b.g"))
        agg.add(("a.f", "b.g"))
        agg.add(("a.f", "c.h"), count=3)
        assert agg.samples == 5
        assert agg.counts[("a.f", "b.g")] == 2
        assert agg.counts[("a.f", "c.h")] == 3

    def test_hot_frames_rank_by_leaf_self_time(self):
        agg = StackAggregate()
        agg.add(("a.f", "b.g"), count=2)
        agg.add(("c.h", "b.g"), count=2)  # same leaf via another path
        agg.add(("a.f", "d.k"), count=3)
        assert agg.hot_frames(top=2) == [("b.g", 4), ("d.k", 3)]

    def test_collapsed_is_flamegraph_input(self):
        agg = StackAggregate()
        agg.add(("a.f", "b.g"), count=2)
        agg.add(("a.f",), count=1)
        assert agg.collapsed() == "a.f 1\na.f;b.g 2\n"

    def test_collapsed_empty(self):
        assert StackAggregate().collapsed() == ""

    def test_speedscope_document_shape(self):
        agg = StackAggregate()
        agg.add(("a.f", "b.g"), count=10)
        agg.add(("a.f", "c.h"), count=10)
        doc = agg.speedscope("unit", rate_hz=100.0)
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        # Frames dedup: a.f appears once even though two stacks share it.
        names = [frame["name"] for frame in doc["shared"]["frames"]]
        assert sorted(names) == ["a.f", "b.g", "c.h"]
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "seconds"
        # Sample rows are frame indexes root->leaf; weights are seconds.
        for row, weight in zip(profile["samples"], profile["weights"]):
            assert [names[i] for i in row][0] == "a.f"
            assert weight == pytest.approx(10 / 100.0)
        assert profile["endValue"] == pytest.approx(0.2)

    def test_summary_digest(self):
        agg = StackAggregate()
        agg.add(("a.f", "b.g"), count=4)
        digest = agg.summary(top=3)
        assert digest["samples"] == 4
        assert digest["hot_frames"] == [{"frame": "b.g", "samples": 4}]
        assert digest["hot_stacks"][0]["stack"] == ["a.f", "b.g"]


class TestProfileExport:
    def test_speedscope_json_round_trips(self):
        agg = StackAggregate()
        agg.add(("a.f",), count=2)
        profile = Profile(agg, {}, rate_hz=50.0, seconds=1.5)
        doc = json.loads(profile.speedscope_json(name="x"))
        assert doc["name"] == "x"
        assert profile.collapsed() == "a.f 2\n"
        summary = profile.summary()
        assert summary["rate_hz"] == 50.0
        assert summary["seconds"] == 1.5


class TestThreadBinding:
    def test_bind_and_unbind(self):
        registry = QueryRegistry()
        with registry.track("spatial") as query:
            ident = threading.get_ident()
            assert registry.query_for_thread(ident) is query
            assert registry.thread_map()[ident] is query
        assert registry.query_for_thread(threading.get_ident()) is None

    def test_nested_track_restores_parent_binding(self):
        registry = QueryRegistry()
        ident = threading.get_ident()
        with registry.track("sql") as outer:
            with registry.track("spatial") as inner:
                assert registry.query_for_thread(ident) is inner
            assert registry.query_for_thread(ident) is outer
        assert registry.query_for_thread(ident) is None

    def test_morsel_workers_bind_the_submitting_query(self):
        # The pool worker cannot be found via contextvars from the
        # sampler thread — the registry's explicit thread map is how a
        # worker's samples attribute to the query it serves.
        registry = get_queries()
        seen = []

        def task(i):
            seen.append(registry.query_for_thread(threading.get_ident()))
            return i

        with registry.track("spatial") as query:
            parallel.run_tasks(task, list(range(8)), threads=4)
        assert seen and all(owner is query for owner in seen)


class TestSamplingProfiler:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            SamplingProfiler(rate_hz=0)

    def test_sample_once_sees_busy_thread(self, busy_thread):
        profiler = SamplingProfiler(
            rate_hz=100.0, queries=QueryRegistry(), registry=MetricsRegistry()
        )
        profile = sample_until(
            profiler,
            lambda p: any(
                any(label.startswith("test_obs_profiler.") for label in stack)
                for stack in p.aggregate.counts
            ),
        )
        assert profile.aggregate.samples > 0
        assert any(
            any(label.startswith("test_obs_profiler.") for label in stack)
            for stack in profile.aggregate.counts
        )

    def test_samples_attribute_to_owning_query(self):
        registry = QueryRegistry()
        metrics = MetricsRegistry()
        profiler = SamplingProfiler(
            rate_hz=100.0, queries=registry, registry=metrics
        )
        ready = threading.Event()
        stop = threading.Event()
        holder = {}

        def _query_burn():
            with registry.track("spatial", detail={"table": "pts"}) as query:
                holder["query"] = query
                ready.set()
                acc = 0
                while not stop.is_set():
                    acc += sum(range(200))

        thread = threading.Thread(target=_query_burn, daemon=True)
        thread.start()
        assert ready.wait(5.0)
        try:
            profile = sample_until(
                profiler,
                lambda p: holder["query"].query_id in p.per_query
                and p.per_query[holder["query"].query_id].samples > 0,
            )
        finally:
            stop.set()
            thread.join(timeout=5.0)
        per_query = profile.per_query[holder["query"].query_id]
        assert per_query.samples > 0
        assert profiler.query_summary(holder["query"].query_id)["samples"] > 0
        assert profiler.query_summary(None) is None
        assert profiler.query_summary("no-such-query") is None
        assert metrics.snapshot()["counters"]["profiler.sweeps"] > 0

    def test_start_stop_lifecycle_and_gauges(self, busy_thread):
        metrics = MetricsRegistry()
        profiler = SamplingProfiler(
            rate_hz=200.0, queries=QueryRegistry(), registry=metrics
        )
        profiler.start()
        assert profiler.running
        assert metrics.snapshot()["gauges"]["profiler.running"] == 1.0
        assert metrics.snapshot()["gauges"]["profiler.rate_hz"] == 200.0
        deadline = time.monotonic() + 5.0
        while (
            profiler.profile().aggregate.samples == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        profiler.stop()
        assert not profiler.running
        assert metrics.snapshot()["gauges"]["profiler.running"] == 0.0
        profile = profiler.profile()
        assert profile.aggregate.samples > 0
        assert profile.seconds > 0
        assert profiler.hot_summary()["samples"] == profile.aggregate.samples

    def test_hot_summary_none_without_samples(self):
        profiler = SamplingProfiler(
            rate_hz=10.0, queries=QueryRegistry(), registry=MetricsRegistry()
        )
        assert profiler.hot_summary() is None

    def test_sampler_filters_its_own_machinery(self, busy_thread):
        # A capture's caller parks inside profiler.capture for the whole
        # window; that wait is scaffolding and must not show up.
        profile = capture(
            seconds=0.2,
            rate_hz=200.0,
            queries=QueryRegistry(),
            registry=MetricsRegistry(),
        )
        assert profile.aggregate.samples > 0
        for stack in profile.aggregate.counts:
            assert not any(label.startswith("profiler.") for label in stack)


class TestPackedScanCapture:
    def test_hot_frames_land_in_packed_kernels(self):
        """Acceptance: a compressed-scan capture blames the scan layer."""
        rng = np.random.default_rng(11)
        column = CompressedColumn.from_values(
            "v", rng.integers(0, 1_000_000, 600_000), segment_rows=8192
        )
        stop = threading.Event()

        def _scan_loop():
            while not stop.is_set():
                column.range_select(100_000, 200_000)

        thread = threading.Thread(target=_scan_loop, daemon=True)
        thread.start()
        try:
            profile = capture(
                seconds=1.0,
                rate_hz=199.0,
                queries=QueryRegistry(),
                registry=MetricsRegistry(),
            )
        finally:
            stop.set()
            thread.join(timeout=5.0)
        assert profile.aggregate.samples > 0
        hot = profile.hot_frames(top=5)
        scan_layers = ("kernels.", "compressed.", "compression.")
        assert any(
            frame.startswith(scan_layers) for frame, _ in hot
        ), f"expected packed-scan frames in {hot}"
        # And the export formats carry the same stacks.
        doc = profile.speedscope(name="packed")
        names = {frame["name"] for frame in doc["shared"]["frames"]}
        assert any(name.startswith(scan_layers) for name in names)
        assert "compressed" in profile.collapsed()


class TestProcessSingleton:
    def test_maybe_profiler_never_creates(self):
        assert maybe_profiler() is None

    def test_get_profiler_is_singleton(self):
        first = get_profiler(rate_hz=DEFAULT_RATE_HZ)
        assert get_profiler() is first
        assert maybe_profiler() is first
        reset_profiler()
        assert maybe_profiler() is None

    def test_reset_stops_a_running_profiler(self):
        profiler = get_profiler(rate_hz=50.0)
        profiler.start()
        assert profiler.running
        reset_profiler()
        assert not profiler.running


class TestEmbeddings:
    def test_flight_dump_embeds_hot_stack_snapshot(self, tmp_path, busy_thread):
        from repro.obs.flight import FlightRecorder

        profiler = get_profiler(rate_hz=100.0)
        for _ in range(100):
            if profiler.sample_once():
                break
        recorder = FlightRecorder(directory=tmp_path)
        path = recorder.dump("test_dump")
        record = json.loads(path.read_text())
        assert record["profile"]["samples"] > 0
        assert record["profile"]["hot_frames"]
        assert record["profile"]["rate_hz"] == 100.0

    def test_flight_dump_without_profiler_omits_profile(self, tmp_path):
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder(directory=tmp_path)
        path = recorder.dump("test_dump")
        assert "profile" not in json.loads(path.read_text())

    def test_slowlog_helper_digests_the_owning_query(self):
        from repro.api import _query_hot_stacks

        assert _query_hot_stacks("q-any") is None  # no profiler running
        profiler = get_profiler(rate_hz=100.0)
        with profiler._lock:
            agg = StackAggregate()
            agg.add(("kernels.range_mask",), count=3)
            profiler._per_query["q-embed"] = agg
        digest = _query_hot_stacks("q-embed")
        assert digest["samples"] == 3
        assert digest["hot_frames"][0]["frame"] == "kernels.range_mask"
        assert _query_hot_stacks("q-other") is None


class TestProfileCli:
    @pytest.fixture(scope="class")
    def db_dir(self, tmp_path_factory):
        tiles = tmp_path_factory.mktemp("profile_tiles")
        assert (
            main(
                [
                    "generate",
                    "--points",
                    "5000",
                    "--tiles",
                    "1",
                    "--seed",
                    "3",
                    "--out",
                    str(tiles),
                ]
            )
            == 0
        )
        directory = tmp_path_factory.mktemp("profile_db")
        assert main(["load", str(tiles), "--db", str(directory)]) == 0
        return directory

    def test_needs_a_query(self, db_dir, capsys):
        assert main(["profile", str(db_dir)]) == 1
        assert "--sql or --wkt" in capsys.readouterr().err

    def test_sql_profile_exports_both_formats(self, db_dir, tmp_path, capsys):
        out = tmp_path / "profile.speedscope.json"
        collapsed = tmp_path / "profile.collapsed.txt"
        code = main(
            [
                "profile",
                str(db_dir),
                "--sql",
                "SELECT count(*) FROM points WHERE z > 2",
                "--duration",
                "0.4",
                "--rate",
                "250",
                "--out",
                str(out),
                "--collapsed",
                str(collapsed),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "profiled" in err and "samples" in err
        doc = json.loads(out.read_text())
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        assert doc["profiles"][0]["type"] == "sampled"
        # A repeated tiny query at 250 Hz over 0.4 s yields samples, and
        # every collapsed line ends in a count.
        for line in collapsed.read_text().splitlines():
            assert line.rsplit(" ", 1)[1].isdigit()

    def test_default_output_is_collapsed_stdout(self, db_dir, capsys):
        code = main(
            [
                "profile",
                str(db_dir),
                "--wkt",
                "POLYGON((85000 445000, 87000 445000, 87000 447000, "
                "85000 447000, 85000 445000))",
                "--duration",
                "0.3",
                "--rate",
                "250",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            assert line.rsplit(" ", 1)[1].isdigit()
