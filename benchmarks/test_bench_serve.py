"""E9 — Service load: daemon throughput, tail latency, and shed rate.

Drives an embedded :class:`~repro.serve.http.QueryDaemon` over real HTTP
at a few concurrency levels, then at 2x the admission limit, and writes
``BENCH_serve.json`` at the repo root (and ``REPRO_BENCH_DIR`` when
set).

The deterministic contracts are asserted here: every request is
accounted for (completed + shed + errored), nothing errors at offered
loads the admission limit can absorb, and every shed response under
overload carried a ``Retry-After`` hint while the accepted requests all
completed.  The latency and throughput numbers stay soft (CI runners
are noisy); the committed JSON carries the real measurements.
"""

import os
from pathlib import Path

from repro.bench.parallel_scaling import write_report
from repro.bench.serve_load import run

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", "200000"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def test_serve_load_report():
    # max_concurrency + queue_depth = 4 >= the highest measured level, so
    # the level phase never sheds; only the 2x-overload phase does.
    report = run(
        points=BENCH_POINTS,
        levels=[1, 2, 4],
        requests_per_worker=max(4, REPEATS * 4),
        max_concurrency=2,
        queue_depth=2,
    )

    assert report["experiment"] == "serve_load"
    assert report["config"]["url_mode"] is False

    for level in report["levels"]:
        assert (
            level["completed"] + level["shed"] + level["errors"]
            == level["requests"]
        )
        assert level["errors"] == 0
        assert level["shed"] == 0
        assert level["throughput_rps"] > 0
        assert 0.0 < level["p50_s"] <= level["p95_s"] <= level["p99_s"]

    overload = report["overload"]
    assert overload["target_concurrency"] == 2 * overload["admission_limit"]
    assert (
        overload["completed"] + overload["shed"] + overload["errors"]
        == overload["requests"]
    )
    assert overload["completed"] > 0
    assert overload["retry_after_on_all_sheds"] is True
    assert 0.0 <= overload["shed_rate"] <= 1.0

    out = write_report(REPO_ROOT / "BENCH_serve.json", report)
    assert out.exists()
    if os.environ.get("REPRO_BENCH_DIR"):
        write_report(
            Path(os.environ["REPRO_BENCH_DIR"]) / "BENCH_serve.json", report
        )
