"""E8 — Compressed execution: packed scans vs. plain scans.

The E-series selectivity sweep runs on LAS-style integer coordinate
columns twice per query — on the per-segment compressed format (zone
maps + packed FOR/dictionary kernels) and on the plain numpy arrays —
through the same ``engine.select`` operators.  Results land in
``BENCH_compression.json`` at the repo root (and ``REPRO_BENCH_DIR``
when set).

The deterministic claim is asserted here: packed range scans must touch
at most half the bytes of the plain scan.  Coordinates quantised to
centimetres span far less than 2^32 scale units, so FOR offsets pack to
uint32 against the plain int64 column — a 2x floor before zone-map
pruning removes whole segments.  Throughput assertions stay soft (CI
runners are noisy); the committed JSON carries the real numbers.
"""

import os
from pathlib import Path

from repro.bench.compression_scan import (
    build_table,
    column_breakdown,
    las_integer_columns,
    measure_query,
    morton_order,
    scan_specs,
)
from repro.bench.parallel_scaling import machine_info, metrics_snapshot, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def test_compression_scan_report(cloud, extent):
    columns = morton_order(las_integer_columns(cloud, extent), extent)
    table = build_table(columns, segment_rows=max(4096, len(columns["x"]) // 16))

    queries = [
        measure_query(table, spec, repeats=REPEATS)
        for spec in scan_specs(table)
    ]
    breakdown = column_breakdown(table)

    payload = {
        "experiment": "compressed_execution",
        "workload": "E-series selectivity sweep on packed segments",
        "n_points": len(table),
        "repeats": REPEATS,
        "machine": machine_info(),
        "columns": breakdown,
        "queries": queries,
        "metrics": metrics_snapshot(),
    }
    out = write_report(REPO_ROOT / "BENCH_compression.json", payload)
    if os.environ.get("REPRO_BENCH_DIR"):
        write_report(
            Path(os.environ["REPRO_BENCH_DIR"]) / "BENCH_compression.json",
            payload,
        )
    assert out.exists()

    # The paper's claim, deterministically: packed range scans move at
    # most half the bytes (uint32 offsets vs int64 values, plus any
    # zone-map skips), without the index having been asked to decode.
    range_queries = [q for q in queries if q["name"] != "classification_eq"]
    assert range_queries
    for query in range_queries:
        assert query["bytes_reduction"] >= 2.0, query
    # The coordinate columns themselves pack at least 2x on disk too.
    by_name = {row["name"]: row for row in breakdown}
    for name in ("x", "y", "z"):
        row = by_name[name]
        assert row["plain_bytes_per_point"] >= 2 * row["bytes_per_point"], row
    # Soft throughput floor: packed evaluation must not crater the scan.
    # At full bench scale packed range scans run >1x (the committed JSON
    # records it); at smoke scale fixed per-segment overhead dominates,
    # so only a collapse fails here.
    for query in queries:
        assert query["speedup"] >= 0.1, query
