"""E7 — Ablations over the design choices DESIGN.md calls out.

Not a paper table; these sweeps justify the defaults the reproduction
uses where the paper (or [16]) fixes a constant:

* **cacheline size** — the imprint granularity (the paper's 64-byte
  lines; larger "lines" trade filter precision for index size);
* **bin budget** — 64 bins vs coarser histograms;
* **blockstore patch size** — the pcpatch scale knob, showing the
  block-storage trade-off the flat table avoids.
"""

import numpy as np
import pytest

from repro.bench.harness import Report, best_of
from repro.blockstore.store import BlockStore
from repro.core.imprints import ColumnImprints
from repro.engine.column import Column
from repro.gis.envelope import Box


class TestAblationReport:
    def test_report_e7_cacheline(self, benchmark, cloud):
        def build_report():
            report = Report(
                "E7a",
                "imprint cacheline-size ablation (x column)",
                headers=[
                    "cacheline B",
                    "values/line",
                    "overhead %",
                    "scanned %",
                    "query ms",
                ],
            )
            col = Column.from_array("x", cloud["x"])
            lo = float(np.quantile(cloud["x"], 0.45))
            hi = float(np.quantile(cloud["x"], 0.55))
            overheads = {}
            for cacheline in (64, 128, 256, 512, 1024):
                imp = ColumnImprints(col, cacheline_bytes=cacheline)
                t = best_of(lambda: imp.query(lo, hi))
                overheads[cacheline] = imp.stats().overhead
                report.add_row(
                    cacheline,
                    imp.vpc,
                    f"{imp.stats().overhead * 100:.2f}",
                    f"{imp.scanned_fraction(lo, hi) * 100:.2f}",
                    t * 1e3,
                )
            report.note(
                "bigger lines shrink the index but admit more false "
                "positives; 64 B (8 doubles) is the paper's sweet spot"
            )
            report.emit()
            assert overheads[1024] < overheads[64]

        benchmark.pedantic(build_report, rounds=1, iterations=1)

    def test_report_e7_bins(self, benchmark, cloud):
        def build_report():
            report = Report(
                "E7b",
                "imprint bin-budget ablation (x column)",
                headers=["bins", "overhead %", "scanned %", "fp rate %"],
            )
            col = Column.from_array("x", cloud["x"])
            lo = float(np.quantile(cloud["x"], 0.45))
            hi = float(np.quantile(cloud["x"], 0.55))
            scanned = {}
            for bins in (4, 8, 16, 32, 64):
                imp = ColumnImprints(col, max_bins=bins)
                scanned[bins] = imp.scanned_fraction(lo, hi)
                report.add_row(
                    imp.scheme.n_bins,
                    f"{imp.stats().overhead * 100:.2f}",
                    f"{scanned[bins] * 100:.2f}",
                    f"{imp.false_positive_rate(lo, hi) * 100:.2f}",
                )
            report.note("finer histograms prune more for the same 64-bit vector")
            report.emit()
            assert scanned[64] <= scanned[4]

        benchmark.pedantic(build_report, rounds=1, iterations=1)

    def test_report_e7_patch_size(self, benchmark, cloud, extent):
        def build_report():
            report = Report(
                "E7c",
                "blockstore patch-size ablation",
                headers=[
                    "patch points",
                    "load ms",
                    "bytes/point",
                    "small-query ms",
                    "large-query ms",
                ],
            )
            batch = {k: cloud[k] for k in ("x", "y", "z")}
            cx, cy = extent.center
            small = Box(cx, cy, cx + 0.02 * extent.width, cy + 0.02 * extent.height)
            large = Box(
                extent.xmin + 0.1 * extent.width,
                extent.ymin + 0.1 * extent.height,
                extent.xmax - 0.1 * extent.width,
                extent.ymax - 0.1 * extent.height,
            )
            n = cloud["x"].shape[0]
            for patch_size in (256, 1024, 4096, 16384, 65536):
                store = BlockStore(patch_size=patch_size, sort="morton")
                t_load = best_of(lambda: store.load(batch), repeats=1)
                t_small = best_of(lambda: store.query(small))
                t_large = best_of(lambda: store.query(large))
                report.add_row(
                    patch_size,
                    t_load * 1e3,
                    store.nbytes / n,
                    t_small * 1e3,
                    t_large * 1e3,
                )
            report.note(
                "small patches help selective queries but bloat the index "
                "and slow loading — the tension the flat table sidesteps"
            )
            report.emit()

        benchmark.pedantic(build_report, rounds=1, iterations=1)
