"""E3 — Spatial query performance (paper Sections 3.3, 4.1; [18]).

The van Oosterom-style query set (rectangles / circle / polygons /
corridors) runs against the four systems:

* ``imprints``  — the paper's system: flat table, imprints filter, grid
  refinement;
* ``scan``      — the same engine without the secondary index (ablation);
* ``blockstore``— the PostgreSQL-pointcloud-like baseline;
* ``lastools``  — the file-based baseline (catalog + .lax quadtrees).

Claims reproduced: imprints beat the full scan, by a factor that widens
as selectivity shrinks; the flat+imprints DBMS is competitive with (or
better than) both block storage and files across the query mix; every
system returns exactly the same result counts.
"""

import numpy as np
import pytest

from repro.bench.harness import Report, best_of
from repro.bench.workloads import standard_queries
from repro.gis.predicates import points_satisfy

QUERIES = None  # filled lazily from the session extent


def _queries(extent):
    global QUERIES
    if QUERIES is None:
        QUERIES = standard_queries(extent, seed=3)
    return QUERIES


def _spec_by_name(extent, name):
    return next(s for s in _queries(extent) if s.name == name)


_BENCH_NAMES = ["rect_small", "rect_medium", "polygon_complex", "corridor_narrow"]


@pytest.mark.parametrize("query_name", _BENCH_NAMES)
class TestQueryBenchmarks:
    def test_imprints(self, benchmark, flat_db, extent, query_name):
        spec = _spec_by_name(extent, query_name)
        benchmark(
            lambda: flat_db.spatial_select(
                "ahn2", spec.geometry, spec.predicate, spec.distance
            )
        )

    def test_scan(self, benchmark, flat_db, extent, query_name):
        spec = _spec_by_name(extent, query_name)
        benchmark(
            lambda: flat_db.spatial_select(
                "ahn2",
                spec.geometry,
                spec.predicate,
                spec.distance,
                use_imprints=False,
            )
        )

    def test_blockstore(self, benchmark, block_store, extent, query_name):
        spec = _spec_by_name(extent, query_name)
        benchmark(
            lambda: block_store.query(spec.geometry, spec.predicate, spec.distance)
        )

    def test_lastools(self, benchmark, las_clip, extent, query_name):
        spec = _spec_by_name(extent, query_name)
        benchmark(
            lambda: las_clip.query(spec.geometry, spec.predicate, spec.distance)
        )


class TestQueryReport:
    def test_report_e3(self, benchmark, flat_db, block_store, las_clip, cloud, extent):
        def build_report():
            report = Report(
                "E3",
                "query performance across systems (ms, best of 3)",
                headers=[
                    "query",
                    "results",
                    "imprints",
                    "scan",
                    "blockstore",
                    "lastools",
                    "imprints speedup vs scan",
                ],
            )
            all_counts_match = True
            for spec in _queries(extent):
                expected = int(
                    points_satisfy(
                        cloud["x"],
                        cloud["y"],
                        spec.geometry,
                        spec.predicate,
                        spec.distance,
                    ).sum()
                )

                t_imp = best_of(
                    lambda: flat_db.spatial_select(
                        "ahn2", spec.geometry, spec.predicate, spec.distance
                    )
                )
                t_scan = best_of(
                    lambda: flat_db.spatial_select(
                        "ahn2",
                        spec.geometry,
                        spec.predicate,
                        spec.distance,
                        use_imprints=False,
                    )
                )
                t_blk = best_of(
                    lambda: block_store.query(
                        spec.geometry, spec.predicate, spec.distance
                    )
                )
                t_las = best_of(
                    lambda: las_clip.query(
                        spec.geometry, spec.predicate, spec.distance
                    )
                )

                n_imp = len(
                    flat_db.spatial_select(
                        "ahn2", spec.geometry, spec.predicate, spec.distance
                    )
                )
                n_blk = block_store.query(
                    spec.geometry, spec.predicate, spec.distance
                )[1].n_results
                n_las = las_clip.query(
                    spec.geometry, spec.predicate, spec.distance
                )[1].n_results
                # The in-memory systems must agree exactly; the file-based
                # system works on LAS-quantised coordinates (0.01 m grid),
                # so points within half a step of the boundary may flip.
                las_tolerance = max(5, int(0.005 * expected))
                if not (
                    expected == n_imp == n_blk
                    and abs(n_las - expected) <= las_tolerance
                ):
                    all_counts_match = False

                report.add_row(
                    spec.name,
                    expected,
                    t_imp * 1e3,
                    t_scan * 1e3,
                    t_blk * 1e3,
                    t_las * 1e3,
                    f"{t_scan / t_imp:.1f}x",
                )
            report.note(
                "in-memory systems agree exactly; lastools within LAS "
                "coordinate-quantisation tolerance"
                if all_counts_match
                else "RESULT MISMATCH — see rows above"
            )
            report.emit()
            assert all_counts_match

            # Shape claim, asserted on deterministic work rather than
            # noisy sub-ms wall clock: on the most selective query the
            # imprint probe must touch a small sliver of the column, and
            # wall clock must not be worse than parity (+30% noise floor).
            spec = _spec_by_name(extent, "rect_small")
            table = flat_db.table("ahn2")
            env = spec.geometry
            imp_x = flat_db.manager.ensure(table, "x")
            assert imp_x.scanned_fraction(env.xmin, env.xmax) < 0.1
            t_imp = best_of(
                lambda: flat_db.spatial_select("ahn2", spec.geometry),
                repeats=7,
            )
            t_scan = best_of(
                lambda: flat_db.spatial_select(
                    "ahn2", spec.geometry, use_imprints=False
                ),
                repeats=7,
            )
            assert t_imp < t_scan * 1.3

        benchmark.pedantic(build_report, rounds=1, iterations=1)
