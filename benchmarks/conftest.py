"""Shared fixtures for the experiment benchmarks (E1-E6).

One synthetic AHN2-like region is generated per session and reused by
every experiment: an in-memory column batch, a tiled LAS directory for
the file-based paths, and pre-loaded stores for the query benches.

Scale note: the paper's AHN2 has 640e9 points; the benches run at
BENCH_POINTS (default 200k) and report projected full-scale numbers where
the paper makes full-scale claims (E1).  Set REPRO_BENCH_POINTS to run
larger.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import PointCloudDB
from repro.blockstore.store import BlockStore
from repro.datasets.lidar import generate_points, make_scene, write_tile_files
from repro.gis.envelope import Box
from repro.lastools.clip import LasClip

BENCH_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", "200000"))
EXTENT = Box(85_000, 445_000, 87_000, 447_000)  # 2x2 km RD-like tile


@pytest.fixture(scope="session")
def extent():
    return EXTENT


@pytest.fixture(scope="session")
def cloud():
    """The in-memory column batch everything loads from."""
    scene = make_scene(EXTENT, seed=7)
    return generate_points(scene, BENCH_POINTS, seed=7)


@pytest.fixture(scope="session")
def tile_dir(tmp_path_factory, cloud):
    """The same cloud as a 4x4 grid of LAS tiles (AHN2 layout, scaled)."""
    from repro.datasets.lidar import write_cloud_tiles

    directory = tmp_path_factory.mktemp("bench_tiles")
    write_cloud_tiles(directory, cloud, EXTENT, 4, 4)
    return directory


@pytest.fixture(scope="session")
def small_tile(tmp_path_factory):
    """A single modest LAS file for the per-file loading benches."""
    directory = tmp_path_factory.mktemp("bench_small")
    paths = write_tile_files(directory, EXTENT, 50_000, 1, 1, seed=9)
    return paths[0]


@pytest.fixture(scope="session")
def flat_db(cloud):
    """The paper's system: flat table + imprints, loaded and warmed."""
    db = PointCloudDB()
    db.create_pointcloud("ahn2")
    db.load_points("ahn2", cloud)
    # Warm the imprints (the paper builds them on the first range query).
    db.spatial_select("ahn2", Box(EXTENT.xmin, EXTENT.ymin, EXTENT.xmin + 1, EXTENT.ymin + 1))
    return db


@pytest.fixture(scope="session")
def block_store(cloud):
    """The PostgreSQL-pointcloud-like baseline, loaded."""
    store = BlockStore(patch_size=4096, sort="morton")
    store.load({k: cloud[k] for k in ("x", "y", "z", "classification")})
    return store


@pytest.fixture(scope="session")
def las_clip(tile_dir):
    """The LAStools-like baseline with .lax indexes built."""
    clip = LasClip(tile_dir, catalog_mode="metadata", use_index=True)
    clip.build_indexes(leaf_capacity=2000)
    return clip
