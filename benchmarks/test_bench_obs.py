"""Observability overhead — tracing must be free when it is off.

The span sites sit on the hottest paths in the engine (per-phase in the
two-step query, per-morsel in the pool), so the disabled cost has to be
one attribute check.  The smoke test counts the span sites an E4-style
query actually crosses (by running it once with tracing on), measures
the per-site disabled cost directly, and asserts the product stays
under 2% of the query's wall-clock time.
"""

import time

from repro.bench.harness import best_of
from repro.bench.workloads import standard_queries
from repro.obs.trace import get_tracer, maybe_span

#: The budget from the issue: tracing disabled must cost < 2%.
OVERHEAD_BUDGET = 0.02


def _noop_span_seconds(iterations: int = 20_000) -> float:
    """Mean cost of one disabled maybe_span() enter/exit + set()."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        with maybe_span("bench.noop", key="value") as span:
            span.set(rows_out=1)
    return (time.perf_counter() - t0) / iterations


def _query(flat_db, spec, threads=None):
    return flat_db.spatial_select(
        "ahn2", spec.geometry, spec.predicate, spec.distance, threads=threads
    )


def test_disabled_tracing_overhead(flat_db, extent):
    tracer = get_tracer()
    was_enabled = tracer.enabled
    spec = next(
        s for s in standard_queries(extent, seed=3) if s.name == "rect_large"
    )
    try:
        # Span sites this query crosses, counted from a traced run.  The
        # count overestimates the disabled cost: per-morsel spans only
        # exist while recording (run_tasks skips them entirely when off).
        with tracer.capture() as spans:
            _query(flat_db, spec)
        n_spans = len(spans)

        tracer.disable()
        query_seconds = best_of(lambda: _query(flat_db, spec), repeats=5)
        span_seconds = min(_noop_span_seconds() for _ in range(5))
    finally:
        if was_enabled:
            tracer.enable()
        else:
            tracer.disable()

    overhead = n_spans * span_seconds
    assert overhead < OVERHEAD_BUDGET * query_seconds, (
        f"disabled tracing would add {overhead * 1e6:.1f}us per query "
        f"({n_spans} span sites x {span_seconds * 1e9:.0f}ns = "
        f"{overhead / query_seconds * 100:.2f}% of "
        f"{query_seconds * 1e3:.3f}ms), budget is "
        f"{OVERHEAD_BUDGET * 100:.0f}%"
    )


def test_enabled_tracing_records_query_tree(flat_db, extent):
    tracer = get_tracer()
    spec = next(
        s for s in standard_queries(extent, seed=3) if s.name == "rect_medium"
    )
    with tracer.capture() as spans:
        _query(flat_db, spec)
    names = {span.name for span in spans}
    assert "query.spatial" in names
    assert "query.filter" in names
