"""Observability overhead — tracing must be free when it is off.

The span sites sit on the hottest paths in the engine (per-phase in the
two-step query, per-morsel in the pool), so the disabled cost has to be
one attribute check.  The smoke test counts the span sites an E4-style
query actually crosses (by running it once with tracing on), measures
the per-site disabled cost directly, and asserts the product stays
under 2% of the query's wall-clock time.

The always-on sampling profiler gets the same treatment: its entire
steady-state cost is ``rate_hz`` sweeps per second on its own thread,
so measuring one sweep against a live packed-scan workload and
multiplying by :data:`~repro.obs.profiler.DEFAULT_RATE_HZ` models the
CPU fraction it can ever consume — gated under 3%.
"""

import threading
import time

import numpy as np

from repro.bench.harness import best_of
from repro.bench.workloads import standard_queries
from repro.engine.compressed import CompressedColumn
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import DEFAULT_RATE_HZ, SamplingProfiler
from repro.obs.queries import QueryRegistry
from repro.obs.trace import get_tracer, maybe_span

#: The budget from the issue: tracing disabled must cost < 2%.
OVERHEAD_BUDGET = 0.02

#: The always-on profiler (serve mode's default) must cost < 3%.
PROFILER_BUDGET = 0.03


def _noop_span_seconds(iterations: int = 20_000) -> float:
    """Mean cost of one disabled maybe_span() enter/exit + set()."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        with maybe_span("bench.noop", key="value") as span:
            span.set(rows_out=1)
    return (time.perf_counter() - t0) / iterations


def _query(flat_db, spec, threads=None):
    return flat_db.spatial_select(
        "ahn2", spec.geometry, spec.predicate, spec.distance, threads=threads
    )


def test_disabled_tracing_overhead(flat_db, extent):
    tracer = get_tracer()
    was_enabled = tracer.enabled
    spec = next(
        s for s in standard_queries(extent, seed=3) if s.name == "rect_large"
    )
    try:
        # Span sites this query crosses, counted from a traced run.  The
        # count overestimates the disabled cost: per-morsel spans only
        # exist while recording (run_tasks skips them entirely when off).
        with tracer.capture() as spans:
            _query(flat_db, spec)
        n_spans = len(spans)

        tracer.disable()
        query_seconds = best_of(lambda: _query(flat_db, spec), repeats=5)
        span_seconds = min(_noop_span_seconds() for _ in range(5))
    finally:
        if was_enabled:
            tracer.enable()
        else:
            tracer.disable()

    overhead = n_spans * span_seconds
    assert overhead < OVERHEAD_BUDGET * query_seconds, (
        f"disabled tracing would add {overhead * 1e6:.1f}us per query "
        f"({n_spans} span sites x {span_seconds * 1e9:.0f}ns = "
        f"{overhead / query_seconds * 100:.2f}% of "
        f"{query_seconds * 1e3:.3f}ms), budget is "
        f"{OVERHEAD_BUDGET * 100:.0f}%"
    )


def _sweep_seconds(profiler, iterations=100):
    """Mean cost of one full sample sweep over the live threads."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        profiler.sample_once()
    return (time.perf_counter() - t0) / iterations


def test_always_on_profiler_overhead(cloud):
    """The 19 Hz profiler's modeled cost on a packed-scan workload.

    The sampler's steady state is one sweep per tick, nothing between
    ticks, so sweep cost x DEFAULT_RATE_HZ bounds the CPU fraction it
    can consume.  Sweeps are measured against a thread actually running
    the packed range scan, so ``sys._current_frames`` sees the bench's
    realistic stack depth, and the same sweeps double as the smoke check
    that the packed kernels are what the profiler attributes time to.
    """
    column = CompressedColumn.from_values(
        "x", np.asarray(cloud["x"] * 100, dtype=np.int64), segment_rows=8192
    )
    lo, hi = np.percentile(np.asarray(cloud["x"] * 100), [40, 60])
    profiler = SamplingProfiler(
        rate_hz=DEFAULT_RATE_HZ,
        queries=QueryRegistry(),
        registry=MetricsRegistry(),
    )
    stop = threading.Event()

    def _scan_loop():
        while not stop.is_set():
            column.range_select(int(lo), int(hi))

    thread = threading.Thread(target=_scan_loop, daemon=True)
    thread.start()
    try:
        sweep_seconds = min(_sweep_seconds(profiler) for _ in range(5))
    finally:
        stop.set()
        thread.join(timeout=5.0)

    overhead = sweep_seconds * DEFAULT_RATE_HZ  # CPU fraction per second
    assert overhead < PROFILER_BUDGET, (
        f"always-on profiling would consume {overhead * 100:.2f}% of the "
        f"process ({DEFAULT_RATE_HZ:g} Hz x {sweep_seconds * 1e6:.1f}us "
        f"per sweep), budget is {PROFILER_BUDGET * 100:.0f}%"
    )
    # The sweeps saw the workload, not just the budget: packed-scan
    # frames dominate what was captured.
    profile = profiler.profile()
    assert profile.aggregate.samples > 0
    scan_layers = ("kernels.", "compressed.", "compression.")
    assert any(
        frame.startswith(scan_layers)
        for frame, _ in profile.hot_frames(top=5)
    )


def test_enabled_tracing_records_query_tree(flat_db, extent):
    tracer = get_tracer()
    spec = next(
        s for s in standard_queries(extent, seed=3) if s.name == "rect_medium"
    )
    with tracer.capture() as spans:
        _query(flat_db, spec)
    names = {span.name for span in spans}
    assert "query.spatial" in names
    assert "query.filter" in names
