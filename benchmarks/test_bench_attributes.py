"""E9 — Attribute-rich queries: why a column store (paper Section 1).

The paper's opening motivation is the 26-attribute LAS point: "just
considering the number of properties ... gives a notion of the extent of
the problem".  A column store touches only the attributes a query names;
a block store must decompress whole patches.  This bench runs
spatio-thematic selections that mix the spatial predicate with 1-3
attribute predicates and compares:

* flat table: imprint filter + per-column candidate scans;
* blockstore: patch filter + decompression of every referenced dimension.

Claim shape: the flat table's advantage *grows* with the number of
attributes touched.
"""

import numpy as np
import pytest

from repro.bench.harness import Report, best_of
from repro.blockstore.store import BlockStore
from repro.core.query import SpatialSelect
from repro.engine.select import mask_select
from repro.engine.table import Table
from repro.gis.envelope import Box


@pytest.fixture(scope="module")
def systems(cloud, extent):
    dims = [
        "x",
        "y",
        "z",
        "classification",
        "intensity",
        "return_number",
        "gps_time",
    ]
    table = Table(
        "pts",
        [
            ("x", "float64"),
            ("y", "float64"),
            ("z", "float64"),
            ("classification", "uint8"),
            ("intensity", "uint16"),
            ("return_number", "uint8"),
            ("gps_time", "float64"),
        ],
    )
    table.append_columns({k: cloud[k] for k in dims})
    select = SpatialSelect(table)
    cx, cy = extent.center
    half = 0.25 * extent.width
    window = Box(cx - half, cy - half, cx + half, cy + half)
    select.query(window)  # warm imprints

    store = BlockStore(patch_size=4096, sort="morton")
    store.load({k: cloud[k] for k in dims})
    return table, select, store, window


def _flat_query(table, select, window, attribute_predicates):
    result = select.query(window)
    candidates = result.oids
    for column_name, fn in attribute_predicates:
        values = table.column(column_name).take(candidates)
        candidates = mask_select(fn(values), candidates)
    return candidates


def _block_query(store, window, attribute_predicates, dims):
    out, _stats = store.query(window, dimensions=dims)
    mask = np.ones(out["x"].shape[0], dtype=bool)
    for column_name, fn in attribute_predicates:
        mask &= fn(out[column_name])
    return {k: v[mask] for k, v in out.items()}


PREDICATE_SETS = {
    "0 attrs (pure spatial)": [],
    "1 attr": [("classification", lambda v: v == 2)],
    "2 attrs": [
        ("classification", lambda v: v == 2),
        ("intensity", lambda v: v > 800),
    ],
    "3 attrs": [
        ("classification", lambda v: v == 2),
        ("intensity", lambda v: v > 800),
        ("return_number", lambda v: v == 1),
    ],
}


class TestAttributeBenchmarks:
    @pytest.mark.parametrize("preds", ["1 attr", "3 attrs"])
    def test_flat(self, benchmark, systems, preds):
        table, select, _store, window = systems
        benchmark(
            lambda: _flat_query(table, select, window, PREDICATE_SETS[preds])
        )

    @pytest.mark.parametrize("preds", ["1 attr", "3 attrs"])
    def test_blockstore(self, benchmark, systems, preds):
        _table, _select, store, window = systems
        dims = ["x", "y"] + [name for name, _ in PREDICATE_SETS[preds]]
        benchmark(
            lambda: _block_query(store, window, PREDICATE_SETS[preds], dims)
        )


class TestAttributeReport:
    def test_report_e9(self, benchmark, systems):
        table, select, store, window = systems

        def build_report():
            report = Report(
                "E9",
                "spatio-thematic queries: attributes touched vs cost",
                headers=[
                    "predicates",
                    "results",
                    "flat ms",
                    "blockstore ms",
                    "flat advantage",
                ],
            )
            advantages = {}
            for label, preds in PREDICATE_SETS.items():
                dims = ["x", "y"] + [name for name, _ in preds]
                flat_result = _flat_query(table, select, window, preds)
                block_result = _block_query(store, window, preds, dims)
                assert flat_result.shape[0] == block_result["x"].shape[0]
                t_flat = best_of(
                    lambda: _flat_query(table, select, window, preds)
                )
                t_block = best_of(
                    lambda: _block_query(store, window, preds, dims)
                )
                advantages[label] = t_block / t_flat
                report.add_row(
                    label,
                    flat_result.shape[0],
                    t_flat * 1e3,
                    t_block * 1e3,
                    f"{t_block / t_flat:.1f}x",
                )
            report.note(
                "every extra attribute costs the block store another "
                "dimension decompression; the flat table scans only the "
                "surviving candidates of that column"
            )
            report.emit()

            # Wall-clock advantage must be decisive at every level; the
            # deterministic work metric shows the growth: bytes the block
            # store decompresses grow with each attribute, while the flat
            # path only gathers surviving candidates.
            assert all(adv > 3.0 for adv in advantages.values()), advantages
            _out, stats0 = store.query(window, dimensions=["x", "y"])
            dims3 = ["x", "y"] + [n for n, _ in PREDICATE_SETS["3 attrs"]]
            _out, stats3 = store.query(window, dimensions=dims3)
            assert stats3.points_decompressed >= stats0.points_decompressed

        benchmark.pedantic(build_report, rounds=1, iterations=1)
