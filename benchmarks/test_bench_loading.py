"""E1 — Loading (paper Section 3.2).

Claims reproduced:

* the binary loader (LAS -> per-column C-array dumps -> COPY BINARY)
  beats the CSV conversion-and-parse path by a wide margin;
* flat-table loading beats block-store loading (which pays sorting,
  blocking and per-patch compression) — the mechanism behind "MonetDB
  loads and indexes the full AHN2 ... in less than one day, while the
  point cloud extension of PostgreSQL ... should require almost a week".

The report projects the measured per-point rates to AHN2's 640e9 points.
"""

import numpy as np
import pytest

from repro.bench.harness import Report, human_seconds, timer
from repro.blockstore.store import BlockStore
from repro.engine.catalog import Database
from repro.las.binloader import create_flat_table, load_file
from repro.las.csvloader import load_via_csv
from repro.las.reader import read_las

AHN2_POINTS = 640_000_000_000


def _fresh_table():
    return create_flat_table(Database(), "points")


class TestLoadingBenchmarks:
    def test_binary_loader_direct(self, benchmark, small_tile):
        def run():
            load_file(_fresh_table(), small_tile)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_binary_loader_with_spool(self, benchmark, small_tile, tmp_path):
        def run():
            load_file(_fresh_table(), small_tile, spool_dir=tmp_path / "spool")

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_csv_loader(self, benchmark, small_tile, tmp_path):
        def run():
            load_via_csv(_fresh_table(), small_tile, tmp_path / "csv")

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_blockstore_load(self, benchmark, small_tile):
        _header, cols = read_las(small_tile)
        batch = {k: cols[k] for k in ("x", "y", "z", "intensity")}

        def run():
            BlockStore(patch_size=4096, sort="morton").load(batch)

        benchmark.pedantic(run, rounds=3, iterations=1)


class TestLoadingReport:
    def test_report_e1(self, benchmark, small_tile, tmp_path):
        """Measure each loader once and project to full AHN2 scale."""

        def build_report():
            report = Report(
                "E1",
                "loading throughput (Section 3.2)",
                headers=[
                    "loader",
                    "points",
                    "seconds",
                    "points/s",
                    "projected AHN2 (640e9)",
                ],
            )
            measurements = {}

            with timer() as t:
                stats = load_file(_fresh_table(), small_tile)
            measurements["flat binary (COPY BINARY)"] = (stats.n_points, t.seconds)

            with timer() as t:
                stats = load_file(
                    _fresh_table(), small_tile, spool_dir=tmp_path / "spool_r"
                )
            measurements["flat binary via spool files"] = (
                stats.n_points,
                t.seconds,
            )

            _header, cols = read_las(small_tile)
            batch = {k: cols[k] for k in ("x", "y", "z", "intensity")}
            with timer() as t:
                BlockStore(patch_size=4096, sort="morton").load(batch)
            measurements["blockstore (sort+compress)"] = (
                cols["x"].shape[0],
                t.seconds,
            )

            with timer() as t:
                stats = load_via_csv(
                    _fresh_table(), small_tile, tmp_path / "csv_r"
                )
            measurements["CSV convert+parse"] = (stats.n_points, t.seconds)

            def rate_of(key):
                # Same guard as LoadStats.points_per_second: a 0-second
                # measurement yields rate 0, projected "n/a" — not a
                # ZeroDivisionError or an "inf" row in the report.
                n, seconds = measurements[key]
                return n / seconds if seconds else 0.0

            for name in measurements:
                n, seconds = measurements[name]
                rate = rate_of(name)
                projected = (
                    human_seconds(AHN2_POINTS / rate) if rate else "n/a"
                )
                report.add_row(name, n, seconds, rate, projected)

            bin_rate = rate_of("flat binary (COPY BINARY)")
            csv_rate = rate_of("CSV convert+parse")
            blk_rate = rate_of("blockstore (sort+compress)")
            report.note(
                f"binary vs CSV speedup: "
                f"{bin_rate / csv_rate:.1f}x" if csv_rate else
                "binary vs CSV speedup: n/a (0-second CSV measurement)"
            )
            report.note(
                f"flat vs blockstore speedup: {bin_rate / blk_rate:.1f}x "
                f"(paper: <1 day vs ~1 week on AHN2, i.e. ~7x)"
                if blk_rate
                else "flat vs blockstore speedup: n/a"
            )
            report.emit()

            # The claims themselves, asserted:
            assert bin_rate > 3 * csv_rate, "binary loader must crush CSV"
            assert bin_rate > 1.5 * blk_rate, "flat load must beat blockstore"

        benchmark.pedantic(build_report, rounds=1, iterations=1)
