"""E1 — Loading (paper Section 3.2).

Claims reproduced:

* the binary loader (LAS -> per-column C-array dumps -> COPY BINARY)
  beats the CSV conversion-and-parse path by a wide margin;
* flat-table loading beats block-store loading (which pays sorting,
  blocking and per-patch compression) — the mechanism behind "MonetDB
  loads and indexes the full AHN2 ... in less than one day, while the
  point cloud extension of PostgreSQL ... should require almost a week".

The report projects the measured per-point rates to AHN2's 640e9 points.
"""

import numpy as np
import pytest

from repro.bench.harness import Report, human_seconds, timer
from repro.blockstore.store import BlockStore
from repro.engine.catalog import Database
from repro.las.binloader import create_flat_table, load_file
from repro.las.csvloader import load_via_csv
from repro.las.reader import read_las

AHN2_POINTS = 640_000_000_000


def _fresh_table():
    return create_flat_table(Database(), "points")


class TestLoadingBenchmarks:
    def test_binary_loader_direct(self, benchmark, small_tile):
        def run():
            load_file(_fresh_table(), small_tile)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_binary_loader_with_spool(self, benchmark, small_tile, tmp_path):
        def run():
            load_file(_fresh_table(), small_tile, spool_dir=tmp_path / "spool")

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_csv_loader(self, benchmark, small_tile, tmp_path):
        def run():
            load_via_csv(_fresh_table(), small_tile, tmp_path / "csv")

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_blockstore_load(self, benchmark, small_tile):
        _header, cols = read_las(small_tile)
        batch = {k: cols[k] for k in ("x", "y", "z", "intensity")}

        def run():
            BlockStore(patch_size=4096, sort="morton").load(batch)

        benchmark.pedantic(run, rounds=3, iterations=1)


class TestLoadingReport:
    def test_report_e1(self, benchmark, small_tile, tmp_path):
        """Measure each loader once and project to full AHN2 scale."""

        def build_report():
            report = Report(
                "E1",
                "loading throughput (Section 3.2)",
                headers=[
                    "loader",
                    "points",
                    "seconds",
                    "points/s",
                    "projected AHN2 (640e9)",
                ],
            )
            measurements = {}

            with timer() as t:
                stats = load_file(_fresh_table(), small_tile)
            measurements["flat binary (COPY BINARY)"] = (stats.n_points, t.seconds)

            with timer() as t:
                stats = load_file(
                    _fresh_table(), small_tile, spool_dir=tmp_path / "spool_r"
                )
            measurements["flat binary via spool files"] = (
                stats.n_points,
                t.seconds,
            )

            _header, cols = read_las(small_tile)
            batch = {k: cols[k] for k in ("x", "y", "z", "intensity")}
            with timer() as t:
                BlockStore(patch_size=4096, sort="morton").load(batch)
            measurements["blockstore (sort+compress)"] = (
                cols["x"].shape[0],
                t.seconds,
            )

            with timer() as t:
                stats = load_via_csv(
                    _fresh_table(), small_tile, tmp_path / "csv_r"
                )
            measurements["CSV convert+parse"] = (stats.n_points, t.seconds)

            for name, (n, seconds) in measurements.items():
                rate = n / seconds
                report.add_row(
                    name, n, seconds, rate, human_seconds(AHN2_POINTS / rate)
                )

            bin_rate = (
                measurements["flat binary (COPY BINARY)"][0]
                / measurements["flat binary (COPY BINARY)"][1]
            )
            csv_rate = (
                measurements["CSV convert+parse"][0]
                / measurements["CSV convert+parse"][1]
            )
            blk_rate = (
                measurements["blockstore (sort+compress)"][0]
                / measurements["blockstore (sort+compress)"][1]
            )
            report.note(
                f"binary vs CSV speedup: {bin_rate / csv_rate:.1f}x "
                f"(paper: binary loading dominates the CSV path)"
            )
            report.note(
                f"flat vs blockstore speedup: {bin_rate / blk_rate:.1f}x "
                f"(paper: <1 day vs ~1 week on AHN2, i.e. ~7x)"
            )
            report.emit()

            # The claims themselves, asserted:
            assert bin_rate > 3 * csv_rate, "binary loader must crush CSV"
            assert bin_rate > 1.5 * blk_rate, "flat load must beat blockstore"

        benchmark.pedantic(build_report, rounds=1, iterations=1)
