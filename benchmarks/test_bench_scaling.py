"""E8 — Scaling study (the [18] benchmark's dataset-size axis).

The van Oosterom benchmark the demo leans on runs the same queries over
AHN2 subsets of increasing size (20M -> 23090M points).  At simulator
scale we sweep 25k -> 400k points and report how load time, index size
and query latency grow per system.  The claims that must hold:

* flat-table load scales linearly with a small constant (appends);
* imprint size stays a constant small fraction of the data;
* imprint-filtered query time grows with the *result*, not the table,
  for fixed-selectivity queries (sub-linear in table size), while the
  full scan grows linearly.
"""

import numpy as np
import pytest

from repro.bench.harness import Report, best_of, timer
from repro.blockstore.store import BlockStore
from repro.core.query import SpatialSelect
from repro.engine.table import Table
from repro.gis.envelope import Box

from repro.datasets.lidar import generate_points, make_scene

EXTENT = Box(85_000, 445_000, 87_000, 447_000)
SIZES = (25_000, 100_000, 400_000)


def _build(n):
    scene = make_scene(EXTENT, seed=31)
    cloud = generate_points(scene, n, seed=31)
    table = Table("pts", [("x", "float64"), ("y", "float64"), ("z", "float64")])
    with timer() as t_load:
        table.append_columns(
            {"x": cloud["x"], "y": cloud["y"], "z": cloud["z"]}
        )
    select = SpatialSelect(table)
    # Fixed 1%-of-area query window at every size: constant selectivity.
    cx, cy = EXTENT.center
    half = EXTENT.width * 0.05
    window = Box(cx - half, cy - half, cx + half, cy + half)
    select.query(window)  # warm imprints
    return cloud, table, select, window, t_load.seconds


class TestScalingReport:
    def test_report_e8(self, benchmark):
        def build_report():
            report = Report(
                "E8",
                "scaling with dataset size (fixed 1% query window)",
                headers=[
                    "points",
                    "load ms",
                    "imprint bytes",
                    "imprint/data %",
                    "imprints ms",
                    "scan ms",
                    "blockstore load ms",
                    "blockstore query ms",
                ],
            )
            imprint_ms = {}
            scan_ms = {}
            load_s_by_n = {}
            overhead_by_n = {}
            for n in SIZES:
                cloud, table, select, window, load_s = _build(n)
                t_imp = best_of(lambda: select.query(window))
                t_scan = best_of(
                    lambda: select.query(window, use_imprints=False)
                )
                imprint_ms[n] = t_imp
                scan_ms[n] = t_scan
                load_s_by_n[n] = load_s
                imprint_bytes = select.manager.nbytes
                data_bytes = table.nbytes
                overhead_by_n[n] = imprint_bytes / data_bytes

                store = BlockStore(patch_size=4096, sort="morton")
                with timer() as t_blk:
                    store.load(
                        {"x": cloud["x"], "y": cloud["y"], "z": cloud["z"]}
                    )
                t_blkq = best_of(lambda: store.query(window))
                report.add_row(
                    n,
                    load_s * 1e3,
                    imprint_bytes,
                    f"{imprint_bytes / data_bytes * 100:.2f}",
                    t_imp * 1e3,
                    t_scan * 1e3,
                    t_blk.seconds * 1e3,
                    t_blkq * 1e3,
                )
            report.note(
                "at fixed relative selectivity both probe costs scale "
                "~linearly; the imprint advantage is the constant (bytes "
                "touched per point, cf. E4), and its size stays a "
                "constant few percent of the data"
            )
            report.emit()

            # Deterministic scaling claims (wall-clock at sub-ms scale is
            # noise): the index overhead stays a small constant fraction,
            # flat loading stays ~linear (appends), and the query side
            # never falls behind the scan by more than noise.
            assert all(o < 0.06 for o in overhead_by_n.values()), overhead_by_n
            size_growth = SIZES[-1] / SIZES[0]
            load_growth = load_s_by_n[SIZES[-1]] / max(
                load_s_by_n[SIZES[0]], 1e-9
            )
            assert load_growth < size_growth * 4
            assert imprint_ms[SIZES[-1]] < scan_ms[SIZES[-1]] * 2.0

        benchmark.pedantic(build_report, rounds=1, iterations=1)
