"""E5 — Grid refinement vs exhaustive point tests (paper Section 3.3).

Claims reproduced:

* "checking exhaustively each point is not desirable": the regular grid
  decides most candidate points wholesale, only boundary cells fall back
  to per-point tests;
* the win grows with polygon complexity (each exhaustive point test costs
  O(vertices); cell classification amortises it);
* cell-budget sweep: the ablation for DESIGN.md's grid-resolution choice.
"""

import numpy as np
import pytest

from repro.bench.harness import Report, best_of
from repro.bench.workloads import circle_polygon, irregular_polygon
from repro.core.refine import refine, refine_exhaustive
from repro.gis.envelope import Box


@pytest.fixture(scope="module")
def candidates(cloud, extent):
    """Candidate coordinates as the filter step would hand them over."""
    cx, cy = extent.center
    half = 0.35 * extent.width
    window = Box(cx - half, cy - half, cx + half, cy + half)
    mask = (
        (cloud["x"] >= window.xmin)
        & (cloud["x"] <= window.xmax)
        & (cloud["y"] >= window.ymin)
        & (cloud["y"] <= window.ymax)
    )
    return cloud["x"][mask], cloud["y"][mask]


def _polygons(extent):
    cx, cy = extent.center
    return {
        "square(5)": Box(
            cx - 0.2 * extent.width,
            cy - 0.2 * extent.height,
            cx + 0.2 * extent.width,
            cy + 0.2 * extent.height,
        ),
        "circle(32)": circle_polygon(cx, cy, 0.22 * extent.width, segments=32),
        "star(64)": irregular_polygon(cx, cy, 0.25 * extent.width, seed=5, vertices=64),
        "star(256)": irregular_polygon(
            cx, cy, 0.25 * extent.width, seed=6, vertices=256
        ),
    }


class TestRefinementBenchmarks:
    @pytest.mark.parametrize("shape", ["circle(32)", "star(256)"])
    def test_grid(self, benchmark, candidates, extent, shape):
        xs, ys = candidates
        poly = _polygons(extent)[shape]
        benchmark(lambda: refine(xs, ys, poly))

    @pytest.mark.parametrize("shape", ["circle(32)", "star(256)"])
    def test_exhaustive(self, benchmark, candidates, extent, shape):
        xs, ys = candidates
        poly = _polygons(extent)[shape]
        benchmark(lambda: refine_exhaustive(xs, ys, poly))


class TestRefinementReport:
    def test_report_e5(self, benchmark, candidates, extent):
        def build_report():
            xs, ys = candidates
            report = Report(
                "E5",
                f"grid refinement vs exhaustive ({xs.shape[0]} candidates)",
                headers=[
                    "geometry",
                    "grid ms",
                    "exhaustive ms",
                    "speedup",
                    "exact-tested %",
                ],
            )
            speedups = {}
            for name, poly in _polygons(extent).items():
                if isinstance(poly, Box):
                    continue  # boxes skip refinement entirely in the engine
                mask_grid, stats = refine(xs, ys, poly)
                mask_exh, _ = refine_exhaustive(xs, ys, poly)
                np.testing.assert_array_equal(mask_grid, mask_exh)
                t_grid = best_of(lambda: refine(xs, ys, poly))
                t_exh = best_of(lambda: refine_exhaustive(xs, ys, poly))
                speedups[name] = t_exh / t_grid
                report.add_row(
                    name,
                    t_grid * 1e3,
                    t_exh * 1e3,
                    f"{t_exh / t_grid:.1f}x",
                    f"{stats.exact_test_fraction * 100:.1f}",
                )
            report.note(
                "per-point tests cost O(vertices); the grid decides most "
                "points wholesale and keeps a 3-4x lead across shapes"
            )
            report.emit()
            assert all(s > 1.5 for s in speedups.values()), speedups

        benchmark.pedantic(build_report, rounds=1, iterations=1)

    def test_report_e5_cellsweep(self, benchmark, candidates, extent):
        def build_report():
            xs, ys = candidates
            poly = _polygons(extent)["star(64)"]
            report = Report(
                "E5b",
                "refinement grid-resolution sweep (star(64) polygon)",
                headers=[
                    "target cells",
                    "ms",
                    "boundary cells",
                    "exact-tested %",
                ],
            )
            for cells in (16, 64, 256, 1024, 4096, 16384):
                mask, stats = refine(xs, ys, poly, target_cells=cells)
                t = best_of(lambda: refine(xs, ys, poly, target_cells=cells))
                report.add_row(
                    cells,
                    t * 1e3,
                    stats.boundary_cells,
                    f"{stats.exact_test_fraction * 100:.1f}",
                )
            report.note(
                "finer grids shrink the exhaustively tested share until "
                "classification cost dominates (the 1024-cell default)"
            )
            report.emit()

        benchmark.pedantic(build_report, rounds=1, iterations=1)
