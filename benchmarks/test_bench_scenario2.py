"""E6 — Scenario 2: ad-hoc spatio-thematic SQL (paper Section 4.2).

The demo's second scenario runs "complex queries over multiple datasets",
exercising the full stack: the SQL layer, the imprints push-down, and the
LIDAR x OSM x Urban Atlas joins.  The two queries quoted verbatim in the
paper are reproduced, plus four more ad-hoc queries of the kind the demo
invites the audience to write.  Correctness is cross-checked against
direct engine computation; timing contrasts the push-down against the
same query with the fast path disabled (pure scan).
"""

import numpy as np
import pytest

from repro.bench.harness import Report, best_of
from repro.core.imprints import ImprintsManager
from repro.datasets.osm import generate_osm
from repro.datasets.urbanatlas import FAST_TRANSIT, generate_urban_atlas
from repro.engine.table import Table
from repro.gis.predicates import points_satisfy
from repro.sql.executor import Session
from repro.sql.helpers import register_osm, register_urban_atlas


@pytest.fixture(scope="module")
def scenario(cloud, extent):
    """The three-dataset world of the demo, registered in one session."""
    table = Table(
        "lidar",
        [
            ("x", "float64"),
            ("y", "float64"),
            ("z", "float64"),
            ("classification", "uint8"),
            ("intensity", "uint16"),
        ],
    )
    table.append_columns(
        {
            "x": cloud["x"],
            "y": cloud["y"],
            "z": cloud["z"],
            "classification": cloud["classification"],
            "intensity": cloud["intensity"],
        }
    )
    # The UA layout must share the cloud's terrain (seed 7 in conftest) so
    # water zones actually cover the water returns.
    from repro.datasets.lidar import make_scene

    scene = make_scene(extent, seed=7)
    osm = generate_osm(extent, seed=5)
    ua = generate_urban_atlas(extent, terrain=scene.terrain, osm=osm, seed=5)

    session = Session(manager=ImprintsManager())
    session.register_table(table)
    register_osm(session, osm)
    register_urban_atlas(session, ua)
    return session, table, osm, ua


#: The paper's two Scenario-2 queries plus four audience-style ad-hoc ones.
QUERIES = {
    "points_near_fast_transit": (
        "SELECT count(*) FROM lidar l, ua_zones u WHERE u.code = 12210 "
        "AND ST_DWithin(u.geom, ST_Point(l.x, l.y), 20)"
    ),
    "avg_elev_near_fast_transit": (
        "SELECT avg(l.z) FROM lidar l, ua_zones u WHERE u.code = 12210 "
        "AND ST_DWithin(u.geom, ST_Point(l.x, l.y), 20)"
    ),
    "buildings_per_landuse": (
        "SELECT u.code, count(*) FROM lidar l, ua_zones u "
        "WHERE l.classification = 6 "
        "AND ST_Contains(u.geom, ST_Point(l.x, l.y)) GROUP BY u.code"
    ),
    "max_elev_near_motorways": (
        "SELECT max(l.z) FROM lidar l, roads r WHERE r.class = 1 "
        "AND ST_DWithin(r.geom, ST_Point(l.x, l.y), 30)"
    ),
    "water_points_in_water_zones": (
        "SELECT count(*) FROM lidar l, ua_zones u WHERE u.code = 51000 "
        "AND l.classification = 9 "
        "AND ST_Contains(u.geom, ST_Point(l.x, l.y))"
    ),
    "high_intensity_histogram": (
        "SELECT l.classification, count(*), avg(l.intensity) FROM lidar l "
        "WHERE l.intensity > 1200 GROUP BY l.classification"
    ),
}


class TestScenario2Benchmarks:
    @pytest.mark.parametrize(
        "name", ["points_near_fast_transit", "buildings_per_landuse"]
    )
    def test_query(self, benchmark, scenario, name):
        session, *_ = scenario
        benchmark.pedantic(
            lambda: session.execute(QUERIES[name]), rounds=3, iterations=1
        )


class TestScenario2Report:
    def test_report_e6(self, benchmark, scenario, cloud):
        session, table, osm, ua = scenario

        def build_report():
            report = Report(
                "E6",
                "Scenario 2: spatio-thematic SQL over LIDAR x OSM x UA",
                headers=["query", "ms (best of 3)", "answer"],
            )
            for name, sql in QUERIES.items():
                result = session.execute(sql)
                t = best_of(lambda: session.execute(sql), repeats=3)
                if len(result.rows) == 1 and len(result.columns) == 1:
                    answer = result.rows[0][0]
                    answer = (
                        f"{answer:.3f}"
                        if isinstance(answer, float)
                        else str(answer)
                    )
                else:
                    answer = f"{len(result.rows)} groups"
                report.add_row(name, t * 1e3, answer)
            report.emit()

            # Cross-check the paper's first query against a direct
            # engine-level computation.
            transit = [z for z in ua.zones if z.code == FAST_TRANSIT]
            expected = 0
            seen = np.zeros(cloud["x"].shape[0], dtype=bool)
            for zone in transit:
                hit = points_satisfy(
                    cloud["x"], cloud["y"], zone.geometry, "dwithin", 20.0
                )
                expected += int(hit.sum())
            got = session.execute(
                QUERIES["points_near_fast_transit"]
            ).scalar()
            assert got == expected

            # And the second: avg elevation over the same point set.
            zs, counts = [], 0
            for zone in transit:
                hit = points_satisfy(
                    cloud["x"], cloud["y"], zone.geometry, "dwithin", 20.0
                )
                zs.append(cloud["z"][hit].sum())
                counts += int(hit.sum())
            want_avg = sum(zs) / counts
            got_avg = session.execute(
                QUERIES["avg_elev_near_fast_transit"]
            ).scalar()
            assert got_avg == pytest.approx(want_avg)

        benchmark.pedantic(build_report, rounds=1, iterations=1)
