"""E2 — Storage footprint (paper Sections 3.1-3.2, [18]).

Claims reproduced:

* column imprints cost only a few percent of the indexed columns
  ("Imprints storage comes with a 5-12% storage overhead");
* the flat table plus imprints is storage-competitive: less total space
  than uncompressed blocks, in the same league as compressed blocks;
* LAZ-style archives are the smallest at-rest format (but must be
  decompressed to query);
* columnar compression (RLE/dict/FOR) shrinks the low-cardinality LAS
  property columns dramatically (Section 3.1's flexibility argument).
"""

import numpy as np
import pytest

from repro.bench.harness import Report
from repro.blockstore.store import BlockStore
from repro.core.imprints import ColumnImprints
from repro.engine.column import Column
from repro.engine.compression import best_scheme
from repro.las.laz import write_laz
from repro.las.writer import write_las


class TestImprintOverheadBench:
    def test_imprint_build(self, benchmark, cloud):
        col = Column.from_array("x", cloud["x"])
        benchmark(lambda: ColumnImprints(col))


class TestStorageReport:
    def test_report_e2(self, benchmark, cloud, flat_db, tmp_path):
        def build_report():
            n = cloud["x"].shape[0]
            report = Report(
                "E2",
                "storage footprint & imprint overhead",
                headers=["representation", "bytes", "bytes/point", "notes"],
            )

            table = flat_db.table("ahn2")
            flat_bytes = table.nbytes
            imprint_bytes = flat_db.storage_report()["ahn2"]["imprint_bytes"]
            report.add_row(
                "flat table (26 columns)",
                flat_bytes,
                flat_bytes / n,
                "uncompressed columns",
            )
            report.add_row(
                "  + imprints (x, y)",
                imprint_bytes,
                imprint_bytes / n,
                "secondary index",
            )

            # Per-column imprint overhead: the paper's 5-12% claim.
            overheads = {}
            for name in ("x", "y", "z", "gps_time"):
                col = Column.from_array(name, cloud[name])
                imp = ColumnImprints(col)
                overheads[name] = imp.stats().overhead
            for name, overhead in overheads.items():
                report.add_row(
                    f"imprint overhead on {name!r}",
                    "",
                    "",
                    f"{overhead * 100:.1f}% of column",
                )

            # Block stores (sorted and unsorted).
            batch = {k: cloud[k] for k in ("x", "y", "z", "intensity")}
            raw_subset = sum(np.asarray(v).nbytes for v in batch.values())
            sorted_store = BlockStore(patch_size=4096, sort="hilbert")
            sorted_store.load(batch)
            unsorted_store = BlockStore(patch_size=4096, sort=None)
            unsorted_store.load(batch)
            # Unclustered input: what the sort is for (load order is already
            # flightline-clustered, so shuffle to isolate the effect).
            rng = np.random.default_rng(0)
            perm = rng.permutation(n)
            shuffled_store = BlockStore(patch_size=4096, sort=None)
            shuffled_store.load({k: np.asarray(v)[perm] for k, v in batch.items()})
            report.add_row(
                "blockstore compressed (hilbert)",
                sorted_store.nbytes,
                sorted_store.nbytes / n,
                f"vs {raw_subset} raw bytes of same 4 dims",
            )
            report.add_row(
                "blockstore compressed (load order)",
                unsorted_store.nbytes,
                unsorted_store.nbytes / n,
                "flightline-clustered input",
            )
            report.add_row(
                "blockstore compressed (shuffled)",
                shuffled_store.nbytes,
                shuffled_store.nbytes / n,
                "unclustered input, no sort",
            )

            # File formats.
            las_path = tmp_path / "e2.las"
            laz_path = tmp_path / "e2.laz"
            write_las(las_path, cloud)
            write_laz(laz_path, cloud)
            las_bytes = las_path.stat().st_size
            laz_bytes = laz_path.stat().st_size
            report.add_row("LAS file (format 3)", las_bytes, las_bytes / n, "")
            report.add_row("LAZ-like file", laz_bytes, laz_bytes / n, "")

            # Columnar compression on flat columns (Section 3.1).
            for name in ("classification", "return_number", "intensity"):
                block = best_scheme(np.asarray(cloud[name]))
                raw = np.asarray(cloud[name]).nbytes
                report.add_row(
                    f"column {name!r} via {block.scheme}",
                    block.nbytes,
                    block.nbytes / n,
                    f"{raw / block.nbytes:.1f}x smaller",
                )

            total_overhead = imprint_bytes / (2 * n * 8)
            report.note(
                f"imprints on x+y cost {total_overhead * 100:.1f}% of the "
                f"indexed column bytes (paper claims 5-12%)"
            )
            report.emit()

            # Assertions for the claims.
            for name, overhead in overheads.items():
                assert overhead < 0.15, f"imprint overhead on {name} too big"
            assert laz_bytes < las_bytes
            # Spatial sorting pays off on unclustered input (Section 2.3).
            assert sorted_store.nbytes < shuffled_store.nbytes

        benchmark.pedantic(build_report, rounds=1, iterations=1)
