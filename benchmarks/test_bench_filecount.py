"""E10 — The many-files problem (paper Section 2.2, [18]).

"[AHN2] is stored and distributed in more than 60,000 LAZ files.  It is
already a large amount of files to be inspected for a simple selection
... the authors for LAStools had to use a DBMS to store the metadata of
each file in order to avoid the inspection of each file header."

This bench sweeps the tile count at constant total points and measures
the per-query pruning cost of the two catalog regimes plus the DBMS
(which has no per-file cost at all once loaded).  Claims:

* header-inspection pruning grows linearly with the file count;
* the metadata DB keeps pruning cheap (the [18] workaround);
* the flat-table DBMS is flat in the file count by construction.
"""

import numpy as np
import pytest

from repro.bench.harness import Report, best_of
from repro.datasets.lidar import generate_points, make_scene, write_cloud_tiles
from repro.gis.envelope import Box
from repro.lastools.catalog import FileCatalog

EXTENT = Box(85_000, 445_000, 87_000, 447_000)
TOTAL_POINTS = 60_000
FILE_COUNTS = (16, 64, 256)


@pytest.fixture(scope="module")
def tile_sets(tmp_path_factory):
    scene = make_scene(EXTENT, seed=41)
    cloud = generate_points(scene, TOTAL_POINTS, seed=41)
    sets = {}
    for n_files in FILE_COUNTS:
        side = int(np.sqrt(n_files))
        directory = tmp_path_factory.mktemp(f"files_{n_files}")
        write_cloud_tiles(directory, cloud, EXTENT, side, side)
        sets[n_files] = directory
    return sets


class TestFileCountBenchmarks:
    @pytest.mark.parametrize("n_files", [16, 256])
    def test_header_mode_prune(self, benchmark, tile_sets, n_files):
        catalog = FileCatalog(tile_sets[n_files], mode="headers")
        query = Box(85_900, 445_900, 86_100, 446_100)
        benchmark(lambda: catalog.files_intersecting(query))

    @pytest.mark.parametrize("n_files", [16, 256])
    def test_metadata_mode_prune(self, benchmark, tile_sets, n_files):
        catalog = FileCatalog(tile_sets[n_files], mode="metadata")
        query = Box(85_900, 445_900, 86_100, 446_100)
        benchmark(lambda: catalog.files_intersecting(query))


class TestFileCountReport:
    def test_report_e10(self, benchmark, tile_sets):
        def build_report():
            report = Report(
                "E10",
                "pruning cost vs file count (60k points, constant)",
                headers=[
                    "files",
                    "header-mode prune ms",
                    "metadata prune ms",
                    "metadata build ms (one-off)",
                ],
            )
            query = Box(85_900, 445_900, 86_100, 446_100)
            header_ms = {}
            for n_files, directory in tile_sets.items():
                headers_catalog = FileCatalog(directory, mode="headers")
                t_headers = best_of(
                    lambda: headers_catalog.files_intersecting(query)
                )
                header_ms[n_files] = t_headers

                meta_catalog = FileCatalog(directory, mode="metadata")
                t_build = best_of(meta_catalog.rebuild_metadata, repeats=1)
                t_meta = best_of(
                    lambda: meta_catalog.files_intersecting(query)
                )
                report.add_row(
                    n_files, t_headers * 1e3, t_meta * 1e3, t_build * 1e3
                )
            report.note(
                "header inspection pays one open+read per file per query; "
                "the metadata DB amortises it into a one-off build — the "
                "[18] workaround the flat-table DBMS never needs"
            )
            report.emit()

            # Linear growth of header-mode pruning with the file count.
            growth = header_ms[FILE_COUNTS[-1]] / header_ms[FILE_COUNTS[0]]
            assert growth > (FILE_COUNTS[-1] / FILE_COUNTS[0]) * 0.3

        benchmark.pedantic(build_report, rounds=1, iterations=1)
