"""E7 — Thread scaling of the morsel-driven query path.

E4-style range queries (three rectangle selectivities plus a corridor)
run at 1/2/4/8 threads against the flat+imprints system.  Results land
in ``BENCH_parallel.json`` at the repo root (and in ``REPRO_BENCH_DIR``
when set) as machine-readable JSON, including the machine's core count —
on a 1-core container the honest speedup is ~1x and the report says so.

Correctness across thread counts is asserted here too (identical result
counts), though the exhaustive sweep lives in ``tests/test_parallel.py``.
"""

import os
from pathlib import Path

from repro.bench.parallel_scaling import (
    DEFAULT_THREADS,
    machine_info,
    metrics_snapshot,
    sweep,
    write_report,
)
from repro.bench.workloads import standard_queries

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_NAMES = ["rect_small", "rect_medium", "rect_large", "corridor_narrow"]
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def test_thread_scaling_report(flat_db, extent):
    specs = [
        s for s in standard_queries(extent, seed=3) if s.name in BENCH_NAMES
    ]

    queries = []
    for spec in specs:
        counts = {}

        def run(threads, spec=spec, counts=counts):
            result = flat_db.spatial_select(
                "ahn2",
                spec.geometry,
                spec.predicate,
                spec.distance,
                threads=threads,
            )
            counts[threads] = int(result.oids.shape[0])
            return result

        rows = sweep(run, DEFAULT_THREADS, repeats=REPEATS)
        # Parallel execution must not change the answer.
        assert len(set(counts.values())) == 1, counts
        queries.append(
            {
                "name": spec.name,
                "predicate": spec.predicate,
                "result_rows": counts[1],
                "timings": rows,
            }
        )

    payload = {
        "experiment": "thread_scaling",
        "workload": "van Oosterom range queries (E4-style)",
        "n_points": len(flat_db.table("ahn2")),
        "thread_counts": list(DEFAULT_THREADS),
        "repeats": REPEATS,
        "machine": machine_info(),
        "queries": queries,
        "metrics": metrics_snapshot(),
    }
    out = write_report(REPO_ROOT / "BENCH_parallel.json", payload)
    if os.environ.get("REPRO_BENCH_DIR"):
        write_report(
            Path(os.environ["REPRO_BENCH_DIR"]) / "BENCH_parallel.json", payload
        )
    assert out.exists()

    for query in queries:
        by_threads = {r["threads"]: r for r in query["timings"]}
        assert by_threads[1]["speedup"] == 1.0
        # On multi-core hardware the 4-thread run should show real
        # scaling; on fewer cores there is nothing to scale onto, so
        # only require that parallelism is not a regression.
        if machine_info()["hardware_threads"] >= 4:
            assert by_threads[4]["speedup"] >= 1.2, query
        else:
            assert by_threads[4]["speedup"] >= 0.5, query
