"""E4 — Imprint robustness & compression (paper Section 2.1.1, [16]).

Claims reproduced:

* the cacheline dictionary compresses dramatically on sorted/clustered
  data ("local clustering or partial ordering as a side effect of the
  construction process");
* imprints "remain effective and robust even in the case of unclustered
  data, while other state-of-the-art solutions fail": zonemaps collapse to
  full scans on shuffled data, imprints keep pruning;
* the imprint filter's touched-data fraction tracks query selectivity.
"""

import numpy as np
import pytest

from repro.bench.harness import Report, best_of
from repro.core.imprints import ColumnImprints
from repro.engine.column import Column
from repro.engine.select import range_select
from repro.engine.stats import ZoneMap

N = 500_000


def _datasets():
    rng = np.random.default_rng(13)
    sorted_vals = np.sort(rng.uniform(0, 1e6, N))
    clustered = sorted_vals + rng.normal(0, 500.0, N)  # locally ordered
    shuffled = sorted_vals.copy()
    rng.shuffle(shuffled)
    return {
        "sorted": sorted_vals,
        "clustered": clustered,
        "shuffled": shuffled,
    }


@pytest.fixture(scope="module")
def datasets():
    return _datasets()


class TestImprintBenchmarks:
    @pytest.mark.parametrize("layout", ["sorted", "clustered", "shuffled"])
    def test_build(self, benchmark, datasets, layout):
        col = Column.from_array("v", datasets[layout])
        benchmark(lambda: ColumnImprints(col))

    @pytest.mark.parametrize("layout", ["sorted", "clustered", "shuffled"])
    def test_query(self, benchmark, datasets, layout):
        col = Column.from_array("v", datasets[layout])
        imp = ColumnImprints(col)
        benchmark(lambda: imp.query(400_000, 410_000))


class TestImprintReport:
    def test_report_e4(self, benchmark, datasets):
        def build_report():
            report = Report(
                "E4",
                "imprint robustness vs data layout (500k doubles)",
                headers=[
                    "layout",
                    "dict compression",
                    "overhead %",
                    "imprint scanned %",
                    "zonemap scanned %",
                    "imprint ms",
                    "zonemap ms",
                    "scan ms",
                ],
            )
            lo, hi = 400_000, 410_000  # a 1% range
            scanned = {}
            for layout, values in datasets.items():
                col = Column.from_array("v", values)
                imp = ColumnImprints(col)
                zm = ZoneMap(col, chunk_rows=1024)
                stats = imp.stats()
                np.testing.assert_array_equal(
                    np.sort(imp.query(lo, hi)), np.sort(zm.query(lo, hi))
                )
                t_imp = best_of(lambda: imp.query(lo, hi))
                t_zm = best_of(lambda: zm.query(lo, hi))
                t_scan = best_of(lambda: range_select(col, lo, hi))
                scanned[layout] = (
                    imp.scanned_fraction(lo, hi),
                    zm.scanned_fraction(lo, hi),
                )
                report.add_row(
                    layout,
                    f"{stats.dict_compression:.1f}x",
                    f"{stats.overhead * 100:.1f}",
                    f"{scanned[layout][0] * 100:.2f}",
                    f"{scanned[layout][1] * 100:.2f}",
                    t_imp * 1e3,
                    t_zm * 1e3,
                    t_scan * 1e3,
                )
            report.note(
                "imprints keep pruning on shuffled data; zonemaps degrade "
                "to full scans (the [16] robustness claim)"
            )
            report.emit()

            # Robustness claims asserted:
            imp_shuffled, zm_shuffled = scanned["shuffled"]
            assert zm_shuffled == 1.0, "zonemap must collapse on shuffled data"
            assert imp_shuffled < 0.5, "imprints must keep pruning"
            assert imp_shuffled < zm_shuffled / 2
            assert scanned["sorted"][0] < 0.05

        benchmark.pedantic(build_report, rounds=1, iterations=1)

    def test_report_e4_selectivity(self, benchmark, datasets):
        def build_report():
            report = Report(
                "E4b",
                "imprint touched fraction vs selectivity (clustered layout)",
                headers=["range %", "candidates %", "false-positive rate %"],
            )
            col = Column.from_array("v", datasets["clustered"])
            imp = ColumnImprints(col)
            for fraction in (0.0001, 0.001, 0.01, 0.1, 0.5):
                span = 1e6 * fraction
                lo = 500_000 - span / 2
                hi = 500_000 + span / 2
                report.add_row(
                    fraction * 100,
                    imp.scanned_fraction(lo, hi) * 100,
                    imp.false_positive_rate(lo, hi) * 100,
                )
            report.emit()

        benchmark.pedantic(build_report, rounds=1, iterations=1)
