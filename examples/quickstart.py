#!/usr/bin/env python3
"""Quickstart: load a LIDAR cloud, query it three ways, see the stats.

This walks the paper's pipeline end to end on a small synthetic tile:

1. generate an AHN2-like point cloud and write it as LAS files;
2. bulk-load it into the flat 26-column table (binary loader);
3. run a spatial selection — the first range query builds the column
   imprints as a side effect (Section 3.2);
4. run the same region as SQL, including a thematic filter;
5. print where the time went (filter vs refinement) and what the
   imprints cost in storage.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import Box, PointCloudDB, geometry_from_wkt
from repro.datasets.lidar import write_cloud_tiles
from repro.datasets.lidar import generate_points, make_scene

EXTENT = Box(85_000, 445_000, 86_000, 446_000)  # a 1 km x 1 km Dutch tile


def main() -> None:
    # 1. A synthetic survey, shipped as a 2x2 grid of LAS files.
    scene = make_scene(EXTENT, seed=1)
    cloud = generate_points(scene, 100_000, seed=1)
    tile_dir = Path(tempfile.mkdtemp(prefix="repro_quickstart_"))
    paths = write_cloud_tiles(tile_dir, cloud, EXTENT, 2, 2)
    print(f"wrote {len(paths)} LAS tiles to {tile_dir}")

    # 2. Load into the flat table.
    db = PointCloudDB()
    db.create_pointcloud("ahn2")
    stats = db.load_las("ahn2", paths)
    print(
        f"loaded {stats.n_points} points from {stats.n_files} files "
        f"in {stats.seconds:.3f}s ({stats.points_per_second:,.0f} pts/s)"
    )

    # 3. A spatial selection: a polygon around the tile centre.
    polygon = geometry_from_wkt(
        "POLYGON ((85300 445300, 85700 445350, 85650 445700, 85350 445650,"
        " 85300 445300))"
    )
    result = db.spatial_select("ahn2", polygon)
    q = result.stats
    print(f"\npolygon query -> {len(result)} points")
    print(
        f"  filter:  {q.filter_seconds * 1e3:.2f} ms, "
        f"{q.n_filter_candidates} candidates "
        f"({q.filter_selectivity * 100:.1f}% of the table)"
    )
    print(
        f"  refine:  {q.refine_seconds * 1e3:.2f} ms, "
        f"{q.refine_stats.boundary_cells} boundary cells, "
        f"{q.refine_stats.exact_test_fraction * 100:.1f}% of candidates "
        f"tested point-by-point"
    )

    # 4. The same region through SQL, with a thematic twist.
    wkt = polygon.wkt()
    rows = db.sql(
        f"SELECT classification, count(*) AS n, avg(z) AS mean_z "
        f"FROM ahn2 WHERE ST_Contains(ST_GeomFromText('{wkt}'), "
        f"ST_Point(x, y)) GROUP BY classification"
    )
    print("\nper-class breakdown inside the polygon (SQL):")
    for cls, n, mean_z in rows.rows:
        print(f"  class {cls:2d}: {n:6d} points, mean elevation {mean_z:7.2f} m")

    # 5. What did the secondary index cost?
    report = db.storage_report()["ahn2"]
    print(
        f"\nstorage: {report['column_bytes']:,} column bytes, "
        f"{report['imprint_bytes']:,} imprint bytes "
        f"({report['imprint_bytes'] / max(report['column_bytes'], 1) * 100:.2f}% "
        f"of the whole table)"
    )


if __name__ == "__main__":
    main()
