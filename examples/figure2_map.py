#!/usr/bin/env python3
"""Figure 2 reproduction: roads, rivers and land cover.

Renders the synthetic OpenStreetMap + Urban Atlas bundle the way the
paper's Figure 2 shows the real datasets: land-use fills underneath, the
road network (coloured by class) and rivers on top, POIs as dots.

Run:  python examples/figure2_map.py [output.ppm]
"""

import sys

from repro import Box
from repro.datasets.osm import generate_osm
from repro.datasets.terrain import generate_terrain
from repro.datasets.urbanatlas import UA_CODES, generate_urban_atlas
from repro.viz.render import render_basemap

EXTENT = Box(85_000, 445_000, 87_000, 447_000)


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "figure2.ppm"

    terrain = generate_terrain(EXTENT, order=7, seed=6)
    osm = generate_osm(EXTENT, grid=7, n_rivers=2, n_pois=80, seed=6)
    ua = generate_urban_atlas(
        EXTENT, terrain=terrain, osm=osm, grid=32, seed=6
    )

    canvas = render_basemap(osm=osm, urban_atlas=ua, width=700)
    path = canvas.write_ppm(out)
    print(f"figure 2 written to {path} ({canvas.width}x{canvas.height})")

    print("\nlayer inventory:")
    print(f"  roads:  {len(osm.roads)} segments in 4 classes")
    print(f"  rivers: {len(osm.rivers)}")
    print(f"  POIs:   {len(osm.pois)}")
    print(f"  zones:  {len(ua.zones)} across {len({z.code for z in ua.zones})} UA codes:")
    for code in sorted({z.code for z in ua.zones}):
        total = sum(z.area for z in ua.zones if z.code == code)
        print(f"    {code}  {UA_CODES[code]:<42s} {total / 1e6:6.2f} km²")


if __name__ == "__main__":
    main()
