#!/usr/bin/env python3
"""Elevation products: DSM / DTM / CHM / hillshade from the point cloud.

Airborne LIDAR exists to build "digital surface or elevation models"
(paper Section 1).  This example derives all of them from a synthetic
AHN2 tile with the columnar rasteriser and writes each as a grayscale
PGM plus a hillshaded PPM:

    dsm.pgm        highest return per cell (terrain+buildings+canopy)
    dtm.pgm        ground-only, hole-filled under buildings
    chm.pgm        canopy/building height (DSM - DTM)
    hillshade.ppm  sun-lit rendering of the DSM

Run:  python examples/elevation_models.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import Box
from repro.core.rasterize import chm, dsm, dtm, hillshade
from repro.datasets.lidar import generate_points, make_scene
from repro.viz.raster import Canvas

EXTENT = Box(85_000, 445_000, 86_000, 446_000)
CELL = 4.0  # metres


def grid_to_pgm(grid, path: Path) -> None:
    """Normalise an elevation grid to 8-bit gray and write a PGM."""
    values = grid.values
    finite = np.isfinite(values)
    lo = values[finite].min() if finite.any() else 0.0
    hi = values[finite].max() if finite.any() else 1.0
    span = max(hi - lo, 1e-9)
    gray = np.zeros(values.shape, dtype=np.uint8)
    gray[finite] = ((values[finite] - lo) / span * 255).astype(np.uint8)
    with open(path, "wb") as fh:
        fh.write(f"P5\n{gray.shape[1]} {gray.shape[0]}\n255\n".encode())
        fh.write(gray[::-1].tobytes())  # north-up image


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    scene = make_scene(EXTENT, seed=8, n_buildings=50, n_canopies=140)
    cloud = generate_points(scene, 500_000, seed=8)
    print(f"generated {cloud['x'].shape[0]} points")

    surface = dsm(cloud["x"], cloud["y"], cloud["z"], EXTENT, CELL)
    terrain = dtm(
        cloud["x"], cloud["y"], cloud["z"], cloud["classification"], EXTENT, CELL
    )
    canopy = chm(
        cloud["x"], cloud["y"], cloud["z"], cloud["classification"], EXTENT, CELL
    )
    print(
        f"DSM coverage {surface.coverage * 100:.1f}%, "
        f"DTM coverage {terrain.coverage * 100:.1f}% (after hole filling), "
        f"CHM max {np.nanmax(canopy.values):.1f} m"
    )

    grid_to_pgm(surface, out_dir / "dsm.pgm")
    grid_to_pgm(terrain, out_dir / "dtm.pgm")
    grid_to_pgm(canopy, out_dir / "chm.pgm")

    # Hillshaded DSM as a colour rendering.
    shade = hillshade(surface, azimuth_deg=315, altitude_deg=40)
    canvas = Canvas(EXTENT, width=shade.shape[1], height=shade.shape[0])
    rgb = (shade[::-1, :, None] * np.array([255, 246, 225])).astype(np.uint8)
    canvas.pixels[:] = rgb
    canvas.write_ppm(out_dir / "hillshade.ppm")
    print(f"wrote dsm/dtm/chm.pgm and hillshade.ppm to {out_dir}/")


if __name__ == "__main__":
    main()
