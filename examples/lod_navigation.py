#!/usr/bin/env python3
"""GIS navigation: pan/zoom over the cloud with a fixed point budget.

The paper is about *navigation* — interactively exploring a 640-billion
point dataset.  No viewport can draw that many points, so this example
shows the level-of-detail machinery: an importance-ordered point pyramid
whose every prefix is a spatially uniform subsample.  A simulated zoom
sequence renders three viewports with the SAME point budget; detail
appears as the view narrows, exactly like a point-cloud viewer.

Run:  python examples/lod_navigation.py [output_dir]
"""

import sys
import time
from pathlib import Path

from repro import Box
from repro.datasets.lidar import generate_points, make_scene
from repro.viz.lod import build_pyramid, uniformity
from repro.viz.render import render_pointcloud

EXTENT = Box(85_000, 445_000, 87_000, 447_000)
BUDGET = 60_000  # points per frame: a "screen" worth


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    scene = make_scene(EXTENT, seed=12, n_buildings=60)
    cloud = generate_points(scene, 1_000_000, seed=12)
    print(f"cloud: {cloud['x'].shape[0]:,} points")

    t0 = time.perf_counter()
    pyramid = build_pyramid(cloud["x"], cloud["y"])
    print(
        f"pyramid: {pyramid.n_levels} levels in "
        f"{time.perf_counter() - t0:.2f}s; "
        f"level sizes {pyramid.level_sizes}"
    )

    views = {
        "overview": EXTENT,
        "city": Box(85_400, 445_400, 86_200, 446_200),
        "street": Box(85_700, 445_700, 85_900, 445_900),
    }
    for name, viewport in views.items():
        t0 = time.perf_counter()
        picked = pyramid.for_viewport(viewport, BUDGET)
        frame = {
            "x": cloud["x"][picked],
            "y": cloud["y"][picked],
            "z": cloud["z"][picked],
            "classification": cloud["classification"][picked],
        }
        canvas = render_pointcloud(frame, extent=viewport, width=512)
        path = canvas.write_ppm(out_dir / f"nav_{name}.ppm")
        density = picked.shape[0] / max(viewport.area, 1e-9) * 1e6
        print(
            f"{name:>9s}: {picked.shape[0]:6d} points drawn "
            f"({density:8.1f} pts/km^2 apparent), uniformity "
            f"{uniformity(frame['x'], frame['y'], viewport) * 100:5.1f}%, "
            f"frame {((time.perf_counter() - t0) * 1e3):6.1f} ms -> {path}"
        )

    print(
        "\nsame budget, three zoom levels: the street view draws "
        f"~{(views['overview'].area / views['street'].area):.0f}x denser "
        "detail from the same pyramid."
    )


if __name__ == "__main__":
    main()
