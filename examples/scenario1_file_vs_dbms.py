#!/usr/bin/env python3
"""Scenario 1 (paper Section 4.1): file-based vs DBMS, side by side.

The demo's first scenario compares the two worlds on the same data:

* **functional** — the file-based toolchain answers "points in a region";
  the DBMS answers arbitrary predicates over any column combination;
* **performance** — the same selection, timed on LAStools-style files
  (catalog + .lax quadtree), the block store, and the flat-table +
  imprints DBMS.

Run:  python examples/scenario1_file_vs_dbms.py
"""

import tempfile
import time
from pathlib import Path

from repro import Box, PointCloudDB
from repro.bench.workloads import circle_polygon
from repro.blockstore.store import BlockStore
from repro.datasets.lidar import generate_points, make_scene, write_cloud_tiles
from repro.lastools.clip import LasClip

EXTENT = Box(85_000, 445_000, 87_000, 447_000)
N_POINTS = 150_000


def timed(label, fn):
    start = time.perf_counter()
    out = fn()
    print(f"  {label:<38s} {(time.perf_counter() - start) * 1e3:8.2f} ms")
    return out


def main() -> None:
    print("generating the shared dataset...")
    scene = make_scene(EXTENT, seed=3)
    cloud = generate_points(scene, N_POINTS, seed=3)

    tile_dir = Path(tempfile.mkdtemp(prefix="repro_scenario1_"))
    write_cloud_tiles(tile_dir, cloud, EXTENT, 4, 4)

    # The three systems, loaded from the same points.
    print("\nloading the three systems:")
    clip = LasClip(tile_dir, catalog_mode="metadata", use_index=True)
    timed("lastools: lasindex over all tiles", lambda: clip.build_indexes())

    store = BlockStore(patch_size=4096, sort="morton")
    timed(
        "blockstore: sort + block + compress",
        lambda: store.load({k: cloud[k] for k in ("x", "y", "z", "classification")}),
    )

    db = PointCloudDB()
    db.create_pointcloud("ahn2")
    timed("flat table: binary bulk load", lambda: db.load_points("ahn2", cloud))
    # MonetDB builds imprints on the first range query; trigger that
    # one-time cost here so the per-query timings below are comparable
    # with the pre-indexed baselines.
    timed(
        "flat table: lazy imprint build (1st query)",
        lambda: db.spatial_select("ahn2", Box(85_000, 445_000, 85_001, 447_000)),
    )

    # -- performance comparison --------------------------------------------
    queries = {
        "small box (0.1% of area)": Box(85_900, 445_900, 85_963, 445_963),
        "city-sized box (4%)": Box(85_500, 445_500, 85_900, 445_900),
        "circular region": circle_polygon(86_000, 446_000, 180.0),
    }
    for name, geometry in queries.items():
        print(f"\nquery: select all LIDAR points within {name}")
        out_f, stats_f = timed(
            "  file-based (lasclip)", lambda: clip.query(geometry)
        )
        out_b, stats_b = timed(
            "  block store", lambda: store.query(geometry)
        )
        result = timed(
            "  flat table + imprints", lambda: db.spatial_select("ahn2", geometry)
        )
        print(
            f"    results: files={stats_f.n_results} "
            f"blocks={stats_b.n_results} dbms={len(result)} "
            f"(files read: {stats_f.files_read}/{stats_f.files_considered}, "
            f"patches touched: "
            f"{stats_b.patches_inside + stats_b.patches_boundary}/"
            f"{stats_b.patches_total})"
        )

    # -- functional comparison ----------------------------------------------
    print("\nfunctional gap: a query only the DBMS can express")
    print("  'per flightline: how many strong ground/building returns in")
    print("   the circle, and their mean elevation'")
    wkt = circle_polygon(86_000, 446_000, 180.0).wkt()
    rows = db.sql(
        f"SELECT point_source_id, count(*) AS n, avg(z) AS mean_z "
        f"FROM ahn2 WHERE classification IN (2, 6) AND intensity > 600 AND "
        f"ST_Contains(ST_GeomFromText('{wkt}'), ST_Point(x, y)) "
        f"GROUP BY point_source_id ORDER BY n DESC LIMIT 5"
    )
    for source, n, mean_z in rows.rows:
        print(f"    flightline {source}: {n:5d} points, mean elevation {mean_z:.2f} m")
    print(
        "  (the file-based tool would need a full decode + external "
        "scripting for the same answer)"
    )


if __name__ == "__main__":
    main()
