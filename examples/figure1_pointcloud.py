#!/usr/bin/env python3
"""Figure 1 reproduction: the LIDAR point cloud visualisation.

Renders a synthetic AHN2-like tile the way the paper's Figure 1 presents
the real AHN2 — elevation-shaded, class-coloured — and overlays one demo
query's result in red to show the QGIS-style feedback loop.

Run:  python examples/figure1_pointcloud.py [output.ppm]
Writes figure1.ppm (and figure1_query.ppm) in the working directory.
"""

import sys

from repro import Box, PointCloudDB
from repro.bench.workloads import circle_polygon
from repro.datasets.lidar import generate_points, make_scene
from repro.viz.render import render_pointcloud, render_query_overlay

EXTENT = Box(85_000, 445_000, 86_000, 446_000)


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "figure1.ppm"

    scene = make_scene(EXTENT, seed=4, n_buildings=60, n_canopies=150)
    cloud = generate_points(scene, 400_000, seed=4)

    canvas = render_pointcloud(cloud, extent=EXTENT, width=700)
    path = canvas.write_ppm(out)
    print(f"figure 1 written to {path} ({canvas.width}x{canvas.height})")

    # The demo loop: run a query, light up its result on the map.
    db = PointCloudDB()
    db.create_pointcloud("ahn2")
    db.load_points("ahn2", cloud)
    region = circle_polygon(85_500, 445_500, 120.0)
    result = db.spatial_select("ahn2", region)
    xs = db.table("ahn2").column("x").take(result.oids)
    ys = db.table("ahn2").column("y").take(result.oids)
    render_query_overlay(canvas, xs, ys, color=(255, 40, 40))
    overlay_path = canvas.write_ppm(out.replace(".ppm", "_query.ppm"))
    print(
        f"query overlay ({len(result)} points in the circle) written to "
        f"{overlay_path}"
    )


if __name__ == "__main__":
    main()
