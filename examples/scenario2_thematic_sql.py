#!/usr/bin/env python3
"""Scenario 2 (paper Section 4.2): ad-hoc queries across three datasets.

The second demo scenario "stresses the fact that a spatially-enabled DBMS
allows us to run complex queries over multiple datasets" — LIDAR x
OpenStreetMap x Urban Atlas.  This script runs the paper's two quoted
queries verbatim-in-spirit, then a handful of audience-style ad-hoc ones,
and prints each query's plan-relevant execution stats.

Run:  python examples/scenario2_thematic_sql.py
"""

import numpy as np

from repro import Box
from repro.core.imprints import ImprintsManager
from repro.datasets.lidar import generate_points, make_scene
from repro.datasets.osm import generate_osm
from repro.datasets.urbanatlas import UA_CODES, generate_urban_atlas
from repro.engine.table import Table
from repro.sql.executor import Session
from repro.sql.helpers import register_osm, register_urban_atlas

EXTENT = Box(85_000, 445_000, 87_000, 447_000)


def build_world(seed: int = 11):
    """LIDAR + OSM + Urban Atlas over one region, in one SQL session."""
    scene = make_scene(EXTENT, seed=seed)
    cloud = generate_points(scene, 200_000, seed=seed)

    lidar = Table(
        "lidar",
        [
            ("x", "float64"),
            ("y", "float64"),
            ("z", "float64"),
            ("classification", "uint8"),
            ("intensity", "uint16"),
        ],
    )
    lidar.append_columns(
        {name: cloud[name] for name, _ in lidar.schema}
    )

    osm = generate_osm(EXTENT, seed=seed)
    ua = generate_urban_atlas(EXTENT, terrain=scene.terrain, osm=osm, seed=seed)

    session = Session(manager=ImprintsManager())
    session.register_table(lidar)
    register_osm(session, osm)
    register_urban_atlas(session, ua)
    return session


def run(session: Session, title: str, sql: str) -> None:
    print(f"\n-- {title}")
    print("   " + " ".join(sql.split()))
    result = session.execute(sql)
    for row in result.rows[:8]:
        print("   ->", row)
    if len(result.rows) > 8:
        print(f"   ... {len(result.rows) - 8} more rows")


def main() -> None:
    session = build_world()

    # The paper's two pre-defined Scenario-2 queries.
    run(
        session,
        "select all LIDAR points near a fast transit road (UA 12210)",
        "SELECT count(*) AS points_near_transit FROM lidar l, ua_zones u "
        "WHERE u.code = 12210 AND ST_DWithin(u.geom, ST_Point(l.x, l.y), 25)",
    )
    run(
        session,
        "compute the average elevation of those points",
        "SELECT avg(l.z) AS avg_elevation FROM lidar l, ua_zones u "
        "WHERE u.code = 12210 AND ST_DWithin(u.geom, ST_Point(l.x, l.y), 25)",
    )

    # Ad-hoc follow-ups of the kind the audience is invited to write.
    run(
        session,
        "building density per land-use class",
        "SELECT u.label, count(*) AS buildings FROM lidar l, ua_zones u "
        "WHERE l.classification = 6 AND "
        "ST_Contains(u.geom, ST_Point(l.x, l.y)) "
        "GROUP BY u.label ORDER BY buildings DESC",
    )
    run(
        session,
        "canopy height along motorways (vegetation within 40 m)",
        "SELECT r.name, count(*) AS veg_points, max(l.z) AS tallest "
        "FROM lidar l, roads r WHERE r.class = 1 AND "
        "l.classification IN (3, 4, 5) AND "
        "ST_DWithin(r.geom, ST_Point(l.x, l.y), 40) "
        "GROUP BY r.name ORDER BY veg_points DESC LIMIT 5",
    )
    run(
        session,
        "water returns inside mapped water bodies (cross-validation)",
        "SELECT count(*) AS water_hits FROM lidar l, ua_zones u "
        "WHERE u.code = 51000 AND l.classification = 9 AND "
        "ST_Contains(u.geom, ST_Point(l.x, l.y))",
    )
    run(
        session,
        "land-use areas (pure vector query, no point cloud involved)",
        "SELECT label, ST_Area(geom) AS area_m2 FROM ua_zones "
        "ORDER BY area_m2 DESC LIMIT 5",
    )

    # The demo also shows "the plans of the queries and the execution
    # time spent in each operator" (Section 4.2).
    print("\n-- EXPLAIN for the first query:")
    print(
        session.explain(
            "SELECT count(*) FROM lidar l, ua_zones u WHERE u.code = 12210 "
            "AND ST_DWithin(u.geom, ST_Point(l.x, l.y), 25)"
        )
    )
    profile = session.last_profile
    print(
        f"\nlast query profile: parse {profile['parse'] * 1e3:.2f} ms, "
        f"join+filter {profile['join_filter'] * 1e3:.2f} ms, "
        f"project {profile['project'] * 1e3:.2f} ms"
    )
    print(
        f"imprint indexes built lazily during this session: "
        f"{session.manager.builds} "
        f"({session.manager.nbytes:,} bytes total)"
    )


if __name__ == "__main__":
    main()
