"""Live in-flight query registry with cooperative deadlines.

Every spatial or SQL query entering the engine is wrapped in
:meth:`QueryRegistry.track`, which assigns it a process-unique
``query_id``, publishes an :class:`ActiveQuery` record (phase, progress,
elapsed, resources) while the query runs, and retires the record into a
bounded recent-history ring when it finishes.  The registry backs the
``/debug/queries`` route on :class:`~repro.obs.server.TelemetryServer`,
the ``repro-gis queries`` CLI view, and the flight recorder's
crash-time snapshot of what was running.

Progress is fed from the segment classifiers: both
:class:`~repro.core.imprints.segments.SegmentedImprints` and
:class:`~repro.engine.compressed.CompressedColumn` report the total
segment count up front, credit skipped/full segments immediately, and
tick one unit per completed probe — so a long scan shows monotonically
increasing progress.

Deadlines are cooperative: ``timeout_s=`` turns into a monotonic
deadline checked at morsel boundaries (:func:`repro.engine.parallel.run_tasks`)
and segment-probe boundaries.  A missed deadline raises the typed
:class:`QueryCancelled`, and the registry marks the record
``cancelled``.  Nested queries (a SQL query driving a spatial subquery)
inherit the tighter of their own and their parent's deadline.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Deque, Dict, Iterator, List, Optional

from ._context_state import CURRENT
from .metrics import get_registry
from .resources import ResourceTracker
from .timing import now

__all__ = [
    "ActiveQuery",
    "QueryCancelled",
    "QueryRegistry",
    "check_deadline",
    "current_query",
    "get_queries",
]

_ids = itertools.count(1)


class QueryCancelled(RuntimeError):
    """A query exceeded its cooperative deadline and was cancelled.

    Raised from a deadline check at a morsel or segment boundary; the
    query's registry record is marked ``cancelled``.
    """

    def __init__(self, query_id: str, timeout_s: float, elapsed_s: float):
        super().__init__(
            f"query {query_id} cancelled: exceeded timeout_s={timeout_s:g} "
            f"(elapsed {elapsed_s:.3f}s)"
        )
        self.query_id = query_id
        self.timeout_s = timeout_s
        self.elapsed_s = elapsed_s


class ActiveQuery:
    """One in-flight (or recently finished) query's live record.

    Identity (``query_id``, ``kind``, ``detail``, ``parent_id``,
    ``timeout_s``, ``deadline``) is immutable after construction; the
    mutable progress fields are guarded by ``_lock`` because morsel
    workers tick them concurrently.
    """

    __slots__ = (
        "query_id",
        "kind",
        "detail",
        "parent_id",
        "timeout_s",
        "deadline",
        "tracker",
        "started",
        "started_ts",
        "_lock",
        "_phase",
        "_segments_total",
        "_segments_done",
        "_status",
        "_error",
        "_trace_id",
        "_elapsed",
    )

    def __init__(
        self,
        query_id: str,
        kind: str,
        detail: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        deadline: Optional[float] = None,
        parent_id: Optional[str] = None,
        tracker: Optional[ResourceTracker] = None,
    ):
        self.query_id = query_id
        self.kind = kind
        self.detail: Dict[str, Any] = dict(detail or {})
        self.parent_id = parent_id
        self.timeout_s = timeout_s
        self.deadline = deadline
        self.tracker = tracker
        self.started = now()
        self.started_ts = time.time()  # wall clock, display only
        self._lock = threading.Lock()
        self._phase = "queued"
        self._segments_total = 0
        self._segments_done = 0
        self._status = "running"
        self._error: Optional[str] = None
        self._trace_id = 0
        self._elapsed: Optional[float] = None

    # -- progress (called from worker threads) -----------------------------

    def set_phase(self, phase: str) -> None:
        with self._lock:
            self._phase = phase

    def set_trace(self, trace_id: int) -> None:
        with self._lock:
            self._trace_id = trace_id

    def add_segments(self, total: int = 0, done: int = 0) -> None:
        """Grow the segment denominator and/or credit completed units."""
        with self._lock:
            self._segments_total += total
            self._segments_done += done

    def check_deadline(self) -> None:
        """Raise :class:`QueryCancelled` if the deadline has passed."""
        if self.deadline is not None and now() > self.deadline:
            timeout = self.timeout_s if self.timeout_s is not None else 0.0
            raise QueryCancelled(self.query_id, timeout, now() - self.started)

    def finish(self, status: str, error: Optional[str] = None) -> None:
        with self._lock:
            self._status = status
            self._error = error
            self._elapsed = now() - self.started

    # -- views -------------------------------------------------------------

    @property
    def phase(self) -> str:
        return self._phase

    @property
    def status(self) -> str:
        return self._status

    @property
    def trace_id(self) -> int:
        return self._trace_id

    @property
    def progress(self) -> float:
        """Completed fraction in ``[0, 1]``; 0.0 before any scan starts."""
        with self._lock:
            total = self._segments_total
            done = self._segments_done
        if total <= 0:
            return 0.0
        return min(1.0, done / total)

    def elapsed_s(self) -> float:
        with self._lock:
            if self._elapsed is not None:
                return self._elapsed
        return now() - self.started

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            total = self._segments_total
            done = self._segments_done
            phase = self._phase
            status = self._status
            error = self._error
            trace_id = self._trace_id
            elapsed = self._elapsed
        record: Dict[str, Any] = {
            "query_id": self.query_id,
            "kind": self.kind,
            "detail": dict(self.detail),
            "phase": phase,
            "status": status,
            "progress": min(1.0, done / total) if total > 0 else 0.0,
            "segments_done": done,
            "segments_total": total,
            "elapsed_s": elapsed if elapsed is not None else now() - self.started,
            "started_ts": self.started_ts,
            "trace_id": trace_id,
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.timeout_s is not None:
            record["timeout_s"] = self.timeout_s
        if error is not None:
            record["error"] = error
        if self.tracker is not None:
            record["resources"] = self.tracker.usage.to_dict()
        return record


#: The query the current execution context is running (propagates to
#: morsel workers together with the obs context via ``copy_context``).
_ACTIVE: ContextVar[Optional[ActiveQuery]] = ContextVar(
    "repro_active_query", default=None
)


def current_query() -> Optional[ActiveQuery]:
    """The in-flight query for this execution context, if any."""
    return _ACTIVE.get()


def check_deadline() -> None:
    """Cooperative cancellation point: cheap no-op when untracked."""
    query = _ACTIVE.get()
    if query is not None:
        query.check_deadline()


class QueryRegistry:
    """Thread-safe registry of in-flight queries plus a recent ring."""

    def __init__(self, max_recent: int = 64):
        self._lock = threading.Lock()
        self._active: Dict[str, ActiveQuery] = {}
        self._recent: Deque[Dict[str, Any]] = deque(maxlen=max_recent)
        self._threads: Dict[int, ActiveQuery] = {}

    def active(self) -> List[ActiveQuery]:
        with self._lock:
            queries = list(self._active.values())
        return sorted(queries, key=lambda q: q.started)

    def recent(self) -> List[Dict[str, Any]]:
        """Most recent finished-query records, newest first."""
        with self._lock:
            return list(reversed(self._recent))

    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """JSON-ready view: live records plus the recent-history ring."""
        return {
            "active": [q.to_dict() for q in self.active()],
            "recent": self.recent(),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._active)

    # -- thread attribution (for the sampling profiler) ---------------------
    #
    # Contextvars cannot be read *across* threads, but the profiler's
    # sampling thread needs to know which query each sampled thread is
    # working for.  Query-owning threads therefore also register in a
    # plain ``thread ident -> ActiveQuery`` map: ``track`` binds the
    # caller's thread, and morsel workers bind themselves for the
    # duration of a drain (:func:`repro.engine.parallel.run_tasks`).

    def bind_thread(self, query: ActiveQuery) -> Optional[ActiveQuery]:
        """Attribute the calling thread's profiler samples to ``query``.

        Returns the previous binding so nested queries on one thread can
        restore their parent via :meth:`unbind_thread`.
        """
        ident = threading.get_ident()
        with self._lock:
            previous = self._threads.get(ident)
            self._threads[ident] = query
        return previous

    def unbind_thread(self, previous: Optional[ActiveQuery] = None) -> None:
        """Drop (or restore to ``previous``) the calling thread's binding."""
        ident = threading.get_ident()
        with self._lock:
            if previous is None:
                self._threads.pop(ident, None)
            else:
                self._threads[ident] = previous

    def query_for_thread(self, ident: int) -> Optional[ActiveQuery]:
        with self._lock:
            return self._threads.get(ident)

    def thread_map(self) -> Dict[int, ActiveQuery]:
        """Copy of the thread-attribution map, for the sampler's sweep."""
        with self._lock:
            return dict(self._threads)

    @contextmanager
    def track(
        self,
        kind: str,
        detail: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        tracker: Optional[ResourceTracker] = None,
    ) -> Iterator[ActiveQuery]:
        """Publish an :class:`ActiveQuery` for the duration of a query.

        Sets the active-query context variable (so progress hooks and
        deadline checks anywhere below — including morsel workers, which
        inherit a copy of this context — find the record), and retires
        it into the recent ring on the way out with status ``finished``,
        ``cancelled`` (:class:`QueryCancelled`) or ``error``.
        """
        parent = _ACTIVE.get()
        deadline = now() + timeout_s if timeout_s is not None else None
        if parent is not None and parent.deadline is not None:
            deadline = (
                parent.deadline
                if deadline is None
                else min(deadline, parent.deadline)
            )
        query = ActiveQuery(
            query_id=f"q{os.getpid()}-{next(_ids):05d}",
            kind=kind,
            detail=detail,
            timeout_s=timeout_s,
            deadline=deadline,
            parent_id=parent.query_id if parent is not None else None,
            tracker=tracker,
        )
        with self._lock:
            self._active[query.query_id] = query
            n_active = len(self._active)
        registry = get_registry()
        registry.gauge("query.active").set(float(n_active))
        token = _ACTIVE.set(query)
        previous_binding = self.bind_thread(query)
        status = "finished"
        error: Optional[str] = None
        try:
            yield query
        except QueryCancelled:
            status = "cancelled"
            raise
        except BaseException as exc:
            status = "error"
            error = type(exc).__name__
            raise
        finally:
            self.unbind_thread(previous_binding)
            _ACTIVE.reset(token)
            query.finish(status, error)
            with self._lock:
                self._active.pop(query.query_id, None)
                self._recent.append(query.to_dict())
                n_active = len(self._active)
            registry = get_registry()
            registry.gauge("query.active").set(float(n_active))
            if status == "cancelled":
                registry.counter("query.cancelled").inc()
            elif status == "error":
                registry.counter("query.errors").inc()
            context = CURRENT.get()
            if context is not None and tracker is not None:
                context.absorb_usage(tracker.usage)


_global_queries = QueryRegistry()


def get_queries() -> QueryRegistry:
    """The active context's query registry (process default otherwise)."""
    context = CURRENT.get()
    if context is not None:
        return context.queries
    return _global_queries
