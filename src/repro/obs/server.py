"""Zero-dependency telemetry endpoint over ``http.server``.

The ROADMAP's north star is a long-running service, and a service you
cannot scrape is a service you cannot operate.  :class:`TelemetryServer`
binds a threaded stdlib HTTP server on a daemon thread and exposes the
process's observability state:

``/metrics``
    The full registry in OpenMetrics text format
    (:mod:`repro.obs.openmetrics`), histogram buckets included.
``/healthz``
    ``200`` with a small JSON document: ``{"status": "ok"}`` plus
    whatever the optional ``health`` callback contributes (table row
    counts, for the CLI).  A callback that raises turns the response
    into a ``500`` — an unhealthy process should *fail* its probe, not
    lie on it.
``/debug/trace``
    The last-N traces from the tracer's ring buffer as plain JSON span
    records (``?last=N``, default 10) — the span dump you would
    otherwise need shell access and ``repro-gis trace`` for.
``/debug/queries``
    The live in-flight query registry
    (:class:`~repro.obs.queries.QueryRegistry`): every running query's
    id, kind, phase, progress (segments done / total) and elapsed time,
    plus the recent finished-query ring.  ``repro-gis queries`` renders
    this route as a table.

Every request increments the ``obs.http_requests`` counter; the
``obs.server_up`` gauge is 1 while the server is bound.  Start it from
the CLI (``repro-gis serve-metrics --port``), or embed it::

    server = TelemetryServer(port=0)   # 0 = any free port
    server.start()
    ... print(server.url) ...
    server.stop()
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional
from urllib.parse import parse_qs, urlparse

from .metrics import MetricsRegistry, get_registry
from .openmetrics import CONTENT_TYPE, render
from .queries import QueryRegistry, get_queries
from .trace import Tracer, get_tracer, span_to_dict

#: Environment override for the default port (the CLI and embedders
#: resolve through :func:`resolve_port`).
METRICS_PORT_ENV = "REPRO_METRICS_PORT"

#: Default port, in the conventional Prometheus-exporter range.
DEFAULT_PORT = 9464

#: Default span count for /debug/trace when ?last= is absent.
DEFAULT_TRACE_LAST = 10

HealthCallback = Callable[[], Dict[str, object]]


def resolve_port(port: Optional[int]) -> int:
    """An explicit port wins; else ``REPRO_METRICS_PORT``; else 9464."""
    if port is not None:
        return int(port)
    env = os.environ.get(METRICS_PORT_ENV, "").strip()
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    return DEFAULT_PORT


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the server instance rides on ``self.server``."""

    # Quiet by default: request logging belongs to metrics, not stderr.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        return

    def do_GET(self) -> None:  # noqa: N802 - http.server's naming
        server = self.server
        assert isinstance(server, _TelemetryHTTPServer)
        server.owner.registry.counter("obs.http_requests").inc()
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            self._respond(200, CONTENT_TYPE, render(server.owner.registry))
        elif route == "/healthz":
            self._healthz(server)
        elif route == "/debug/trace":
            self._debug_trace(server, parsed.query)
        elif route == "/debug/queries":
            body = json.dumps(server.owner.queries.snapshot()) + "\n"
            self._respond(200, "application/json; charset=utf-8", body)
        else:
            self._respond(
                404,
                "text/plain; charset=utf-8",
                "not found; routes: /metrics /healthz /debug/trace"
                " /debug/queries\n",
            )

    def _healthz(self, server: "_TelemetryHTTPServer") -> None:
        payload: Dict[str, object] = {"status": "ok"}
        health = server.owner.health
        if health is not None:
            try:
                payload.update(health())
            except Exception as exc:
                self._respond(
                    500,
                    "application/json; charset=utf-8",
                    json.dumps({"status": "error", "error": str(exc)}) + "\n",
                )
                return
        self._respond(
            200, "application/json; charset=utf-8", json.dumps(payload) + "\n"
        )

    def _debug_trace(self, server: "_TelemetryHTTPServer", query: str) -> None:
        params = parse_qs(query)
        try:
            last = int(params.get("last", [str(DEFAULT_TRACE_LAST)])[0])
        except ValueError:
            self._respond(
                400, "text/plain; charset=utf-8", "last must be an integer\n"
            )
            return
        spans = server.owner.tracer.last_traces(max(0, last))
        body = json.dumps([span_to_dict(span) for span in spans]) + "\n"
        self._respond(200, "application/json; charset=utf-8", body)

    def _respond(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class _TelemetryHTTPServer(ThreadingHTTPServer):
    """The stdlib server plus a back-pointer to its owner."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], owner: "TelemetryServer") -> None:
        super().__init__(address, _Handler)
        self.owner = owner


class TelemetryServer:
    """The process's telemetry endpoint, served from a daemon thread.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=None`` resolves via ``REPRO_METRICS_PORT``
        then the default (9464); ``port=0`` asks the OS for a free port
        (read the chosen one back from :attr:`port` after ``start``).
    registry, tracer, queries:
        Default to the active context's instances (the process-wide
        singletons unless an :class:`~repro.obs.context.ObsContext` is
        active at construction).
    health:
        Optional callback contributing fields to the ``/healthz`` body.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        health: Optional[HealthCallback] = None,
        queries: Optional[QueryRegistry] = None,
    ) -> None:
        self.host = host
        self._requested_port = resolve_port(port) if port != 0 else 0
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.queries = queries if queries is not None else get_queries()
        self.health = health
        self._server: Optional[_TelemetryHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (the OS's choice when constructed with 0)."""
        if self._server is not None:
            return int(self._server.server_address[1])
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._server is not None

    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; returns self (chainable)."""
        if self._server is not None:
            return self
        self._server = _TelemetryHTTPServer(
            (self.host, self._requested_port), self
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        self.registry.gauge("obs.server_up").set(1.0)
        return self

    def stop(self) -> None:
        """Shut down the server and release the socket (idempotent)."""
        server, thread = self._server, self._thread
        self._server, self._thread = None, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        self.registry.gauge("obs.server_up").set(0.0)

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False
