"""Zero-dependency telemetry endpoint over ``http.server``.

The ROADMAP's north star is a long-running service, and a service you
cannot scrape is a service you cannot operate.  :class:`TelemetryServer`
binds a threaded stdlib HTTP server on a daemon thread and exposes the
process's observability state:

``/metrics``
    The full registry in OpenMetrics text format
    (:mod:`repro.obs.openmetrics`), histogram buckets included.
``/healthz``
    ``200`` with a small JSON document: ``{"status": "ok"}`` plus
    whatever the optional ``health`` callback contributes (table row
    counts, for the CLI).  A callback that raises turns the response
    into a ``500`` — an unhealthy process should *fail* its probe, not
    lie on it.
``/debug/trace``
    The last-N traces from the tracer's ring buffer as plain JSON span
    records (``?last=N``, default 10) — the span dump you would
    otherwise need shell access and ``repro-gis trace`` for.
``/debug/queries``
    The live in-flight query registry
    (:class:`~repro.obs.queries.QueryRegistry`): every running query's
    id, kind, phase, progress (segments done / total) and elapsed time,
    plus the recent finished-query ring.  ``repro-gis queries`` renders
    this route as a table.
``/debug/profile``
    On-demand CPU profile: blocks for ``?seconds=N`` (default 2, capped
    at 30) while a burst :func:`repro.obs.profiler.capture` samples
    every thread at ``?rate=HZ`` (default 99), then returns speedscope
    JSON (load it at https://www.speedscope.app) or, with
    ``?format=collapsed``, FlameGraph collapsed-stack text.  The server
    is threaded, so other routes keep answering during the capture.
``/debug/heat``
    The live workload heat map (:mod:`repro.obs.heat`) decayed to now:
    hottest segments and spatial extents by bytes touched, or
    ``{"enabled": false}`` when heat accounting is off.

Every request increments the ``obs.http_requests`` counter; the
``obs.server_up`` gauge is 1 while the server is bound.  Start it from
the CLI (``repro-gis serve-metrics --port``), or embed it::

    server = TelemetryServer(port=0)   # 0 = any free port
    server.start()
    ... print(server.url) ...
    server.stop()
"""

from __future__ import annotations

import errno
import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Type
from urllib.parse import parse_qs, urlparse

from .metrics import MetricsRegistry, get_registry
from .openmetrics import CONTENT_TYPE, render
from .queries import QueryRegistry, get_queries
from .trace import Tracer, get_tracer, span_to_dict

#: Environment override for the default port (the CLI and embedders
#: resolve through :func:`resolve_port`).
METRICS_PORT_ENV = "REPRO_METRICS_PORT"

#: Default port, in the conventional Prometheus-exporter range.
DEFAULT_PORT = 9464

#: Default span count for /debug/trace when ?last= is absent.
DEFAULT_TRACE_LAST = 10

HealthCallback = Callable[[], Dict[str, object]]


class PortInUseError(OSError):
    """The requested bind port is already taken by another process.

    Raised by :meth:`TelemetryServer.start` instead of the raw
    ``OSError(EADDRINUSE)`` the stdlib server produces, so callers (the
    CLI foremost) can print something actionable — which port, and how
    to find the squatter — rather than a bare errno traceback.
    """

    def __init__(self, host: str, port: int) -> None:
        super().__init__(
            errno.EADDRINUSE,
            f"port {port} on {host} is already in use — another "
            f"serve/serve-metrics process is likely bound there "
            f"(`lsof -iTCP:{port} -sTCP:LISTEN` shows its pid); pick "
            f"another port with --port, or 0 for an OS-assigned one",
        )
        self.host = host
        self.port = port


def resolve_port(port: Optional[int]) -> int:
    """An explicit port wins; else ``REPRO_METRICS_PORT``; else 9464."""
    if port is not None:
        return int(port)
    env = os.environ.get(METRICS_PORT_ENV, "").strip()
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    return DEFAULT_PORT


class TelemetryHandler(BaseHTTPRequestHandler):
    """Routes one request; the server instance rides on ``self.server``.

    Subclasses (the query daemon's handler in :mod:`repro.serve.http`)
    extend the route table by overriding :meth:`route_get` and falling
    back to ``super().route_get(...)`` for the telemetry routes.
    """

    #: Routes listed in the 404 body; subclasses extend.
    known_routes = (
        "/metrics /healthz /debug/trace /debug/queries "
        "/debug/profile /debug/heat"
    )

    # Quiet by default: request logging belongs to metrics, not stderr.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        return

    @property
    def owner(self) -> "TelemetryServer":
        server = self.server
        assert isinstance(server, _TelemetryHTTPServer)
        return server.owner

    def do_GET(self) -> None:  # noqa: N802 - http.server's naming
        self.owner.registry.counter("obs.http_requests").inc()
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        self.route_get(route, parsed.query)

    def route_get(self, route: str, query: str) -> None:
        """Dispatch one GET; the extension seam for handler subclasses."""
        if route == "/metrics":
            self._respond(200, CONTENT_TYPE, render(self.owner.registry))
        elif route == "/healthz":
            self._healthz()
        elif route == "/debug/trace":
            self._debug_trace(query)
        elif route == "/debug/queries":
            body = json.dumps(self.owner.queries.snapshot()) + "\n"
            self._respond(200, "application/json; charset=utf-8", body)
        elif route == "/debug/profile":
            self._debug_profile(query)
        elif route == "/debug/heat":
            self._debug_heat()
        else:
            self._respond(
                404,
                "text/plain; charset=utf-8",
                f"not found; routes: {self.known_routes}\n",
            )

    def _healthz(self) -> None:
        payload: Dict[str, object] = {"status": "ok"}
        health = self.owner.health
        if health is not None:
            try:
                payload.update(health())
            except Exception as exc:
                self._respond(
                    500,
                    "application/json; charset=utf-8",
                    json.dumps({"status": "error", "error": str(exc)}) + "\n",
                )
                return
        self._respond(
            200, "application/json; charset=utf-8", json.dumps(payload) + "\n"
        )

    def _debug_trace(self, query: str) -> None:
        params = parse_qs(query)
        try:
            last = int(params.get("last", [str(DEFAULT_TRACE_LAST)])[0])
        except ValueError:
            self._respond(
                400, "text/plain; charset=utf-8", "last must be an integer\n"
            )
            return
        spans = self.owner.tracer.last_traces(max(0, last))
        body = json.dumps([span_to_dict(span) for span in spans]) + "\n"
        self._respond(200, "application/json; charset=utf-8", body)

    #: /debug/profile caps: a capture blocks one handler thread, so the
    #: duration is bounded; absurd rates are clamped, not 500'd.
    MAX_PROFILE_SECONDS = 30.0
    MAX_PROFILE_RATE_HZ = 500.0

    def _debug_profile(self, query: str) -> None:
        from . import profiler as _profiler

        params = parse_qs(query)
        try:
            seconds = float(params.get("seconds", ["2"])[0])
            rate = float(params.get("rate", [str(_profiler.CAPTURE_RATE_HZ)])[0])
        except ValueError:
            self._respond(
                400,
                "text/plain; charset=utf-8",
                "seconds and rate must be numbers\n",
            )
            return
        fmt = params.get("format", ["speedscope"])[0]
        if fmt not in ("speedscope", "collapsed"):
            self._respond(
                400,
                "text/plain; charset=utf-8",
                "format must be speedscope or collapsed\n",
            )
            return
        seconds = min(max(0.1, seconds), self.MAX_PROFILE_SECONDS)
        rate = min(max(1.0, rate), self.MAX_PROFILE_RATE_HZ)
        profile = _profiler.capture(
            seconds=seconds,
            rate_hz=rate,
            queries=self.owner.queries,
            registry=self.owner.registry,
        )
        if fmt == "collapsed":
            self._respond(200, "text/plain; charset=utf-8", profile.collapsed())
        else:
            self._respond(
                200,
                "application/json; charset=utf-8",
                profile.speedscope_json(name=f"{self.owner.url} profile"),
            )

    def _debug_heat(self) -> None:
        from .heat import maybe_heat

        heat = maybe_heat()
        payload = heat.snapshot() if heat is not None else {"enabled": False}
        self._respond(
            200, "application/json; charset=utf-8", json.dumps(payload) + "\n"
        )

    def _respond(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class _TelemetryHTTPServer(ThreadingHTTPServer):
    """The stdlib server plus a back-pointer to its owner."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        owner: "TelemetryServer",
        handler: Type[TelemetryHandler],
    ) -> None:
        super().__init__(address, handler)
        self.owner = owner


class TelemetryServer:
    """The process's telemetry endpoint, served from a daemon thread.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=None`` resolves via ``REPRO_METRICS_PORT``
        then the default (9464); ``port=0`` asks the OS for a free port
        (read the chosen one back from :attr:`port` after ``start``).
    registry, tracer, queries:
        Default to the active context's instances (the process-wide
        singletons unless an :class:`~repro.obs.context.ObsContext` is
        active at construction).
    health:
        Optional callback contributing fields to the ``/healthz`` body.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        health: Optional[HealthCallback] = None,
        queries: Optional[QueryRegistry] = None,
    ) -> None:
        self.host = host
        self._requested_port = resolve_port(port) if port != 0 else 0
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.queries = queries if queries is not None else get_queries()
        self.health = health
        self._server: Optional[_TelemetryHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (the OS's choice when constructed with 0)."""
        if self._server is not None:
            return int(self._server.server_address[1])
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._server is not None

    #: Request handler class; subclasses (the query daemon) override to
    #: extend the route table.
    handler_class: Type[TelemetryHandler] = TelemetryHandler

    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; returns self (chainable).

        A port already bound by another process raises the typed
        :class:`PortInUseError` instead of a raw ``OSError``.
        """
        if self._server is not None:
            return self
        try:
            self._server = _TelemetryHTTPServer(
                (self.host, self._requested_port), self, self.handler_class
            )
        except OSError as exc:
            if exc.errno == errno.EADDRINUSE:
                raise PortInUseError(
                    self.host, self._requested_port
                ) from exc
            raise
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        self.registry.gauge("obs.server_up").set(1.0)
        return self

    def stop(self) -> None:
        """Shut down the server and release the socket (idempotent)."""
        server, thread = self._server, self._thread
        self._server, self._thread = None, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        self.registry.gauge("obs.server_up").set(0.0)

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False
