"""Per-query resource attribution: CPU time, allocations, data touched.

Wall-clock phase timings (:class:`~repro.core.query.QueryStats`, spans)
say how long a query took; this module says what it *consumed* while
doing so — the difference between "slow because the machine was busy"
and "slow because the query did a lot of work".  A
:class:`ResourceTracker` wraps one query and accumulates:

* **CPU seconds** — thread CPU time (``time.thread_time``) of the
  calling thread, plus the CPU burned by morsel workers on the query's
  behalf.  Worker threads do not share the caller's clock, so
  :func:`repro.engine.parallel.run_tasks` captures the caller's active
  tracker (the same hand-over it does for the tracer's parent span) and
  adds each worker's thread-CPU delta via :meth:`ResourceTracker.add_cpu`.
* **Peak allocations** — opt-in via :mod:`tracemalloc`: when tracing is
  active (``tracemalloc.start()`` or ``REPRO_TRACEMALLOC=1``), the
  tracker resets the peak at entry and reports the high-water mark of
  traced allocations over the query.
* **Rows / bytes touched** — the scan operators in
  :mod:`repro.engine.select` report how much column data each select
  actually read (post-candidate-list, so an imprint-filtered query
  reports the small number the index earned it).

Trackers nest: a SQL query's tracker sees the spatial sub-query's worker
CPU and touched bytes too, because additions propagate up the stack.
The disabled-path cost is one thread-local read per instrumented site.
"""

from __future__ import annotations

import os
import threading
import time
import tracemalloc
from dataclasses import dataclass
from types import TracebackType
from typing import Dict, Optional, Type

#: Environment switch: start tracemalloc at first tracker entry so peak
#: allocation attribution is on for the whole process.
TRACEMALLOC_ENV = "REPRO_TRACEMALLOC"

_FALSY = ("", "0", "false", "no", "off")


def thread_cpu() -> float:
    """CPU seconds consumed by the *current thread* (the clock both the
    caller's delta and each worker's delta are measured on)."""
    return time.thread_time()


def _env_tracemalloc() -> bool:
    return os.environ.get(TRACEMALLOC_ENV, "").strip().lower() not in _FALSY


@dataclass
class ResourceUsage:
    """What one query consumed; attached to ``QueryStats.resources``."""

    #: Total CPU seconds: the calling thread's delta plus worker CPU.
    cpu_seconds: float = 0.0
    #: The portion of :attr:`cpu_seconds` burned by morsel workers.
    worker_cpu_seconds: float = 0.0
    #: High-water mark of traced allocations (bytes) over the query, or
    #: ``None`` when tracemalloc sampling was off.
    peak_alloc_bytes: Optional[int] = None
    #: Rows the scan operators actually read (post candidate list).
    rows_touched: int = 0
    #: Column bytes those reads moved.
    bytes_touched: int = 0
    #: Compressed bytes packed scans read in place (the PR 6 byte split:
    #: what actually crossed memory on the packed path).
    encoded_bytes: int = 0
    #: Plain-equivalent bytes of everything scanned — packed scans count
    #: what decompressing would have cost, plain scans their array size.
    materialized_bytes: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly record (slow log, flight dumps, bench reports)."""
        return {
            "cpu_seconds": self.cpu_seconds,
            "worker_cpu_seconds": self.worker_cpu_seconds,
            "peak_alloc_bytes": self.peak_alloc_bytes,
            "rows_touched": self.rows_touched,
            "bytes_touched": self.bytes_touched,
            "encoded_bytes": self.encoded_bytes,
            "materialized_bytes": self.materialized_bytes,
        }


class ResourceTracker:
    """Accumulate one query's resource usage, as a context manager.

    The entering thread's CPU delta is measured at exit; cross-thread
    contributions arrive through :meth:`add_cpu` / :meth:`add_touched`,
    which are thread-safe and propagate to enclosing trackers so a SQL
    statement's tracker includes its spatial sub-queries.

    ``trace_malloc=None`` (the default) samples allocations only when
    tracemalloc is already tracing or ``REPRO_TRACEMALLOC`` is set;
    ``True`` forces sampling on (starting tracemalloc if needed).
    """

    __slots__ = ("usage", "_parent", "_lock", "_cpu0", "_malloc", "_entered")

    def __init__(self, trace_malloc: Optional[bool] = None) -> None:
        self.usage = ResourceUsage()
        self._parent: Optional["ResourceTracker"] = None
        self._lock = threading.Lock()
        self._cpu0 = 0.0
        self._entered = False
        if trace_malloc is None:
            self._malloc = tracemalloc.is_tracing() or _env_tracemalloc()
        else:
            self._malloc = trace_malloc

    def __enter__(self) -> "ResourceTracker":
        stack = _stack()
        self._parent = stack[-1] if stack else None
        stack.append(self)
        self._entered = True
        if self._malloc:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
            tracemalloc.reset_peak()
        self._cpu0 = thread_cpu()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        own_cpu = max(thread_cpu() - self._cpu0, 0.0)
        with self._lock:
            self.usage.cpu_seconds += own_cpu
        if self._malloc and tracemalloc.is_tracing():
            _traced, peak = tracemalloc.get_traced_memory()
            self.usage.peak_alloc_bytes = int(peak)
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._entered = False
        return False

    # -- cross-thread contributions --------------------------------------------

    def add_cpu(self, seconds: float) -> None:
        """Attribute worker-thread CPU to this query (and its parents)."""
        if seconds <= 0.0:
            return
        with self._lock:
            self.usage.cpu_seconds += seconds
            self.usage.worker_cpu_seconds += seconds
        if self._parent is not None:
            self._parent.add_cpu(seconds)

    def add_touched(self, rows: int = 0, nbytes: int = 0) -> None:
        """Attribute rows/bytes a scan operator actually read."""
        with self._lock:
            self.usage.rows_touched += rows
            self.usage.bytes_touched += nbytes
        if self._parent is not None:
            self._parent.add_touched(rows, nbytes)

    def add_scan_bytes(self, encoded: int = 0, materialized: int = 0) -> None:
        """Attribute the packed-vs-plain byte split of a scan: bytes read
        in compressed form versus their plain-array equivalent."""
        with self._lock:
            self.usage.encoded_bytes += encoded
            self.usage.materialized_bytes += materialized
        if self._parent is not None:
            self._parent.add_scan_bytes(encoded, materialized)


def _stack() -> list["ResourceTracker"]:
    stack: Optional[list[ResourceTracker]] = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


_local = threading.local()


def current() -> Optional[ResourceTracker]:
    """The innermost tracker open on this thread, or ``None``.

    Instrumented hot paths call this once per operator and skip all
    attribution when it returns ``None``; schedulers capture it on the
    caller's thread before fanning work out (worker threads have their
    own, empty, stacks).
    """
    stack: Optional[list[ResourceTracker]] = getattr(_local, "stack", None)
    return stack[-1] if stack else None
