"""Observability: span tracing, metrics, exporters, and telemetry.

The measurement layer under ``EXPLAIN ANALYZE``, ``repro-gis trace``,
``repro-gis serve-metrics`` and the bench harness's metrics snapshots:
spans and metrics feed an OpenMetrics endpoint, a slow-query log,
per-query resource attribution and a crash flight recorder.  See
``docs/observability.md`` for the span model and metric names.
"""

from .context import (
    ObsContext,
    current_context,
    default_context,
    format_traceparent,
    parse_traceparent,
)
from .flight import FLIGHT_DIR_ENV, FlightRecorder, get_flight_recorder
from .metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .openmetrics import CONTENT_TYPE as OPENMETRICS_CONTENT_TYPE
from .openmetrics import render as render_openmetrics
from .queries import (
    ActiveQuery,
    QueryCancelled,
    QueryRegistry,
    check_deadline,
    current_query,
    get_queries,
)
from .resources import ResourceTracker, ResourceUsage
from .resources import current as current_resource_tracker
from .server import METRICS_PORT_ENV, TelemetryServer
from .slowlog import (
    SLOW_QUERY_ENV,
    SLOW_QUERY_LOG_ENV,
    SlowQueryLog,
    format_record,
    read_records,
)
from .trace import (
    TRACE_ENV,
    RemoteParent,
    Span,
    Tracer,
    format_tree,
    from_json,
    get_tracer,
    maybe_span,
    to_chrome,
    to_json,
    traced,
)

__all__ = [
    "FLIGHT_DIR_ENV",
    "METRICS_PORT_ENV",
    "OPENMETRICS_CONTENT_TYPE",
    "SLOW_QUERY_ENV",
    "SLOW_QUERY_LOG_ENV",
    "TRACE_ENV",
    "LATENCY_BUCKETS_S",
    "ActiveQuery",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsContext",
    "QueryCancelled",
    "QueryRegistry",
    "RemoteParent",
    "ResourceTracker",
    "ResourceUsage",
    "SlowQueryLog",
    "Span",
    "TelemetryServer",
    "Tracer",
    "check_deadline",
    "current_context",
    "current_query",
    "current_resource_tracker",
    "default_context",
    "format_record",
    "format_traceparent",
    "format_tree",
    "from_json",
    "get_flight_recorder",
    "get_queries",
    "get_registry",
    "get_tracer",
    "maybe_span",
    "parse_traceparent",
    "render_openmetrics",
    "to_chrome",
    "to_json",
    "traced",
]
