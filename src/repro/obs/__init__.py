"""Observability: span tracing, metrics, and trace exporters.

The measurement layer under ``EXPLAIN ANALYZE``, ``repro-gis trace``
and the bench harness's metrics snapshots.  See
``docs/observability.md`` for the span model and metric names.
"""

from .metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .trace import (
    TRACE_ENV,
    Span,
    Tracer,
    format_tree,
    from_json,
    get_tracer,
    maybe_span,
    to_chrome,
    to_json,
    traced,
)

__all__ = [
    "TRACE_ENV",
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "format_tree",
    "from_json",
    "get_registry",
    "get_tracer",
    "maybe_span",
    "to_chrome",
    "to_json",
    "traced",
]
