"""Observability: span tracing, metrics, exporters, and telemetry.

The measurement layer under ``EXPLAIN ANALYZE``, ``repro-gis trace``,
``repro-gis serve-metrics`` and the bench harness's metrics snapshots:
spans and metrics feed an OpenMetrics endpoint, a slow-query log,
per-query resource attribution and a crash flight recorder.  See
``docs/observability.md`` for the span model and metric names.
"""

from .flight import FLIGHT_DIR_ENV, FlightRecorder, get_flight_recorder
from .metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .openmetrics import CONTENT_TYPE as OPENMETRICS_CONTENT_TYPE
from .openmetrics import render as render_openmetrics
from .resources import ResourceTracker, ResourceUsage
from .resources import current as current_resource_tracker
from .server import METRICS_PORT_ENV, TelemetryServer
from .slowlog import (
    SLOW_QUERY_ENV,
    SLOW_QUERY_LOG_ENV,
    SlowQueryLog,
    format_record,
    read_records,
)
from .trace import (
    TRACE_ENV,
    Span,
    Tracer,
    format_tree,
    from_json,
    get_tracer,
    maybe_span,
    to_chrome,
    to_json,
    traced,
)

__all__ = [
    "FLIGHT_DIR_ENV",
    "METRICS_PORT_ENV",
    "OPENMETRICS_CONTENT_TYPE",
    "SLOW_QUERY_ENV",
    "SLOW_QUERY_LOG_ENV",
    "TRACE_ENV",
    "LATENCY_BUCKETS_S",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ResourceTracker",
    "ResourceUsage",
    "SlowQueryLog",
    "Span",
    "TelemetryServer",
    "Tracer",
    "current_resource_tracker",
    "format_record",
    "format_tree",
    "from_json",
    "get_flight_recorder",
    "get_registry",
    "get_tracer",
    "maybe_span",
    "render_openmetrics",
    "to_chrome",
    "to_json",
    "traced",
]
