"""Zero-dependency sampling profiler with per-query attribution.

A daemon thread wakes ``rate_hz`` times a second, snapshots every
thread's stack via :func:`sys._current_frames`, and folds each stack
into two aggregates: a **process-wide** call tree, and a **per-query**
tree keyed by the owning in-flight query.  Cross-thread attribution is
the interesting part — contextvars cannot be read from another thread,
so the :class:`~repro.obs.queries.QueryRegistry` keeps an explicit
``thread ident -> ActiveQuery`` map (bound by ``track`` for the caller
thread and by morsel workers for the duration of a drain) that the
sampler joins against.

Two operating modes:

* **always-on** (:data:`DEFAULT_RATE_HZ`, ~19 Hz): started by
  ``repro-gis serve``; cheap enough that the modeled overhead stays
  under 3% of process time (gated in ``benchmarks/test_bench_obs.py``).
  Feeds the hot-stack summaries embedded in slow-query records and
  flight-recorder crash dumps.
* **on-demand capture** (:func:`capture`, ~99 Hz): a bounded
  start/sleep/stop burst behind ``GET /debug/profile?seconds=N`` and
  ``repro-gis profile``.

Exports are the two de-facto standard formats: collapsed-stack text
(``frame;frame;frame count`` — FlameGraph input) and speedscope JSON.
Frame labels are ``<module stem>.<function>`` (``kernels.range_mask``),
which keeps the output readable and the tests assertable.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from collections import OrderedDict
from types import FrameType
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, get_registry
from .queries import QueryRegistry, get_queries
from .timing import now

__all__ = [
    "CAPTURE_RATE_HZ",
    "DEFAULT_RATE_HZ",
    "Profile",
    "SamplingProfiler",
    "StackAggregate",
    "capture",
    "get_profiler",
    "maybe_profiler",
]

#: Always-on sampling rate.  Deliberately off the common 10/20/100 Hz
#: grid so the sampler does not phase-lock with periodic work.
DEFAULT_RATE_HZ = 19.0

#: On-demand capture rate (``/debug/profile``, ``repro-gis profile``).
CAPTURE_RATE_HZ = 99.0

#: Stacks deeper than this are truncated at the root end.
MAX_STACK_DEPTH = 64

#: Per-query aggregates kept live (LRU-evicted beyond this).
MAX_TRACKED_QUERIES = 32

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _frame_label(frame: FrameType) -> str:
    code = frame.f_code
    stem = os.path.splitext(os.path.basename(code.co_filename))[0]
    return f"{stem}.{code.co_name}"


def _unwind(frame: Optional[FrameType]) -> Tuple[str, ...]:
    """Frame labels root→leaf for one thread's current stack."""
    stack: List[str] = []
    current = frame
    while current is not None and len(stack) < MAX_STACK_DEPTH:
        stack.append(_frame_label(current))
        current = current.f_back
    stack.reverse()
    return tuple(stack)


class StackAggregate:
    """Sample counts folded by identical stack (root→leaf tuples).

    Not locked — owners synchronise access (the profiler mutates only
    under its own lock and hands out copies).
    """

    __slots__ = ("counts", "samples")

    def __init__(self) -> None:
        self.counts: Dict[Tuple[str, ...], int] = {}
        self.samples = 0

    def add(self, stack: Tuple[str, ...], count: int = 1) -> None:
        self.counts[stack] = self.counts.get(stack, 0) + count
        self.samples += count

    def copy(self) -> "StackAggregate":
        clone = StackAggregate()
        clone.counts = dict(self.counts)
        clone.samples = self.samples
        return clone

    def hot_frames(self, top: int = 10) -> List[Tuple[str, int]]:
        """Leaf (self-time) frames ranked by sample count."""
        leaves: Dict[str, int] = {}
        for stack, count in self.counts.items():
            leaf = stack[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]

    def hot_stacks(self, top: int = 5) -> List[Tuple[Tuple[str, ...], int]]:
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]

    def collapsed(self) -> str:
        """FlameGraph collapsed-stack text: ``frame;frame count`` lines."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.counts.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str, rate_hz: float) -> Dict[str, Any]:
        """Speedscope ``sampled`` profile; weights are seconds."""
        frames: List[Dict[str, str]] = []
        index: Dict[str, int] = {}
        samples: List[List[int]] = []
        weights: List[float] = []
        seconds_per_sample = 1.0 / rate_hz if rate_hz > 0 else 0.0
        for stack, count in sorted(self.counts.items()):
            row: List[int] = []
            for label in stack:
                slot = index.get(label)
                if slot is None:
                    slot = len(frames)
                    index[label] = slot
                    frames.append({"name": label})
                row.append(slot)
            samples.append(row)
            weights.append(count * seconds_per_sample)
        total = sum(weights)
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": name,
            "exporter": "repro-gis",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }

    def summary(self, top: int = 5) -> Dict[str, Any]:
        """Compact hot-stack digest for slowlog / flight-dump embedding."""
        return {
            "samples": self.samples,
            "hot_frames": [
                {"frame": frame, "samples": count}
                for frame, count in self.hot_frames(top)
            ],
            "hot_stacks": [
                {"stack": list(stack), "samples": count}
                for stack, count in self.hot_stacks(top)
            ],
        }


class Profile:
    """An immutable point-in-time export of a profiler's aggregates."""

    __slots__ = ("aggregate", "per_query", "rate_hz", "seconds")

    def __init__(
        self,
        aggregate: StackAggregate,
        per_query: Dict[str, StackAggregate],
        rate_hz: float,
        seconds: float,
    ) -> None:
        self.aggregate = aggregate
        self.per_query = per_query
        self.rate_hz = rate_hz
        self.seconds = seconds

    def collapsed(self) -> str:
        return self.aggregate.collapsed()

    def speedscope(self, name: str = "repro-gis profile") -> Dict[str, Any]:
        return self.aggregate.speedscope(name, self.rate_hz)

    def speedscope_json(self, name: str = "repro-gis profile") -> str:
        return json.dumps(self.speedscope(name)) + "\n"

    def hot_frames(self, top: int = 10) -> List[Tuple[str, int]]:
        return self.aggregate.hot_frames(top)

    def summary(self, top: int = 5) -> Dict[str, Any]:
        digest = self.aggregate.summary(top)
        digest["rate_hz"] = self.rate_hz
        digest["seconds"] = round(self.seconds, 3)
        return digest


class SamplingProfiler:
    """The sampler: a daemon thread folding stacks into aggregates.

    ``sample_once`` is also callable directly (no thread) — the bench
    overhead gate measures a sweep's cost that way.
    """

    def __init__(
        self,
        rate_hz: float = DEFAULT_RATE_HZ,
        queries: Optional[QueryRegistry] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {rate_hz}")
        self.rate_hz = float(rate_hz)
        self._queries = queries
        self._registry = registry
        self._lock = threading.Lock()
        self._process = StackAggregate()
        self._per_query: "OrderedDict[str, StackAggregate]" = OrderedDict()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started_at: Optional[float] = None
        self._elapsed = 0.0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def queries(self) -> QueryRegistry:
        return self._queries if self._queries is not None else get_queries()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._started_at = now()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        registry = self.registry
        registry.gauge("profiler.running").set(1.0)
        registry.gauge("profiler.rate_hz").set(self.rate_hz)

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self._elapsed += now() - self._started_at
            self._started_at = None
        self.registry.gauge("profiler.running").set(0.0)

    def _loop(self) -> None:
        interval = 1.0 / self.rate_hz
        while not self._stop.wait(interval):
            try:
                self.sample_once()
            except Exception:
                # Sampling must never take the process down; only
                # ``Exception`` — injected crashes pass through.
                continue

    # -- sampling -----------------------------------------------------------

    def sample_once(self) -> int:
        """One sweep over every live thread; returns stacks recorded."""
        t0 = now()
        frames = sys._current_frames()
        owners = self.queries.thread_map()
        sampler = self._thread
        skip_idents = {threading.get_ident()}
        if sampler is not None and sampler.ident is not None:
            skip_idents.add(sampler.ident)
        recorded = 0
        with self._lock:
            for ident, frame in frames.items():
                if ident in skip_idents:
                    continue
                stack = _unwind(frame)
                if not stack:
                    continue
                # Threads parked inside the profiler itself (a capture
                # caller sleeping, another sampler) are measurement
                # scaffolding, not workload.
                if any(label.startswith("profiler.") for label in stack):
                    continue
                self._process.add(stack)
                recorded += 1
                owner = owners.get(ident)
                if owner is not None:
                    agg = self._per_query.get(owner.query_id)
                    if agg is None:
                        agg = StackAggregate()
                        self._per_query[owner.query_id] = agg
                        while len(self._per_query) > MAX_TRACKED_QUERIES:
                            self._per_query.popitem(last=False)
                    else:
                        self._per_query.move_to_end(owner.query_id)
                    agg.add(stack)
        registry = self.registry
        registry.counter("profiler.sweeps").inc()
        if recorded:
            registry.counter("profiler.samples").inc(recorded)
        registry.histogram("profiler.sweep_seconds").observe(now() - t0)
        return recorded

    # -- views --------------------------------------------------------------

    def _seconds(self) -> float:
        elapsed = self._elapsed
        if self._started_at is not None:
            elapsed += now() - self._started_at
        return elapsed

    def profile(self) -> Profile:
        """Snapshot the current aggregates into an immutable export."""
        with self._lock:
            aggregate = self._process.copy()
            per_query = {
                query_id: agg.copy()
                for query_id, agg in self._per_query.items()
            }
        return Profile(aggregate, per_query, self.rate_hz, self._seconds())

    def hot_summary(self, top: int = 5) -> Optional[Dict[str, Any]]:
        """Process-wide hot-stack digest, or ``None`` with no samples."""
        with self._lock:
            if self._process.samples == 0:
                return None
            aggregate = self._process.copy()
        digest = aggregate.summary(top)
        digest["rate_hz"] = self.rate_hz
        return digest

    def query_summary(
        self, query_id: Optional[str], top: int = 5
    ) -> Optional[Dict[str, Any]]:
        """Hot-stack digest for one query, or ``None`` if never sampled."""
        if query_id is None:
            return None
        with self._lock:
            agg = self._per_query.get(query_id)
            if agg is None or agg.samples == 0:
                return None
            agg = agg.copy()
        digest = agg.summary(top)
        digest["rate_hz"] = self.rate_hz
        return digest


def capture(
    seconds: float = 2.0,
    rate_hz: float = CAPTURE_RATE_HZ,
    queries: Optional[QueryRegistry] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Profile:
    """Blocking on-demand capture: sample for ``seconds``, return the profile.

    Runs its own short-lived :class:`SamplingProfiler`, independent of
    (and concurrent-safe with) the always-on one.  The caller's thread
    parks inside this function for the duration; sweeps filter frames
    from this module, so the wait itself never shows up in the profile.
    """
    profiler = SamplingProfiler(
        rate_hz=rate_hz, queries=queries, registry=registry
    )
    profiler.start()
    try:
        threading.Event().wait(max(0.0, seconds))
    finally:
        profiler.stop()
    profiler.registry.counter("profiler.captures").inc()
    return profiler.profile()


_global_profiler: Optional[SamplingProfiler] = None
_profiler_lock = threading.Lock()


def get_profiler(rate_hz: float = DEFAULT_RATE_HZ) -> SamplingProfiler:
    """The process-wide always-on profiler, created on first call.

    Process-wide (not per-ObsContext) because ``sys._current_frames``
    sees every thread in the process — two samplers would double the
    overhead for the same information.
    """
    global _global_profiler
    with _profiler_lock:
        if _global_profiler is None:
            _global_profiler = SamplingProfiler(rate_hz=rate_hz)
        return _global_profiler


def maybe_profiler() -> Optional[SamplingProfiler]:
    """The process profiler if one exists — never creates.

    The flight recorder and slow-query log use this so that merely
    crashing or being slow does not spin up sampling.
    """
    return _global_profiler


def reset_profiler() -> None:
    """Drop the process profiler (test isolation)."""
    global _global_profiler
    with _profiler_lock:
        if _global_profiler is not None:
            _global_profiler.stop()
        _global_profiler = None
