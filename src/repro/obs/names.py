"""The declared registry of every metric name the engine emits.

Metrics are get-or-create by name (:meth:`MetricsRegistry.counter` and
friends), so a typo'd name — ``durability.retires`` — would silently
fork a fresh, forever-zero series instead of erroring.  This module is
the single place names are declared; the ``counter-registry`` rule of
``repro-gis check`` fails the build when a literal name used anywhere
in ``src/`` is missing here.  Keep ``docs/observability.md`` in sync.

Naming convention: dotted lowercase ``<subsystem>.<what>``.
"""

from __future__ import annotations

from typing import FrozenSet

#: Monotonic event counts.
COUNTERS: FrozenSet[str] = frozenset(
    {
        "compression.decoded_blocks",
        "compression.encoded_blocks",
        "compression.materialized_bytes_saved",
        "compression.packed_predicate_hits",
        "durability.checksum_failures",
        "durability.quarantines",
        "durability.retries",
        "durability.rolled_back_rows",
        "flight.dumps",
        "heat.flushes",
        "heat.updates",
        "imprints.builds",
        "imprints.segment_builds",
        "load.files",
        "load.points",
        "load.tiles_skipped",
        "obs.http_requests",
        "parallel.tasks",
        "profiler.captures",
        "profiler.samples",
        "profiler.sweeps",
        "query.cancelled",
        "query.count",
        "query.errors",
        "query.segments_probed",
        "query.segments_skipped",
        "serve.admitted",
        "serve.client_disconnects",
        "serve.errors",
        "serve.requests",
        "serve.shed",
        "slowlog.records",
        "sql.queries",
        "trace.spans_dropped",
    }
)

#: Point-in-time values.
GAUGES: FrozenSet[str] = frozenset(
    {
        "heat.extents",
        "heat.hottest_extent_bytes",
        "heat.hottest_segment_bytes",
        "heat.segments",
        "heat.tables",
        "obs.server_up",
        "profiler.rate_hz",
        "profiler.running",
        "query.active",
        "serve.draining",
        "serve.inflight",
        "serve.queued",
    }
)

#: Latency / size distributions.
HISTOGRAMS: FrozenSet[str] = frozenset(
    {
        "compression.decode_seconds",
        "compression.encode_seconds",
        "imprints.build_seconds",
        "load.seconds",
        "profiler.sweep_seconds",
        "query.cpu_seconds",
        "query.filter_seconds",
        "query.refine_seconds",
        "query.total_seconds",
        "serve.queue_wait_seconds",
        "serve.request_seconds",
        "sql.seconds",
    }
)

#: Every declared metric name, any kind.
ALL_METRICS: FrozenSet[str] = COUNTERS | GAUGES | HISTOGRAMS
