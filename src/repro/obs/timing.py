"""Clock helpers for hot-path code.

Hot-path modules are barred (by the ``span-discipline`` rule of
``repro-gis check``) from calling ``time.perf_counter`` directly: raw
clock reads scatter timing the tracer can never attribute, and make it
ambiguous which clock a stat was measured on.  They use these helpers
instead — same monotonic clock the tracer's spans use, one obvious
place to swap it out.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Optional, Type


def now() -> float:
    """The monotonic timestamp spans are measured on (seconds)."""
    return time.perf_counter()


class Stopwatch:
    """Measure a wall-clock interval, usable as a context manager.

    ::

        with Stopwatch() as watch:
            work()
        stats.seconds = watch.seconds

    ``seconds`` reads live while the watch is running and freezes at
    ``stop()`` / context exit.
    """

    __slots__ = ("_start", "_elapsed", "_running")

    def __init__(self) -> None:
        self._start = now()
        self._elapsed = 0.0
        self._running = True

    def restart(self) -> "Stopwatch":
        self._start = now()
        self._elapsed = 0.0
        self._running = True
        return self

    def stop(self) -> float:
        """Freeze and return the elapsed seconds."""
        if self._running:
            self._elapsed = now() - self._start
            self._running = False
        return self._elapsed

    @property
    def seconds(self) -> float:
        if self._running:
            return now() - self._start
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.restart()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.stop()
        return False
