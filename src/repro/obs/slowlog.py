"""Slow-query log: structured JSONL records for outlier queries.

P99 latency lives in the histograms; *which query* was the p99 does
not.  When a :class:`SlowQueryLog` is armed (``PointCloudDB(
slow_query_s=...)`` or ``REPRO_SLOW_QUERY_S``), every query runs inside
:meth:`SlowQueryLog.observe`; the ones that exceed the threshold append
exactly one JSON record to the log file — the query text or bbox, its
:class:`~repro.core.query.QueryStats`, its resource attribution, and
the **full span tree** captured while it ran, so the post-hoc question
"where did those 800 ms go" has the same answer ``EXPLAIN ANALYZE``
would have given live.

Records are one JSON object per line (JSONL).  Appends go through
:func:`repro.engine.durable.atomic_append_text` — written, flushed and
fsynced before ``observe`` returns — so the record for the query that
crashed the process is on disk.  A torn final line (the crash happened
*mid*-append) is skipped by :func:`read_records`, never a parse error.

Fast queries pay one :meth:`~repro.obs.trace.Tracer.capture` push/pop
and a stopwatch; nothing is rendered or written for them.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from .metrics import MetricsRegistry, get_registry
from .timing import Stopwatch
from .trace import Span, Tracer, format_tree, get_tracer, span_to_dict

#: Environment threshold in seconds; presence (any parseable float,
#: including 0) arms the slow-query log.
SLOW_QUERY_ENV = "REPRO_SLOW_QUERY_S"

#: Environment override for the log file location.
SLOW_QUERY_LOG_ENV = "REPRO_SLOW_QUERY_LOG"

#: Default log filename, resolved against the database directory.
DEFAULT_LOG_NAME = "slow-query.jsonl"


def threshold_from_env() -> Optional[float]:
    """The ``REPRO_SLOW_QUERY_S`` threshold, or ``None`` when unset or
    unparseable.  Zero is a valid threshold (log every query)."""
    import os

    raw = os.environ.get(SLOW_QUERY_ENV, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def path_from_env() -> Optional[str]:
    """The ``REPRO_SLOW_QUERY_LOG`` path override, or ``None``."""
    import os

    raw = os.environ.get(SLOW_QUERY_LOG_ENV, "").strip()
    return raw or None


class SlowQueryObservation:
    """Mutable context handed to the query body by :meth:`observe`.

    The body attaches whatever it learns (stats, resources, row counts)
    with :meth:`set`; the log merges those fields into the record if the
    query turns out slow."""

    __slots__ = ("fields",)

    def __init__(self) -> None:
        self.fields: Dict[str, object] = {}

    def set(self, **fields: object) -> "SlowQueryObservation":
        self.fields.update(fields)
        return self


class SlowQueryLog:
    """Append-only JSONL log of queries slower than ``threshold_s``.

    Parameters
    ----------
    threshold_s:
        Queries taking at least this long (wall clock) are logged.
    path:
        The JSONL file; parent directories are created at first append.
    tracer, registry:
        Default to the *active context's* instances, resolved at
        observe time (not construction), so a log owned by a database
        with a scoped :class:`~repro.obs.context.ObsContext` captures
        that context's spans and counters.
    """

    def __init__(
        self,
        threshold_s: float,
        path: Union[str, Path],
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if threshold_s < 0:
            raise ValueError("slow-query threshold must be >= 0")
        self.threshold_s = float(threshold_s)
        self.path = Path(path)
        self._tracer = tracer
        self._registry = registry

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @contextmanager
    def observe(self, kind: str, **detail: object) -> Iterator[SlowQueryObservation]:
        """Run one query under observation.

        ``kind`` names the entry point (``"sql"``, ``"spatial"``);
        ``detail`` carries its identity (the SQL text, the bbox).  Spans
        finished inside are captured via the tracer (force-enabled for
        the duration, same as ``EXPLAIN ANALYZE``); if the body takes at
        least ``threshold_s`` seconds, one record is durably appended —
        whether the query succeeded or raised.
        """
        obs = SlowQueryObservation()
        error: Optional[str] = None
        with self.tracer.capture() as spans:
            watch = Stopwatch()
            try:
                yield obs
            except Exception as exc:
                error = type(exc).__name__
                raise
            finally:
                elapsed = watch.stop()
                if elapsed >= self.threshold_s:
                    self._write(kind, detail, obs, elapsed, spans, error)

    def _write(
        self,
        kind: str,
        detail: Dict[str, object],
        obs: SlowQueryObservation,
        elapsed: float,
        spans: List[Span],
        error: Optional[str],
    ) -> None:
        record: Dict[str, object] = {
            "ts": time.time(),
            "kind": kind,
            "seconds": elapsed,
            "threshold_s": self.threshold_s,
        }
        record.update(detail)
        record.update(obs.fields)
        if error is not None:
            record["error"] = error
        record["spans"] = [span_to_dict(span) for span in spans]
        # Lazy import: obs is imported by engine's own modules, and the
        # durable layer imports back into obs for its spans.
        from ..engine.durable import atomic_append_text

        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_append_text(
            self.path, json.dumps(record) + "\n", label="slowlog"
        )
        self.registry.counter("slowlog.records").inc()


def read_records(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a slow-query JSONL file, skipping blank and torn lines.

    A process that died mid-append leaves at most one unparseable final
    line; readers should see every complete record, not an exception.
    """
    records: List[Dict[str, object]] = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(parsed, dict):
            records.append(parsed)
    return records


def format_record(record: Dict[str, object]) -> str:
    """One slow-log record as human-readable text: a header line with
    the identity and timing, then the span tree (when captured)."""
    from .trace import from_json

    ts = record.get("ts")
    stamp = (
        time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(ts)))
        if isinstance(ts, (int, float))
        else "?"
    )
    kind = record.get("kind", "?")
    raw_seconds = record.get("seconds", 0.0)
    seconds = float(raw_seconds) if isinstance(raw_seconds, (int, float)) else 0.0
    header = f"[{stamp}] {kind} took {seconds * 1e3:.1f} ms"
    identity = record.get("sql") or record.get("bbox")
    if identity is not None:
        header += f": {identity}"
    if "error" in record:
        header += f" (raised {record['error']})"
    lines = [header]
    spans = record.get("spans")
    if isinstance(spans, list) and spans:
        lines.append(format_tree(from_json(json.dumps(spans))))
    return "\n".join(lines)
