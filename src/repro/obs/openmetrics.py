"""OpenMetrics / Prometheus text exposition of the metrics registry.

Renders every instrument in a :class:`~repro.obs.metrics.MetricsRegistry`
in the `OpenMetrics text format
<https://github.com/OpenObservability/OpenMetrics>`_, the wire format
Prometheus-style scrapers consume:

* counters expose one ``<name>_total`` sample,
* gauges expose one ``<name>`` sample,
* histograms expose **cumulative** ``<name>_bucket{le="..."}`` series
  (the registry stores per-bucket counts; the renderer accumulates),
  a ``+Inf`` bucket, ``_sum`` and ``_count``,

and the exposition ends with the mandatory ``# EOF`` line.  Dotted
registry names (``query.total_seconds``) become underscore names
(``query_total_seconds``); a ``repro_info`` metric carries the package
version and Python runtime as (escaped) labels.

Everything here is pure string building — the HTTP side lives in
:mod:`repro.obs.server`, and tests parse the text back to prove the
format round-trips.
"""

from __future__ import annotations

import math
import platform
import re
from typing import Dict, List, Mapping, Optional, Tuple, cast

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry

#: The content type a conformant scraper negotiates for this format.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """A registry name as a legal exposition metric name.

    Dots (and anything else outside ``[a-zA-Z0-9_:]``) collapse to
    underscores; a leading digit gets a ``_`` prefix.  The mapping keeps
    distinct dotted names distinct for every name the engine declares.
    """
    candidate = _NAME_BAD_CHARS.sub("_", name)
    if not candidate or not _NAME_OK.match(candidate):
        candidate = "_" + candidate
    return candidate


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash, double
    quote and newline must be escaped, everything else passes through."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """A sample value as exposition text (integers without a dot,
    infinities as ``+Inf``/``-Inf``)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels(pairs: Mapping[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in pairs.items()
    )
    return "{" + inner + "}"


def _info_lines() -> List[str]:
    from .. import __version__

    labels = _labels(
        {
            "version": __version__,
            "python": platform.python_version(),
        }
    )
    return ["# TYPE repro info", f"repro_info{labels} 1"]


def _counter_lines(name: str, counter: Counter) -> List[str]:
    exp = metric_name(name)
    return [
        f"# TYPE {exp} counter",
        f"{exp}_total {format_value(float(counter.value))}",
    ]


def _gauge_lines(name: str, gauge: Gauge) -> List[str]:
    exp = metric_name(name)
    return [f"# TYPE {exp} gauge", f"{exp} {format_value(gauge.value)}"]


def _histogram_lines(name: str, histogram: Histogram) -> List[str]:
    exp = metric_name(name)
    snapshot = histogram.snapshot()
    lines = [f"# TYPE {exp} histogram"]
    cumulative = 0
    buckets = cast(List[Dict[str, object]], snapshot["buckets"])
    for bucket in buckets:
        cumulative += int(cast(int, bucket["count"]))
        le = bucket["le"]
        edge = "+Inf" if le is None else format_value(cast(float, le))
        lines.append(f'{exp}_bucket{{le="{edge}"}} {cumulative}')
    lines.append(f"{exp}_sum {format_value(cast(float, snapshot['sum']))}")
    lines.append(f"{exp}_count {cast(int, snapshot['count'])}")
    return lines


def render(registry: Optional[MetricsRegistry] = None) -> str:
    """The whole registry as one OpenMetrics exposition (``# EOF``
    terminated).  Families render in sorted name order so two scrapes of
    an unchanged registry are byte-identical."""
    if registry is None:
        registry = get_registry()
    families: List[Tuple[str, List[str]]] = []
    metrics = registry.instruments()
    for name in sorted(metrics):
        metric = metrics[name]
        if isinstance(metric, Counter):
            families.append((name, _counter_lines(name, metric)))
        elif isinstance(metric, Gauge):
            families.append((name, _gauge_lines(name, metric)))
        elif isinstance(metric, Histogram):
            families.append((name, _histogram_lines(name, metric)))
    lines: List[str] = []
    for _name, family in families:
        lines.extend(family)
    lines.extend(_info_lines())
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
