"""Crash flight recorder: post-mortem telemetry for dying processes.

Metrics endpoints and slow-query logs only help while the process is
alive; the question after a crash is "what were the last things it
did".  The :class:`FlightRecorder` keeps an always-on, bounded,
in-memory buffer of recent **events** — CLI entry notes, phase marks,
anything callers :meth:`~FlightRecorder.note` — and, when the process
dies abnormally, writes one JSON dump containing:

* the reason (exception with traceback, or the fatal signal),
* the buffered events, newest last,
* the most recent spans from the tracer's ring buffer (when tracing
  was on — the recorder never enables tracing itself),
* the full metrics snapshot *and* the counter deltas since
  :meth:`~FlightRecorder.install`, so "what did this process do in its
  lifetime" and "what state was it in" are both answerable.

``install()`` chains onto ``sys.excepthook`` (the previous hook still
runs, so tracebacks still print) and, on the main thread, arms a
``SIGTERM`` handler that dumps and then re-raises the default action —
the process still dies, it just leaves a black box behind.  Dumps are
written with the durable atomic-write protocol to ``REPRO_FLIGHT_DIR``
(default: the current directory) as ``flight-<pid>-<ts>.json``.

The steady-state cost is one deque append per ``note()``; nothing is
serialised until the process is already dying.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
import traceback
from collections import deque
from pathlib import Path
from types import FrameType, TracebackType
from typing import Callable, Deque, Dict, List, Optional, Type, Union

from ._context_state import CURRENT as _CONTEXT
from .metrics import MetricsRegistry, get_registry
from .queries import QueryRegistry, get_queries
from .trace import Tracer, get_tracer, span_to_dict

#: Environment override for where dumps land (default: cwd).
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

#: Bounded event-buffer capacity; old events fall off the back.
DEFAULT_MAX_EVENTS = 256

#: How many of the tracer's most recent spans a dump embeds.
DUMP_SPANS = 200

ExceptHook = Callable[
    [Type[BaseException], BaseException, Optional[TracebackType]], None
]


def flight_directory() -> Path:
    """Where dumps go: ``REPRO_FLIGHT_DIR`` or the working directory."""
    raw = os.environ.get(FLIGHT_DIR_ENV, "").strip()
    return Path(raw) if raw else Path(".")


class FlightRecorder:
    """Bounded black-box buffer plus the hooks that flush it on death."""

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        directory: Optional[Union[str, Path]] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        queries: Optional[QueryRegistry] = None,
    ) -> None:
        self._events: Deque[Dict[str, object]] = deque(maxlen=max_events)
        self._lock = threading.Lock()
        self.directory = Path(directory) if directory is not None else None
        self.tracer = tracer if tracer is not None else get_tracer()
        self.registry = registry if registry is not None else get_registry()
        self.queries = queries if queries is not None else get_queries()
        self._baseline_counters: Dict[str, int] = {}
        self._prev_excepthook: Optional[ExceptHook] = None
        self._installed_hook: Optional[ExceptHook] = None
        self._prev_sigterm: Optional[object] = None
        self._installed = False

    # -- the black box ---------------------------------------------------------

    def note(self, name: str, **attributes: object) -> None:
        """Record one event (a breadcrumb, not a span — no duration)."""
        event: Dict[str, object] = {"ts": time.time(), "event": name}
        event.update(attributes)
        with self._lock:
            self._events.append(event)

    def events(self) -> List[Dict[str, object]]:
        """Snapshot of the buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    # -- install / uninstall ---------------------------------------------------

    def install(self) -> "FlightRecorder":
        """Arm the excepthook (and SIGTERM, on the main thread) and mark
        the counter baseline for lifetime deltas.  Idempotent."""
        if self._installed:
            return self
        self._baseline_counters = self._counter_values()
        self._prev_excepthook = sys.excepthook
        # Keep the exact bound-method object we install: attribute access
        # creates a fresh one each time, so an identity check at uninstall
        # must compare against this, not ``self._on_exception``.
        self._installed_hook = self._on_exception
        sys.excepthook = self._installed_hook
        if threading.current_thread() is threading.main_thread():
            try:
                self._prev_sigterm = signal.signal(
                    signal.SIGTERM, self._on_signal
                )
            except (ValueError, OSError):
                self._prev_sigterm = None
        self._installed = True
        self.note("flight.installed", pid=os.getpid())
        return self

    def uninstall(self) -> None:
        """Restore the previous hooks (for tests, mostly)."""
        if not self._installed:
            return
        if sys.excepthook is self._installed_hook and self._prev_excepthook:
            sys.excepthook = self._prev_excepthook
        if (
            self._prev_sigterm is not None
            and threading.current_thread() is threading.main_thread()
        ):
            try:
                signal.signal(signal.SIGTERM, self._prev_sigterm)  # type: ignore[arg-type]
            except (ValueError, OSError):
                pass
        self._prev_excepthook = None
        self._installed_hook = None
        self._prev_sigterm = None
        self._installed = False

    # -- dumping ---------------------------------------------------------------

    def dump(
        self, reason: str, exc: Optional[BaseException] = None
    ) -> Optional[Path]:
        """Write one post-mortem JSON dump; returns its path.

        Never raises — a failing dump must not mask the original death —
        and returns ``None`` when writing proved impossible.
        """
        try:
            record = self._build_record(reason, exc)
            directory = (
                self.directory if self.directory is not None else flight_directory()
            )
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"flight-{os.getpid()}-{int(time.time())}.json"
            from ..engine.durable import atomic_write_text

            atomic_write_text(path, json.dumps(record, indent=2), label="flight")
            self.registry.counter("flight.dumps").inc()
            return path
        except Exception:
            return None

    def _build_record(
        self, reason: str, exc: Optional[BaseException]
    ) -> Dict[str, object]:
        record: Dict[str, object] = {
            "reason": reason,
            "ts": time.time(),
            "pid": os.getpid(),
            "argv": list(sys.argv),
            "events": self.events(),
            "counter_deltas": self._counter_deltas(),
            "metrics": self.registry.snapshot(),
            # What was running (and what just ran) at dump time: id,
            # phase, progress, elapsed — the post-mortem's first question.
            "queries": self.queries.snapshot(),
        }
        if exc is not None:
            record["exception"] = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exception(
                    type(exc), exc, exc.__traceback__
                ),
            }
        spans = self.tracer.spans()
        record["spans"] = [span_to_dict(s) for s in spans[-DUMP_SPANS:]]
        # What the process was *executing*, not just its breadcrumbs:
        # the always-on sampler's hot stacks, when one is running.
        # maybe_profiler never creates — crashing must not start sampling.
        from .profiler import maybe_profiler

        profiler = maybe_profiler()
        if profiler is not None:
            hot = profiler.hot_summary()
            if hot is not None:
                record["profile"] = hot
        return record

    def _counter_values(self) -> Dict[str, int]:
        snapshot = self.registry.snapshot()
        counters = snapshot.get("counters", {})
        return {
            name: int(value)
            for name, value in counters.items()
            if isinstance(value, int)
        }

    def _counter_deltas(self) -> Dict[str, int]:
        deltas: Dict[str, int] = {}
        for name, value in self._counter_values().items():
            delta = value - self._baseline_counters.get(name, 0)
            if delta:
                deltas[name] = delta
        return deltas

    # -- hooks -----------------------------------------------------------------

    def _on_exception(
        self,
        exc_type: Type[BaseException],
        exc: BaseException,
        tb: Optional[TracebackType],
    ) -> None:
        if not issubclass(exc_type, KeyboardInterrupt):
            self.dump("unhandled_exception", exc)
        prev = self._prev_excepthook
        if prev is not None:
            prev(exc_type, exc, tb)
        else:
            sys.__excepthook__(exc_type, exc, tb)

    def _on_signal(self, signum: int, frame: Optional[FrameType]) -> None:
        self.dump(f"signal_{signal.Signals(signum).name}")
        # Re-deliver with the default action so the exit status is the
        # conventional "killed by signal" one, not a clean exit.
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


_global_recorder: Optional[FlightRecorder] = None
_recorder_lock = threading.Lock()


def get_flight_recorder() -> FlightRecorder:
    """The active context's recorder if it has one, else the process-wide
    recorder (created on first use, like the tracer's singleton — but
    lazily, so importing obs stays cheap)."""
    context = _CONTEXT.get()
    if context is not None and context.recorder is not None:
        recorder = context.recorder
        return recorder
    global _global_recorder
    with _recorder_lock:
        if _global_recorder is None:
            _global_recorder = FlightRecorder()
        return _global_recorder
