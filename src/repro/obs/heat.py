"""Workload heat accounting: where the traffic actually goes.

Every scan already *knows* its access shape — which segments it
skipped, probed, or accepted wholesale, and how many encoded vs
materialized bytes it touched; every spatial query knows its bbox
footprint.  This module folds those facts into **time-decayed (EWMA)
heat counters** so that "hot right now" is a first-class, queryable
property of the store:

* per ``(table, column, segment)``: probes / skips / full-accepts and
  encoded / materialized bytes (segment ``-1`` = an unsegmented plain
  scan of the whole column);
* per ``(table, grid cell)``: query counts and bytes, rasterised from
  each query's bbox footprint onto a fixed ``grid × grid`` lattice over
  the table's coordinate domain.

Decay is exponential with a configurable half-life over *wall-clock*
time, so heat ages out across restarts too.  State is periodically
persisted as one JSONL window record per flush through
``durable.atomic_append_text`` (crash-safe, torn-tail-tolerant on
read), and :meth:`HeatMap.hints` distils it into the ranked hot-extent
"partitioning hints" JSON that the ROADMAP item 2 sharding work
consumes (see ``docs/observability.md``).

Recording is opt-in: hot paths call :func:`maybe_heat` and skip out on
``None``, so the disabled cost is one module-global read per scan.
"""

from __future__ import annotations

import json
import math
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .metrics import MetricsRegistry, get_registry
from .queries import current_query

__all__ = [
    "DEFAULT_FLUSH_INTERVAL_S",
    "DEFAULT_GRID",
    "DEFAULT_HALFLIFE_S",
    "HEAT_JOURNAL_NAME",
    "HeatMap",
    "disable_heat",
    "enable_heat",
    "maybe_heat",
    "read_journal",
]

DEFAULT_HALFLIFE_S = 600.0
DEFAULT_GRID = 16
DEFAULT_FLUSH_INTERVAL_S = 30.0
HEAT_JOURNAL_NAME = "heat.jsonl"

#: Bounded state: past these, the coldest entry is evicted on insert.
MAX_SEGMENT_ENTRIES = 8192
MAX_EXTENT_ENTRIES = 4096

_LN2 = math.log(2.0)

SegmentKey = Tuple[str, str, int]  # (table, column, segment; -1 = whole column)
ExtentKey = Tuple[str, int, int]  # (table, cell ix, cell iy)
Bounds = Tuple[float, float, float, float]  # xmin, ymin, xmax, ymax


def _decay(value: float, elapsed: float, halflife_s: float) -> float:
    if value == 0.0 or elapsed <= 0.0:
        return value
    return value * math.exp(-elapsed * _LN2 / halflife_s)


class _SegmentHeat:
    __slots__ = (
        "probes",
        "skips",
        "fulls",
        "encoded_bytes",
        "materialized_bytes",
        "last_ts",
    )

    def __init__(self, ts: float) -> None:
        self.probes = 0.0
        self.skips = 0.0
        self.fulls = 0.0
        self.encoded_bytes = 0.0
        self.materialized_bytes = 0.0
        self.last_ts = ts

    def decay_to(self, ts: float, halflife_s: float) -> None:
        elapsed = ts - self.last_ts
        if elapsed > 0.0:
            self.probes = _decay(self.probes, elapsed, halflife_s)
            self.skips = _decay(self.skips, elapsed, halflife_s)
            self.fulls = _decay(self.fulls, elapsed, halflife_s)
            self.encoded_bytes = _decay(self.encoded_bytes, elapsed, halflife_s)
            self.materialized_bytes = _decay(
                self.materialized_bytes, elapsed, halflife_s
            )
        self.last_ts = ts

    def bytes_touched(self) -> float:
        return self.encoded_bytes + self.materialized_bytes


class _ExtentHeat:
    __slots__ = ("queries", "nbytes", "last_ts")

    def __init__(self, ts: float) -> None:
        self.queries = 0.0
        self.nbytes = 0.0
        self.last_ts = ts

    def decay_to(self, ts: float, halflife_s: float) -> None:
        elapsed = ts - self.last_ts
        if elapsed > 0.0:
            self.queries = _decay(self.queries, elapsed, halflife_s)
            self.nbytes = _decay(self.nbytes, elapsed, halflife_s)
        self.last_ts = ts


def _query_table() -> str:
    """Attribute a scan to the in-flight query's table, if it names one.

    Spatial queries carry ``detail={"table": ...}``; SQL queries carry
    only the statement text, so their scans fall back to ``"?"``.
    """
    query = current_query()
    if query is not None:
        table = query.detail.get("table")
        if isinstance(table, str) and table:
            return table
    return "?"


class HeatMap:
    """EWMA-decayed workload heat, journalled to ``heat.jsonl``."""

    def __init__(
        self,
        halflife_s: float = DEFAULT_HALFLIFE_S,
        grid: int = DEFAULT_GRID,
        journal: Optional[Union[str, Path]] = None,
        flush_interval_s: float = DEFAULT_FLUSH_INTERVAL_S,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if halflife_s <= 0:
            raise ValueError(f"halflife_s must be positive, got {halflife_s}")
        if grid <= 0:
            raise ValueError(f"grid must be positive, got {grid}")
        self.halflife_s = float(halflife_s)
        self.grid = int(grid)
        self.journal = Path(journal) if journal is not None else None
        self.flush_interval_s = float(flush_interval_s)
        self._registry = registry
        self._lock = threading.Lock()
        self._segments: Dict[SegmentKey, _SegmentHeat] = {}
        self._extents: Dict[ExtentKey, _ExtentHeat] = {}
        #: Per-table coordinate domain, fixed at first footprint: the
        #: cell lattice must stay stable for heat to accumulate.
        self._domains: Dict[str, Bounds] = {}
        self._last_flush = time.time()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # -- recording (hot path; one batched call per scan) --------------------

    def record_scan(
        self,
        column: str,
        probed: Sequence[Tuple[int, int, int]],
        skipped: Sequence[int] = (),
        full: Sequence[int] = (),
        table: Optional[str] = None,
    ) -> None:
        """Fold one scan's per-segment outcomes into the heat counters.

        ``probed`` rows are ``(segment, encoded_bytes, materialized_bytes)``;
        ``skipped`` / ``full`` are segment indexes.  Segment ``-1`` means
        an unsegmented scan of the whole column.
        """
        owner = table if table is not None else _query_table()
        ts = time.time()
        with self._lock:
            for segment, encoded, materialized in probed:
                heat = self._segment(owner, column, segment, ts)
                heat.probes += 1.0
                heat.encoded_bytes += float(encoded)
                heat.materialized_bytes += float(materialized)
            for segment in skipped:
                self._segment(owner, column, segment, ts).skips += 1.0
            for segment in full:
                self._segment(owner, column, segment, ts).fulls += 1.0
        self.registry.counter("heat.updates").inc()

    def record_footprint(
        self,
        table: str,
        bbox: Bounds,
        domain: Bounds,
        nbytes: int,
        queries: int = 1,
    ) -> None:
        """Rasterise one query's bbox onto the table's extent grid.

        ``domain`` is the table's full coordinate extent (column
        min/max — cheap and cached); the first call fixes the lattice.
        ``nbytes`` spreads uniformly over the intersecting cells.
        """
        ts = time.time()
        with self._lock:
            dom = self._domains.setdefault(table, domain)
            cells = self._cells(bbox, dom)
            if not cells:
                return
            per_cell = float(nbytes) / len(cells)
            for ix, iy in cells:
                heat = self._extent(table, ix, iy, ts)
                heat.queries += float(queries)
                heat.nbytes += per_cell
        self.registry.counter("heat.updates").inc()

    def _segment(
        self, table: str, column: str, segment: int, ts: float
    ) -> _SegmentHeat:
        key = (table, column, segment)
        heat = self._segments.get(key)
        if heat is None:
            if len(self._segments) >= MAX_SEGMENT_ENTRIES:
                self._evict_coldest_segment(ts)
            heat = _SegmentHeat(ts)
            self._segments[key] = heat
        else:
            heat.decay_to(ts, self.halflife_s)
        return heat

    def _extent(self, table: str, ix: int, iy: int, ts: float) -> _ExtentHeat:
        key = (table, ix, iy)
        heat = self._extents.get(key)
        if heat is None:
            if len(self._extents) >= MAX_EXTENT_ENTRIES:
                self._evict_coldest_extent(ts)
            heat = _ExtentHeat(ts)
            self._extents[key] = heat
        else:
            heat.decay_to(ts, self.halflife_s)
        return heat

    def _evict_coldest_segment(self, ts: float) -> None:
        coldest = min(
            self._segments.items(),
            key=lambda kv: _decay(
                kv[1].bytes_touched() + kv[1].probes + kv[1].skips + kv[1].fulls,
                ts - kv[1].last_ts,
                self.halflife_s,
            ),
        )
        del self._segments[coldest[0]]

    def _evict_coldest_extent(self, ts: float) -> None:
        coldest = min(
            self._extents.items(),
            key=lambda kv: _decay(
                kv[1].nbytes + kv[1].queries, ts - kv[1].last_ts, self.halflife_s
            ),
        )
        del self._extents[coldest[0]]

    def _cells(self, bbox: Bounds, domain: Bounds) -> List[Tuple[int, int]]:
        xmin, ymin, xmax, ymax = domain
        width = xmax - xmin
        height = ymax - ymin
        if width <= 0 or height <= 0:
            return [(0, 0)]
        n = self.grid

        def clamp(i: float) -> int:
            return min(n - 1, max(0, int(i)))

        ix0 = clamp((bbox[0] - xmin) / width * n)
        ix1 = clamp((bbox[2] - xmin) / width * n)
        iy0 = clamp((bbox[1] - ymin) / height * n)
        iy1 = clamp((bbox[3] - ymin) / height * n)
        return [
            (ix, iy)
            for ix in range(ix0, ix1 + 1)
            for iy in range(iy0, iy1 + 1)
        ]

    def _cell_extent(self, table: str, ix: int, iy: int) -> Optional[Bounds]:
        domain = self._domains.get(table)
        if domain is None:
            return None
        xmin, ymin, xmax, ymax = domain
        cw = (xmax - xmin) / self.grid
        ch = (ymax - ymin) / self.grid
        return (
            xmin + ix * cw,
            ymin + iy * ch,
            xmin + (ix + 1) * cw,
            ymin + (iy + 1) * ch,
        )

    # -- views --------------------------------------------------------------

    def snapshot(self, top: int = 20) -> Dict[str, Any]:
        """JSON-ready decayed-to-now view (``/debug/heat``, CLI)."""
        ts = time.time()
        with self._lock:
            segments = self._segment_rows(ts)
            extents = self._extent_rows(ts)
            tables = {key[0] for key in self._segments} | {
                key[0] for key in self._extents
            }
        segments.sort(key=lambda row: -float(row["bytes"]))
        extents.sort(key=lambda row: -float(row["bytes"]))
        registry = self.registry
        registry.gauge("heat.tables").set(float(len(tables)))
        registry.gauge("heat.segments").set(float(len(segments)))
        registry.gauge("heat.extents").set(float(len(extents)))
        registry.gauge("heat.hottest_segment_bytes").set(
            float(segments[0]["bytes"]) if segments else 0.0
        )
        registry.gauge("heat.hottest_extent_bytes").set(
            float(extents[0]["bytes"]) if extents else 0.0
        )
        return {
            "enabled": True,
            "ts": ts,
            "halflife_s": self.halflife_s,
            "grid": self.grid,
            "tables": sorted(tables),
            "segments": segments[:top],
            "extents": extents[:top],
            "totals": {
                "segments": len(segments),
                "extents": len(extents),
            },
        }

    def _segment_rows(self, ts: float) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        for (table, column, segment), heat in self._segments.items():
            heat.decay_to(ts, self.halflife_s)
            rows.append(
                {
                    "table": table,
                    "column": column,
                    "segment": segment,
                    "probes": round(heat.probes, 3),
                    "skips": round(heat.skips, 3),
                    "fulls": round(heat.fulls, 3),
                    "encoded_bytes": round(heat.encoded_bytes, 1),
                    "materialized_bytes": round(heat.materialized_bytes, 1),
                    "bytes": round(heat.bytes_touched(), 1),
                }
            )
        return rows

    def _extent_rows(self, ts: float) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        for (table, ix, iy), heat in self._extents.items():
            heat.decay_to(ts, self.halflife_s)
            row: Dict[str, Any] = {
                "table": table,
                "cell": [ix, iy],
                "queries": round(heat.queries, 3),
                "bytes": round(heat.nbytes, 1),
            }
            extent = self._cell_extent(table, ix, iy)
            if extent is not None:
                row["extent"] = [round(v, 3) for v in extent]
            rows.append(row)
        return rows

    def hints(self, top: int = 10) -> Dict[str, Any]:
        """Ranked hot spatial extents — the partitioning-hints contract.

        The consumer (ROADMAP item 2, sharding by spatial partition)
        reads ``hints[*].extent`` as candidate partition seeds ranked by
        decayed bytes-touched.  Fields: ``table``, ``cell``, ``extent``
        (``[xmin, ymin, xmax, ymax]``), ``bytes``, ``queries``, ``rank``.
        """
        ts = time.time()
        with self._lock:
            rows = self._extent_rows(ts)
        rows = [row for row in rows if "extent" in row]
        rows.sort(key=lambda row: -float(row["bytes"]))
        hints: List[Dict[str, Any]] = []
        for rank, row in enumerate(rows[:top], start=1):
            hints.append({"rank": rank, **row})
        return {
            "version": 1,
            "ts": ts,
            "halflife_s": self.halflife_s,
            "grid": self.grid,
            "hints": hints,
        }

    # -- persistence --------------------------------------------------------

    def flush(self) -> Optional[Path]:
        """Append one closed window record to the journal.

        The record is built under the lock but written outside it — the
        append fsyncs, and no scan should stall behind the disk.
        """
        if self.journal is None:
            return None
        ts = time.time()
        with self._lock:
            record = {
                "ts": ts,
                "halflife_s": self.halflife_s,
                "grid": self.grid,
                "domains": {
                    table: list(bounds)
                    for table, bounds in self._domains.items()
                },
                "segments": self._segments_payload(ts),
                "extents": self._extents_payload(ts),
            }
            self._last_flush = ts
        from ..engine import durable

        self.journal.parent.mkdir(parents=True, exist_ok=True)
        durable.atomic_append_text(
            self.journal, json.dumps(record) + "\n", label="heat"
        )
        self.registry.counter("heat.flushes").inc()
        return self.journal

    def maybe_flush(self) -> Optional[Path]:
        """Flush if the journal exists and the interval has elapsed."""
        if self.journal is None:
            return None
        with self._lock:
            due = time.time() - self._last_flush >= self.flush_interval_s
        if not due:
            return None
        return self.flush()

    def _segments_payload(self, ts: float) -> List[List[Any]]:
        payload: List[List[Any]] = []
        for (table, column, segment), heat in self._segments.items():
            heat.decay_to(ts, self.halflife_s)
            payload.append(
                [
                    table,
                    column,
                    segment,
                    round(heat.probes, 6),
                    round(heat.skips, 6),
                    round(heat.fulls, 6),
                    round(heat.encoded_bytes, 3),
                    round(heat.materialized_bytes, 3),
                ]
            )
        return payload

    def _extents_payload(self, ts: float) -> List[List[Any]]:
        payload: List[List[Any]] = []
        for (table, ix, iy), heat in self._extents.items():
            heat.decay_to(ts, self.halflife_s)
            payload.append(
                [table, ix, iy, round(heat.queries, 6), round(heat.nbytes, 3)]
            )
        return payload

    def restore(self, record: Dict[str, Any]) -> None:
        """Seed state from a journalled window (last one wins).

        ``last_ts`` is set to the record's flush timestamp, so the gap
        between the flush and now decays naturally on the next read.
        """
        ts = float(record.get("ts", time.time()))
        with self._lock:
            for table, bounds in dict(record.get("domains", {})).items():
                if len(bounds) == 4:
                    self._domains[str(table)] = (
                        float(bounds[0]),
                        float(bounds[1]),
                        float(bounds[2]),
                        float(bounds[3]),
                    )
            for row in record.get("segments", []):
                if len(row) != 8:
                    continue
                heat = _SegmentHeat(ts)
                heat.probes = float(row[3])
                heat.skips = float(row[4])
                heat.fulls = float(row[5])
                heat.encoded_bytes = float(row[6])
                heat.materialized_bytes = float(row[7])
                self._segments[(str(row[0]), str(row[1]), int(row[2]))] = heat
            for row in record.get("extents", []):
                if len(row) != 5:
                    continue
                extent = _ExtentHeat(ts)
                extent.queries = float(row[3])
                extent.nbytes = float(row[4])
                self._extents[(str(row[0]), int(row[1]), int(row[2]))] = extent

    @classmethod
    def from_journal(
        cls, path: Union[str, Path], **kwargs: Any
    ) -> "HeatMap":
        """Rebuild live heat from a journal's last intact window."""
        records = read_journal(path)
        if records:
            last = records[-1]
            kwargs.setdefault("halflife_s", float(last.get("halflife_s", DEFAULT_HALFLIFE_S)))
            kwargs.setdefault("grid", int(last.get("grid", DEFAULT_GRID)))
        heat = cls(journal=path, **kwargs)
        if records:
            heat.restore(records[-1])
        return heat


def read_journal(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All intact window records; a torn final line is skipped.

    Same contract as the slow-query log: the append is flush+fsync'd,
    so only the last line can be torn by a crash, and losing it loses
    one window — never a previously closed one.
    """
    journal = Path(path)
    if not journal.exists():
        return []
    records: List[Dict[str, Any]] = []
    with journal.open("r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail (or foreign garbage): skip
            if isinstance(record, dict):
                records.append(record)
    return records


_global_heat: Optional[HeatMap] = None
_heat_lock = threading.Lock()


def enable_heat(
    journal: Optional[Union[str, Path]] = None, **kwargs: Any
) -> HeatMap:
    """Install the process heat map (idempotent; returns the live one).

    With ``journal=`` pointing at an existing ``heat.jsonl``, prior
    windows are restored first — heat survives restarts, decayed by the
    downtime.
    """
    global _global_heat
    with _heat_lock:
        if _global_heat is None:
            if journal is not None and Path(journal).exists():
                _global_heat = HeatMap.from_journal(journal, **kwargs)
            else:
                _global_heat = HeatMap(journal=journal, **kwargs)
        return _global_heat


def maybe_heat() -> Optional[HeatMap]:
    """The process heat map if enabled — the hot paths' single check."""
    return _global_heat


def disable_heat() -> None:
    """Drop the process heat map (test isolation; no implicit flush)."""
    global _global_heat
    with _heat_lock:
        _global_heat = None
