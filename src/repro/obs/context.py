"""Scoped observability contexts.

Before this module, the engine's observability state was process-global:
one tracer, one metrics registry, one flight recorder.  Two databases —
or two concurrent sessions of the query service ROADMAP item 1 builds —
could not be observed, billed or rate-limited independently.

:class:`ObsContext` bundles the per-scope state (tracer + metrics
registry + query registry + cumulative resource usage + optional flight
recorder) into one object owned by a
:class:`~repro.api.PointCloudDB` / :class:`~repro.sql.executor.Session`
and resolved through a :mod:`contextvars` variable:

* ``with context.activate():`` makes it the current context; every
  ``get_tracer()`` / ``get_registry()`` / ``get_queries()`` /
  ``get_flight_recorder()`` and every ``maybe_span`` below that point
  resolves to it — including inside morsel workers, because
  :func:`repro.engine.parallel.run_tasks` copies the submitting
  thread's context into each worker.
* Code that never activates a context sees :func:`default_context`,
  a lazy singleton wrapping the original module singletons — the
  pre-context API (``get_tracer()`` etc.) behaves exactly as before.

For the upcoming cross-process scatter-gather (ROADMAP item 2) the
context serializes its trace position to a W3C-traceparent-style token
(``00-<trace_id>-<span_id>-01``); a child process context built with
:meth:`ObsContext.fresh` ``(traceparent=...)`` adopts it, so root spans
in the child join the parent's trace and the pieces stitch back into
one tree.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from ._context_state import CURRENT
from .flight import FlightRecorder
from .metrics import MetricsRegistry
from .queries import QueryRegistry
from .resources import ResourceUsage
from .trace import RemoteParent, Tracer

__all__ = [
    "ObsContext",
    "current_context",
    "default_context",
    "format_traceparent",
    "parse_traceparent",
]

#: The only traceparent version we emit or accept.
TRACEPARENT_VERSION = "00"


def format_traceparent(trace_id: int, span_id: int) -> str:
    """``00-<032x trace>-<016x span>-01`` (W3C Trace Context shaped)."""
    trace_part = trace_id & ((1 << 128) - 1)
    span_part = span_id & ((1 << 64) - 1)
    return f"{TRACEPARENT_VERSION}-{trace_part:032x}-{span_part:016x}-01"


def parse_traceparent(token: str) -> RemoteParent:
    """Parse a traceparent token into a :class:`RemoteParent`.

    Raises :class:`ValueError` on a malformed token, an unknown version,
    or the all-zero ids the spec reserves for "no trace".
    """
    parts = token.strip().split("-")
    if len(parts) != 4:
        raise ValueError(f"malformed traceparent: {token!r}")
    version, trace_hex, span_hex, _flags = parts
    if version != TRACEPARENT_VERSION:
        raise ValueError(f"unsupported traceparent version: {version!r}")
    if len(trace_hex) != 32 or len(span_hex) != 16:
        raise ValueError(f"malformed traceparent ids: {token!r}")
    try:
        trace_id = int(trace_hex, 16)
        span_id = int(span_hex, 16)
    except ValueError:
        raise ValueError(f"non-hex traceparent ids: {token!r}") from None
    if trace_id == 0 or span_id == 0:
        raise ValueError(f"all-zero traceparent ids: {token!r}")
    return RemoteParent(trace_id=trace_id, span_id=span_id)


class ObsContext:
    """One scope's observability state: tracer, metrics, queries, usage.

    ``resources`` accumulates the :class:`ResourceUsage` of every query
    tracked while this context was active (the registry folds each
    query's tracker in at finish), giving per-database / per-session
    cumulative attribution for quotas and billing.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        queries: Optional[QueryRegistry] = None,
        recorder: Optional[FlightRecorder] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.queries = queries if queries is not None else QueryRegistry()
        self.recorder = recorder
        self.resources = ResourceUsage()
        self._lock = threading.Lock()

    @classmethod
    def fresh(
        cls,
        traceparent: Optional[str] = None,
        enabled: Optional[bool] = None,
    ) -> "ObsContext":
        """A fully isolated context (own tracer/registry/query registry).

        ``traceparent`` adopts a remote trace position so this context's
        root spans join a trace started in another process; ``enabled``
        forces tracing on/off (default: the ``REPRO_TRACE`` switch).
        """
        context = cls(tracer=Tracer(enabled=enabled))
        if traceparent is not None:
            context.adopt_traceparent(traceparent)
        return context

    # -- activation --------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["ObsContext"]:
        """Make this the current context for the duration of the block."""
        token = CURRENT.set(self)
        try:
            yield self
        finally:
            CURRENT.reset(token)

    # -- cross-process propagation ----------------------------------------

    def traceparent(self) -> Optional[str]:
        """This context's trace position as a token, or ``None``.

        Prefers the innermost open span on the calling thread; falls
        back to an adopted remote parent, so a context can re-propagate
        a token it received even before starting spans of its own.
        """
        span = self.tracer.current()
        if span is not None and span.trace_id:
            return format_traceparent(span.trace_id, span.span_id)
        remote = self.tracer.remote_parent
        if remote is not None:
            return format_traceparent(remote.trace_id, remote.span_id)
        return None

    def adopt_traceparent(self, token: str) -> "ObsContext":
        """Join the trace described by ``token`` (see module docstring)."""
        self.tracer.remote_parent = parse_traceparent(token)
        return self

    # -- flight recorder ---------------------------------------------------

    def flight(self) -> FlightRecorder:
        """This context's flight recorder, created lazily and bound to
        its tracer/registry/query registry.  The default context hands
        back the process-wide recorder instead of shadowing it."""
        with self._lock:
            if self.recorder is None:
                if self is _peek_default():
                    from .flight import get_flight_recorder

                    self.recorder = get_flight_recorder()
                else:
                    self.recorder = FlightRecorder(
                        tracer=self.tracer,
                        registry=self.registry,
                        queries=self.queries,
                    )
            return self.recorder

    # -- resource accumulation --------------------------------------------

    def absorb_usage(self, usage: ResourceUsage) -> None:
        """Fold one finished query's usage into the context total."""
        with self._lock:
            self.resources.cpu_seconds += usage.cpu_seconds
            self.resources.worker_cpu_seconds += usage.worker_cpu_seconds
            self.resources.rows_touched += usage.rows_touched
            self.resources.bytes_touched += usage.bytes_touched
            self.resources.encoded_bytes += usage.encoded_bytes
            self.resources.materialized_bytes += usage.materialized_bytes
            if usage.peak_alloc_bytes is not None:
                current = self.resources.peak_alloc_bytes
                self.resources.peak_alloc_bytes = (
                    usage.peak_alloc_bytes
                    if current is None
                    else max(current, usage.peak_alloc_bytes)
                )


_default: Optional[ObsContext] = None
_default_lock = threading.Lock()


def _peek_default() -> Optional[ObsContext]:
    return _default


def default_context() -> ObsContext:
    """The process default: a context wrapping the module singletons.

    This is what preserves API compatibility — every pre-context caller
    of ``get_tracer()`` / ``get_registry()`` and every new context-aware
    caller that never activates a custom context observe the same state.
    """
    global _default
    with _default_lock:
        if _default is None:
            from . import metrics as _metrics
            from . import queries as _queries
            from . import trace as _trace

            _default = ObsContext(
                tracer=_trace._global_tracer,
                registry=_metrics._global_registry,
                queries=_queries._global_queries,
            )
        return _default


def current_context() -> ObsContext:
    """The active context, else :func:`default_context`."""
    context = CURRENT.get()
    return context if context is not None else default_context()
