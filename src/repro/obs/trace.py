"""Zero-dependency span tracer for the query engine.

The paper's whole argument is a *measured* one — imprints-filtered flat
scans versus file- and block-based stores (§2.1.1, §3.3) — so every
phase the engine runs (filter, refine, imprint build, morsel, SQL
operator) can wrap itself in a **span**: a named wall-clock interval
with attributes (rows in/out, segments skipped/probed, thread) and a
parent link.  Finished spans land in a process-wide ring buffer, from
which they can be

* exported as plain JSON (:func:`to_json` / :func:`from_json`),
* exported in Chrome trace-event format (:func:`to_chrome`) and opened
  in ``chrome://tracing`` / Perfetto, or
* rendered as an indented operator tree (:func:`format_tree`) — the
  backbone of ``EXPLAIN ANALYZE``.

Tracing is **off by default** and costs almost nothing while off:
:func:`maybe_span` returns a shared no-op object unless the tracer is
enabled, so instrumented hot paths pay one attribute check.  Enable it
with ``REPRO_TRACE=1`` in the environment, ``get_tracer().enable()``,
or ``PointCloudDB(tracing=True)``.

Worker threads do not inherit the caller's span stack; cross-thread
parents are passed explicitly (``tracer.span(name, parent=span)``),
which is what :func:`repro.engine.parallel.run_tasks` does for its
per-morsel spans.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from functools import wraps
from types import TracebackType
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Type,
    TypeVar,
    Union,
    cast,
)

from ._context_state import CURRENT as _CONTEXT

#: Environment switch: any value but ""/"0"/"false"/"no" enables tracing.
TRACE_ENV = "REPRO_TRACE"

#: Ring-buffer capacity in finished spans; old spans fall off the back.
DEFAULT_BUFFER_SPANS = 16384

_FALSY = ("", "0", "false", "no", "off")

_ids = itertools.count(1)  # span/trace ids; itertools.count is GIL-atomic


class Span:
    """One named wall-clock interval, used as a context manager.

    The span always measures its duration (``seconds`` is valid after
    exit even with tracing off); ids, parent links and the ring-buffer
    record only exist when the tracer was enabled at ``__enter__``.
    """

    __slots__ = (
        "tracer",
        "name",
        "attributes",
        "parent",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "thread_id",
        "thread_name",
        "_recording",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Optional["Span"] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attributes: Dict[str, object] = (
            dict(attributes) if attributes else {}
        )
        self.parent = parent
        self.trace_id = 0
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self.end = 0.0
        self.thread_id = 0
        self.thread_name = ""
        self._recording = False

    def __enter__(self) -> "Span":
        self._recording = self.tracer.enabled
        if self._recording:
            stack = self.tracer._stack()
            parent = self.parent if self.parent is not None else (
                stack[-1] if stack else None
            )
            self.span_id = next(_ids)
            if parent is not None:
                self.parent_id = parent.span_id
                self.trace_id = parent.trace_id
            else:
                remote = self.tracer.remote_parent
                if remote is not None:
                    # Root span of a trace started elsewhere (adopted
                    # from a traceparent token): join the remote trace.
                    self.trace_id = remote.trace_id
                    self.parent_id = remote.span_id
                else:
                    self.trace_id = self.span_id
            thread = threading.current_thread()
            self.thread_id = thread.ident or 0
            self.thread_name = thread.name
            stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.end = time.perf_counter()
        if self._recording:
            if exc_type is not None:
                self.attributes.setdefault("error", exc_type.__name__)
            stack = self.tracer._stack()
            if stack and stack[-1] is self:
                stack.pop()
            self.tracer._finish(self)
        return False

    def set(self, **attributes: object) -> "Span":
        """Attach attributes (rows in/out, segment counts...)."""
        self.attributes.update(attributes)
        return self

    @property
    def seconds(self) -> float:
        return max(self.end - self.start, 0.0)


class _NoopSpan:
    """Shared do-nothing span, returned by :func:`maybe_span` when
    tracing is off — the disabled hot path pays one attribute check."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False

    def set(self, **attributes: object) -> "_NoopSpan":
        return self

    @property
    def seconds(self) -> float:
        return 0.0


NOOP_SPAN = _NoopSpan()


class RemoteParent:
    """A parent span in another process, adopted from a traceparent
    token (:func:`repro.obs.context.parse_traceparent`): root spans
    started under a tracer carrying one join the remote trace instead of
    starting a fresh one."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id


class Tracer:
    """Per-context span collector with an in-memory ring buffer.

    ``enabled`` is a plain attribute so hot paths can check it without a
    property call.  Finished spans append to the ring buffer (and to any
    active :meth:`capture` sinks) under one lock; span *creation* is
    lock-free, so worker threads never serialise on starting spans.
    """

    def __init__(
        self,
        max_spans: int = DEFAULT_BUFFER_SPANS,
        enabled: Optional[bool] = None,
    ) -> None:
        if enabled is None:
            enabled = os.environ.get(TRACE_ENV, "").strip().lower() not in _FALSY
        self.enabled = bool(enabled)
        self.remote_parent: Optional[RemoteParent] = None
        self._buffer: Deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._captures: List[List[Span]] = []
        self._local = threading.local()

    # -- state -----------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop all buffered spans (the ring buffer, not active captures)."""
        with self._lock:
            self._buffer.clear()

    # -- span plumbing ---------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack: Optional[List[Span]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread (for explicit
        cross-thread parenting), or None."""
        stack: Optional[List[Span]] = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def span(
        self, name: str, parent: Optional[Span] = None, **attributes: object
    ) -> Span:
        """A new span context manager (always timed; recorded when enabled)."""
        return Span(self, name, parent=parent, attributes=attributes)

    def _finish(self, span: Span) -> None:
        dropped = False
        with self._lock:
            if (
                self._buffer.maxlen is not None
                and len(self._buffer) == self._buffer.maxlen
            ):
                dropped = True  # the append below evicts the oldest span
            self._buffer.append(span)
            for sink in self._captures:
                sink.append(span)
        if dropped:
            # Counted outside the tracer lock: the counter has a lock of
            # its own, and nesting the two would pin a lock order for no
            # benefit.  Lazy import keeps span finish free of metrics
            # machinery until a drop actually happens.
            from .metrics import get_registry

            get_registry().counter("trace.spans_dropped").inc()

    @contextmanager
    def capture(self) -> Iterator[List[Span]]:
        """Force-enable tracing and collect every span finished inside.

        Yields the list the spans accumulate into (ordered by finish
        time) — this is how ``EXPLAIN ANALYZE`` gets exactly one query's
        spans without disturbing the ring buffer or the global switch.
        """
        collected: List[Span] = []
        with self._lock:
            self._captures.append(collected)
        previous = self.enabled
        self.enabled = True
        try:
            yield collected
        finally:
            self.enabled = previous
            with self._lock:
                self._captures.remove(collected)

    # -- reading the buffer ----------------------------------------------------

    def spans(self) -> List[Span]:
        """Snapshot of the buffered spans, ordered by start time."""
        with self._lock:
            snapshot = list(self._buffer)
        return sorted(snapshot, key=lambda s: (s.start, s.span_id))

    def traces(self) -> List[List[Span]]:
        """Buffered spans grouped by trace, oldest trace first."""
        groups: Dict[int, List[Span]] = {}
        for span in self.spans():
            groups.setdefault(span.trace_id, []).append(span)
        ordered = sorted(groups.values(), key=lambda g: g[0].start)
        return ordered

    def last_traces(self, n: int) -> List[Span]:
        """The spans of the ``n`` most recent traces, flattened in
        start order (what ``repro-gis trace --last N`` exports)."""
        tail = self.traces()[-max(0, n):] if n else []
        return [span for group in tail for span in group]


_global_tracer = Tracer()


def get_tracer() -> Tracer:
    """The active context's tracer, else the process-wide default.

    Code that never activates an :class:`~repro.obs.context.ObsContext`
    sees exactly the pre-context behaviour (the module singleton)."""
    context = _CONTEXT.get()
    if context is not None:
        return context.tracer
    return _global_tracer


def maybe_span(
    name: str, parent: Optional[Span] = None, **attributes: object
) -> Union[Span, _NoopSpan]:
    """A real span when tracing is on, the shared no-op span when off.

    This is the form instrumented hot paths use: with tracing disabled
    the cost is one context-variable read and one attribute check.
    """
    context = _CONTEXT.get()
    tracer = context.tracer if context is not None else _global_tracer
    if tracer.enabled:
        return Span(tracer, name, parent=parent, attributes=attributes)
    return NOOP_SPAN


F = TypeVar("F", bound=Callable[..., Any])


def traced(
    name: Optional[str] = None, **attributes: object
) -> Callable[[F], F]:
    """Decorator form: wrap every call of ``fn`` in a span.

    ::

        @traced("load.tile", stage="read")
        def read_point_file(path): ...
    """

    def decorate(fn: F) -> F:
        label = name if name is not None else fn.__qualname__

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = get_tracer()
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(label, **attributes):
                return fn(*args, **kwargs)

        return cast(F, wrapper)

    return decorate


# -- exporters -----------------------------------------------------------------


def _json_value(value: object) -> object:
    """Attributes -> JSON-safe values (numpy scalars included)."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


def span_to_dict(span: Span) -> Dict[str, object]:
    """One span as a plain dict (the JSON exporter's record shape)."""
    return {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "end": span.end,
        "seconds": span.seconds,
        "thread_id": span.thread_id,
        "thread_name": span.thread_name,
        "attributes": {
            str(k): _json_value(v) for k, v in span.attributes.items()
        },
    }


def to_json(spans: Iterable[Span], indent: Optional[int] = 2) -> str:
    """Spans as a JSON array of records."""
    return json.dumps([span_to_dict(s) for s in spans], indent=indent)


def from_json(text: str) -> List[Span]:
    """Rebuild spans from :func:`to_json` output (round-trip for tests
    and for offline rendering of exported traces)."""
    spans: List[Span] = []
    for record in json.loads(text):
        span = Span(_global_tracer, record["name"])
        span.trace_id = record["trace_id"]
        span.span_id = record["span_id"]
        span.parent_id = record["parent_id"]
        span.start = record["start"]
        span.end = record["end"]
        span.thread_id = record["thread_id"]
        span.thread_name = record["thread_name"]
        span.attributes = dict(record["attributes"])
        spans.append(span)
    return spans


def to_chrome(spans: Iterable[Span]) -> str:
    """Spans in Chrome trace-event format (the ``chrome://tracing`` /
    Perfetto JSON schema): complete events (``ph: "X"``) with
    microsecond timestamps and the attributes under ``args``.

    Thread-name metadata events (``ph: "M"``) lead the stream so
    Perfetto labels each track ``MainThread`` / ``repro-worker-N``
    instead of a bare thread id."""
    pid = os.getpid()
    span_list = list(spans)
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": "repro-gis"},
        }
    ]
    thread_names: Dict[int, str] = {}
    for span in span_list:
        if span.thread_id and span.thread_name:
            thread_names.setdefault(span.thread_id, span.thread_name)
    for tid in sorted(thread_names):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_names[tid]},
            }
        )
    for span in span_list:
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(span.end - span.start, 0.0) * 1e6,
                "pid": pid,
                "tid": span.thread_id or 0,
                "args": {
                    str(k): _json_value(v) for k, v in span.attributes.items()
                },
            }
        )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


# -- tree rendering ------------------------------------------------------------


def _format_attr(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_tree(spans: Iterable[Span], name_width: int = 44) -> str:
    """Render spans as an indented tree: name, wall time, attributes.

    Spans whose parent is not in the set (e.g. the capture started
    mid-trace) render as roots.  Children sort by start time, so the
    tree reads in execution order.
    """
    ordered = sorted(spans, key=lambda s: (s.start, s.span_id))
    by_id = {s.span_id: s for s in ordered if s.span_id}
    children: Dict[int, List[Span]] = {}
    roots: List[Span] = []
    for span in ordered:
        if span.parent_id and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        label = "  " * depth + span.name
        attrs = " ".join(
            f"{k}={_format_attr(v)}" for k, v in span.attributes.items()
        )
        line = f"{label:<{name_width}} {span.seconds * 1e3:10.3f} ms"
        if attrs:
            line += f"  {attrs}"
        lines.append(line)
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)
