"""The context-variable cell the obs modules share.

This lives in its own leaf module (no imports from the rest of
:mod:`repro`) so that :mod:`repro.obs.trace`, :mod:`repro.obs.metrics`,
:mod:`repro.obs.flight` and :mod:`repro.obs.queries` can resolve the
active :class:`~repro.obs.context.ObsContext` without importing
:mod:`repro.obs.context` — which imports all of them.
"""

from __future__ import annotations

from contextvars import ContextVar
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .context import ObsContext

#: The active observability context for the current execution context,
#: or ``None`` meaning "use the process-wide default" (the module
#: singletons, which preserves the pre-context API behaviour).
CURRENT: ContextVar[Optional["ObsContext"]] = ContextVar(
    "repro_obs_context", default=None
)
