"""Process-wide metrics registry: counters, gauges, latency histograms.

Where :mod:`repro.obs.trace` answers "what did *this* query do",
metrics answer "what has the process done" — total segments skipped,
query latency percentiles, points loaded — in the style of the storage
instrumentation in the LiDAR/point-cloud evaluation literature.  Every
metric is thread-safe (one small lock per instrument) so morsel workers
can record without contending on a global lock, and the whole registry
snapshots to one JSON-friendly dict that the bench harness embeds next
to its timings in ``BENCH_*.json``.

Naming convention: dotted lowercase paths, ``<subsystem>.<what>``
(``query.filter_seconds``, ``imprints.segments_probed``,
``load.points``).  See ``docs/observability.md`` for the full list the
engine emits.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type, TypeVar, Union

from ._context_state import CURRENT as _CONTEXT

#: Default latency bucket upper bounds, in seconds.  Fixed buckets (not
#: adaptive) so two snapshots — or two machines — are always comparable
#: bucket for bucket.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """A monotonically increasing count (events, rows, segments)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (pool size, buffer occupancy, rows)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative-style percentiles.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything beyond the last bound.  ``percentile`` answers from the
    bucket edges (the upper edge of the bucket the rank falls in), so it
    is conservative — never smaller than the true percentile — and
    stable across runs, which is what the bench regression differ wants.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(
        self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS_S
    ) -> None:
        ordered = tuple(sorted(float(b) for b in bounds))
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = ordered
        self._counts = [0] * (len(ordered) + 1)  # +1 = overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Upper bucket edge covering the ``q`` quantile (0..1); the
        observed maximum for ranks landing in the overflow bucket.
        Returns ``nan`` with no observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return float("nan")
            rank = max(1, int(q * total + 0.5))
            seen = 0
            for index, count in enumerate(self._counts):
                seen += count
                if seen >= rank:
                    if index < len(self.bounds):
                        return self.bounds[index]
                    return self._max
            return self._max

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            count = self._count
            total = self._sum
            vmin = self._min
            vmax = self._max
        record: Dict[str, object] = {
            "count": count,
            "sum": total,
            "min": vmin if count else None,
            "max": vmax if count else None,
            "buckets": [
                {"le": bound, "count": counts[i]}
                for i, bound in enumerate(self.bounds)
            ]
            + [{"le": None, "count": counts[-1]}],
        }
        if count:
            record["p50"] = self.percentile(0.50)
            record["p90"] = self.percentile(0.90)
            record["p99"] = self.percentile(0.99)
        return record


Metric = Union[Counter, Gauge, Histogram]

M = TypeVar("M", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Named instruments with get-or-create access and one snapshot.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    for a name or create it; asking for a name under a different kind
    raises, so typos surface instead of forking the series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(
        self, name: str, kind: Type[M], factory: Callable[[], M]
    ) -> M:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get_or_create(
            name,
            Histogram,
            lambda: Histogram(name, bounds if bounds is not None else LATENCY_BUCKETS_S),
        )

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def instruments(self) -> Dict[str, Metric]:
        """Name -> instrument snapshot of the registry (a shallow copy;
        the instruments themselves are the live, thread-safe objects).
        This is what the OpenMetrics renderer iterates."""
        with self._lock:
            return dict(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instruments as one JSON-friendly dict, grouped by kind."""
        with self._lock:
            items = list(self._metrics.items())
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name, metric in sorted(items):
            if isinstance(metric, Counter):
                out["counters"][name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.snapshot()
            else:
                out["histograms"][name] = metric.snapshot()
        return out

    def reset(self) -> None:
        """Zero every instrument (registrations and bucket layouts stay)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()


_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The active context's registry, else the process-wide default."""
    context = _CONTEXT.get()
    if context is not None:
        return context.registry
    return _global_registry
