"""The block-storage baseline (PostgreSQL pointcloud / Oracle SDO_PC style).

* :mod:`repro.blockstore.patch` — compressed point blocks.
* :mod:`repro.blockstore.rtree` — STR-packed R-tree over block bboxes.
* :mod:`repro.blockstore.store` — load (sort/chunk/compress/index) and
  query (filter/decompress/refine).
"""

from .patch import Patch, build_patch
from .rtree import RTree
from .store import BlockLoadStats, BlockQueryStats, BlockStore

__all__ = [
    "BlockLoadStats",
    "BlockQueryStats",
    "BlockStore",
    "Patch",
    "RTree",
    "build_patch",
]
