"""An STR-bulk-loaded R-tree over patch bounding boxes.

The block-storage baseline indexes its patches with an R-tree (PostGIS
GiST / Oracle spatial index in the real systems).  Sort-Tile-Recursive
bulk loading packs the leaf level optimally for static data, which is the
regime here: patches are built once at load time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..gis.envelope import Box

DEFAULT_NODE_CAPACITY = 16


@dataclass
class _Node:
    box: Box
    children: List["_Node"] = field(default_factory=list)
    entry_id: Optional[int] = None  # set on leaf entries

    @property
    def is_leaf_entry(self) -> bool:
        return self.entry_id is not None


class RTree:
    """Static R-tree over ``(Box, id)`` entries.

    Parameters
    ----------
    boxes:
        One bounding box per entry; entry ids are positions in this list.
    node_capacity:
        Maximum children per internal node.
    """

    def __init__(
        self, boxes: Sequence[Box], node_capacity: int = DEFAULT_NODE_CAPACITY
    ) -> None:
        if node_capacity < 2:
            raise ValueError("node_capacity must be >= 2")
        self.node_capacity = node_capacity
        self.n_entries = len(boxes)
        entries = [
            _Node(box=box, entry_id=i) for i, box in enumerate(boxes)
        ]
        self.root = self._bulk_load(entries) if entries else None
        self.height = self._height(self.root)

    # -- STR bulk load -----------------------------------------------------------

    def _bulk_load(self, nodes: List[_Node]) -> _Node:
        while len(nodes) > 1:
            nodes = self._build_level(nodes)
        return nodes[0]

    def _build_level(self, nodes: List[_Node]) -> List[_Node]:
        """Pack one level: sort by x, slice, sort slices by y, chunk."""
        cap = self.node_capacity
        n_parents = int(np.ceil(len(nodes) / cap))
        n_slices = max(1, int(np.ceil(np.sqrt(n_parents))))
        per_slice = int(np.ceil(len(nodes) / n_slices))

        by_x = sorted(nodes, key=lambda node: node.box.center[0])
        parents: List[_Node] = []
        for s in range(0, len(by_x), per_slice):
            strip = sorted(
                by_x[s : s + per_slice], key=lambda node: node.box.center[1]
            )
            for c in range(0, len(strip), cap):
                children = strip[c : c + cap]
                box = children[0].box
                for child in children[1:]:
                    box = box.union(child.box)
                parents.append(_Node(box=box, children=children))
        return parents

    def _height(self, node: Optional[_Node]) -> int:
        h = 0
        while node is not None and node.children:
            h += 1
            node = node.children[0]
        return h

    # -- query -------------------------------------------------------------------

    def query(self, box: Box) -> List[int]:
        """Entry ids whose bbox intersects ``box`` (sorted)."""
        if self.root is None:
            return []
        hits: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(box):
                continue
            if node.is_leaf_entry:
                hits.append(node.entry_id)
            else:
                stack.extend(node.children)
        hits.sort()
        return hits

    def n_nodes(self) -> int:
        """Total nodes incl. leaf entries (index size diagnostics)."""
        if self.root is None:
            return 0
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count
