"""Point patches: the block unit of the PostgreSQL/Oracle storage model.

Section 1: "Both systems base their performance on the physical
reorganisation of data into blocks with each block being a condensed
representation of multiple points."  A :class:`Patch` is one such block —
a bounding box plus dimensionally compressed payloads (pointcloud's
"dimensional compression": each attribute compressed on its own, the
column idea smuggled inside a row store).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..engine.compression import (
    CompressedBlock,
    delta_zlib_decode,
    delta_zlib_encode,
)
from ..gis.envelope import Box


@dataclass
class Patch:
    """One compressed block of points.

    Attributes
    ----------
    patch_id:
        Position in the store's patch list.
    n_points:
        Points encoded in the patch.
    bbox:
        The 2-D bounding box used by the block index.
    payloads:
        Attribute name -> compressed payload.
    """

    patch_id: int
    n_points: int
    bbox: Box
    payloads: Dict[str, CompressedBlock]

    @property
    def nbytes(self) -> int:
        """Compressed payload bytes (excl. the bbox/dataclass overhead)."""
        return sum(block.nbytes for block in self.payloads.values())

    @property
    def dimensions(self) -> List[str]:
        return list(self.payloads.keys())

    def decompress(self, dimensions=None) -> Dict[str, np.ndarray]:
        """Materialise the requested dimensions (all by default)."""
        names = dimensions if dimensions is not None else self.dimensions
        out = {}
        for name in names:
            if name not in self.payloads:
                raise KeyError(f"patch has no dimension {name!r}")
            out[name] = delta_zlib_decode(self.payloads[name])
        return out


def build_patch(
    patch_id: int, columns: Dict[str, np.ndarray], level: int = 6
) -> Patch:
    """Compress one chunk of points into a patch.

    ``columns`` must contain ``x`` and ``y`` (for the bbox); every entry is
    delta+deflate compressed independently.
    """
    xs = np.asarray(columns["x"], dtype=np.float64)
    ys = np.asarray(columns["y"], dtype=np.float64)
    n = xs.shape[0]
    if n == 0:
        raise ValueError("cannot build an empty patch")
    bbox = Box(float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max()))
    payloads = {
        name: delta_zlib_encode(np.asarray(arr), level=level)
        for name, arr in columns.items()
    }
    return Patch(patch_id=patch_id, n_points=n, bbox=bbox, payloads=payloads)
