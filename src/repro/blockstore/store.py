"""The block-storage baseline (PostgreSQL pointcloud / Oracle SDO_PC).

Loading re-organises points physically: optionally sort along a
space-filling curve (Oracle uses Hilbert, Section 2.3), chunk into patches
of N points, compress every dimension per patch, and index patch bboxes
with an R-tree.  That reorganisation is precisely why loading is slower
than the paper's flat-table binary appends (E1), while storage is smaller
(E2) and small-window queries competitive (E3).

Queries run the same filter/refine shape as the DBMS: R-tree filter on
patch bboxes, wholesale acceptance of fully inside patches, exact tests
for boundary patches — but must *decompress* every touched patch first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.sfc import sort_order
from ..gis.predicates import (
    CellRelation,
    classify_box,
    geometry_envelope,
    points_satisfy,
)
from .patch import Patch, build_patch
from .rtree import RTree

DEFAULT_PATCH_SIZE = 4096


@dataclass
class BlockLoadStats:
    n_points: int = 0
    n_patches: int = 0
    seconds: float = 0.0
    sort_seconds: float = 0.0
    compress_seconds: float = 0.0
    index_seconds: float = 0.0

    @property
    def points_per_second(self) -> float:
        return self.n_points / self.seconds if self.seconds else 0.0

    def projected_seconds(self, n_points: int) -> float:
        if self.points_per_second == 0:
            return float("inf")
        return n_points / self.points_per_second


@dataclass
class BlockQueryStats:
    patches_total: int = 0
    patches_candidate: int = 0
    patches_inside: int = 0
    patches_boundary: int = 0
    points_decompressed: int = 0
    points_tested: int = 0
    n_results: int = 0
    seconds: float = 0.0


class BlockStore:
    """A patch-based point-cloud store.

    Parameters
    ----------
    patch_size:
        Points per patch (pcpatch default scale).
    sort:
        ``"morton"``, ``"hilbert"`` or ``None`` (load order).  Sorting
        costs load time but shrinks patch bboxes and payloads.
    """

    def __init__(
        self,
        patch_size: int = DEFAULT_PATCH_SIZE,
        sort: Optional[str] = "morton",
    ) -> None:
        if patch_size < 1:
            raise ValueError("patch_size must be >= 1")
        if sort not in (None, "morton", "hilbert"):
            raise ValueError(f"unknown sort curve {sort!r}")
        self.patch_size = patch_size
        self.sort = sort
        self.patches: List[Patch] = []
        self.rtree: Optional[RTree] = None
        self.dimensions: List[str] = []

    # -- loading -----------------------------------------------------------------

    def load(self, columns: Dict[str, np.ndarray]) -> BlockLoadStats:
        """(Re)load the store from a column batch.

        The whole batch is re-blocked: block stores pay this reorganisation
        on every bulk load, unlike the flat table's pure appends.
        """
        stats = BlockLoadStats()
        t0 = time.perf_counter()
        xs = np.asarray(columns["x"], dtype=np.float64)
        ys = np.asarray(columns["y"], dtype=np.float64)
        n = xs.shape[0]
        if n == 0:
            raise ValueError("cannot load an empty batch")
        self.dimensions = list(columns.keys())

        if self.sort is not None:
            perm = sort_order(
                xs,
                ys,
                float(xs.min()),
                float(xs.max()) + 1e-9,
                float(ys.min()),
                float(ys.max()) + 1e-9,
                curve=self.sort,
            )
            columns = {name: np.asarray(arr)[perm] for name, arr in columns.items()}
        t1 = time.perf_counter()

        self.patches = []
        for start in range(0, n, self.patch_size):
            chunk = {
                name: np.asarray(arr)[start : start + self.patch_size]
                for name, arr in columns.items()
            }
            self.patches.append(build_patch(len(self.patches), chunk))
        t2 = time.perf_counter()

        self.rtree = RTree([p.bbox for p in self.patches])
        t3 = time.perf_counter()

        stats.n_points = n
        stats.n_patches = len(self.patches)
        stats.sort_seconds = t1 - t0
        stats.compress_seconds = t2 - t1
        stats.index_seconds = t3 - t2
        stats.seconds = t3 - t0
        return stats

    # -- size --------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        return sum(p.n_points for p in self.patches)

    @property
    def nbytes(self) -> int:
        """Compressed payload bytes across all patches."""
        return sum(p.nbytes for p in self.patches)

    # -- query -------------------------------------------------------------------

    def query(
        self,
        geometry,
        predicate: str = "contains",
        distance: float = 0.0,
        dimensions: Optional[List[str]] = None,
    ) -> tuple:
        """Points satisfying the predicate, as ``(columns_dict, stats)``."""
        if self.rtree is None:
            raise RuntimeError("store is empty: call load() first")
        wanted = dimensions if dimensions is not None else ["x", "y", "z"]
        for name in wanted:
            if name not in self.dimensions:
                raise KeyError(f"store has no dimension {name!r}")

        t0 = time.perf_counter()
        env = geometry_envelope(geometry)
        if predicate == "dwithin":
            env = env.expand(distance)
        candidate_ids = self.rtree.query(env)
        stats = BlockQueryStats(
            patches_total=len(self.patches),
            patches_candidate=len(candidate_ids),
        )
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in wanted}

        for pid in candidate_ids:
            patch = self.patches[pid]
            relation = classify_box(patch.bbox, geometry, predicate, distance)
            if relation is CellRelation.OUTSIDE:
                continue
            if relation is CellRelation.INSIDE:
                cols = patch.decompress(wanted)
                stats.patches_inside += 1
                stats.points_decompressed += patch.n_points
                for name in wanted:
                    pieces[name].append(cols[name])
                continue
            # Boundary patch: decompress coordinates, test exactly.
            need = list(dict.fromkeys(["x", "y", *wanted]))
            cols = patch.decompress(need)
            stats.patches_boundary += 1
            stats.points_decompressed += patch.n_points
            stats.points_tested += patch.n_points
            mask = points_satisfy(
                cols["x"], cols["y"], geometry, predicate, distance
            )
            for name in wanted:
                pieces[name].append(cols[name][mask])

        out = {
            name: (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.float64)
            )
            for name, parts in pieces.items()
        }
        stats.n_results = int(out[wanted[0]].shape[0])
        stats.seconds = time.perf_counter() - t0
        return out, stats
