"""repro: GIS navigation boosted by column stores — a reproduction.

A Python reproduction of Alvanaki et al., "GIS Navigation Boosted by
Column Stores" (PVLDB 8(12), 2015): a column-store point-cloud database
whose spatial queries run through the column imprints secondary index and
a regular-grid refinement step, evaluated against file-based (LAStools)
and block-storage (PostgreSQL pointcloud) baselines.

Quick start::

    from repro import PointCloudDB, Box

    db = PointCloudDB()
    db.create_pointcloud("pts")
    db.load_points("pts", columns)        # or db.load_las("pts", paths)
    hits = db.spatial_select("pts", Box(0, 0, 100, 100))

Subpackages
-----------
``repro.core``
    Column imprints + the two-step spatial query pipeline (the paper's
    contribution).
``repro.engine``
    The columnar storage/operator substrate.
``repro.gis``
    OGC Simple Features geometry, WKT, predicates.
``repro.las`` / ``repro.lastools`` / ``repro.blockstore``
    The LAS format, the file-based baseline, the block-store baseline.
``repro.sql``
    The declarative layer with ST_* functions and imprints push-down.
``repro.datasets`` / ``repro.viz`` / ``repro.bench``
    Synthetic AHN2/OSM/UrbanAtlas data, rendering, experiment harness.
"""

from .api import PointCloudDB
from .core.imprints import ColumnImprints, ImprintsManager
from .core.query import QueryResult, SpatialSelect
from .engine.catalog import Database
from .engine.table import Table
from .gis.envelope import Box
from .gis.geometry import (
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from .gis.wkt import loads as geometry_from_wkt
from .sql.executor import Session

__version__ = "1.0.0"

__all__ = [
    "Box",
    "ColumnImprints",
    "Database",
    "ImprintsManager",
    "LineString",
    "MultiLineString",
    "MultiPoint",
    "MultiPolygon",
    "Point",
    "PointCloudDB",
    "Polygon",
    "QueryResult",
    "Session",
    "SpatialSelect",
    "Table",
    "geometry_from_wkt",
]
