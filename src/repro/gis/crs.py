"""Coordinate reference systems: RD New (EPSG:28992) <-> WGS84.

AHN2 — the demo's flagship dataset — is delivered in the Dutch national
grid, *Rijksdriehoeksmeting* "RD New": an oblique stereographic
projection of the Bessel-1841 ellipsoid, false origin at Amersfoort.
QGIS composes layers "using different coordinate reference systems"
(Section 4); this module provides the transform chain the renderer needs
to overlay RD point clouds on WGS84 vector data:

    RD x/y  <->  Bessel lat/lon  <->  geocentric XYZ  <->  WGS84 lat/lon
       (stereographic)      (ellipsoid)      (7-param Helmert)

The projection math is the textbook double-stereographic formulation
(Gauss conformal sphere); inverses iterate to convergence, so the pure
projection round-trips to micrometres and the full datum chain to
decimetres (property-tested).  Absolute accuracy against the official
RDNAPTRANS procedure is at the metre-to-decametre level (the Helmert
set is the classic towgs84 approximation, and heights are taken as 0) —
visualisation-grade, not survey-grade, and documented as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

# -- ellipsoids ---------------------------------------------------------------


@dataclass(frozen=True)
class Ellipsoid:
    """A reference ellipsoid (semi-major axis a, inverse flattening)."""

    a: float
    inverse_flattening: float

    @property
    def f(self) -> float:
        return 1.0 / self.inverse_flattening

    @property
    def e2(self) -> float:
        """First eccentricity squared."""
        return self.f * (2.0 - self.f)

    @property
    def e(self) -> float:
        return self.e2**0.5


BESSEL_1841 = Ellipsoid(a=6377397.155, inverse_flattening=299.1528128)
WGS84 = Ellipsoid(a=6378137.0, inverse_flattening=298.257223563)

# -- RD New projection constants (EPSG:28992) -----------------------------------

#: Amersfoort, the projection centre (on the Bessel ellipsoid).
_LAT0 = np.deg2rad(52.0 + 9.0 / 60 + 22.178 / 3600)
_LON0 = np.deg2rad(5.0 + 23.0 / 60 + 15.500 / 3600)
_K0 = 0.9999079  # scale at the centre
_X0 = 155000.0  # false easting
_Y0 = 463000.0  # false northing

#: Helmert parameters Bessel/RD-datum -> WGS84 (coordinate-frame rotation,
#: the proj "towgs84" 7-parameter set for the Netherlands).
_HELMERT_TO_WGS84 = (
    565.417,  # tx (m)
    50.3319,  # ty
    465.552,  # tz
    np.deg2rad(-0.398957 / 3600),  # rx (radians)
    np.deg2rad(0.343988 / 3600),  # ry
    np.deg2rad(-1.87740 / 3600),  # rz
    4.0725e-6,  # scale (ppm)
)


# -- conformal sphere (Gauss) ---------------------------------------------------


def _conformal_constants(ell: Ellipsoid, lat0: float):
    """Constants of the Gauss conformal sphere at the projection centre."""
    e2 = ell.e2
    e = ell.e
    sin0 = np.sin(lat0)
    cos0 = np.cos(lat0)
    # Radii of curvature at the centre.
    rho0 = ell.a * (1 - e2) / (1 - e2 * sin0**2) ** 1.5
    nu0 = ell.a / np.sqrt(1 - e2 * sin0**2)
    radius = np.sqrt(rho0 * nu0)  # conformal sphere radius
    n = np.sqrt(1 + e2 * cos0**4 / (1 - e2))
    s1 = np.sin(lat0) / n
    chi0 = np.arcsin(s1)
    # Constant of integration for the conformal latitude mapping.
    w1 = ((1 + s1) / (1 - s1)) ** 0.5
    isometric = (
        np.tan(np.pi / 4 + lat0 / 2)
        * ((1 - e * sin0) / (1 + e * sin0)) ** (e / 2)
    )
    m = w1 / isometric**n
    return radius, n, m, chi0


_R_SPHERE, _N_EXP, _M_CONST, _CHI0 = _conformal_constants(BESSEL_1841, _LAT0)


def _lat_to_conformal(lat: np.ndarray, ell: Ellipsoid) -> np.ndarray:
    """Geodetic -> conformal (sphere) latitude."""
    e = ell.e
    sin_lat = np.sin(lat)
    isometric = (
        np.tan(np.pi / 4 + lat / 2)
        * ((1 - e * sin_lat) / (1 + e * sin_lat)) ** (e / 2)
    )
    w = _M_CONST * isometric**_N_EXP
    return 2 * np.arctan(w) - np.pi / 2


def _conformal_to_lat(chi: np.ndarray, ell: Ellipsoid) -> np.ndarray:
    """Conformal -> geodetic latitude (fixed-point iteration)."""
    e = ell.e
    w = np.tan(np.pi / 4 + chi / 2)
    isometric = (w / _M_CONST) ** (1.0 / _N_EXP)
    lat = 2 * np.arctan(isometric) - np.pi / 2  # sphere start
    for _ in range(12):
        sin_lat = np.sin(lat)
        lat_new = (
            2
            * np.arctan(
                isometric * ((1 + e * sin_lat) / (1 - e * sin_lat)) ** (e / 2)
            )
            - np.pi / 2
        )
        if np.allclose(lat_new, lat, atol=1e-14):
            lat = lat_new
            break
        lat = lat_new
    return lat


# -- the stereographic projection -------------------------------------------------


def bessel_to_rd(lat_deg, lon_deg) -> Tuple[np.ndarray, np.ndarray]:
    """Geographic Bessel coordinates (degrees) -> RD x/y (metres)."""
    lat = np.deg2rad(np.asarray(lat_deg, dtype=np.float64))
    lon = np.deg2rad(np.asarray(lon_deg, dtype=np.float64))
    chi = _lat_to_conformal(lat, BESSEL_1841)
    dlon = _N_EXP * (lon - _LON0)
    sin_chi0, cos_chi0 = np.sin(_CHI0), np.cos(_CHI0)
    sin_chi, cos_chi = np.sin(chi), np.cos(chi)
    denom = 1 + sin_chi0 * sin_chi + cos_chi0 * cos_chi * np.cos(dlon)
    k = 2 * _R_SPHERE * _K0 / denom
    x = _X0 + k * cos_chi * np.sin(dlon)
    y = _Y0 + k * (
        cos_chi0 * sin_chi - sin_chi0 * cos_chi * np.cos(dlon)
    )
    return x, y


def rd_to_bessel(x, y) -> Tuple[np.ndarray, np.ndarray]:
    """RD x/y (metres) -> geographic Bessel coordinates (degrees)."""
    dx = np.asarray(x, dtype=np.float64) - _X0
    dy = np.asarray(y, dtype=np.float64) - _Y0
    rho = np.hypot(dx, dy)
    c = 2 * np.arctan2(rho, 2 * _R_SPHERE * _K0)
    sin_c, cos_c = np.sin(c), np.cos(c)
    sin_chi0, cos_chi0 = np.sin(_CHI0), np.cos(_CHI0)
    with np.errstate(invalid="ignore"):
        ratio = np.where(rho > 0, dy / np.where(rho > 0, rho, 1.0), 0.0)
    chi = np.arcsin(
        np.clip(cos_c * sin_chi0 + ratio * sin_c * cos_chi0, -1, 1)
    )
    dlon = np.arctan2(
        dx * sin_c, rho * cos_chi0 * cos_c - dy * sin_chi0 * sin_c
    )
    lat = _conformal_to_lat(chi, BESSEL_1841)
    lon = _LON0 + dlon / _N_EXP
    return np.rad2deg(lat), np.rad2deg(lon)


# -- datum shift --------------------------------------------------------------------


def _geographic_to_geocentric(lat_deg, lon_deg, h, ell: Ellipsoid):
    lat = np.deg2rad(np.asarray(lat_deg, dtype=np.float64))
    lon = np.deg2rad(np.asarray(lon_deg, dtype=np.float64))
    h = np.asarray(h, dtype=np.float64)
    nu = ell.a / np.sqrt(1 - ell.e2 * np.sin(lat) ** 2)
    x = (nu + h) * np.cos(lat) * np.cos(lon)
    y = (nu + h) * np.cos(lat) * np.sin(lon)
    z = (nu * (1 - ell.e2) + h) * np.sin(lat)
    return x, y, z


def _geocentric_to_geographic(x, y, z, ell: Ellipsoid):
    lon = np.arctan2(y, x)
    p = np.hypot(x, y)
    lat = np.arctan2(z, p * (1 - ell.e2))  # first guess
    for _ in range(10):
        nu = ell.a / np.sqrt(1 - ell.e2 * np.sin(lat) ** 2)
        h = p / np.cos(lat) - nu
        lat = np.arctan2(z, p * (1 - ell.e2 * nu / (nu + h)))
    nu = ell.a / np.sqrt(1 - ell.e2 * np.sin(lat) ** 2)
    h = p / np.cos(lat) - nu
    return np.rad2deg(lat), np.rad2deg(lon), h


def _helmert(x, y, z, params, inverse: bool = False):
    tx, ty, tz, rx, ry, rz, s = params
    if inverse:
        tx, ty, tz, rx, ry, rz, s = -tx, -ty, -tz, -rx, -ry, -rz, -s
    scale = 1.0 + s
    # Coordinate-frame rotation convention (small angles).
    x2 = scale * (x + rz * y - ry * z) + tx
    y2 = scale * (-rz * x + y + rx * z) + ty
    z2 = scale * (ry * x - rx * y + z) + tz
    return x2, y2, z2


# -- the public chain -----------------------------------------------------------------


def rd_to_wgs84(x, y) -> Tuple[np.ndarray, np.ndarray]:
    """RD New x/y (metres) -> WGS84 (lat, lon) in degrees (vectorised)."""
    lat_b, lon_b = rd_to_bessel(x, y)
    gx, gy, gz = _geographic_to_geocentric(
        lat_b, lon_b, np.zeros_like(np.asarray(x, dtype=np.float64)), BESSEL_1841
    )
    wx, wy, wz = _helmert(gx, gy, gz, _HELMERT_TO_WGS84)
    lat, lon, _h = _geocentric_to_geographic(wx, wy, wz, WGS84)
    return lat, lon


def wgs84_to_rd(lat_deg, lon_deg) -> Tuple[np.ndarray, np.ndarray]:
    """WGS84 (lat, lon) degrees -> RD New x/y metres (vectorised)."""
    gx, gy, gz = _geographic_to_geocentric(
        lat_deg,
        lon_deg,
        np.zeros_like(np.asarray(lat_deg, dtype=np.float64)),
        WGS84,
    )
    bx, by, bz = _helmert(gx, gy, gz, _HELMERT_TO_WGS84, inverse=True)
    lat_b, lon_b, _h = _geocentric_to_geographic(bx, by, bz, BESSEL_1841)
    return bessel_to_rd(lat_b, lon_b)
