"""Well-Known Text (WKT) parsing and serialisation.

The SQL layer's ``ST_GeomFromText`` and the demo's user-defined queries
speak WKT, as specified in the OGC Simple Features standard [9].  Supported
forms: POINT, MULTIPOINT, LINESTRING, MULTILINESTRING, POLYGON,
MULTIPOLYGON, each with an EMPTY variant (which raises a clear error,
since the engine has no empty-geometry semantics).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .geometry import (
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class WKTError(ValueError):
    """Raised on malformed WKT input."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<word>[A-Za-z]+)|(?P<num>[-+]?\d*\.?\d+(?:[eE][-+]?\d+)?)"
    r"|(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,))"
)


class _Tokens:
    """A tiny cursor over WKT tokens."""

    def __init__(self, text: str) -> None:
        self.tokens: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None or match.end() == pos:
                remainder = text[pos : pos + 20]
                raise WKTError(f"unexpected input at {pos}: {remainder!r}")
            pos = match.end()
            for kind in ("word", "num", "lparen", "rparen", "comma"):
                value = match.group(kind)
                if value is not None:
                    self.tokens.append((kind, value))
                    break
        self.pos = 0

    def peek(self) -> Tuple[str, str]:
        if self.pos >= len(self.tokens):
            return ("eof", "")
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        self.pos += 1
        return token

    def expect(self, kind: str) -> str:
        got_kind, value = self.next()
        if got_kind != kind:
            raise WKTError(f"expected {kind}, got {got_kind} {value!r}")
        return value

    def done(self) -> bool:
        return self.pos >= len(self.tokens)


def _parse_coord(tokens: _Tokens) -> Tuple[float, float]:
    x = float(tokens.expect("num"))
    y = float(tokens.expect("num"))
    # Tolerate (and drop) a Z value: LIDAR tools often emit 3-D WKT.
    if tokens.peek()[0] == "num":
        tokens.next()
    return (x, y)


def _parse_coord_list(tokens: _Tokens) -> List[Tuple[float, float]]:
    tokens.expect("lparen")
    coords = [_parse_coord(tokens)]
    while tokens.peek()[0] == "comma":
        tokens.next()
        coords.append(_parse_coord(tokens))
    tokens.expect("rparen")
    return coords


def _parse_ring_list(tokens: _Tokens) -> List[List[Tuple[float, float]]]:
    tokens.expect("lparen")
    rings = [_parse_coord_list(tokens)]
    while tokens.peek()[0] == "comma":
        tokens.next()
        rings.append(_parse_coord_list(tokens))
    tokens.expect("rparen")
    return rings


def _check_empty(tokens: _Tokens, tag: str) -> None:
    kind, value = tokens.peek()
    if kind == "word" and value.upper() == "EMPTY":
        raise WKTError(f"{tag} EMPTY is not supported")


def loads(text: str) -> Geometry:
    """Parse one WKT geometry."""
    if not isinstance(text, str) or not text.strip():
        raise WKTError("empty WKT input")
    tokens = _Tokens(text)
    tag = tokens.expect("word").upper()

    if tag == "POINT":
        _check_empty(tokens, tag)
        tokens.expect("lparen")
        x, y = _parse_coord(tokens)
        tokens.expect("rparen")
        geom: Geometry = Point(x, y)
    elif tag == "MULTIPOINT":
        _check_empty(tokens, tag)
        tokens.expect("lparen")
        coords = []
        while True:
            if tokens.peek()[0] == "lparen":  # MULTIPOINT ((1 2), (3 4))
                tokens.next()
                coords.append(_parse_coord(tokens))
                tokens.expect("rparen")
            else:  # MULTIPOINT (1 2, 3 4)
                coords.append(_parse_coord(tokens))
            if tokens.peek()[0] == "comma":
                tokens.next()
                continue
            break
        tokens.expect("rparen")
        geom = MultiPoint(coords)
    elif tag == "LINESTRING":
        _check_empty(tokens, tag)
        geom = LineString(_parse_coord_list(tokens))
    elif tag == "MULTILINESTRING":
        _check_empty(tokens, tag)
        geom = MultiLineString(_parse_ring_list(tokens))
    elif tag == "POLYGON":
        _check_empty(tokens, tag)
        rings = _parse_ring_list(tokens)
        geom = Polygon(rings[0], holes=rings[1:])
    elif tag == "MULTIPOLYGON":
        _check_empty(tokens, tag)
        tokens.expect("lparen")
        polygons = []
        while True:
            rings = _parse_ring_list(tokens)
            polygons.append(Polygon(rings[0], holes=rings[1:]))
            if tokens.peek()[0] == "comma":
                tokens.next()
                continue
            break
        tokens.expect("rparen")
        geom = MultiPolygon(polygons)
    else:
        raise WKTError(f"unsupported geometry tag {tag!r}")

    if not tokens.done():
        kind, value = tokens.peek()
        raise WKTError(f"trailing input after geometry: {kind} {value!r}")
    return geom


def dumps(geom: Geometry) -> str:
    """Serialise a geometry to WKT (delegates to the object model)."""
    return geom.wkt()
