"""OGC Simple Features subset: geometry types, WKT, predicates.

The geometry object model lives in :mod:`repro.gis.geometry`, vectorised
point kernels in :mod:`repro.gis.algorithms`, predicate dispatch and the
grid-cell classifier in :mod:`repro.gis.predicates`, and WKT I/O in
:mod:`repro.gis.wkt`.
"""

from .envelope import Box, box_from_points
from .geometry import (
    Geometry,
    GeometryError,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from .algorithms import simplify, simplify_coords
from .crs import rd_to_wgs84, wgs84_to_rd
from .predicates import (
    CellRelation,
    classify_box,
    contains,
    dwithin,
    intersects,
    points_satisfy,
)
from .wkt import WKTError, dumps, loads

__all__ = [
    "Box",
    "CellRelation",
    "Geometry",
    "GeometryError",
    "LineString",
    "MultiLineString",
    "MultiPoint",
    "MultiPolygon",
    "Point",
    "Polygon",
    "WKTError",
    "box_from_points",
    "classify_box",
    "contains",
    "dumps",
    "dwithin",
    "intersects",
    "loads",
    "points_satisfy",
    "rd_to_wgs84",
    "simplify",
    "simplify_coords",
    "wgs84_to_rd",
]
