"""Spatial predicates and the cell-classification kernel.

Two layers live here:

* **Point-set predicates** — vectorised ``points_satisfy`` used during
  refinement and by the SQL functions (``ST_Contains``, ``ST_DWithin`` ...).
* **Cell classification** — :func:`classify_box` decides, for a grid cell,
  whether *all* its points satisfy the predicate (``INSIDE``), *none* do
  (``OUTSIDE``), or the cell straddles the geometry boundary
  (``BOUNDARY``).  This is the heart of Section 3.3: "The spatial relation
  is then evaluated between each non-empty cell and the geometry G ...
  for cells that overlap the boundary of the given geometry G ... all
  points within such cells have to be checked exhaustively."

``INSIDE``/``OUTSIDE`` answers are always exact; when a cheap exact answer
is impossible the classifier says ``BOUNDARY``, which only costs time,
never correctness.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

from . import algorithms as alg
from .envelope import Box
from .geometry import (
    Geometry,
    LineString,
    MultiLineString,
    MultiPolygon,
    Point,
    Polygon,
)


class CellRelation(enum.Enum):
    """Relation of a grid cell to the query geometry/predicate."""

    INSIDE = "inside"
    OUTSIDE = "outside"
    BOUNDARY = "boundary"


QueryGeometry = Union[Box, Point, LineString, MultiLineString, Polygon, MultiPolygon]


def geometry_envelope(geom: QueryGeometry) -> Box:
    """Envelope of a query geometry or a raw Box."""
    if isinstance(geom, Box):
        return geom
    return geom.envelope


# -- vectorised point-set predicates -------------------------------------------


def points_in_geometry(xs: np.ndarray, ys: np.ndarray, geom: QueryGeometry) -> np.ndarray:
    """Boolean per point: is it contained in the (areal) geometry?"""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if isinstance(geom, Box):
        return (
            (xs >= geom.xmin)
            & (xs <= geom.xmax)
            & (ys >= geom.ymin)
            & (ys <= geom.ymax)
        )
    if isinstance(geom, Polygon):
        return alg.points_in_polygon(xs, ys, geom)
    if isinstance(geom, MultiPolygon):
        return alg.points_in_multipolygon(xs, ys, geom)
    if isinstance(geom, Point):
        return (xs == geom.x) & (ys == geom.y)
    raise TypeError(
        f"containment needs an areal geometry, got {type(geom).__name__}"
    )


def points_within_distance(
    xs: np.ndarray, ys: np.ndarray, geom: QueryGeometry, distance: float
) -> np.ndarray:
    """Boolean per point: within ``distance`` of the geometry (ST_DWithin)."""
    if distance < 0:
        raise ValueError("distance must be non-negative")
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if isinstance(geom, Box):
        dx = np.maximum(np.maximum(geom.xmin - xs, 0.0), xs - geom.xmax)
        dy = np.maximum(np.maximum(geom.ymin - ys, 0.0), ys - geom.ymax)
        return dx * dx + dy * dy <= distance * distance
    return alg.dist_points_to_geometry(xs, ys, geom) <= distance


def points_satisfy(
    xs: np.ndarray,
    ys: np.ndarray,
    geom: QueryGeometry,
    predicate: str = "contains",
    distance: float = 0.0,
) -> np.ndarray:
    """Dispatch on the predicate name used throughout the query layer.

    ``contains``/``intersects`` coincide for points; ``dwithin`` takes the
    extra distance.
    """
    if predicate in ("contains", "intersects", "within"):
        return points_in_geometry(xs, ys, geom)
    if predicate == "dwithin":
        return points_within_distance(xs, ys, geom, distance)
    raise ValueError(f"unknown spatial predicate {predicate!r}")


# -- box-vs-geometry exact relations --------------------------------------------


def _box_edges_cross_ring(box: Box, ring: np.ndarray) -> bool:
    corners = box.corners
    for i in range(4):
        a, b = corners[i], corners[(i + 1) % 4]
        if alg.ring_intersects_segment(ring, a, b):
            return True
    return False


def _any_vertex_strictly_in_box(ring: np.ndarray, box: Box) -> bool:
    xs, ys = ring[:, 0], ring[:, 1]
    return bool(
        (
            (xs > box.xmin) & (xs < box.xmax) & (ys > box.ymin) & (ys < box.ymax)
        ).any()
    )


def classify_box_vs_polygon(box: Box, polygon: Polygon) -> CellRelation:
    """Exact cell relation for containment in a polygon."""
    if not box.intersects(polygon.envelope):
        return CellRelation.OUTSIDE
    for ring in polygon.rings:
        if _box_edges_cross_ring(box, ring):
            return CellRelation.BOUNDARY
        # A ring entirely inside the cell (tiny polygon or hole within one
        # cell) makes the cell mixed even with no edge crossings.
        if _any_vertex_strictly_in_box(ring, box):
            return CellRelation.BOUNDARY
    # No crossings, no contained rings: the whole box lies on one side.
    cx, cy = box.center
    inside = alg.points_in_polygon(np.array([cx]), np.array([cy]), polygon)[0]
    return CellRelation.INSIDE if inside else CellRelation.OUTSIDE


def classify_box_vs_box(box: Box, query: Box) -> CellRelation:
    if not box.intersects(query):
        return CellRelation.OUTSIDE
    if query.contains_box(box):
        return CellRelation.INSIDE
    return CellRelation.BOUNDARY


def _min_dist_box_to_segment(box: Box, ax, ay, bx, by) -> float:
    """Exact min distance between a solid box and a segment."""
    # Intersecting (or an endpoint inside) -> distance 0.
    if box.contains_point(ax, ay) or box.contains_point(bx, by):
        return 0.0
    corners = box.corners
    for i in range(4):
        c1, c2 = corners[i], corners[(i + 1) % 4]
        if alg.segments_intersect(c1, c2, (ax, ay), (bx, by)):
            return 0.0
    # Disjoint: the minimum is at a corner-to-segment or endpoint-to-box pair.
    cx = np.array([c[0] for c in corners])
    cy = np.array([c[1] for c in corners])
    d = float(alg.dist_points_to_segment(cx, cy, ax, ay, bx, by).min())
    d = min(d, box.min_distance_to_point(ax, ay))
    d = min(d, box.min_distance_to_point(bx, by))
    return d


def min_distance_box_to_geometry(box: Box, geom: QueryGeometry) -> float:
    """Exact minimum distance from any point of the box to the geometry."""
    if isinstance(geom, Box):
        dx = max(geom.xmin - box.xmax, box.xmin - geom.xmax, 0.0)
        dy = max(geom.ymin - box.ymax, box.ymin - geom.ymax, 0.0)
        return (dx * dx + dy * dy) ** 0.5
    if isinstance(geom, Point):
        return box.min_distance_to_point(geom.x, geom.y)
    if isinstance(geom, LineString):
        coords = geom.coords
        return min(
            _min_dist_box_to_segment(
                box, coords[i, 0], coords[i, 1], coords[i + 1, 0], coords[i + 1, 1]
            )
            for i in range(coords.shape[0] - 1)
        )
    if isinstance(geom, MultiLineString):
        return min(min_distance_box_to_geometry(box, line) for line in geom.lines)
    if isinstance(geom, Polygon):
        rel = classify_box_vs_polygon(box, geom)
        if rel is not CellRelation.OUTSIDE:
            return 0.0
        return min(
            _min_dist_box_to_segment(
                box, ring[i, 0], ring[i, 1], ring[i + 1, 0], ring[i + 1, 1]
            )
            for ring in geom.rings
            for i in range(ring.shape[0] - 1)
        )
    if isinstance(geom, MultiPolygon):
        return min(min_distance_box_to_geometry(box, p) for p in geom.polygons)
    raise TypeError(f"unsupported geometry: {type(geom).__name__}")


def classify_box_dwithin(
    box: Box, geom: QueryGeometry, distance: float
) -> CellRelation:
    """Cell relation for ``dwithin``: exact OUTSIDE, Lipschitz INSIDE.

    * ``OUTSIDE`` when even the nearest box point is farther than
      ``distance`` (exact).
    * ``INSIDE`` when the box centre is within ``distance - half_diagonal``
      (sufficient, because the distance field is 1-Lipschitz).
    * ``BOUNDARY`` otherwise — decided by exhaustive point checks.
    """
    dmin = min_distance_box_to_geometry(box, geom)
    if dmin > distance:
        return CellRelation.OUTSIDE
    half_diag = 0.5 * (box.width**2 + box.height**2) ** 0.5
    cx, cy = box.center
    center_dist = float(
        alg.dist_points_to_geometry(np.array([cx]), np.array([cy]), geom)[0]
        if not isinstance(geom, Box)
        else Box.min_distance_to_point(geom, cx, cy)
    )
    if center_dist + half_diag <= distance:
        return CellRelation.INSIDE
    return CellRelation.BOUNDARY


def classify_box(
    box: Box,
    geom: QueryGeometry,
    predicate: str = "contains",
    distance: float = 0.0,
) -> CellRelation:
    """Cell relation for any supported predicate (the refinement kernel)."""
    if predicate in ("contains", "intersects", "within"):
        if isinstance(geom, Box):
            return classify_box_vs_box(box, geom)
        if isinstance(geom, Polygon):
            return classify_box_vs_polygon(box, geom)
        if isinstance(geom, MultiPolygon):
            relations = [classify_box_vs_polygon(box, p) for p in geom.polygons]
            if any(r is CellRelation.INSIDE for r in relations):
                return CellRelation.INSIDE
            if any(r is CellRelation.BOUNDARY for r in relations):
                return CellRelation.BOUNDARY
            return CellRelation.OUTSIDE
        raise TypeError(
            f"containment needs an areal geometry, got {type(geom).__name__}"
        )
    if predicate == "dwithin":
        return classify_box_dwithin(box, geom, distance)
    raise ValueError(f"unknown spatial predicate {predicate!r}")


# -- geometry-pair predicates (SQL layer) ----------------------------------------


def contains(geom: QueryGeometry, point: Point) -> bool:
    """OGC ST_Contains restricted to (areal geometry, point)."""
    return bool(
        points_in_geometry(np.array([point.x]), np.array([point.y]), geom)[0]
    )


def dwithin(geom: QueryGeometry, point: Point, distance: float) -> bool:
    """OGC ST_DWithin restricted to (geometry, point)."""
    return bool(
        points_within_distance(
            np.array([point.x]), np.array([point.y]), geom, distance
        )[0]
    )


def intersects(a: Geometry, b: Geometry) -> bool:
    """ST_Intersects for the demo's pairs: lines x lines, lines x areal,
    areal x areal (envelope-filtered, then exact)."""
    if not a.envelope.intersects(b.envelope):
        return False
    if isinstance(a, Point):
        return contains(b, a) if not isinstance(b, Point) else a == b
    if isinstance(b, Point):
        return contains(a, b)
    if isinstance(a, (Polygon, MultiPolygon)) and isinstance(
        b, (LineString, MultiLineString)
    ):
        return _areal_intersects_lines(a, b)
    if isinstance(b, (Polygon, MultiPolygon)) and isinstance(
        a, (LineString, MultiLineString)
    ):
        return _areal_intersects_lines(b, a)
    if isinstance(a, (LineString, MultiLineString)) and isinstance(
        b, (LineString, MultiLineString)
    ):
        for la in _lines_of(a):
            for lb in _lines_of(b):
                if alg.linestrings_intersect(la, lb):
                    return True
        return False
    if isinstance(a, (Polygon, MultiPolygon)) and isinstance(
        b, (Polygon, MultiPolygon)
    ):
        return _areal_intersects_areal(a, b)
    raise TypeError(
        f"unsupported intersects pair: {type(a).__name__} x {type(b).__name__}"
    )


def _lines_of(geom) -> list:
    return geom.lines if isinstance(geom, MultiLineString) else [geom]


def _polys_of(geom) -> list:
    return geom.polygons if isinstance(geom, MultiPolygon) else [geom]


def _areal_intersects_lines(areal, lines) -> bool:
    for line in _lines_of(lines):
        xs, ys = line.coords[:, 0], line.coords[:, 1]
        if points_in_geometry(xs, ys, areal).any():
            return True
        for poly in _polys_of(areal):
            for ring in poly.rings:
                for i in range(line.coords.shape[0] - 1):
                    if alg.ring_intersects_segment(
                        ring, tuple(line.coords[i]), tuple(line.coords[i + 1])
                    ):
                        return True
    return False


def _areal_intersects_areal(a, b) -> bool:
    for pa in _polys_of(a):
        for pb in _polys_of(b):
            # Vertex containment either way, or any ring edges crossing.
            if alg.points_in_polygon(
                pa.shell[:, 0], pa.shell[:, 1], pb
            ).any() or alg.points_in_polygon(pb.shell[:, 0], pb.shell[:, 1], pa).any():
                return True
            for ra in pa.rings:
                for i in range(ra.shape[0] - 1):
                    if alg.ring_intersects_segment(
                        pb.shell, tuple(ra[i]), tuple(ra[i + 1])
                    ):
                        return True
    return False
