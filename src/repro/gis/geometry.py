"""OGC Simple Features geometry types (the subset the demo needs).

MonetDB exposes "an SQL interface to the Simple Features Access standard of
the Open Geospatial Consortium" (Section 3.3).  These classes are that
object model: Point, MultiPoint, LineString, MultiLineString, Polygon
(shell + holes), and MultiPolygon, each with an envelope, WKT output, and
the measures the demo queries use.  Predicate evaluation lives in
:mod:`repro.gis.algorithms` / :mod:`repro.gis.predicates`.

Vertices are stored as ``(n, 2)`` float64 numpy arrays so predicate kernels
can stay vectorised.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from .envelope import Box


class GeometryError(ValueError):
    """Raised for malformed geometry inputs (too few vertices, open rings)."""


def _as_vertices(coords, min_points: int, what: str) -> np.ndarray:
    arr = np.asarray(coords, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GeometryError(f"{what} needs an (n, 2) coordinate array")
    if arr.shape[0] < min_points:
        raise GeometryError(f"{what} needs at least {min_points} points")
    if not np.isfinite(arr).all():
        raise GeometryError(f"{what} has non-finite coordinates")
    return arr


class Geometry:
    """Base class: everything has an envelope and a WKT form."""

    geom_type: str = "GEOMETRY"

    @property
    def envelope(self) -> Box:
        raise NotImplementedError

    def wkt(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        text = self.wkt()
        return text if len(text) < 80 else text[:77] + "..."


class Point(Geometry):
    """A single position."""

    geom_type = "POINT"
    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        x, y = float(x), float(y)
        if not (np.isfinite(x) and np.isfinite(y)):
            raise GeometryError("point coordinates must be finite")
        self.x = x
        self.y = y

    @property
    def envelope(self) -> Box:
        return Box(self.x, self.y, self.x, self.y)

    def wkt(self) -> str:
        return f"POINT ({_fmt(self.x)} {_fmt(self.y)})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Point) and self.x == other.x and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.x, self.y))


class MultiPoint(Geometry):
    """A set of positions (vectorised as one array)."""

    geom_type = "MULTIPOINT"

    def __init__(self, coords) -> None:
        self.coords = _as_vertices(coords, 1, "MULTIPOINT")

    @property
    def envelope(self) -> Box:
        xs, ys = self.coords[:, 0], self.coords[:, 1]
        return Box(xs.min(), ys.min(), xs.max(), ys.max())

    def __len__(self) -> int:
        return self.coords.shape[0]

    def wkt(self) -> str:
        inner = ", ".join(f"({_fmt(x)} {_fmt(y)})" for x, y in self.coords)
        return f"MULTIPOINT ({inner})"


class LineString(Geometry):
    """An open polyline of >= 2 vertices."""

    geom_type = "LINESTRING"

    def __init__(self, coords) -> None:
        self.coords = _as_vertices(coords, 2, "LINESTRING")

    @property
    def envelope(self) -> Box:
        xs, ys = self.coords[:, 0], self.coords[:, 1]
        return Box(xs.min(), ys.min(), xs.max(), ys.max())

    @property
    def length(self) -> float:
        deltas = np.diff(self.coords, axis=0)
        return float(np.hypot(deltas[:, 0], deltas[:, 1]).sum())

    def __len__(self) -> int:
        return self.coords.shape[0]

    def wkt(self) -> str:
        return f"LINESTRING {_ring_wkt(self.coords)}"


class MultiLineString(Geometry):
    """A collection of polylines (a road or river network fragment)."""

    geom_type = "MULTILINESTRING"

    def __init__(self, lines: Iterable) -> None:
        self.lines: List[LineString] = [
            line if isinstance(line, LineString) else LineString(line)
            for line in lines
        ]
        if not self.lines:
            raise GeometryError("MULTILINESTRING needs at least one line")

    @property
    def envelope(self) -> Box:
        env = self.lines[0].envelope
        for line in self.lines[1:]:
            env = env.union(line.envelope)
        return env

    @property
    def length(self) -> float:
        return sum(line.length for line in self.lines)

    def __len__(self) -> int:
        return len(self.lines)

    def wkt(self) -> str:
        inner = ", ".join(_ring_wkt(line.coords) for line in self.lines)
        return f"MULTILINESTRING ({inner})"


class Polygon(Geometry):
    """A shell ring with optional hole rings.

    Rings are stored closed (first vertex == last vertex); an unclosed
    input ring is closed automatically.  The shell must have >= 3 distinct
    vertices.
    """

    geom_type = "POLYGON"

    def __init__(self, shell, holes: Sequence = ()) -> None:
        self.shell = _close_ring(_as_vertices(shell, 3, "POLYGON shell"))
        self.holes: List[np.ndarray] = [
            _close_ring(_as_vertices(h, 3, "POLYGON hole")) for h in holes
        ]

    @property
    def envelope(self) -> Box:
        xs, ys = self.shell[:, 0], self.shell[:, 1]
        return Box(xs.min(), ys.min(), xs.max(), ys.max())

    @property
    def rings(self) -> List[np.ndarray]:
        """Shell first, then holes — the iteration order of every kernel."""
        return [self.shell, *self.holes]

    @property
    def area(self) -> float:
        """Unsigned area: |shell| minus the holes (shoelace formula)."""
        total = abs(_signed_area(self.shell))
        for hole in self.holes:
            total -= abs(_signed_area(hole))
        return total

    def wkt(self) -> str:
        inner = ", ".join(_ring_wkt(r) for r in self.rings)
        return f"POLYGON ({inner})"

    @classmethod
    def from_box(cls, box: Box) -> "Polygon":
        """The rectangle polygon of an envelope."""
        return cls(list(box.corners) + [box.corners[0]])


class MultiPolygon(Geometry):
    """A collection of polygons (a land-use zone with detached parts)."""

    geom_type = "MULTIPOLYGON"

    def __init__(self, polygons: Iterable) -> None:
        self.polygons: List[Polygon] = [
            p if isinstance(p, Polygon) else Polygon(p) for p in polygons
        ]
        if not self.polygons:
            raise GeometryError("MULTIPOLYGON needs at least one polygon")

    @property
    def envelope(self) -> Box:
        env = self.polygons[0].envelope
        for poly in self.polygons[1:]:
            env = env.union(poly.envelope)
        return env

    @property
    def area(self) -> float:
        return sum(p.area for p in self.polygons)

    def __len__(self) -> int:
        return len(self.polygons)

    def wkt(self) -> str:
        inner = ", ".join(
            "(" + ", ".join(_ring_wkt(r) for r in p.rings) + ")"
            for p in self.polygons
        )
        return f"MULTIPOLYGON ({inner})"


# -- helpers ------------------------------------------------------------------


def _fmt(value: float) -> str:
    """Compact WKT number: drop trailing zeros but stay round-trippable."""
    return repr(float(value))


def _ring_wkt(coords: np.ndarray) -> str:
    return "(" + ", ".join(f"{_fmt(x)} {_fmt(y)}" for x, y in coords) + ")"


def _close_ring(coords: np.ndarray) -> np.ndarray:
    if not np.array_equal(coords[0], coords[-1]):
        coords = np.vstack([coords, coords[0]])
    if coords.shape[0] < 4:  # triangle = 3 distinct + closing vertex
        raise GeometryError("a ring needs at least 3 distinct vertices")
    return coords


def _signed_area(ring: np.ndarray) -> float:
    """Shoelace signed area of a closed ring (positive = CCW)."""
    x, y = ring[:-1, 0], ring[:-1, 1]
    xn, yn = ring[1:, 0], ring[1:, 1]
    return float(0.5 * np.sum(x * yn - xn * y))
