"""Axis-aligned bounding boxes (OGC ``Envelope``).

Envelopes drive the *filter* step of the two-step query model: the imprints
probe on X and Y uses the query geometry's envelope, and every spatial
predicate first short-circuits on envelope relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned rectangle [xmin, xmax] x [ymin, ymax]."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"degenerate box: ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    # -- measures ------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.xmin + self.xmax) / 2, (self.ymin + self.ymax) / 2)

    @property
    def corners(self) -> Tuple[Tuple[float, float], ...]:
        """The four corners, counter-clockwise from (xmin, ymin)."""
        return (
            (self.xmin, self.ymin),
            (self.xmax, self.ymin),
            (self.xmax, self.ymax),
            (self.xmin, self.ymax),
        )

    # -- relations -------------------------------------------------------------

    def contains_point(self, x: float, y: float) -> bool:
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains_box(self, other: "Box") -> bool:
        return (
            self.xmin <= other.xmin
            and self.xmax >= other.xmax
            and self.ymin <= other.ymin
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "Box") -> bool:
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def intersection(self, other: "Box") -> "Box":
        """The overlapping box; raises ValueError when disjoint."""
        if not self.intersects(other):
            raise ValueError("boxes do not intersect")
        return Box(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
        )

    def union(self, other: "Box") -> "Box":
        return Box(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def expand(self, margin: float) -> "Box":
        """Grow (or shrink, negative margin) by ``margin`` on every side."""
        return Box(
            self.xmin - margin,
            self.ymin - margin,
            self.xmax + margin,
            self.ymax + margin,
        )

    # -- distances ---------------------------------------------------------------

    def min_distance_to_point(self, x: float, y: float) -> float:
        """Euclidean distance to the nearest box point (0 when inside)."""
        dx = max(self.xmin - x, 0.0, x - self.xmax)
        dy = max(self.ymin - y, 0.0, y - self.ymax)
        return (dx * dx + dy * dy) ** 0.5

    def max_distance_to_point(self, x: float, y: float) -> float:
        """Euclidean distance to the farthest box corner."""
        dx = max(abs(x - self.xmin), abs(x - self.xmax))
        dy = max(abs(y - self.ymin), abs(y - self.ymax))
        return (dx * dx + dy * dy) ** 0.5


def box_from_points(xs: Iterable[float], ys: Iterable[float]) -> Box:
    """Tight envelope of a point set; raises on empty input."""
    xs = list(xs)
    ys = list(ys)
    if not xs or not ys:
        raise ValueError("cannot build an envelope of no points")
    return Box(min(xs), min(ys), max(xs), max(ys))
