"""Computational-geometry kernels, vectorised over point arrays.

These are the exact predicates run during the *refinement* step (Section
3.3): once the imprints filter and the regular grid have narrowed a query
to boundary-cell points, every surviving point is tested here.  All
point-set kernels take ``(xs, ys)`` numpy arrays and return boolean or
float arrays, so refinement of a whole cell is one call.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .geometry import LineString, MultiLineString, MultiPolygon, Point, Polygon

_EPS = 1e-12


# -- point in ring / polygon --------------------------------------------------


def points_in_ring(xs: np.ndarray, ys: np.ndarray, ring: np.ndarray) -> np.ndarray:
    """Crossing-number (ray casting) test against one closed ring.

    Boundary points count as inside (closed-set semantics, matching the
    OGC ``ST_Contains`` behaviour the demo queries rely on for points on
    region edges).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    inside = np.zeros(xs.shape[0], dtype=bool)
    on_edge = np.zeros(xs.shape[0], dtype=bool)
    x1, y1 = ring[:-1, 0], ring[:-1, 1]
    x2, y2 = ring[1:, 0], ring[1:, 1]
    for ax, ay, bx, by in zip(x1, y1, x2, y2):
        # Edge-inclusion: collinear and within the segment's bbox.
        cross = (bx - ax) * (ys - ay) - (by - ay) * (xs - ax)
        collinear = np.abs(cross) <= _EPS * max(
            1.0, abs(bx - ax) + abs(by - ay)
        )
        within = (
            (np.minimum(ax, bx) - _EPS <= xs)
            & (xs <= np.maximum(ax, bx) + _EPS)
            & (np.minimum(ay, by) - _EPS <= ys)
            & (ys <= np.maximum(ay, by) + _EPS)
        )
        on_edge |= collinear & within
        # Crossing number: does a ray to +x cross this edge?
        crosses = (ay > ys) != (by > ys)
        if not crosses.any():
            continue
        with np.errstate(divide="ignore", invalid="ignore"):
            x_at = ax + (ys - ay) * (bx - ax) / (by - ay)
        inside ^= crosses & (xs < x_at)
    return inside | on_edge


def points_in_polygon(
    xs: np.ndarray, ys: np.ndarray, polygon: Polygon
) -> np.ndarray:
    """Inside the shell and outside every hole (holes keep their boundary:
    a point on a hole edge is still on the polygon)."""
    result = points_in_ring(xs, ys, polygon.shell)
    if not polygon.holes:
        return result
    for hole in polygon.holes:
        in_hole = points_in_ring(xs, ys, hole)
        on_hole_edge = points_on_ring_boundary(xs, ys, hole)
        result &= ~(in_hole & ~on_hole_edge)
    return result


def points_on_ring_boundary(
    xs: np.ndarray, ys: np.ndarray, ring: np.ndarray
) -> np.ndarray:
    """Points lying (within eps) on the ring's edges."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    on_edge = np.zeros(xs.shape[0], dtype=bool)
    for i in range(ring.shape[0] - 1):
        ax, ay = ring[i]
        bx, by = ring[i + 1]
        on_edge |= _points_near_segment(xs, ys, ax, ay, bx, by, _EPS)
    return on_edge


def points_in_multipolygon(
    xs: np.ndarray, ys: np.ndarray, multi: MultiPolygon
) -> np.ndarray:
    result = np.zeros(np.asarray(xs).shape[0], dtype=bool)
    for poly in multi.polygons:
        result |= points_in_polygon(xs, ys, poly)
    return result


# -- distances ---------------------------------------------------------------


def _points_near_segment(xs, ys, ax, ay, bx, by, tol) -> np.ndarray:
    return dist_points_to_segment(xs, ys, ax, ay, bx, by) <= tol


def dist_points_to_segment(
    xs: np.ndarray, ys: np.ndarray, ax: float, ay: float, bx: float, by: float
) -> np.ndarray:
    """Euclidean distance from each point to segment (a, b) (vectorised)."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    dx, dy = bx - ax, by - ay
    seg_len2 = dx * dx + dy * dy
    if seg_len2 <= _EPS * _EPS:
        return np.hypot(xs - ax, ys - ay)
    t = ((xs - ax) * dx + (ys - ay) * dy) / seg_len2
    t = np.clip(t, 0.0, 1.0)
    return np.hypot(xs - (ax + t * dx), ys - (ay + t * dy))


def dist_points_to_linestring(
    xs: np.ndarray, ys: np.ndarray, line: LineString
) -> np.ndarray:
    """Min distance from each point to any segment of the polyline."""
    coords = line.coords
    best = dist_points_to_segment(
        xs, ys, coords[0, 0], coords[0, 1], coords[1, 0], coords[1, 1]
    )
    for i in range(1, coords.shape[0] - 1):
        d = dist_points_to_segment(
            xs, ys, coords[i, 0], coords[i, 1], coords[i + 1, 0], coords[i + 1, 1]
        )
        np.minimum(best, d, out=best)
    return best


def dist_points_to_ring(xs: np.ndarray, ys: np.ndarray, ring: np.ndarray) -> np.ndarray:
    """Min distance from each point to the ring's edges."""
    best = None
    for i in range(ring.shape[0] - 1):
        d = dist_points_to_segment(
            xs, ys, ring[i, 0], ring[i, 1], ring[i + 1, 0], ring[i + 1, 1]
        )
        best = d if best is None else np.minimum(best, d)
    return best


def dist_points_to_polygon(
    xs: np.ndarray, ys: np.ndarray, polygon: Polygon
) -> np.ndarray:
    """Distance to the polygon as a filled region: 0 for interior points."""
    d = dist_points_to_ring(xs, ys, polygon.shell)
    for hole in polygon.holes:
        np.minimum(d, dist_points_to_ring(xs, ys, hole), out=d)
    inside = points_in_polygon(xs, ys, polygon)
    d = np.asarray(d)
    d[inside] = 0.0
    return d


def dist_points_to_geometry(xs: np.ndarray, ys: np.ndarray, geom) -> np.ndarray:
    """Distance from each point to any supported geometry."""
    if isinstance(geom, Point):
        return np.hypot(np.asarray(xs) - geom.x, np.asarray(ys) - geom.y)
    if isinstance(geom, LineString):
        return dist_points_to_linestring(xs, ys, geom)
    if isinstance(geom, MultiLineString):
        best = dist_points_to_linestring(xs, ys, geom.lines[0])
        for line in geom.lines[1:]:
            np.minimum(best, dist_points_to_linestring(xs, ys, line), out=best)
        return best
    if isinstance(geom, Polygon):
        return dist_points_to_polygon(xs, ys, geom)
    if isinstance(geom, MultiPolygon):
        best = dist_points_to_polygon(xs, ys, geom.polygons[0])
        for poly in geom.polygons[1:]:
            np.minimum(best, dist_points_to_polygon(xs, ys, poly), out=best)
        return best
    raise TypeError(f"unsupported geometry for distance: {type(geom).__name__}")


# -- segment intersection ------------------------------------------------------


def segments_intersect(
    p1: Tuple[float, float],
    p2: Tuple[float, float],
    q1: Tuple[float, float],
    q2: Tuple[float, float],
) -> bool:
    """Do closed segments (p1, p2) and (q1, q2) intersect (incl. touching)?"""

    def orient(a, b, c) -> float:
        return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])

    def on_segment(a, b, c) -> bool:
        return (
            min(a[0], b[0]) - _EPS <= c[0] <= max(a[0], b[0]) + _EPS
            and min(a[1], b[1]) - _EPS <= c[1] <= max(a[1], b[1]) + _EPS
        )

    d1 = orient(q1, q2, p1)
    d2 = orient(q1, q2, p2)
    d3 = orient(p1, p2, q1)
    d4 = orient(p1, p2, q2)
    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)) and d1 != 0 and d2 != 0:
        return True
    if abs(d1) <= _EPS and on_segment(q1, q2, p1):
        return True
    if abs(d2) <= _EPS and on_segment(q1, q2, p2):
        return True
    if abs(d3) <= _EPS and on_segment(p1, p2, q1):
        return True
    if abs(d4) <= _EPS and on_segment(p1, p2, q2):
        return True
    return False


def ring_intersects_segment(
    ring: np.ndarray, a: Tuple[float, float], b: Tuple[float, float]
) -> bool:
    """Does any ring edge intersect segment (a, b)?"""
    for i in range(ring.shape[0] - 1):
        if segments_intersect(tuple(ring[i]), tuple(ring[i + 1]), a, b):
            return True
    return False


def simplify_coords(coords: np.ndarray, tolerance: float) -> np.ndarray:
    """Douglas-Peucker polyline simplification.

    Keeps the subset of vertices such that every dropped vertex lies
    within ``tolerance`` of the simplified line.  Endpoints always
    survive; closed rings keep their closure.  Used to thin dense
    geometries before rendering or repeated predicate evaluation.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    n = coords.shape[0]
    if n <= 2:
        return coords.copy()
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[-1] = True
    # Iterative stack instead of recursion (rings can be long).
    stack = [(0, n - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2:
            continue
        segment = coords[start + 1 : end]
        d = dist_points_to_segment(
            segment[:, 0],
            segment[:, 1],
            coords[start, 0],
            coords[start, 1],
            coords[end, 0],
            coords[end, 1],
        )
        worst = int(np.argmax(d))
        if d[worst] > tolerance:
            split = start + 1 + worst
            keep[split] = True
            stack.append((start, split))
            stack.append((split, end))
    return coords[keep]


def simplify(geom, tolerance: float):
    """Douglas-Peucker simplification of a line or polygon geometry.

    Polygon rings that would collapse below 3 distinct vertices are kept
    unsimplified (validity beats thinning).
    """
    if isinstance(geom, LineString):
        return LineString(simplify_coords(geom.coords, tolerance))
    if isinstance(geom, MultiLineString):
        return MultiLineString(
            [simplify_coords(line.coords, tolerance) for line in geom.lines]
        )
    if isinstance(geom, Polygon):
        def ring_or_original(ring: np.ndarray) -> np.ndarray:
            slim = simplify_coords(ring, tolerance)
            return slim if slim.shape[0] >= 4 else ring

        return Polygon(
            ring_or_original(geom.shell),
            holes=[ring_or_original(h) for h in geom.holes],
        )
    if isinstance(geom, MultiPolygon):
        return MultiPolygon([simplify(p, tolerance) for p in geom.polygons])
    raise TypeError(f"cannot simplify {type(geom).__name__}")


def linestrings_intersect(line_a: LineString, line_b: LineString) -> bool:
    """Segment-pairwise intersection with an envelope short-circuit."""
    if not line_a.envelope.intersects(line_b.envelope):
        return False
    ca, cb = line_a.coords, line_b.coords
    for i in range(ca.shape[0] - 1):
        for j in range(cb.shape[0] - 1):
            if segments_intersect(
                tuple(ca[i]), tuple(ca[i + 1]), tuple(cb[j]), tuple(cb[j + 1])
            ):
                return True
    return False
