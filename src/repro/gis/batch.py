"""Vectorised cell classification: many grid cells vs one geometry.

The refinement step classifies every non-empty grid cell against the
query geometry (Section 3.3).  Doing that cell-by-cell in Python costs
more than the point tests it saves, so this module provides the batched
kernels: arrays of cell rectangles in, an int8 relation array out
(0 = outside, 1 = inside, 2 = boundary).  Semantics match
:func:`repro.gis.predicates.classify_box` exactly — INSIDE/OUTSIDE are
exact, BOUNDARY is the conservative fallback.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .algorithms import dist_points_to_segment, points_in_polygon
from .envelope import Box
from .geometry import LineString, MultiLineString, MultiPolygon, Point, Polygon

OUTSIDE = np.int8(0)
INSIDE = np.int8(1)
BOUNDARY = np.int8(2)

BoxArrays = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _segment_intersects_boxes(
    xmin: np.ndarray,
    ymin: np.ndarray,
    xmax: np.ndarray,
    ymax: np.ndarray,
    ax: float,
    ay: float,
    bx: float,
    by: float,
) -> np.ndarray:
    """Liang-Barsky clip test of one segment against many boxes.

    Touching counts as intersecting (closed boxes), matching
    :func:`repro.gis.algorithms.segments_intersect` semantics.
    """
    dx = bx - ax
    dy = by - ay
    n = xmin.shape[0]
    t0 = np.zeros(n)
    t1 = np.ones(n)
    alive = np.ones(n, dtype=bool)
    for p, q in (
        (-dx, ax - xmin),
        (dx, xmax - ax),
        (-dy, ay - ymin),
        (dy, ymax - ay),
    ):
        if isinstance(p, float) and p == 0.0:
            # Parallel to this boundary: reject boxes the line is outside of.
            alive &= q >= 0
            continue
        t = q / p
        if p < 0:
            t0 = np.maximum(t0, t)
        else:
            t1 = np.minimum(t1, t)
    return alive & (t0 <= t1)


def _boxes_min_dist_to_segment(
    xmin, ymin, xmax, ymax, ax: float, ay: float, bx: float, by: float
) -> np.ndarray:
    """Exact min distance from each solid box to one segment."""
    intersects = _segment_intersects_boxes(xmin, ymin, xmax, ymax, ax, ay, bx, by)
    # Corner-to-segment distances.
    best = None
    for cx, cy in ((xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)):
        d = dist_points_to_segment(cx, cy, ax, ay, bx, by)
        best = d if best is None else np.minimum(best, d)
    # Endpoint-to-box distances.
    for px, py in ((ax, ay), (bx, by)):
        ex = np.maximum(np.maximum(xmin - px, 0.0), px - xmax)
        ey = np.maximum(np.maximum(ymin - py, 0.0), py - ymax)
        best = np.minimum(best, np.hypot(ex, ey))
    best[intersects] = 0.0
    return best


def _ring_crosses_boxes(boxes: BoxArrays, ring: np.ndarray) -> np.ndarray:
    xmin, ymin, xmax, ymax = boxes
    crosses = np.zeros(xmin.shape[0], dtype=bool)
    for i in range(ring.shape[0] - 1):
        remaining = ~crosses
        if not remaining.any():
            break
        crosses |= _segment_intersects_boxes(
            xmin, ymin, xmax, ymax, ring[i, 0], ring[i, 1], ring[i + 1, 0], ring[i + 1, 1]
        )
    return crosses


def _vertices_strictly_inside(boxes: BoxArrays, ring: np.ndarray) -> np.ndarray:
    """Boxes holding at least one ring vertex strictly inside."""
    xmin, ymin, xmax, ymax = boxes
    hit = np.zeros(xmin.shape[0], dtype=bool)
    for vx, vy in ring[:-1]:
        hit |= (xmin < vx) & (vx < xmax) & (ymin < vy) & (vy < ymax)
    return hit


def classify_boxes_vs_polygon(boxes: BoxArrays, polygon: Polygon) -> np.ndarray:
    """Vectorised :func:`classify_box_vs_polygon` over box arrays."""
    xmin, ymin, xmax, ymax = boxes
    n = xmin.shape[0]
    relations = np.full(n, OUTSIDE, dtype=np.int8)

    env = polygon.envelope
    touching = ~(
        (xmin > env.xmax) | (xmax < env.xmin) | (ymin > env.ymax) | (ymax < env.ymin)
    )
    if not touching.any():
        return relations

    boundary = np.zeros(n, dtype=bool)
    for ring in polygon.rings:
        boundary[touching] |= _ring_crosses_boxes(
            tuple(arr[touching] for arr in boxes), ring
        )
        boundary[touching] |= _vertices_strictly_inside(
            tuple(arr[touching] for arr in boxes), ring
        )

    undecided = touching & ~boundary
    if undecided.any():
        cx = (xmin[undecided] + xmax[undecided]) / 2
        cy = (ymin[undecided] + ymax[undecided]) / 2
        inside = points_in_polygon(cx, cy, polygon)
        idx = np.flatnonzero(undecided)
        relations[idx[inside]] = INSIDE
    relations[boundary] = BOUNDARY
    return relations


def classify_boxes_vs_box(boxes: BoxArrays, query: Box) -> np.ndarray:
    xmin, ymin, xmax, ymax = boxes
    n = xmin.shape[0]
    relations = np.full(n, BOUNDARY, dtype=np.int8)
    outside = (
        (xmin > query.xmax)
        | (xmax < query.xmin)
        | (ymin > query.ymax)
        | (ymax < query.ymin)
    )
    inside = (
        (xmin >= query.xmin)
        & (xmax <= query.xmax)
        & (ymin >= query.ymin)
        & (ymax <= query.ymax)
    )
    relations[outside] = OUTSIDE
    relations[inside] = INSIDE
    return relations


def _geometry_segments(geom):
    """All segments of a line/polygon geometry as (ax, ay, bx, by) tuples."""
    if isinstance(geom, LineString):
        rings = [geom.coords]
    elif isinstance(geom, MultiLineString):
        rings = [line.coords for line in geom.lines]
    elif isinstance(geom, Polygon):
        rings = geom.rings
    elif isinstance(geom, MultiPolygon):
        rings = [ring for poly in geom.polygons for ring in poly.rings]
    else:
        raise TypeError(f"no segments for {type(geom).__name__}")
    for coords in rings:
        for i in range(coords.shape[0] - 1):
            yield (
                float(coords[i, 0]),
                float(coords[i, 1]),
                float(coords[i + 1, 0]),
                float(coords[i + 1, 1]),
            )


def classify_boxes_dwithin(boxes: BoxArrays, geom, distance: float) -> np.ndarray:
    """Vectorised :func:`classify_box_dwithin` over box arrays."""
    from .algorithms import dist_points_to_geometry

    xmin, ymin, xmax, ymax = boxes
    n = xmin.shape[0]

    if isinstance(geom, Point):
        dmin_x = np.maximum(np.maximum(xmin - geom.x, 0.0), geom.x - xmax)
        dmin_y = np.maximum(np.maximum(ymin - geom.y, 0.0), geom.y - ymax)
        dmin = np.hypot(dmin_x, dmin_y)
    elif isinstance(geom, Box):
        dx = np.maximum(np.maximum(geom.xmin - xmax, xmin - geom.xmax), 0.0)
        dy = np.maximum(np.maximum(geom.ymin - ymax, ymin - geom.ymax), 0.0)
        dmin = np.hypot(dx, dy)
    else:
        dmin = None
        for ax, ay, bx, by in _geometry_segments(geom):
            d = _boxes_min_dist_to_segment(xmin, ymin, xmax, ymax, ax, ay, bx, by)
            dmin = d if dmin is None else np.minimum(dmin, d)
        if isinstance(geom, (Polygon, MultiPolygon)):
            # Boxes overlapping the polygon region are at distance 0.
            polys = geom.polygons if isinstance(geom, MultiPolygon) else [geom]
            overlap = np.zeros(n, dtype=bool)
            for poly in polys:
                overlap |= classify_boxes_vs_polygon(boxes, poly) != OUTSIDE
            dmin[overlap] = 0.0

    relations = np.full(n, BOUNDARY, dtype=np.int8)
    relations[dmin > distance] = OUTSIDE

    # Lipschitz INSIDE bound via the centre distance.
    cx = (xmin + xmax) / 2
    cy = (ymin + ymax) / 2
    half_diag = 0.5 * np.hypot(xmax - xmin, ymax - ymin)
    if isinstance(geom, Box):
        ex = np.maximum(np.maximum(geom.xmin - cx, 0.0), cx - geom.xmax)
        ey = np.maximum(np.maximum(geom.ymin - cy, 0.0), cy - geom.ymax)
        center_dist = np.hypot(ex, ey)
    else:
        center_dist = dist_points_to_geometry(cx, cy, geom)
    inside = center_dist + half_diag <= distance
    relations[inside] = INSIDE
    return relations


def classify_boxes(
    boxes: BoxArrays,
    geom,
    predicate: str = "contains",
    distance: float = 0.0,
) -> np.ndarray:
    """Batched cell classification for any supported predicate.

    ``boxes`` is the tuple ``(xmin, ymin, xmax, ymax)`` of equal-length
    arrays.  Returns int8 relations (module constants OUTSIDE / INSIDE /
    BOUNDARY).
    """
    if predicate in ("contains", "intersects", "within"):
        if isinstance(geom, Box):
            return classify_boxes_vs_box(boxes, geom)
        if isinstance(geom, Polygon):
            return classify_boxes_vs_polygon(boxes, geom)
        if isinstance(geom, MultiPolygon):
            n = boxes[0].shape[0]
            combined = np.full(n, OUTSIDE, dtype=np.int8)
            for poly in geom.polygons:
                rel = classify_boxes_vs_polygon(boxes, poly)
                combined = np.where(rel == INSIDE, INSIDE, combined)
                combined = np.where(
                    (rel == BOUNDARY) & (combined != INSIDE), BOUNDARY, combined
                )
            return combined
        raise TypeError(
            f"containment needs an areal geometry, got {type(geom).__name__}"
        )
    if predicate == "dwithin":
        return classify_boxes_dwithin(boxes, geom, distance)
    raise ValueError(f"unknown spatial predicate {predicate!r}")
