"""LAS 1.2 file reader.

Reads header + point records into the flat-table vocabulary: world-space
float64 ``x``/``y``/``z`` plus unpacked per-point properties, ready to
append to an engine table or feed the binary loader.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from .header import HEADER_SIZE, LasFormatError, LasHeader
from .spec import POINT_FORMATS, unpack_classification, unpack_flags

PathLike = Union[str, Path]


def read_header(path: PathLike) -> LasHeader:
    """Read only the 227-byte header (the file-pruning fast path of
    file-based solutions)."""
    try:
        with open(Path(path), "rb") as fh:
            raw = fh.read(HEADER_SIZE)
    except FileNotFoundError:
        raise LasFormatError(f"no such LAS file: {path}") from None
    return LasHeader.unpack(raw)


def read_las(path: PathLike) -> Tuple[LasHeader, Dict[str, np.ndarray]]:
    """Read a whole LAS file into flat columns.

    Returns ``(header, columns)`` where columns always include ``x``,
    ``y``, ``z`` (dequantised float64) and every property stored by the
    file's point format, with flag bytes unpacked into separate columns.
    """
    path = Path(path)
    header = read_header(path)
    dtype = POINT_FORMATS[header.point_format]
    expected = header.n_points * dtype.itemsize
    with open(path, "rb") as fh:
        fh.seek(header.offset_to_point_data)
        raw = fh.read(expected)
    if len(raw) != expected:
        raise LasFormatError(
            f"{path}: truncated point data ({len(raw)} of {expected} bytes)"
        )
    records = np.frombuffer(raw, dtype=dtype)

    sx, sy, sz = header.scale
    ox, oy, oz = header.offset
    columns: Dict[str, np.ndarray] = {
        "x": records["X"].astype(np.float64) * sx + ox,
        "y": records["Y"].astype(np.float64) * sy + oy,
        "z": records["Z"].astype(np.float64) * sz + oz,
        "intensity": records["intensity"].copy(),
        "scan_angle": records["scan_angle_rank"].astype(np.int16),
        "user_data": records["user_data"].copy(),
        "point_source_id": records["point_source_id"].copy(),
    }
    columns.update(unpack_flags(records["flags"]))
    columns.update(unpack_classification(records["classification"]))
    if "gps_time" in dtype.names:
        columns["gps_time"] = records["gps_time"].copy()
    if "red" in dtype.names:
        for channel in ("red", "green", "blue"):
            columns[channel] = records[channel].copy()
    return header, columns


def read_intervals(
    path: PathLike, intervals
) -> Tuple[LasHeader, Dict[str, np.ndarray]]:
    """Read only the given ``[start, stop)`` record intervals of a file.

    This is how LAStools consumes a ``.lax`` index: seek to each candidate
    interval instead of decoding the whole tile.  Returns flat columns for
    the concatenated intervals plus ``_record_index`` — the original
    record position of every returned point (so exact-filter hits can be
    mapped back to file offsets).
    """
    path = Path(path)
    header = read_header(path)
    dtype = POINT_FORMATS[header.point_format]
    sx, sy, sz = header.scale
    ox, oy, oz = header.offset
    pieces = []
    index_pieces = []
    with open(path, "rb") as fh:
        for start, stop in intervals:
            if not 0 <= start <= stop <= header.n_points:
                raise LasFormatError(
                    f"{path}: interval [{start}, {stop}) out of range "
                    f"(file holds {header.n_points} records)"
                )
            if start == stop:
                continue
            fh.seek(header.offset_to_point_data + start * dtype.itemsize)
            raw = fh.read((stop - start) * dtype.itemsize)
            if len(raw) != (stop - start) * dtype.itemsize:
                raise LasFormatError(f"{path}: truncated point data")
            pieces.append(np.frombuffer(raw, dtype=dtype))
            index_pieces.append(np.arange(start, stop, dtype=np.int64))
    if pieces:
        records = np.concatenate(pieces)
        record_index = np.concatenate(index_pieces)
    else:
        records = np.empty(0, dtype=dtype)
        record_index = np.empty(0, dtype=np.int64)

    columns: Dict[str, np.ndarray] = {
        "x": records["X"].astype(np.float64) * sx + ox,
        "y": records["Y"].astype(np.float64) * sy + oy,
        "z": records["Z"].astype(np.float64) * sz + oz,
        "intensity": records["intensity"].copy(),
        "scan_angle": records["scan_angle_rank"].astype(np.int16),
        "user_data": records["user_data"].copy(),
        "point_source_id": records["point_source_id"].copy(),
        "_record_index": record_index,
    }
    columns.update(unpack_flags(records["flags"]))
    columns.update(unpack_classification(records["classification"]))
    if "gps_time" in dtype.names:
        columns["gps_time"] = records["gps_time"].copy()
    if "red" in dtype.names:
        for channel in ("red", "green", "blue"):
            columns[channel] = records[channel].copy()
    return header, columns


def iter_points(
    path: PathLike, chunk_size: int = 65536
):
    """Stream a LAS file in chunks of flat columns (bounded memory).

    Yields ``(header, columns)`` per chunk — the shape the binary loader
    and the file-based baseline both consume for out-of-core files.
    """
    path = Path(path)
    header = read_header(path)
    dtype = POINT_FORMATS[header.point_format]
    sx, sy, sz = header.scale
    ox, oy, oz = header.offset
    remaining = header.n_points
    with open(path, "rb") as fh:
        fh.seek(header.offset_to_point_data)
        while remaining > 0:
            take = min(chunk_size, remaining)
            raw = fh.read(take * dtype.itemsize)
            if len(raw) != take * dtype.itemsize:
                raise LasFormatError(f"{path}: truncated point data")
            records = np.frombuffer(raw, dtype=dtype)
            columns: Dict[str, np.ndarray] = {
                "x": records["X"].astype(np.float64) * sx + ox,
                "y": records["Y"].astype(np.float64) * sy + oy,
                "z": records["Z"].astype(np.float64) * sz + oz,
                "intensity": records["intensity"].copy(),
                "scan_angle": records["scan_angle_rank"].astype(np.int16),
                "user_data": records["user_data"].copy(),
                "point_source_id": records["point_source_id"].copy(),
            }
            columns.update(unpack_flags(records["flags"]))
            columns.update(unpack_classification(records["classification"]))
            if "gps_time" in dtype.names:
                columns["gps_time"] = records["gps_time"].copy()
            if "red" in dtype.names:
                for channel in ("red", "green", "blue"):
                    columns[channel] = records[channel].copy()
            yield header, columns
            remaining -= take
