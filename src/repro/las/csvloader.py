"""The CSV loading path the paper's binary loader replaces.

Section 3.2: "In most of the systems, the dominant part of loading stems
from the conversion of the LAZ files into CSV format and the subsequent
parsing of the CSV records by the database engine."  This module is that
slow path, implemented honestly: LAS -> CSV text -> per-record parsing ->
typed columns.  The E1 bench runs it against the binary loader to
reproduce the loading-speed gap.
"""

from __future__ import annotations

import csv
import time
from pathlib import Path
from typing import Union

import numpy as np

from ..engine.column import TYPE_MAP
from ..engine.table import Table
from .binloader import LoadStats, flat_batch, read_point_file
from .spec import FLAT_SCHEMA

PathLike = Union[str, Path]

_COLUMN_NAMES = [name for name, _ in FLAT_SCHEMA]
_FLOAT_COLUMNS = {
    name for name, type_name in FLAT_SCHEMA if type_name.startswith("float")
}


def las_to_csv(las_path: PathLike, csv_path: PathLike) -> int:
    """Stage 1 of the slow path: convert a LAS/LAZ tile to CSV text.

    Returns the number of rows written.  All 26 flat-schema columns are
    emitted so the CSV is a faithful flat-table dump.
    """
    _header, columns = read_point_file(las_path)
    n = np.asarray(columns["x"]).shape[0]
    batch = flat_batch(columns, n)
    with open(Path(csv_path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_COLUMN_NAMES)
        for i in range(n):
            writer.writerow(
                [
                    repr(float(batch[name][i]))
                    if name in _FLOAT_COLUMNS
                    else int(batch[name][i])
                    for name in _COLUMN_NAMES
                ]
            )
    return n


def load_csv(table: Table, csv_path: PathLike) -> LoadStats:
    """Stage 2: parse CSV records into the flat table (the engine's
    ``COPY INTO ... FROM 'file.csv'`` equivalent)."""
    t0 = time.perf_counter()
    with open(Path(csv_path), newline="") as fh:
        reader = csv.reader(fh)
        header_row = next(reader)
        if header_row != _COLUMN_NAMES:
            raise ValueError(
                f"{csv_path}: CSV header does not match the flat schema"
            )
        raw_columns = [[] for _ in _COLUMN_NAMES]
        for row in reader:
            for slot, value in zip(raw_columns, row):
                slot.append(value)
    batch = {}
    for (name, type_name), values in zip(FLAT_SCHEMA, raw_columns):
        dtype = TYPE_MAP[type_name]
        if name in _FLOAT_COLUMNS:
            batch[name] = np.array([float(v) for v in values], dtype=dtype)
        else:
            batch[name] = np.array([int(v) for v in values], dtype=dtype)
    table.append_columns(batch)
    dt = time.perf_counter() - t0
    return LoadStats(n_points=len(raw_columns[0]), n_files=1, seconds=dt)


def load_via_csv(
    table: Table, las_path: PathLike, scratch_dir: PathLike
) -> LoadStats:
    """The full slow pipeline: LAS -> CSV file -> parse -> append."""
    scratch_dir = Path(scratch_dir)
    scratch_dir.mkdir(parents=True, exist_ok=True)
    csv_path = scratch_dir / (Path(las_path).stem + ".csv")
    t0 = time.perf_counter()
    las_to_csv(las_path, csv_path)
    stats = load_csv(table, csv_path)
    stats.seconds = time.perf_counter() - t0
    return stats
