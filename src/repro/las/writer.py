"""LAS 1.2 file writer.

Takes a column dict in the flat-table vocabulary (:data:`FLAT_SCHEMA`
names, world-coordinate doubles for x/y/z) and emits a byte-exact LAS 1.2
file for point formats 0-3.  World coordinates are quantised onto the
header's scale/offset grid exactly as real LAS tooling does, so a write ->
read round trip reproduces coordinates to within half a scale step.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..engine.durable import atomic_write_bytes
from .header import LasFormatError, LasHeader
from .spec import POINT_FORMATS, pack_classification, pack_flags

PathLike = Union[str, Path]

_I32_MIN, _I32_MAX = np.iinfo(np.int32).min, np.iinfo(np.int32).max


def _quantize_axis(
    world: np.ndarray, scale: float, offset: float, axis: str
) -> np.ndarray:
    stored = np.round((world - offset) / scale)
    if stored.size and (stored.min() < _I32_MIN or stored.max() > _I32_MAX):
        raise LasFormatError(
            f"{axis} coordinates overflow int32 under scale={scale}, "
            f"offset={offset}; pick a larger scale or better offset"
        )
    return stored.astype(np.int32)


def write_las(
    path: PathLike,
    points: Dict[str, np.ndarray],
    point_format: int = 3,
    scale: Tuple[float, float, float] = (0.01, 0.01, 0.01),
    offset: Optional[Tuple[float, float, float]] = None,
    file_source_id: int = 0,
) -> LasHeader:
    """Write points to a LAS file; returns the header that was written.

    ``points`` must provide ``x``/``y``/``z``; any other flat-schema
    fields present and representable in ``point_format`` are stored, the
    rest default to zero.
    """
    if point_format not in POINT_FORMATS:
        raise LasFormatError(f"unsupported point format {point_format}")
    for axis in ("x", "y", "z"):
        if axis not in points:
            raise LasFormatError(f"points dict is missing {axis!r}")
    x = np.asarray(points["x"], dtype=np.float64)
    y = np.asarray(points["y"], dtype=np.float64)
    z = np.asarray(points["z"], dtype=np.float64)
    n = x.shape[0]
    if y.shape[0] != n or z.shape[0] != n:
        raise LasFormatError("x, y, z must have equal length")

    if offset is None:
        offset = (
            float(np.floor(x.min())) if n else 0.0,
            float(np.floor(y.min())) if n else 0.0,
            float(np.floor(z.min())) if n else 0.0,
        )

    dtype = POINT_FORMATS[point_format]
    records = np.zeros(n, dtype=dtype)
    records["X"] = _quantize_axis(x, scale[0], offset[0], "x")
    records["Y"] = _quantize_axis(y, scale[1], offset[1], "y")
    records["Z"] = _quantize_axis(z, scale[2], offset[2], "z")

    def get(name: str, default: int = 0) -> np.ndarray:
        if name in points:
            return np.asarray(points[name])
        return np.full(n, default, dtype=np.uint8)

    records["intensity"] = get("intensity").astype(np.uint16)
    return_number = get("return_number", 1)
    records["flags"] = pack_flags(
        return_number,
        get("number_of_returns", 1),
        get("scan_direction_flag"),
        get("edge_of_flight_line"),
    )
    records["classification"] = pack_classification(
        get("classification"),
        get("synthetic"),
        get("key_point"),
        get("withheld"),
    )
    records["scan_angle_rank"] = np.clip(
        np.asarray(points.get("scan_angle", np.zeros(n))), -90, 90
    ).astype(np.int8)
    records["user_data"] = get("user_data").astype(np.uint8)
    records["point_source_id"] = get("point_source_id").astype(np.uint16)
    if "gps_time" in dtype.names:
        records["gps_time"] = np.asarray(
            points.get("gps_time", np.zeros(n)), dtype=np.float64
        )
    if "red" in dtype.names:
        for channel in ("red", "green", "blue"):
            records[channel] = get(channel).astype(np.uint16)

    # Per-return histogram (returns 1-5 as the header defines).
    by_return = [
        int((np.asarray(return_number) == r).sum()) for r in range(1, 6)
    ]

    # The header bbox reflects *stored* precision: dequantised extremes.
    def dequant(stored: np.ndarray, s: float, o: float) -> Tuple[float, float]:
        if n == 0:
            return (0.0, 0.0)
        world = stored.astype(np.float64) * s + o
        return float(world.min()), float(world.max())

    min_x, max_x = dequant(records["X"], scale[0], offset[0])
    min_y, max_y = dequant(records["Y"], scale[1], offset[1])
    min_z, max_z = dequant(records["Z"], scale[2], offset[2])

    header = LasHeader(
        point_format=point_format,
        n_points=n,
        scale=scale,
        offset=offset,
        min_xyz=(min_x, min_y, min_z),
        max_xyz=(max_x, max_y, max_z),
        points_by_return=tuple(by_return),
        file_source_id=file_source_id,
    )
    # Atomic write: an exported LAS file is either complete or absent,
    # never a header with a torn point block behind it.
    atomic_write_bytes(
        Path(path), header.pack() + records.tobytes(), label="las"
    )
    return header
