"""The ASPRS LAS specification subset: point record formats and dimensions.

LAS is "the de-facto standard to store and distribute the acquired data"
(Section 1).  This module defines:

* the binary layouts of LAS 1.2 point data record formats 0-3 (numpy
  structured dtypes, byte-exact with the spec), and
* the **flat-table schema** of the paper's storage model: "a different
  column is used for storing the X, Y, Z coordinates and the 23 properties
  of each point" — 26 columns total, covering every attribute of the
  richest (LAS 1.4 waveform) point format.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

#: Raw on-disk record layouts, LAS 1.2 (little endian, packed).
#: X/Y/Z are scaled int32; `flags` packs return number (3 bits), number of
#: returns (3), scan direction (1) and edge-of-flight-line (1);
#: `classification` packs the class (5 bits) + synthetic/key-point/withheld.
POINT_FORMATS: Dict[int, np.dtype] = {
    0: np.dtype(
        [
            ("X", "<i4"),
            ("Y", "<i4"),
            ("Z", "<i4"),
            ("intensity", "<u2"),
            ("flags", "u1"),
            ("classification", "u1"),
            ("scan_angle_rank", "i1"),
            ("user_data", "u1"),
            ("point_source_id", "<u2"),
        ]
    ),
    1: np.dtype(
        [
            ("X", "<i4"),
            ("Y", "<i4"),
            ("Z", "<i4"),
            ("intensity", "<u2"),
            ("flags", "u1"),
            ("classification", "u1"),
            ("scan_angle_rank", "i1"),
            ("user_data", "u1"),
            ("point_source_id", "<u2"),
            ("gps_time", "<f8"),
        ]
    ),
    2: np.dtype(
        [
            ("X", "<i4"),
            ("Y", "<i4"),
            ("Z", "<i4"),
            ("intensity", "<u2"),
            ("flags", "u1"),
            ("classification", "u1"),
            ("scan_angle_rank", "i1"),
            ("user_data", "u1"),
            ("point_source_id", "<u2"),
            ("red", "<u2"),
            ("green", "<u2"),
            ("blue", "<u2"),
        ]
    ),
    3: np.dtype(
        [
            ("X", "<i4"),
            ("Y", "<i4"),
            ("Z", "<i4"),
            ("intensity", "<u2"),
            ("flags", "u1"),
            ("classification", "u1"),
            ("scan_angle_rank", "i1"),
            ("user_data", "u1"),
            ("point_source_id", "<u2"),
            ("gps_time", "<f8"),
            ("red", "<u2"),
            ("green", "<u2"),
            ("blue", "<u2"),
        ]
    ),
}

#: Record length in bytes per format (20 / 28 / 26 / 34).
RECORD_LENGTHS: Dict[int, int] = {
    fmt: dtype.itemsize for fmt, dtype in POINT_FORMATS.items()
}

ASPRS_CLASSES: Dict[int, str] = {
    0: "created",
    1: "unclassified",
    2: "ground",
    3: "low_vegetation",
    4: "medium_vegetation",
    5: "high_vegetation",
    6: "building",
    7: "low_point",
    8: "model_key_point",
    9: "water",
    12: "overlap",
}

#: The paper's flat-table schema: x, y, z plus "the 23 properties of each
#: point" of the current LAS version, one engine column each.
FLAT_SCHEMA: List[Tuple[str, str]] = [
    ("x", "float64"),
    ("y", "float64"),
    ("z", "float64"),
    ("intensity", "uint16"),
    ("return_number", "uint8"),
    ("number_of_returns", "uint8"),
    ("scan_direction_flag", "uint8"),
    ("edge_of_flight_line", "uint8"),
    ("classification", "uint8"),
    ("synthetic", "uint8"),
    ("key_point", "uint8"),
    ("withheld", "uint8"),
    ("overlap", "uint8"),
    ("scanner_channel", "uint8"),
    ("scan_angle", "int16"),
    ("user_data", "uint8"),
    ("point_source_id", "uint16"),
    ("gps_time", "float64"),
    ("red", "uint16"),
    ("green", "uint16"),
    ("blue", "uint16"),
    ("nir", "uint16"),
    ("wave_packet_index", "uint8"),
    ("wave_byte_offset", "uint64"),
    ("wave_packet_size", "uint32"),
    ("wave_return_location", "float32"),
]

#: Sanity constants quoted in the paper's introduction.
N_PROPERTIES = len(FLAT_SCHEMA) - 3  # 23 properties excluding X, Y, Z
assert N_PROPERTIES == 23

FLAT_COLUMN_NAMES = [name for name, _ in FLAT_SCHEMA]


# -- bit packing helpers -------------------------------------------------------


def pack_flags(
    return_number: np.ndarray,
    number_of_returns: np.ndarray,
    scan_direction_flag: np.ndarray,
    edge_of_flight_line: np.ndarray,
) -> np.ndarray:
    """Pack the four flag fields into the LAS flags byte."""
    return (
        (np.asarray(return_number).astype(np.uint8) & 0x07)
        | ((np.asarray(number_of_returns).astype(np.uint8) & 0x07) << 3)
        | ((np.asarray(scan_direction_flag).astype(np.uint8) & 0x01) << 6)
        | ((np.asarray(edge_of_flight_line).astype(np.uint8) & 0x01) << 7)
    )


def unpack_flags(flags: np.ndarray) -> Dict[str, np.ndarray]:
    """Inverse of :func:`pack_flags`."""
    flags = np.asarray(flags).astype(np.uint8)
    return {
        "return_number": flags & 0x07,
        "number_of_returns": (flags >> 3) & 0x07,
        "scan_direction_flag": (flags >> 6) & 0x01,
        "edge_of_flight_line": (flags >> 7) & 0x01,
    }


def pack_classification(
    classification: np.ndarray,
    synthetic: np.ndarray,
    key_point: np.ndarray,
    withheld: np.ndarray,
) -> np.ndarray:
    """Pack class (5 bits) + synthetic/key-point/withheld flags."""
    return (
        (np.asarray(classification).astype(np.uint8) & 0x1F)
        | ((np.asarray(synthetic).astype(np.uint8) & 0x01) << 5)
        | ((np.asarray(key_point).astype(np.uint8) & 0x01) << 6)
        | ((np.asarray(withheld).astype(np.uint8) & 0x01) << 7)
    )


def unpack_classification(byte: np.ndarray) -> Dict[str, np.ndarray]:
    """Inverse of :func:`pack_classification`."""
    byte = np.asarray(byte).astype(np.uint8)
    return {
        "classification": byte & 0x1F,
        "synthetic": (byte >> 5) & 0x01,
        "key_point": (byte >> 6) & 0x01,
        "withheld": (byte >> 7) & 0x01,
    }
