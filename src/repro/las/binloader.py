"""The paper's binary bulk loader (Section 3.2).

"The loader takes as input a LAS/LAZ file and for each property it
generates a new file that is the binary dump of a C-array containing the
values of the property for all points.  Then, the generated files are
appended to each column of the flat table using the bulk loading operator
COPY BINARY."

:func:`load_file` implements exactly that two-stage pipeline (dump to
``.col`` files, then :func:`repro.engine.storage.copy_binary`), with an
in-memory fast path when no spool directory is given.  :func:`load_files`
drives a whole directory of LAS/LAZ tiles — the AHN2 layout — and reports
throughput, from which the E1 bench extrapolates the "640 billion points
in less than one day" claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

import numpy as np

from ..engine.catalog import Database
from ..engine.column import TYPE_MAP
from ..engine.storage import copy_binary, dump_array
from ..engine.table import Table
from ..obs.metrics import get_registry
from ..obs.trace import maybe_span
from .header import LasFormatError
from .laz import read_laz
from .reader import read_las
from .spec import FLAT_SCHEMA

PathLike = Union[str, Path]


@dataclass
class LoadStats:
    """Throughput accounting for a bulk load."""

    n_points: int = 0
    n_files: int = 0
    seconds: float = 0.0
    read_seconds: float = 0.0
    append_seconds: float = 0.0
    #: Tiles skipped because the journal proved them already durable.
    n_skipped: int = 0
    #: Torn/failed tail rows rolled back before (re)appending.
    n_rows_rolled_back: int = 0

    @property
    def points_per_second(self) -> float:
        return self.n_points / self.seconds if self.seconds else 0.0

    def projected_seconds(self, n_points: int) -> float:
        """Linear extrapolation to a bigger cloud (e.g. AHN2's 640e9).

        Returns ``inf`` when nothing was measured — report renderers
        print that as "n/a" (see ``repro.bench.harness.human_seconds``).
        """
        if self.points_per_second == 0:
            return float("inf")
        return n_points / self.points_per_second


def create_flat_table(db: Database, name: str = "points") -> Table:
    """Create the 26-column flat point-cloud table of Section 3.1."""
    return db.create_table(name, FLAT_SCHEMA)


def flat_batch(columns: Dict[str, np.ndarray], n: int) -> Dict[str, np.ndarray]:
    """Complete a partial column dict to the full 26-column flat batch.

    LAS point formats below 3 lack some properties (colour, GPS time);
    the flat table stores zeros for those, as a DBMS stores defaults.
    """
    batch: Dict[str, np.ndarray] = {}
    for name, type_name in FLAT_SCHEMA:
        if name in columns:
            batch[name] = np.asarray(columns[name])
        else:
            batch[name] = np.zeros(n, dtype=TYPE_MAP[type_name])
    return batch


def read_point_file(path: PathLike):
    """Read a .las or .laz tile by extension (the loader's input stage)."""
    path = Path(path)
    if path.suffix.lower() == ".laz":
        return read_laz(path)
    return read_las(path)


def dump_to_binary(
    columns: Dict[str, np.ndarray], out_dir: PathLike
) -> Dict[str, Path]:
    """Stage 1: one binary C-array dump file per flat-table property."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    n = np.asarray(columns["x"]).shape[0]
    batch = flat_batch(columns, n)
    files: Dict[str, Path] = {}
    for (name, type_name), _ in zip(FLAT_SCHEMA, range(len(FLAT_SCHEMA))):
        path = out_dir / f"{name}.col"
        dump_array(batch[name].astype(TYPE_MAP[type_name]), path)
        files[name] = path
    return files


def load_file(
    table: Table,
    path: PathLike,
    spool_dir: Optional[PathLike] = None,
) -> LoadStats:
    """Load one LAS/LAZ tile into the flat table.

    With ``spool_dir`` the loader runs the paper's literal two-stage
    pipeline (binary dumps + COPY BINARY); without it the dumps are
    skipped and the arrays append directly — same code path in the engine,
    minus the disk round trip.
    """
    stats = LoadStats(n_files=1)
    with maybe_span("load.file", path=str(path)) as file_span:
        t0 = time.perf_counter()
        with maybe_span("load.read"):
            _header, columns = read_point_file(path)
        t1 = time.perf_counter()
        n = np.asarray(columns["x"]).shape[0]
        with maybe_span("load.append") as append_span:
            if spool_dir is not None:
                files = dump_to_binary(columns, spool_dir)
                copy_binary(table, files)
            else:
                table.append_columns(flat_batch(columns, n))
            append_span.set(rows=n, spooled=spool_dir is not None)
        t2 = time.perf_counter()
        stats.n_points = n
        stats.read_seconds = t1 - t0
        stats.append_seconds = t2 - t1
        stats.seconds = t2 - t0
        file_span.set(rows=n)
    _record_load(stats)
    return stats


def _record_load(stats: LoadStats) -> None:
    """Fold one load's throughput accounting into the metrics registry."""
    registry = get_registry()
    registry.counter("load.points").inc(stats.n_points)
    registry.counter("load.files").inc(stats.n_files)
    registry.histogram("load.seconds").observe(stats.seconds)


def load_files(
    table: Table,
    paths: Iterable[PathLike],
    spool_dir: Optional[PathLike] = None,
    manifest=None,
    retries: int = 0,
    backoff: float = 0.01,
    checkpoint_every: int = 0,
    checkpoint=None,
) -> LoadStats:
    """Load a set of tiles (the 60,185-file AHN2 layout, scaled down).

    Beyond the paper's happy path, the loader is crash-safe:

    * ``manifest`` — a :class:`repro.las.manifest.LoadManifest` journals
      every tile (``pending`` → ``appended`` → ``indexed``) with source
      fingerprints; tiles the journal proves durable are skipped, which
      is how an interrupted ingest resumes exactly where it stopped.
    * a tile whose read or append fails is **rolled back** — the table
      is truncated to its pre-tile length, so no half-appended batch
      survives — before the error propagates (or the tile is retried).
    * ``retries`` — transient ``OSError``\\ s (NFS hiccups, ``EINTR``)
      are retried with bounded backoff; typed corruption errors
      (``LasFormatError``, ``StorageError``) are not, corrupt bytes do
      not heal on retry.
    * ``checkpoint`` — a zero-argument durability callback (e.g.
      ``db.save``) invoked every ``checkpoint_every`` tiles and at the
      end; afterwards the journal advances those tiles to ``indexed``.
    """
    from ..engine.durable import InjectedCrash, crash_point, with_retries
    from ..engine.storage import StorageError

    total = LoadStats()
    registry = get_registry()
    since_checkpoint = 0

    def run_checkpoint() -> None:
        with maybe_span("load.checkpoint", rows=len(table)):
            checkpoint()
        crash_point("ingest.checkpointed", rows=len(table))
        if manifest is not None:
            manifest.mark_checkpoint(len(table))

    for path in paths:
        if manifest is not None and manifest.is_done(path):
            total.n_skipped += 1
            registry.counter("load.tiles_skipped").inc()
            continue
        rows_before = len(table)
        if manifest is not None:
            manifest.begin(path, rows_before)
            crash_point("ingest.tile_pending", tile=str(path))

        def attempt(path=path, rows_before=rows_before):
            try:
                return load_file(table, path, spool_dir=spool_dir)
            except InjectedCrash:
                raise  # a dead process rolls nothing back
            except Exception:
                # Narrowed from BaseException so InjectedCrash (and a
                # real KeyboardInterrupt) can never detour through the
                # rollback path of a process that is supposed to be dead.
                torn = len(table) - rows_before
                if torn > 0:
                    table.truncate(rows_before)
                    total.n_rows_rolled_back += torn
                    registry.counter("durability.rolled_back_rows").inc(torn)
                raise

        try:
            stats = with_retries(
                attempt,
                retries=retries,
                backoff=backoff,
                retry_on=(OSError,),
                no_retry=(LasFormatError, StorageError),
                label="load.tile",
            )
        except InjectedCrash:
            raise  # leave the journal frozen, exactly like a kill -9
        except Exception:
            if manifest is not None:
                manifest.abort(path)
            raise
        if manifest is not None:
            manifest.mark_appended(path, len(table), stats.n_points)
            crash_point("ingest.tile_appended", tile=str(path))
        total.n_points += stats.n_points
        total.n_files += 1
        total.seconds += stats.seconds
        total.read_seconds += stats.read_seconds
        total.append_seconds += stats.append_seconds
        since_checkpoint += 1
        if checkpoint is not None and checkpoint_every and since_checkpoint >= checkpoint_every:
            run_checkpoint()
            since_checkpoint = 0
    if checkpoint is not None and since_checkpoint:
        run_checkpoint()
    return total


def load_file_chunked(
    table: Table,
    path: PathLike,
    chunk_size: int = 262_144,
) -> LoadStats:
    """Load one LAS tile in bounded-memory chunks.

    The paper's tiles are heading towards "billion points per file"
    (Section 1); this path streams a file through
    :func:`repro.las.reader.iter_points` so peak memory is one chunk, not
    one file.  Only uncompressed .las input (the LAZ container decodes
    per-field, not per-chunk).
    """
    stats = LoadStats(n_files=1)
    with maybe_span("load.file_chunked", path=str(path)) as span:
        t0 = time.perf_counter()
        path = Path(path)
        if path.suffix.lower() == ".laz":
            raise LasFormatError(
                "chunked loading needs an uncompressed .las file"
            )
        from .reader import iter_points

        for _header, columns in iter_points(path, chunk_size=chunk_size):
            n = np.asarray(columns["x"]).shape[0]
            with maybe_span("load.append") as append_span:
                table.append_columns(flat_batch(columns, n))
                append_span.set(rows=n)
            stats.n_points += n
        stats.seconds = time.perf_counter() - t0
        stats.append_seconds = stats.seconds
        span.set(rows=stats.n_points)
    _record_load(stats)
    return stats


def load_arrays(table: Table, columns: Dict[str, np.ndarray]) -> LoadStats:
    """Load an in-memory column batch (generators feed this directly)."""
    with maybe_span("load.arrays") as span:
        t0 = time.perf_counter()
        n = np.asarray(columns["x"]).shape[0]
        table.append_columns(flat_batch(columns, n))
        dt = time.perf_counter() - t0
        span.set(rows=n)
    stats = LoadStats(n_points=n, n_files=0, seconds=dt, append_seconds=dt)
    _record_load(stats)
    return stats
