"""The bulk-load journal: per-tile manifest for crash-resumable ingest.

The paper's AHN2 ingest (Section 3.2) is a 60,185-file, multi-hour job.
A crash at tile 48,000 must not mean starting over, so :func:`~repro.las.
binloader.load_files` can journal its progress in a :class:`LoadManifest`
— one JSON file, rewritten atomically (see :mod:`repro.engine.durable`)
at every state transition.

Each tile moves through three states::

    pending   append started (in memory, nothing durable yet)
    appended  rows are in the in-memory table, not yet checkpointed
    indexed   a checkpoint has made the rows (and indexes) durable

together with a fingerprint of the source file (size + mtime), so a
tile that changed on disk between runs is re-loaded rather than wrongly
skipped.  ``rows_committed`` tracks how many table rows the last
checkpoint made durable; on resume everything past it — tiles stuck in
``pending``/``appended``, torn tail rows — is rolled back and redone,
which is what makes an interrupted ingest byte-identical to an
uninterrupted one.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..engine import durable

PathLike = Union[str, Path]

STATE_PENDING = "pending"
STATE_APPENDED = "appended"
STATE_INDEXED = "indexed"

_MANIFEST_VERSION = 1


class ManifestError(IOError):
    """Raised on unreadable or foreign manifest files."""


@dataclass
class TileEntry:
    """Journal record for one source tile."""

    name: str  # tile file name (the key within its directory)
    size: int  # source fingerprint: byte size ...
    mtime: float  # ... and modification time
    state: str = STATE_PENDING
    rows_before: int = 0  # table length when the append began
    rows_after: int = 0  # table length after the append
    n_points: int = 0


def fingerprint(path: PathLike) -> Dict[str, float]:
    """Size/mtime fingerprint of a source tile."""
    st = os.stat(path)
    return {"size": st.st_size, "mtime": st.st_mtime}


class LoadManifest:
    """Atomic JSON journal of a bulk load's per-tile progress."""

    def __init__(self, path: PathLike, table: str) -> None:
        self.path = Path(path)
        self.table = table
        self.entries: Dict[str, TileEntry] = {}
        #: Table rows made durable by the last checkpoint.
        self.rows_committed = 0

    # -- persistence --------------------------------------------------------

    @classmethod
    def open(cls, path: PathLike, table: str) -> "LoadManifest":
        """Load an existing manifest, or start a fresh one.

        A corrupt manifest raises :class:`ManifestError` — the caller
        decides whether to abort or restart the ingest from scratch; a
        journal must never be silently misread.
        """
        path = Path(path)
        manifest = cls(path, table)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            return manifest
        try:
            meta = json.loads(raw)
            if meta.get("version") != _MANIFEST_VERSION:
                raise ManifestError(
                    f"{path}: unsupported manifest version {meta.get('version')}"
                )
            manifest.rows_committed = int(meta.get("rows_committed", 0))
            for record in meta.get("tiles", []):
                entry = TileEntry(**record)
                manifest.entries[entry.name] = entry
        except ManifestError:
            raise
        except (json.JSONDecodeError, TypeError, ValueError, KeyError) as exc:
            raise ManifestError(f"{path}: corrupt load manifest ({exc})") from None
        return manifest

    def write(self) -> None:
        """Persist the journal atomically (temp + fsync + replace)."""
        meta = {
            "version": _MANIFEST_VERSION,
            "table": self.table,
            "rows_committed": self.rows_committed,
            "tiles": [asdict(e) for e in self.entries.values()],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        durable.atomic_write_text(
            self.path, json.dumps(meta, indent=2), label="manifest"
        )

    def discard(self) -> None:
        """Delete the journal file (fresh, non-resumed loads)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        self.entries.clear()
        self.rows_committed = 0

    # -- state transitions --------------------------------------------------

    def is_done(self, path: PathLike) -> bool:
        """True when this tile is durably loaded and unchanged on disk."""
        entry = self.entries.get(Path(path).name)
        if entry is None or entry.state != STATE_INDEXED:
            return False
        fp = fingerprint(path)
        return entry.size == fp["size"] and entry.mtime == fp["mtime"]

    def begin(self, path: PathLike, rows_before: int) -> TileEntry:
        """Record that a tile's append is starting (state ``pending``)."""
        path = Path(path)
        fp = fingerprint(path)
        entry = TileEntry(
            name=path.name,
            size=int(fp["size"]),
            mtime=fp["mtime"],
            state=STATE_PENDING,
            rows_before=rows_before,
        )
        self.entries[path.name] = entry
        self.write()
        return entry

    def mark_appended(self, path: PathLike, rows_after: int, n_points: int) -> None:
        """In-memory append done (state ``appended``)."""
        entry = self.entries[Path(path).name]
        entry.state = STATE_APPENDED
        entry.rows_after = rows_after
        entry.n_points = n_points
        self.write()

    def abort(self, path: PathLike) -> None:
        """Drop a tile whose append failed and was rolled back."""
        self.entries.pop(Path(path).name, None)
        self.write()

    def mark_checkpoint(self, rows_committed: int) -> None:
        """A checkpoint made everything appended so far durable.

        Every ``appended`` entry advances to ``indexed`` and
        ``rows_committed`` moves forward — written last, atomically, so
        the journal never claims durability the store does not have.
        """
        for entry in self.entries.values():
            if entry.state == STATE_APPENDED:
                entry.state = STATE_INDEXED
        self.rows_committed = rows_committed
        self.write()

    # -- recovery -----------------------------------------------------------

    def reconcile(self, table_rows: int) -> int:
        """Roll the journal back to the durable state on resume.

        ``table_rows`` is the row count actually recovered from disk.
        Entries that never reached ``indexed``, or whose rows lie beyond
        the committed tail, are dropped (their tiles will be redone).
        Returns the reconciled ``rows_committed``.
        """
        committed = min(self.rows_committed, table_rows)
        stale = [
            name
            for name, entry in self.entries.items()
            if entry.state != STATE_INDEXED or entry.rows_after > committed
        ]
        for name in stale:
            del self.entries[name]
        self.rows_committed = committed
        self.write()
        return committed

    @property
    def states(self) -> Dict[str, List[str]]:
        """Tile names grouped by state (reporting/debugging aid)."""
        out: Dict[str, List[str]] = {
            STATE_PENDING: [],
            STATE_APPENDED: [],
            STATE_INDEXED: [],
        }
        for entry in self.entries.values():
            out.setdefault(entry.state, []).append(entry.name)
        return out
