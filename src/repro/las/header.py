"""LAS 1.2 public header block: byte-exact pack/unpack.

File-based solutions must "inspect each file header" to prune files for a
query (Section 2.2) — so the header carries the per-file bounding box,
point count, format id and the scale/offset that turn stored int32
coordinates back into world doubles.  The header is exactly 227 bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Tuple

from .spec import POINT_FORMATS, RECORD_LENGTHS

HEADER_SIZE = 227
_SIGNATURE = b"LASF"
_STRUCT = struct.Struct(
    "<4s"  # file signature
    "H"  # file source id
    "H"  # global encoding
    "I H H 8s"  # project GUID
    "B B"  # version major/minor
    "32s"  # system identifier
    "32s"  # generating software
    "H H"  # creation day of year / year
    "H"  # header size
    "I"  # offset to point data
    "I"  # number of VLRs
    "B"  # point data format id
    "H"  # point data record length
    "I"  # number of point records
    "5I"  # number of points by return
    "3d"  # x, y, z scale factors
    "3d"  # x, y, z offsets
    "6d"  # max_x min_x max_y min_y max_z min_z
)
assert _STRUCT.size == HEADER_SIZE


class LasFormatError(IOError):
    """Raised on malformed or unsupported LAS data."""


@dataclass
class LasHeader:
    """The fields of a LAS 1.2 public header block."""

    point_format: int = 0
    n_points: int = 0
    scale: Tuple[float, float, float] = (0.01, 0.01, 0.01)
    offset: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    min_xyz: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    max_xyz: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    points_by_return: Tuple[int, ...] = (0, 0, 0, 0, 0)
    file_source_id: int = 0
    system_identifier: str = "repro"
    generating_software: str = "repro.las"
    creation_day: int = 1
    creation_year: int = 2015

    def __post_init__(self) -> None:
        if self.point_format not in POINT_FORMATS:
            raise LasFormatError(
                f"unsupported point format {self.point_format} (have 0-3)"
            )
        if self.n_points < 0:
            raise LasFormatError("negative point count")
        if any(s <= 0 for s in self.scale):
            raise LasFormatError("scale factors must be positive")

    @property
    def record_length(self) -> int:
        return RECORD_LENGTHS[self.point_format]

    @property
    def offset_to_point_data(self) -> int:
        return HEADER_SIZE  # no VLRs in this implementation

    def pack(self) -> bytes:
        """Serialise to the 227-byte header block."""
        return _STRUCT.pack(
            _SIGNATURE,
            self.file_source_id,
            0,  # global encoding
            0,
            0,
            0,
            b"\x00" * 8,  # GUID
            1,
            2,  # version 1.2
            self.system_identifier.encode()[:32].ljust(32, b"\x00"),
            self.generating_software.encode()[:32].ljust(32, b"\x00"),
            self.creation_day,
            self.creation_year,
            HEADER_SIZE,
            self.offset_to_point_data,
            0,  # VLR count
            self.point_format,
            self.record_length,
            self.n_points,
            *self.points_by_return,
            *self.scale,
            *self.offset,
            self.max_xyz[0],
            self.min_xyz[0],
            self.max_xyz[1],
            self.min_xyz[1],
            self.max_xyz[2],
            self.min_xyz[2],
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "LasHeader":
        """Parse a header block; validates signature, version and sizes."""
        if len(raw) < HEADER_SIZE:
            raise LasFormatError(
                f"truncated header: {len(raw)} bytes < {HEADER_SIZE}"
            )
        fields = _STRUCT.unpack(raw[:HEADER_SIZE])
        (
            signature,
            file_source_id,
            _global_encoding,
            _g1,
            _g2,
            _g3,
            _g4,
            ver_major,
            ver_minor,
            sys_id,
            software,
            day,
            year,
            header_size,
            _offset_to_points,
            n_vlrs,
            point_format,
            record_length,
            n_points,
            r1,
            r2,
            r3,
            r4,
            r5,
            sx,
            sy,
            sz,
            ox,
            oy,
            oz,
            max_x,
            min_x,
            max_y,
            min_y,
            max_z,
            min_z,
        ) = fields
        if signature != _SIGNATURE:
            raise LasFormatError(f"not a LAS file (signature {signature!r})")
        if (ver_major, ver_minor) != (1, 2):
            raise LasFormatError(
                f"unsupported LAS version {ver_major}.{ver_minor}"
            )
        if header_size != HEADER_SIZE:
            raise LasFormatError(f"unexpected header size {header_size}")
        if n_vlrs != 0:
            raise LasFormatError("variable length records are not supported")
        if point_format not in POINT_FORMATS:
            raise LasFormatError(f"unsupported point format {point_format}")
        if record_length != RECORD_LENGTHS[point_format]:
            raise LasFormatError(
                f"record length {record_length} does not match format "
                f"{point_format}"
            )
        return cls(
            point_format=point_format,
            n_points=n_points,
            scale=(sx, sy, sz),
            offset=(ox, oy, oz),
            min_xyz=(min_x, min_y, min_z),
            max_xyz=(max_x, max_y, max_z),
            points_by_return=(r1, r2, r3, r4, r5),
            file_source_id=file_source_id,
            system_identifier=sys_id.rstrip(b"\x00").decode(errors="replace"),
            generating_software=software.rstrip(b"\x00").decode(errors="replace"),
            creation_day=day,
            creation_year=year,
        )
