"""LAS/LAZ substrate: the ASPRS file formats and the paper's loaders.

* :mod:`repro.las.spec` — point record layouts + the 26-column flat schema.
* :mod:`repro.las.header` / :mod:`~.reader` / :mod:`~.writer` — LAS 1.2 I/O.
* :mod:`repro.las.laz` — the compressed (LAZ-like) container.
* :mod:`repro.las.binloader` — the paper's binary bulk loader (Section 3.2).
* :mod:`repro.las.csvloader` — the slow CSV path it replaces.
"""

from .binloader import (
    LoadStats,
    create_flat_table,
    load_arrays,
    load_file,
    load_files,
)
from .header import HEADER_SIZE, LasFormatError, LasHeader
from .laz import read_laz, write_laz
from .reader import iter_points, read_header, read_las
from .spec import ASPRS_CLASSES, FLAT_COLUMN_NAMES, FLAT_SCHEMA, POINT_FORMATS
from .writer import write_las

__all__ = [
    "ASPRS_CLASSES",
    "FLAT_COLUMN_NAMES",
    "FLAT_SCHEMA",
    "HEADER_SIZE",
    "LasFormatError",
    "LasHeader",
    "LoadStats",
    "POINT_FORMATS",
    "create_flat_table",
    "iter_points",
    "load_arrays",
    "load_file",
    "load_files",
    "read_header",
    "read_las",
    "read_laz",
    "write_las",
    "write_laz",
]
