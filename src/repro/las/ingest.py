"""Crash-resumable, checkpointed bulk ingest into a persisted database.

This is the operational wrapper around the paper's bulk loader: where
:func:`repro.las.binloader.load_files` moves tiles into an in-memory
table, :class:`ResumableIngest` owns the whole multi-hour job — open or
recover the on-disk database, journal every tile in a
:class:`~repro.las.manifest.LoadManifest`, checkpoint the table (and
catalog) durably every N tiles, and, after a crash, resume exactly where
the last checkpoint left off:

* tiles the journal proves durable (``indexed`` + matching size/mtime
  fingerprint) are skipped;
* tiles stuck in ``pending``/``appended`` — and any torn tail rows a
  crash mid-checkpoint left behind — are rolled back and redone;
* transient ``OSError``\\ s retry with bounded backoff.

The result is the guarantee the fault-injection suite enforces: an
ingest killed at any crash point and resumed with ``--resume`` produces
column files byte-identical to an uninterrupted run.

Driven by ``repro-gis load --resume`` (see ``docs/durability.md``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Tuple, Union

from ..engine.catalog import CATALOG_FILE, Database
from ..engine.durable import crash_point
from ..obs.metrics import get_registry
from ..obs.trace import maybe_span
from .binloader import LoadStats, create_flat_table, load_files
from .manifest import LoadManifest

PathLike = Union[str, Path]

#: Journal directory under the database root.
INGEST_DIR = "_ingest"


def manifest_path(root: PathLike, table: str = "points") -> Path:
    """Where the load journal for a table lives inside a database farm."""
    return Path(root) / INGEST_DIR / f"{table}.manifest.json"


class ResumableIngest:
    """A journaled bulk load of LAS/LAZ tiles into an on-disk database.

    Parameters
    ----------
    directory:
        Database root (the ``--db`` directory of the CLI).
    table:
        Flat table name to load into (created if missing).
    checkpoint_every:
        Tiles between durable checkpoints (table + catalog + journal).
        1 = maximum safety, larger amortises the save cost.
    retries / backoff:
        Transient-``OSError`` retry budget per tile.
    """

    def __init__(
        self,
        directory: PathLike,
        table: str = "points",
        checkpoint_every: int = 1,
        retries: int = 3,
        backoff: float = 0.01,
    ) -> None:
        self.root = Path(directory)
        self.table_name = table
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.retries = retries
        self.backoff = backoff

    # -- database / journal opening ----------------------------------------

    def _open(self, resume: bool) -> Tuple[Database, LoadManifest]:
        """Open (or recover) the database and journal for this ingest."""
        self.root.mkdir(parents=True, exist_ok=True)
        journal = manifest_path(self.root, self.table_name)
        has_store = (self.root / CATALOG_FILE).exists() or any(
            p.is_dir() and (p / "schema.json").exists()
            for p in self.root.iterdir()
        )
        if has_store:
            # Load (tolerantly) whatever the farm already holds so other
            # tables survive the next catalog write.
            db = Database.load(self.root)
        else:
            db = Database(directory=self.root)
        if not resume and self.table_name in db:
            # Fresh load replaces the target table, nothing else.
            db.drop_table(self.table_name)
        if self.table_name in db:
            table = db.table(self.table_name)
        else:
            table = create_flat_table(db, self.table_name)

        if resume:
            manifest = LoadManifest.open(journal, self.table_name)
            committed = manifest.reconcile(len(table))
            torn = len(table) - committed
            if torn > 0:
                # A crash between checkpoint stages left uncommitted tail
                # rows in the recovered table: roll them back, their tiles
                # will be redone.
                table.truncate(committed)
                get_registry().counter("durability.rolled_back_rows").inc(torn)
            dirty = torn > 0 or any(
                h["issues"] for h in db.health.values() if h["ok"]
            )
            if dirty:
                # Make the repaired state durable before loading anything,
                # so even a resume with zero new tiles heals the store.
                db.save()
                manifest.mark_checkpoint(len(table))
                crash_point("ingest.recovered", rows=len(table))
        else:
            manifest = LoadManifest(journal, self.table_name)
            manifest.discard()
        return db, manifest

    # -- the load -----------------------------------------------------------

    def load(
        self, paths: Iterable[PathLike], resume: bool = False
    ) -> Tuple[Database, LoadStats]:
        """Run (or resume) the ingest; returns the database and stats.

        Every tile is journaled; the table, catalog and journal are
        checkpointed durably every ``checkpoint_every`` tiles and once
        at the end, so a crash loses at most the tiles since the last
        checkpoint — and those are rolled back and redone on resume.
        """
        db, manifest = self._open(resume)
        table = db.table(self.table_name)
        with maybe_span(
            "load.ingest", table=self.table_name, resume=resume
        ) as span:
            stats = load_files(
                table,
                paths,
                manifest=manifest,
                retries=self.retries,
                backoff=self.backoff,
                checkpoint_every=self.checkpoint_every,
                checkpoint=db.save,
            )
            span.set(rows=len(table), skipped=stats.n_skipped)
        return db, stats
