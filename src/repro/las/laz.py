"""A LAZ-like compressed point container.

AHN2 ships as 60,185 **LAZ** files (Section 4): LAS content compressed by
Rapidlasso's laszip.  This module provides the repo's stand-in: the same
227-byte LAS header, followed by per-field delta+deflate streams (instead
of laszip's arithmetic coder).  What matters for the reproduction is the
cost *structure* — smaller files, but every query must decompress before
filtering — and that is preserved.

Format::

    LAS header (227 bytes, signature LASF — same as .las)
    magic  4 bytes  b"RLAZ"
    nfields u16
    per field: name_len u16, name bytes, payload_len u64, deflate payload
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .header import HEADER_SIZE, LasFormatError, LasHeader
from .spec import POINT_FORMATS, pack_classification, pack_flags
from .writer import _quantize_axis

PathLike = Union[str, Path]
_MAGIC = b"RLAZ"


def _delta_bytes(arr: np.ndarray) -> bytes:
    """Delta-encode an integer array and deflate it."""
    as64 = arr.astype(np.int64)
    deltas = np.empty_like(as64)
    deltas[0:1] = as64[0:1]
    deltas[1:] = as64[1:] - as64[:-1]
    return zlib.compress(deltas.tobytes(), 6)


def _undelta_bytes(payload: bytes, count: int, dtype: np.dtype) -> np.ndarray:
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise LasFormatError(f"corrupt LAZ field payload: {exc}") from None
    deltas = np.frombuffer(raw, dtype=np.int64)
    if deltas.shape[0] != count:
        raise LasFormatError("corrupt LAZ field payload (length mismatch)")
    return np.cumsum(deltas, dtype=np.int64).astype(dtype)


def write_laz(
    path: PathLike,
    points: Dict[str, np.ndarray],
    point_format: int = 3,
    scale: Tuple[float, float, float] = (0.01, 0.01, 0.01),
    offset: Optional[Tuple[float, float, float]] = None,
) -> LasHeader:
    """Write a compressed point file; mirrors :func:`~.writer.write_las`."""
    if point_format not in POINT_FORMATS:
        raise LasFormatError(f"unsupported point format {point_format}")
    x = np.asarray(points["x"], dtype=np.float64)
    y = np.asarray(points["y"], dtype=np.float64)
    z = np.asarray(points["z"], dtype=np.float64)
    n = x.shape[0]
    if n == 0:
        raise LasFormatError("cannot write an empty LAZ file")
    if offset is None:
        offset = (
            float(np.floor(x.min())),
            float(np.floor(y.min())),
            float(np.floor(z.min())),
        )

    dtype = POINT_FORMATS[point_format]

    def get(name: str, default: int = 0) -> np.ndarray:
        if name in points:
            return np.asarray(points[name])
        return np.full(n, default, dtype=np.uint8)

    fields: Dict[str, np.ndarray] = {
        "X": _quantize_axis(x, scale[0], offset[0], "x"),
        "Y": _quantize_axis(y, scale[1], offset[1], "y"),
        "Z": _quantize_axis(z, scale[2], offset[2], "z"),
        "intensity": get("intensity").astype(np.uint16),
        "flags": pack_flags(
            get("return_number", 1),
            get("number_of_returns", 1),
            get("scan_direction_flag"),
            get("edge_of_flight_line"),
        ),
        "classification": pack_classification(
            get("classification"), get("synthetic"), get("key_point"),
            get("withheld"),
        ),
        "scan_angle_rank": np.clip(
            np.asarray(points.get("scan_angle", np.zeros(n))), -90, 90
        ).astype(np.int8),
        "user_data": get("user_data").astype(np.uint8),
        "point_source_id": get("point_source_id").astype(np.uint16),
    }
    if "gps_time" in dtype.names:
        # Deflate the raw bit patterns of the doubles (lossless).
        fields["gps_time"] = (
            np.asarray(points.get("gps_time", np.zeros(n)), dtype=np.float64)
            .view(np.int64)
        )
    if "red" in dtype.names:
        for channel in ("red", "green", "blue"):
            fields[channel] = get(channel).astype(np.uint16)

    return_number = get("return_number", 1)
    by_return = [int((return_number == r).sum()) for r in range(1, 6)]
    header = LasHeader(
        point_format=point_format,
        n_points=n,
        scale=scale,
        offset=offset,
        min_xyz=(
            float(fields["X"].min() * scale[0] + offset[0]),
            float(fields["Y"].min() * scale[1] + offset[1]),
            float(fields["Z"].min() * scale[2] + offset[2]),
        ),
        max_xyz=(
            float(fields["X"].max() * scale[0] + offset[0]),
            float(fields["Y"].max() * scale[1] + offset[1]),
            float(fields["Z"].max() * scale[2] + offset[2]),
        ),
        points_by_return=tuple(by_return),
    )

    with open(Path(path), "wb") as fh:
        fh.write(header.pack())
        fh.write(_MAGIC)
        fh.write(len(fields).to_bytes(2, "little"))
        for name, arr in fields.items():
            payload = _delta_bytes(arr)
            name_bytes = name.encode()
            fh.write(len(name_bytes).to_bytes(2, "little"))
            fh.write(name_bytes)
            fh.write(len(payload).to_bytes(8, "little"))
            fh.write(payload)
    return header


def read_laz(path: PathLike) -> Tuple[LasHeader, Dict[str, np.ndarray]]:
    """Read a compressed point file back into flat columns."""
    from .spec import unpack_classification, unpack_flags

    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise LasFormatError(f"no such LAZ file: {path}") from None
    header = LasHeader.unpack(raw[:HEADER_SIZE])
    pos = HEADER_SIZE
    if raw[pos : pos + 4] != _MAGIC:
        raise LasFormatError(f"{path}: not a repro-LAZ file (missing RLAZ)")
    pos += 4
    nfields = int.from_bytes(raw[pos : pos + 2], "little")
    pos += 2

    dtype = POINT_FORMATS[header.point_format]
    fields: Dict[str, np.ndarray] = {}
    for _ in range(nfields):
        name_len = int.from_bytes(raw[pos : pos + 2], "little")
        pos += 2
        name = raw[pos : pos + name_len].decode()
        pos += name_len
        payload_len = int.from_bytes(raw[pos : pos + 8], "little")
        pos += 8
        payload = raw[pos : pos + payload_len]
        if len(payload) != payload_len:
            raise LasFormatError(f"{path}: truncated LAZ payload")
        pos += payload_len
        if name == "gps_time":
            fields[name] = _undelta_bytes(
                payload, header.n_points, np.int64
            ).view(np.float64)
        else:
            fields[name] = _undelta_bytes(
                payload, header.n_points, dtype[name] if name in dtype.names else np.int64
            )

    sx, sy, sz = header.scale
    ox, oy, oz = header.offset
    columns: Dict[str, np.ndarray] = {
        "x": fields["X"].astype(np.float64) * sx + ox,
        "y": fields["Y"].astype(np.float64) * sy + oy,
        "z": fields["Z"].astype(np.float64) * sz + oz,
        "intensity": fields["intensity"],
        "scan_angle": fields["scan_angle_rank"].astype(np.int16),
        "user_data": fields["user_data"],
        "point_source_id": fields["point_source_id"],
    }
    columns.update(unpack_flags(fields["flags"]))
    columns.update(unpack_classification(fields["classification"]))
    if "gps_time" in fields:
        columns["gps_time"] = fields["gps_time"]
    if "red" in fields:
        for channel in ("red", "green", "blue"):
            columns[channel] = fields[channel]
    return header, columns
